"""``repro-partition`` — partition a load matrix from the command line.

The adoption path for a downstream user with a workload file::

    repro-partition load.npy -m 100 --method JAG-M-HEUR \
        --out partition.json --image partition.ppm --report

Accepts ``.npy`` (a 2D array) or ``.npz`` (first array, or ``--key``);
writes the partition as JSON/NPZ (:mod:`repro.core.serialize`), optionally a
PPM rendering, and prints the §2.1 metrics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core.metrics import communication_volume, lower_bound, max_boundary
from .core.prefix import PrefixSum2D
from .core.registry import ALGORITHMS, partition_2d
from .core.render import ascii_render, save_ppm
from .core.serialize import save_partition

__all__ = ["main"]


def _load_matrix(path: Path, key: str | None) -> np.ndarray:
    if not path.exists():
        raise SystemExit(f"error: no such file: {path}")
    if path.suffix == ".npz":
        with np.load(path) as data:
            name = key or data.files[0]
            if name not in data.files:
                raise SystemExit(
                    f"error: key {name!r} not in {path} (has {data.files})"
                )
            return np.asarray(data[name])
    if path.suffix == ".npy":
        return np.load(path)
    raise SystemExit(f"error: unsupported input format {path.suffix!r} (.npy/.npz)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="Partition a 2D load matrix into m rectangles "
        "(Saule, Baş, Çatalyürek; IPDPS 2011).",
    )
    parser.add_argument("input", type=Path, help="load matrix (.npy or .npz)")
    parser.add_argument("-m", "--processors", type=int, required=True)
    parser.add_argument(
        "--method",
        default="JAG-M-HEUR",
        help="algorithm name (see repro.ALGORITHMS); default JAG-M-HEUR",
    )
    parser.add_argument("--key", default=None, help="array name inside an .npz")
    parser.add_argument("--out", type=Path, default=None, help="write partition (.json/.npz)")
    parser.add_argument("--image", type=Path, default=None, help="write a PPM rendering")
    parser.add_argument("--ascii", action="store_true", help="print an ASCII rendering")
    parser.add_argument("--report", action="store_true", help="print metrics")
    args = parser.parse_args(argv)

    method = args.method.upper()
    if method not in ALGORITHMS:
        raise SystemExit(
            f"error: unknown method {args.method!r}; choose from {sorted(ALGORITHMS)}"
        )
    A = _load_matrix(args.input, args.key)
    try:
        pref = PrefixSum2D(A)
    except Exception as exc:  # invalid matrix: surface a clean CLI error
        raise SystemExit(f"error: invalid load matrix: {exc}")
    if args.processors <= 0:
        raise SystemExit("error: -m must be positive")

    part = partition_2d(pref, args.processors, method)
    part.validate()

    if args.report:
        lavg = pref.total / args.processors
        print(f"matrix        : {pref.shape[0]} x {pref.shape[1]}, total load {pref.total:,}")
        print(f"method        : {method}")
        print(f"processors    : {args.processors}")
        print(f"max load      : {part.max_load(pref):,}")
        print(f"lower bound   : {lower_bound(pref, args.processors):,}")
        print(f"imbalance     : {part.max_load(pref) / lavg - 1.0:.4%}")
        print(f"comm volume   : {communication_volume(part):,} edges")
        print(f"max boundary  : {max_boundary(part):,} edges")
    if args.ascii:
        print(ascii_render(part))
    if args.out is not None:
        path = save_partition(part, args.out)
        print(f"wrote {path}", file=sys.stderr)
    if args.image is not None:
        path = save_ppm(part, args.image, A=pref)
        print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
