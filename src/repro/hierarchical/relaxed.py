"""HIER-RELAXED: the paper's new hierarchical heuristic (§3.3).

Extracted from the optimal hierarchical dynamic program: at every node the
algorithm picks the cut position *and* the processor split ``j`` that
optimize the DP equation, but replaces the recursive ``Lmax`` calls with the
average load ``L/j`` of each side.  Each side is then partitioned
recursively.  Complexity ``O(m² log max(n1, n2))`` in the paper; here the
inner (cut, j) optimization is vectorized — for fixed ``j`` the optimal cut
straddles the balance point, so one ``searchsorted`` over all ``m-1``
targets evaluates every split at once (see DESIGN.md §6).

Variants mirror HIER-RB: ``load`` (choose the better dimension — the
paper's reference variant), ``dist``, ``hor``, ``ver``.
"""

from __future__ import annotations

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..core.rectangle import Rect
from ..parallel.backends import parallel_grow_tree
from ..perf.config import perf_enabled
from ..sweep.state import current as _sweep_current
from .cuts import best_relaxed_split, best_relaxed_split_win
from .rb import HIER_VARIANTS, _band, _candidate_dims
from .tree import grow_tree, tree_to_partition

__all__ = ["hier_relaxed"]


def _relaxed_chooser(variant: str):
    def choose(pref: PrefixSum2D, rect: Rect, m: int, depth: int):
        best = None  # (value, dim, cut_abs, j)
        dims = _candidate_dims(variant, rect, depth)
        fallback = tuple(d for d in (0, 1) if d not in dims)
        fast = perf_enabled()
        # sweep contexts memoize per (sub-rectangle, dim, m): unlike RB the
        # split depends on the full m (float averages L/j), so facts only
        # replay at the same node processor count — still a hit whenever
        # variants share subtrees or the same m recurs across cells
        memo = None
        if fast:
            state = _sweep_current()
            if state is not None:
                memo = state.hier_memo(pref, "relaxed")
        for dim_set in (dims, fallback):
            for dim in dim_set:
                if fast:
                    mkey = (rect.r0, rect.r1, rect.c0, rect.c1, dim, m)
                    if memo is not None and mkey in memo:
                        found = memo[mkey]
                    else:
                        # windowed split on the memoized un-rebased
                        # projection (bit-identical to rebasing first;
                        # see cuts.py)
                        if dim == 0:
                            p = pref.axis_prefix(0, rect.c0, rect.c1, reuse=True)
                            found = best_relaxed_split_win(p, rect.r0, rect.r1, m)
                        else:
                            p = pref.axis_prefix(1, rect.r0, rect.r1, reuse=True)
                            found = best_relaxed_split_win(p, rect.c0, rect.c1, m)
                        if memo is not None:
                            memo[mkey] = found
                else:
                    found = best_relaxed_split(_band(pref, rect, dim), m)
                if found is None:
                    continue
                cut_rel, j, value = found
                cut_abs = (rect.r0 if dim == 0 else rect.c0) + cut_rel
                if best is None or value < best[0]:
                    best = (value, dim, cut_abs, j)
            if best is not None:
                break  # only fall back when the preferred dims cannot be cut
        if best is None:
            return None
        _, dim, cut_abs, j = best
        return dim, cut_abs, j, m - j

    return choose


def hier_relaxed(A: MatrixLike, m: int, variant: str = "load") -> Partition:
    """HIER-RELAXED partition of ``A`` into ``m`` rectangles.

    ``variant`` ∈ ``{"load", "dist", "hor", "ver"}``; the paper selects
    ``load`` as the reference HIER-RELAXED (§4.2).
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    variant = variant.lower()
    if variant not in HIER_VARIANTS:
        raise ParameterError(f"unknown variant {variant!r}; choose from {HIER_VARIANTS}")
    pref = prefix_2d(A)
    # subtrees are independent (§3.3): the parallel layer may expand them in
    # worker processes, bit-identical to the serial reference growth
    root = parallel_grow_tree(pref, m, "relaxed", variant)
    if root is None:
        root = grow_tree(pref, m, _relaxed_chooser(variant))
    part = tree_to_partition(root, pref, f"HIER-RELAXED-{variant.upper()}", m)
    state = _sweep_current()
    if state is not None:
        # achieved max load = feasible class witness (persisted and
        # scale-transferred by the disk store), scoped by variant
        state.record_mono_ub(
            pref, "hier_relaxed", m, part.max_load(pref), kw={"variant": variant}
        )
    return part
