"""HIER-RB: recursive bisection over the load matrix (paper §3.3, ref [21]).

The matrix is cut into two parts of approximately equal load; half the
processors go to each side, recursively.  With an odd processor count one
side receives ``⌊m/2⌋`` and the other ``⌊m/2⌋+1``, and "the cutting point is
selected so that the load per processor is minimized" — both orientations
are evaluated.

Four variants choose the cut dimension (§4.1):

* ``load`` — virtually try both dimensions, keep the best expected balance
  (the Vastenhouw–Bisseling rule [1]); the paper's overall best (§4.2).
* ``dist`` — cut the longer dimension.
* ``hor`` / ``ver`` — alternate dimensions level by level, starting with
  rows / columns.

Runs in ``O(m log max(n1, n2))``: one binary search per tree node.
"""

from __future__ import annotations

from math import gcd

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..core.rectangle import Rect
from ..parallel.backends import parallel_grow_tree
from ..perf.config import perf_enabled
from ..sweep.state import current as _sweep_current
from .cuts import best_weighted_cut, best_weighted_cut_win
from .tree import grow_tree, tree_to_partition

__all__ = ["hier_rb", "HIER_VARIANTS"]

HIER_VARIANTS = ("load", "dist", "hor", "ver")


def _candidate_dims(variant: str, rect: Rect, depth: int) -> tuple[int, ...]:
    """Cut dimension(s) a variant considers at this node."""
    if variant == "load":
        return (0, 1)
    if variant == "dist":
        return (0,) if rect.height >= rect.width else (1,)
    if variant == "hor":
        return (depth % 2,)
    if variant == "ver":
        return ((depth + 1) % 2,)
    raise ParameterError(f"unknown variant {variant!r}; choose from {HIER_VARIANTS}")


def _band(pref: PrefixSum2D, rect: Rect, dim: int) -> np.ndarray:
    """Rebased prefix along ``dim`` of the sub-rectangle."""
    if dim == 0:
        return pref.band_prefix(0, rect.c0, rect.c1, rect.r0, rect.r1, reuse=True)
    return pref.band_prefix(1, rect.r0, rect.r1, rect.c0, rect.c1, reuse=True)


def _rb_chooser(variant: str):
    def choose(pref: PrefixSum2D, rect: Rect, m: int, depth: int):
        m1, m2 = m // 2, m - m // 2
        orientations = ((m1, m2),) if m1 == m2 else ((m1, m2), (m2, m1))
        # every candidate in this node shares the weight product wl·wr, so
        # the integer-numerator windowed scores order exactly like the
        # Fractions of the reference path
        fast = perf_enabled()
        # the cut decision only depends on the *ratio* m1:m2 — targets use
        # ``(c·a)//(c·b) = a//b`` and scores scale uniformly — so the fast
        # path searches with the gcd-reduced weights and sweep contexts
        # memoize per (sub-rectangle, dim, reduced ratio): every node of a
        # smaller power-of-two sweep step replays a larger step's decision
        # without touching the cut kernel
        d = gcd(m1, m2) or 1
        g1, g2 = m1 // d, m2 // d
        reduced = ((g1, g2),) if g1 == g2 else ((g1, g2), (g2, g1))
        memo = None
        if fast:
            state = _sweep_current()
            if state is not None:
                memo = state.hier_memo(pref, "rb")
        best = None  # (value, dim, cut_abs, wl, wr)
        dims = _candidate_dims(variant, rect, depth)
        fallback = tuple(d for d in (0, 1) if d not in dims)
        for dim_set in (dims, fallback):
            for dim in dim_set:
                if fast:
                    mkey = (rect.r0, rect.r1, rect.c0, rect.c1, dim, g1, g2)
                    if memo is not None and mkey in memo:
                        fact = memo[mkey]
                    else:
                        # work on the memoized un-rebased projection directly
                        if dim == 0:
                            p = pref.axis_prefix(0, rect.c0, rect.c1, reuse=True)
                            j0, j1 = rect.r0, rect.r1
                        else:
                            p = pref.axis_prefix(1, rect.r0, rect.r1, reuse=True)
                            j0, j1 = rect.c0, rect.c1
                        found2 = best_weighted_cut_win(p, j0, j1, reduced)
                        if found2 is None:
                            fact = None
                        else:
                            cut_rel, value, rl, _rr = found2
                            fact = (cut_rel, value, 0 if g1 == g2 or rl == g1 else 1)
                        if memo is not None:
                            memo[mkey] = fact
                    if fact is None:
                        continue
                    cut_rel, value, widx = fact
                    wl, wr = orientations[widx]
                    cut_abs = (rect.r0 if dim == 0 else rect.c0) + cut_rel
                    if best is None or value < best[0]:
                        best = (value, dim, cut_abs, wl, wr)
                    continue
                bp = _band(pref, rect, dim)
                for wl, wr in orientations:
                    found = best_weighted_cut(bp, wl, wr)
                    if found is None:
                        continue
                    cut_rel, value = found
                    cut_abs = (rect.r0 if dim == 0 else rect.c0) + cut_rel
                    if best is None or value < best[0]:
                        best = (value, dim, cut_abs, wl, wr)
            if best is not None:
                break  # only fall back when the preferred dims cannot be cut
        if best is None:
            return None  # un-cuttable rectangle: remaining processors idle
        _, dim, cut_abs, wl, wr = best
        return dim, cut_abs, wl, wr

    return choose


def hier_rb(A: MatrixLike, m: int, variant: str = "load") -> Partition:
    """Recursive-bisection partition of ``A`` into ``m`` rectangles.

    ``variant`` ∈ ``{"load", "dist", "hor", "ver"}`` picks the cut-dimension
    rule; the paper selects ``load`` as the reference HIER-RB (§4.2).
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    variant = variant.lower()
    if variant not in HIER_VARIANTS:
        raise ParameterError(f"unknown variant {variant!r}; choose from {HIER_VARIANTS}")
    pref = prefix_2d(A)
    # subtrees are independent (§3.3): the parallel layer may expand them in
    # worker processes, bit-identical to the serial reference growth
    root = parallel_grow_tree(pref, m, "rb", variant)
    if root is None:
        root = grow_tree(pref, m, _rb_chooser(variant))
    part = tree_to_partition(root, pref, f"HIER-RB-{variant.upper()}", m)
    state = _sweep_current()
    if state is not None:
        # the achieved max load is a feasible witness for the class —
        # persisted (and scale-transferred) by the disk store; scoped by
        # variant since different variants reach different partitions
        state.record_mono_ub(
            pref, "hier_rb", m, part.max_load(pref), kw={"variant": variant}
        )
    return part
