"""Binary-tree representation of hierarchical bipartitions (paper §3.3).

"Such partitions can be represented by a binary tree for easy indexing" —
the tree is kept on the partition's metadata and powers an O(depth)
cell→processor indexer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..core.rectangle import Rect

__all__ = ["HierNode", "tree_to_partition", "grow_tree"]


@dataclass
class HierNode:
    """A node of the bipartition tree.

    Leaves own a processor (``proc``); internal nodes record the cut
    dimension (0 = rows), the absolute cut coordinate, and the two children.
    ``procs`` is the number of processors in the subtree.
    """

    rect: Rect
    procs: int
    dim: int = -1
    cut: int = -1
    left: Optional["HierNode"] = None
    right: Optional["HierNode"] = None
    proc: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def locate(self, i: int, j: int) -> int:
        """Processor owning cell ``(i, j)`` — descend the tree."""
        node = self
        while not node.is_leaf:
            coord = i if node.dim == 0 else j
            node = node.left if coord < node.cut else node.right
            assert node is not None
        return node.proc

    def leaves(self):
        """Yield leaves left-to-right (processor order); iterative, any depth."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.append(node.right)
                stack.append(node.left)

    def depth(self) -> int:
        """Height of the subtree (leaf = 0); iterative, any depth."""
        best = 0
        stack = [(self, 0)]
        while stack:
            node, d = stack.pop()
            if node.is_leaf:
                best = max(best, d)
            else:
                stack.append((node.left, d + 1))
                stack.append((node.right, d + 1))
        return best


def grow_tree(
    pref: PrefixSum2D,
    m: int,
    chooser,
    *,
    root: HierNode | None = None,
    depth0: int = 0,
) -> HierNode:
    """Grow a bipartition tree with an explicit worklist (no recursion limit).

    ``chooser(pref, rect, procs, depth)`` returns ``None`` when the node must
    stay a leaf, or ``(dim, cut_abs, procs_left, procs_right)``.  ``root`` /
    ``depth0`` let the parallel layer grow an interior subtree in place: the
    depth offset matters because the HOR/VER variants alternate cut
    dimensions by level.
    """
    if root is None:
        root = HierNode(rect=Rect(0, pref.n1, 0, pref.n2), procs=m)
    stack: list[tuple[HierNode, int]] = [(root, depth0)]
    while stack:
        node, depth = stack.pop()
        if node.procs == 1 or node.rect.area <= 1:
            continue
        choice = chooser(pref, node.rect, node.procs, depth)
        if choice is None:
            continue
        dim, cut_abs, wl, wr = choice
        r = node.rect
        if dim == 0:
            lrect = Rect(r.r0, cut_abs, r.c0, r.c1)
            rrect = Rect(cut_abs, r.r1, r.c0, r.c1)
        else:
            lrect = Rect(r.r0, r.r1, r.c0, cut_abs)
            rrect = Rect(r.r0, r.r1, cut_abs, r.c1)
        node.dim, node.cut = dim, cut_abs
        node.left = HierNode(rect=lrect, procs=wl)
        node.right = HierNode(rect=rrect, procs=wr)
        stack.append((node.left, depth + 1))
        stack.append((node.right, depth + 1))
    return root


def tree_to_partition(
    root: HierNode, pref: PrefixSum2D, method: str, m: int
) -> Partition:
    """Number the leaves, collect their rectangles, attach the tree indexer."""
    rects: list[Rect] = []
    for k, leaf in enumerate(root.leaves()):
        leaf.proc = k
        rects.append(leaf.rect)
    # idle processors (splits that could not proceed) appear as empty rects
    rects.extend(Rect(0, 0, 0, 0) for _ in range(m - len(rects)))
    return Partition(
        rects,
        pref.shape,
        method=method,
        indexer=root.locate,
        meta={"tree": root},
    )
