"""Hierarchical bipartitions: HIER-RB, HIER-RELAXED, and the exact DP (§3.3)."""

from .opt import hier_opt, hier_opt_bottleneck
from .rb import HIER_VARIANTS, hier_rb
from .relaxed import hier_relaxed
from .tree import HierNode, tree_to_partition

__all__ = [
    "hier_opt",
    "hier_opt_bottleneck",
    "HIER_VARIANTS",
    "hier_rb",
    "hier_relaxed",
    "HierNode",
    "tree_to_partition",
]
