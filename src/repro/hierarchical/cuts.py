"""Cut-selection helpers shared by the hierarchical algorithms (§3.3).

:func:`best_weighted_cut` is exact: the balance-point search uses integer
floor targets and candidate scores are :class:`fractions.Fraction` values,
so HIER-RB cut decisions are bit-stable at any load magnitude.

:func:`best_relaxed_split` scores all ``m - 1`` processor splits at once
with vectorized float arithmetic.  The relaxed node score is an *estimate*
by construction (average loads stand in for recursive values, §3.3), near
ties are handled explicitly below, and the final partition loads stay exact
int64 — so the float scoring is a documented RPL003 exemption rather than a
violation (see ``docs/lint.md``).

The windowed fast paths (``best_weighted_cut_win`` /
``best_relaxed_split_win``) are thin dispatchers into the kernel registry
(:mod:`repro.perf.kernels`, selected by ``REPRO_PERF_BACKEND``); the
un-windowed functions below remain the independent reference twins the
equality suites compare against.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..perf.config import perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump
from ..perf.kernels import (
    SCALAR_MAX_M as _SCALAR_MAX_M,
)
from ..perf.kernels import (
    relaxed_split_scalar as _relaxed_split_scalar,
)
from ..perf.kernels import relaxed_split_win, weighted_cut_win

__all__ = [
    "best_weighted_cut",
    "best_weighted_cut_num",
    "best_weighted_cut_win",
    "best_relaxed_split",
    "best_relaxed_split_win",
]

_I64_MAX = 2**63 - 1


def best_weighted_cut(
    bp: np.ndarray, w1: int, w2: int
) -> tuple[int, Fraction] | None:
    """Cut of a rebased prefix ``bp`` minimizing ``max(L1/w1, L2/w2)``.

    Only non-degenerate cuts (both sides non-empty) are considered; returns
    ``(cut, value)`` with ``cut`` relative to the prefix and ``value`` an
    exact :class:`Fraction`, or None when the axis has fewer than 2 cells.
    The left term grows and the right term shrinks with the cut, so the
    minimum straddles the weighted balance point located by one binary
    search.
    """
    L = len(bp) - 1
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    # integer bp ≤ total·w1/(w1+w2)  ⇔  bp ≤ floor(·): the floor target is exact
    target = (total * w1) // (w1 + w2)
    c = int(np.searchsorted(bp, target, side="right")) - 1
    best: tuple[int, Fraction] | None = None
    for cand in (c, c + 1):
        if cand < 1 or cand > L - 1:
            continue
        l1 = int(bp[cand])
        v = max(Fraction(l1, w1), Fraction(total - l1, w2))
        if best is None or v < best[1]:
            best = (cand, v)
    if best is None:
        # balance point at a border; fall back to the nearest interior cut
        cand = min(max(c, 1), L - 1)
        l1 = int(bp[cand])
        best = (cand, max(Fraction(l1, w1), Fraction(total - l1, w2)))
    return best


def best_weighted_cut_num(bp: np.ndarray, w1: int, w2: int) -> tuple[int, int] | None:
    """Integer-numerator twin of :func:`best_weighted_cut`.

    Returns ``(cut, value · w1·w2)`` — the score scaled by the common
    denominator, as an exact Python int.  ``max(L1/w1, L2/w2)`` compares
    identically to ``max(L1·w2, L2·w1)`` for any fixed ``(w1, w2)`` pair,
    and within one recursion node every candidate (either orientation,
    either dimension) shares the product ``w1·w2``, so the chooser's
    ordering is bit-identical to the Fraction path — without constructing
    ~4 normalized Fractions per node.
    """
    L = len(bp) - 1
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    target = (total * w1) // (w1 + w2)
    # method call: the np.searchsorted dispatch wrapper costs ~1.4 µs/call
    c = int(bp.searchsorted(target, side="right")) - 1
    best: tuple[int, int] | None = None
    for cand in (c, c + 1):
        if cand < 1 or cand > L - 1:
            continue
        l1 = int(bp[cand])
        v = max(l1 * w2, (total - l1) * w1)
        if best is None or v < best[1]:
            best = (cand, v)
    if best is None:
        cand = min(max(c, 1), L - 1)
        l1 = int(bp[cand])
        best = (cand, max(l1 * w2, (total - l1) * w1))
    return best


def best_weighted_cut_win(
    p: np.ndarray, j0: int, j1: int, orientations: tuple[tuple[int, int], ...]
) -> tuple[int, int, int, int] | None:
    """Windowed, orientation-fused twin of :func:`best_weighted_cut_num`.

    Operates directly on the *un-rebased* memoized axis projection ``p``
    restricted to window ``[j0, j1]`` — the rebased band prefix is
    ``p[j0:j1+1] - p[j0]``, and shifting every comparison by the constant
    ``base = p[j0]`` leaves the integer searchsorted and the integer scores
    unchanged, so no per-node band allocation is needed.  All orientations
    ``(w1, w2)`` share the window, total and search bounds; the first
    orientation attaining the minimum wins, matching the sequential
    first-occurrence rule of the chooser loop.  Returns
    ``(cut_rel, value · w1·w2, w1, w2)`` or None.

    Dispatches to the ``weighted_cut`` registry kernel
    (:mod:`repro.perf.kernels`, ``REPRO_PERF_BACKEND``); every backend is
    exact-int and bit-identical to rebasing + :func:`best_weighted_cut_num`.
    """
    return weighted_cut_win(p, j0, j1, orientations)


def best_relaxed_split(bp: np.ndarray, m: int) -> tuple[int, int, float] | None:
    """Jointly optimal ``(cut, j, value)`` over all processor splits.

    Implements the HIER-RELAXED node rule (paper §3.3): minimize
    ``max(L1/j, L2/(m-j))`` over the cut position *and* the processor split
    ``j ∈ [1, m-1]``.  For fixed ``j`` the optimal cut straddles the balance
    point ``total·j/m``, so a single vectorized ``searchsorted`` over all
    ``m-1`` targets finds every candidate at once.
    """
    L = len(bp) - 1
    if L < 2 or m < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    j = np.arange(1, m, dtype=np.int64)
    if total > 0 and m > 2 and total > _I64_MAX // (m - 1):
        # the intermediate product total·j would overflow int64 (each target
        # itself fits — it is at most ``total``, a prefix value)
        targets = np.array([(total * jv) // m for jv in range(1, m)], dtype=np.int64)
    else:
        targets = (total * j) // m  # exact integer balance targets
    if perf_enabled() and m <= _SCALAR_MAX_M:
        lo = bp.searchsorted(targets, side="right") - 1
        return _relaxed_split_scalar(bp, m, total, lo.tolist(), L)
    lo = np.searchsorted(bp, targets, side="right") - 1
    cuts = np.concatenate([np.clip(lo, 1, L - 1), np.clip(lo + 1, 1, L - 1)])
    jj = np.concatenate([j, j])
    # the relaxed node score is an estimate by construction: vectorized
    # float scoring is the documented exemption (module docstring); the
    # partition loads themselves stay exact int64
    l1 = bp[cuts].astype(np.float64)  # repro-lint: disable=RPL003
    val = np.maximum(l1 / jj, (total - l1) / (m - jj))  # repro-lint: disable=RPL003
    v = float(val.min())  # repro-lint: disable=RPL003 — reporting boundary
    # The relaxed node score is blind to discretization error deeper in the
    # tree, so many (cut, j) pairs score within noise of each other; among
    # splits within 0.1% of the best score, prefer the most balanced
    # processor split — unbalanced chains deepen the tree and accumulate
    # rounding error (measured in benchmarks/bench_ablation_hier.py).
    near = val <= v * (1.0 + 1e-3) + 1e-9
    bal = np.where(near, np.minimum(jj, m - jj), -1)
    k = int(np.argmax(bal))
    return (int(cuts[k]), int(jj[k]), float(val[k]))  # repro-lint: disable=RPL003


def best_relaxed_split_win(
    p: np.ndarray, j0: int, j1: int, m: int
) -> tuple[int, int, float] | None:
    """Windowed twin of :func:`best_relaxed_split` on an un-rebased projection.

    Same shifting argument as :func:`best_weighted_cut_win`: the rebased
    band is ``p[j0:j1+1] - base``, integer searchsorted targets shift by
    ``base`` exactly, and the float scores are computed from the *same*
    integers (``l1 = view[cut] - base``), so the chosen ``(cut, j, value)``
    is bit-identical to rebasing first — without the per-node band copy.

    Dispatches to the ``relaxed_split`` registry kernel
    (:mod:`repro.perf.kernels`, ``REPRO_PERF_BACKEND``): an m == 2 scalar
    fast path, a scalar path below ``SCALAR_MAX_M`` splits and the
    vectorized candidate sweep above it — all scoring the same integers
    with the same float arithmetic, so the chosen ``(cut, j, value)`` is
    backend-independent.
    """
    return relaxed_split_win(p, j0, j1, m)
