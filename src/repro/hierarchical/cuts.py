"""Cut-selection helpers shared by the hierarchical algorithms (§3.3).

:func:`best_weighted_cut` is exact: the balance-point search uses integer
floor targets and candidate scores are :class:`fractions.Fraction` values,
so HIER-RB cut decisions are bit-stable at any load magnitude.

:func:`best_relaxed_split` scores all ``m - 1`` processor splits at once
with vectorized float arithmetic.  The relaxed node score is an *estimate*
by construction (average loads stand in for recursive values, §3.3), near
ties are handled explicitly below, and the final partition loads stay exact
int64 — so the float scoring is a documented RPL003 exemption rather than a
violation (see ``docs/lint.md``).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = ["best_weighted_cut", "best_relaxed_split"]


def best_weighted_cut(
    bp: np.ndarray, w1: int, w2: int
) -> tuple[int, Fraction] | None:
    """Cut of a rebased prefix ``bp`` minimizing ``max(L1/w1, L2/w2)``.

    Only non-degenerate cuts (both sides non-empty) are considered; returns
    ``(cut, value)`` with ``cut`` relative to the prefix and ``value`` an
    exact :class:`Fraction`, or None when the axis has fewer than 2 cells.
    The left term grows and the right term shrinks with the cut, so the
    minimum straddles the weighted balance point located by one binary
    search.
    """
    L = len(bp) - 1
    if L < 2:
        return None
    total = int(bp[-1])
    # integer bp ≤ total·w1/(w1+w2)  ⇔  bp ≤ floor(·): the floor target is exact
    target = (total * w1) // (w1 + w2)
    c = int(np.searchsorted(bp, target, side="right")) - 1
    best: tuple[int, Fraction] | None = None
    for cand in (c, c + 1):
        if cand < 1 or cand > L - 1:
            continue
        l1 = int(bp[cand])
        v = max(Fraction(l1, w1), Fraction(total - l1, w2))
        if best is None or v < best[1]:
            best = (cand, v)
    if best is None:
        # balance point at a border; fall back to the nearest interior cut
        cand = min(max(c, 1), L - 1)
        l1 = int(bp[cand])
        best = (cand, max(Fraction(l1, w1), Fraction(total - l1, w2)))
    return best


def best_relaxed_split(bp: np.ndarray, m: int) -> tuple[int, int, float] | None:
    """Jointly optimal ``(cut, j, value)`` over all processor splits.

    Implements the HIER-RELAXED node rule (paper §3.3): minimize
    ``max(L1/j, L2/(m-j))`` over the cut position *and* the processor split
    ``j ∈ [1, m-1]``.  For fixed ``j`` the optimal cut straddles the balance
    point ``total·j/m``, so a single vectorized ``searchsorted`` over all
    ``m-1`` targets finds every candidate at once.
    """
    L = len(bp) - 1
    if L < 2 or m < 2:
        return None
    total = int(bp[-1])
    j = np.arange(1, m, dtype=np.int64)
    targets = (total * j) // m  # exact integer balance targets
    lo = np.searchsorted(bp, targets, side="right") - 1
    cuts = np.concatenate([np.clip(lo, 1, L - 1), np.clip(lo + 1, 1, L - 1)])
    jj = np.concatenate([j, j])
    # the relaxed node score is an estimate by construction: vectorized
    # float scoring is the documented exemption (module docstring); the
    # partition loads themselves stay exact int64
    l1 = bp[cuts].astype(np.float64)  # repro-lint: disable=RPL003
    val = np.maximum(l1 / jj, (total - l1) / (m - jj))  # repro-lint: disable=RPL003
    v = float(val.min())  # repro-lint: disable=RPL003 — reporting boundary
    # The relaxed node score is blind to discretization error deeper in the
    # tree, so many (cut, j) pairs score within noise of each other; among
    # splits within 0.1% of the best score, prefer the most balanced
    # processor split — unbalanced chains deepen the tree and accumulate
    # rounding error (measured in benchmarks/bench_ablation_hier.py).
    near = val <= v * (1.0 + 1e-3) + 1e-9
    bal = np.where(near, np.minimum(jj, m - jj), -1)
    k = int(np.argmax(bal))
    return (int(cuts[k]), int(jj[k]), float(val[k]))  # repro-lint: disable=RPL003
