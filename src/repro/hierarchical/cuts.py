"""Cut-selection helpers shared by the hierarchical algorithms (§3.3).

:func:`best_weighted_cut` is exact: the balance-point search uses integer
floor targets and candidate scores are :class:`fractions.Fraction` values,
so HIER-RB cut decisions are bit-stable at any load magnitude.

:func:`best_relaxed_split` scores all ``m - 1`` processor splits at once
with vectorized float arithmetic.  The relaxed node score is an *estimate*
by construction (average loads stand in for recursive values, §3.3), near
ties are handled explicitly below, and the final partition loads stay exact
int64 — so the float scoring is a documented RPL003 exemption rather than a
violation (see ``docs/lint.md``).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..perf.config import perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump

__all__ = [
    "best_weighted_cut",
    "best_weighted_cut_num",
    "best_weighted_cut_win",
    "best_relaxed_split",
    "best_relaxed_split_win",
]

#: processor count below which the scalar relaxed-split path beats the
#: vectorized one (small-array numpy call overhead dominates under ~32)
_SCALAR_MAX_M = 32

#: memoized ``np.arange(1, m)`` split indices — every recursion node with the
#: same processor count re-needs the identical tiny array
_J_CACHE: dict = {}


def _split_indices(m: int) -> np.ndarray:
    j = _J_CACHE.get(m)
    if j is None:
        j = np.arange(1, m, dtype=np.int64)
        j.flags.writeable = False
        _J_CACHE[m] = j
    return j


def best_weighted_cut(
    bp: np.ndarray, w1: int, w2: int
) -> tuple[int, Fraction] | None:
    """Cut of a rebased prefix ``bp`` minimizing ``max(L1/w1, L2/w2)``.

    Only non-degenerate cuts (both sides non-empty) are considered; returns
    ``(cut, value)`` with ``cut`` relative to the prefix and ``value`` an
    exact :class:`Fraction`, or None when the axis has fewer than 2 cells.
    The left term grows and the right term shrinks with the cut, so the
    minimum straddles the weighted balance point located by one binary
    search.
    """
    L = len(bp) - 1
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    # integer bp ≤ total·w1/(w1+w2)  ⇔  bp ≤ floor(·): the floor target is exact
    target = (total * w1) // (w1 + w2)
    c = int(np.searchsorted(bp, target, side="right")) - 1
    best: tuple[int, Fraction] | None = None
    for cand in (c, c + 1):
        if cand < 1 or cand > L - 1:
            continue
        l1 = int(bp[cand])
        v = max(Fraction(l1, w1), Fraction(total - l1, w2))
        if best is None or v < best[1]:
            best = (cand, v)
    if best is None:
        # balance point at a border; fall back to the nearest interior cut
        cand = min(max(c, 1), L - 1)
        l1 = int(bp[cand])
        best = (cand, max(Fraction(l1, w1), Fraction(total - l1, w2)))
    return best


def best_weighted_cut_num(bp: np.ndarray, w1: int, w2: int) -> tuple[int, int] | None:
    """Integer-numerator twin of :func:`best_weighted_cut`.

    Returns ``(cut, value · w1·w2)`` — the score scaled by the common
    denominator, as an exact Python int.  ``max(L1/w1, L2/w2)`` compares
    identically to ``max(L1·w2, L2·w1)`` for any fixed ``(w1, w2)`` pair,
    and within one recursion node every candidate (either orientation,
    either dimension) shares the product ``w1·w2``, so the chooser's
    ordering is bit-identical to the Fraction path — without constructing
    ~4 normalized Fractions per node.
    """
    L = len(bp) - 1
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    target = (total * w1) // (w1 + w2)
    # method call: the np.searchsorted dispatch wrapper costs ~1.4 µs/call
    c = int(bp.searchsorted(target, side="right")) - 1
    best: tuple[int, int] | None = None
    for cand in (c, c + 1):
        if cand < 1 or cand > L - 1:
            continue
        l1 = int(bp[cand])
        v = max(l1 * w2, (total - l1) * w1)
        if best is None or v < best[1]:
            best = (cand, v)
    if best is None:
        cand = min(max(c, 1), L - 1)
        l1 = int(bp[cand])
        best = (cand, max(l1 * w2, (total - l1) * w1))
    return best


def best_weighted_cut_win(
    p: np.ndarray, j0: int, j1: int, orientations: tuple[tuple[int, int], ...]
) -> tuple[int, int, int, int] | None:
    """Windowed, orientation-fused twin of :func:`best_weighted_cut_num`.

    Operates directly on the *un-rebased* memoized axis projection ``p``
    restricted to window ``[j0, j1]`` — the rebased band prefix is
    ``p[j0:j1+1] - p[j0]``, and shifting every comparison by the constant
    ``base = p[j0]`` leaves the integer searchsorted and the integer scores
    unchanged, so no per-node band allocation is needed.  All orientations
    ``(w1, w2)`` share the window, total and search bounds; the first
    orientation attaining the minimum wins, matching the sequential
    first-occurrence rule of the chooser loop.  Returns
    ``(cut_rel, value · w1·w2, w1, w2)`` or None.
    """
    L = j1 - j0
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls", len(orientations))
    base = int(p[j0])
    total = int(p[j1]) - base
    view = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    best: tuple[int, int, int, int] | None = None
    for w1, w2 in orientations:
        # integer bp ≤ t  ⇔  p ≤ base + t: the shifted floor target is exact
        target = base + (total * w1) // (w1 + w2)
        c = int(view.searchsorted(target, side="right")) - 1
        found: tuple[int, int] | None = None
        for cand in (c, c + 1):
            if cand < 1 or cand > L - 1:
                continue
            l1 = int(view[cand]) - base
            v = max(l1 * w2, (total - l1) * w1)
            if found is None or v < found[1]:
                found = (cand, v)
        if found is None:
            cand = min(max(c, 1), L - 1)
            l1 = int(view[cand]) - base
            found = (cand, max(l1 * w2, (total - l1) * w1))
        if best is None or found[1] < best[1]:
            best = (found[0], found[1], w1, w2)
    return best


def best_relaxed_split(bp: np.ndarray, m: int) -> tuple[int, int, float] | None:
    """Jointly optimal ``(cut, j, value)`` over all processor splits.

    Implements the HIER-RELAXED node rule (paper §3.3): minimize
    ``max(L1/j, L2/(m-j))`` over the cut position *and* the processor split
    ``j ∈ [1, m-1]``.  For fixed ``j`` the optimal cut straddles the balance
    point ``total·j/m``, so a single vectorized ``searchsorted`` over all
    ``m-1`` targets finds every candidate at once.
    """
    L = len(bp) - 1
    if L < 2 or m < 2:
        return None
    if _OPS:
        bump("cut_calls")
    total = int(bp[-1])
    j = np.arange(1, m, dtype=np.int64)
    targets = (total * j) // m  # exact integer balance targets
    if perf_enabled() and m <= _SCALAR_MAX_M:
        lo = bp.searchsorted(targets, side="right") - 1
        return _relaxed_split_scalar(bp, m, total, lo.tolist(), L)
    lo = np.searchsorted(bp, targets, side="right") - 1
    cuts = np.concatenate([np.clip(lo, 1, L - 1), np.clip(lo + 1, 1, L - 1)])
    jj = np.concatenate([j, j])
    # the relaxed node score is an estimate by construction: vectorized
    # float scoring is the documented exemption (module docstring); the
    # partition loads themselves stay exact int64
    l1 = bp[cuts].astype(np.float64)  # repro-lint: disable=RPL003
    val = np.maximum(l1 / jj, (total - l1) / (m - jj))  # repro-lint: disable=RPL003
    v = float(val.min())  # repro-lint: disable=RPL003 — reporting boundary
    # The relaxed node score is blind to discretization error deeper in the
    # tree, so many (cut, j) pairs score within noise of each other; among
    # splits within 0.1% of the best score, prefer the most balanced
    # processor split — unbalanced chains deepen the tree and accumulate
    # rounding error (measured in benchmarks/bench_ablation_hier.py).
    near = val <= v * (1.0 + 1e-3) + 1e-9
    bal = np.where(near, np.minimum(jj, m - jj), -1)
    k = int(np.argmax(bal))
    return (int(cuts[k]), int(jj[k]), float(val[k]))  # repro-lint: disable=RPL003


def best_relaxed_split_win(
    p: np.ndarray, j0: int, j1: int, m: int
) -> tuple[int, int, float] | None:
    """Windowed twin of :func:`best_relaxed_split` on an un-rebased projection.

    Same shifting argument as :func:`best_weighted_cut_win`: the rebased
    band is ``p[j0:j1+1] - base``, integer searchsorted targets shift by
    ``base`` exactly, and the float scores are computed from the *same*
    integers (``l1 = view[cut] - base``), so the chosen ``(cut, j, value)``
    is bit-identical to rebasing first — without the per-node band copy.
    """
    L = j1 - j0
    if L < 2 or m < 2:
        return None
    if _OPS:
        bump("cut_calls")
    base = int(p[j0])
    total = int(p[j1]) - base
    view = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    if m == 2:
        # a bipartition node — j = 1 is the only split, and roughly half the
        # nodes of any recursion tree look like this: pure scalar, no numpy
        # temporaries.  Same candidate order and float scores as the
        # vectorized path (j/1 division and (m-j) = 1 division are exact).
        c = int(view.searchsorted(base + total // 2, side="right")) - 1
        ca = 1 if c < 1 else (L - 1 if c > L - 1 else c)
        cb = c + 1
        cb = 1 if cb < 1 else (L - 1 if cb > L - 1 else cb)
        la = float(int(view[ca]) - base)  # repro-lint: disable=RPL003 — relaxed score
        lb = float(int(view[cb]) - base)  # repro-lint: disable=RPL003
        va = la if la > total - la else total - la
        vb = lb if lb > total - lb else total - lb
        v = va if va < vb else vb
        # both candidates tie on processor balance, so argmax keeps the first
        # candidate within the near-tie threshold
        if va <= v * (1.0 + 1e-3) + 1e-9:
            return (ca, 1, va)
        return (cb, 1, vb)
    j = _split_indices(m)
    targets = base + (total * j) // m  # exact shifted integer balance targets
    lo = view.searchsorted(targets, side="right") - 1
    if m <= _SCALAR_MAX_M:
        return _relaxed_split_scalar(view, m, total, lo.tolist(), L, base=base)
    cuts = np.concatenate([np.clip(lo, 1, L - 1), np.clip(lo + 1, 1, L - 1)])
    jj = np.concatenate([j, j])
    # identical integers → identical floats → identical scores (see
    # best_relaxed_split for the documented RPL003 exemption)
    l1 = (view[cuts] - base).astype(np.float64)  # repro-lint: disable=RPL003
    val = np.maximum(l1 / jj, (total - l1) / (m - jj))  # repro-lint: disable=RPL003
    v = float(val.min())  # repro-lint: disable=RPL003 — reporting boundary
    near = val <= v * (1.0 + 1e-3) + 1e-9
    bal = np.where(near, np.minimum(jj, m - jj), -1)
    k = int(np.argmax(bal))
    return (int(cuts[k]), int(jj[k]), float(val[k]))  # repro-lint: disable=RPL003


def _relaxed_split_scalar(
    bp: np.ndarray, m: int, total: int, lo: list, L: int, *, base: int = 0
) -> tuple[int, int, float]:
    """Scalar twin of the vectorized relaxed split for small ``m``.

    Below ~32 splits the per-call overhead of clip/concatenate/where
    dominates the vectorized path; most nodes of a recursion tree are deep
    and small, so this is the common case.  Candidates are enumerated in
    the exact array order of the vectorized path (all ``lo`` cuts, then all
    ``lo + 1`` cuts) with the same float arithmetic and the same
    first-occurrence argmax tie-breaking, so the chosen split is
    bit-identical.
    """
    n = m - 1
    vals: list = []
    v = None
    for off in (0, 1):
        for idx in range(n):
            jv = idx + 1
            cut = lo[idx] + off
            if cut < 1:
                cut = 1
            elif cut > L - 1:
                cut = L - 1
            l1 = float(int(bp[cut]) - base)  # repro-lint: disable=RPL003 — relaxed score
            a = l1 / jv  # repro-lint: disable=RPL003
            b = (total - l1) / (m - jv)  # repro-lint: disable=RPL003
            if b > a:
                a = b
            vals.append(a)
            if v is None or a < v:
                v = a
    thr = v * (1.0 + 1e-3) + 1e-9
    best_bal = -1
    best_i = 0
    for i, val in enumerate(vals):
        if val <= thr:
            jv = i % n + 1
            bal = jv if jv <= m - jv else m - jv
            if bal > best_bal:
                best_bal, best_i = bal, i
    jv = best_i % n + 1
    cut = lo[best_i % n] + (1 if best_i >= n else 0)
    if cut < 1:
        cut = 1
    elif cut > L - 1:
        cut = L - 1
    return (cut, jv, vals[best_i])
