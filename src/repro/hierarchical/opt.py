"""HIER-OPT: the optimal hierarchical bipartition dynamic program (§3.3).

Evaluates ``Lmax(x1, x2, y1, y2, m)`` over every sub-rectangle and processor
split, exactly as Equations (1)–(5) of the paper.  For a fixed orientation
and processor split the two recursive terms are monotone in the cut (adding
cells never lowers a sub-problem's optimum), so the inner minimization over
the cut uses a binary search — the paper's
``O(n1² n2² m² log(max(n1, n2)))`` refinement.

Even so, the paper notes the complexity "is too high to be useful in
practice for real sized systems" and does not run it in the evaluation; we
implement it as a *test oracle* for HIER-RB/HIER-RELAXED (they can never
beat it; property-tested on small matrices) and guard against accidental
large runs.
"""

from __future__ import annotations

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, prefix_2d
from ..core.rectangle import Rect
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump
from .tree import HierNode, tree_to_partition

__all__ = ["hier_opt", "hier_opt_bottleneck"]

_INF = float("inf")


class _HierDP:
    def __init__(self, pref, m: int, limit: int):
        cost = pref.n1 * pref.n1 * pref.n2 * pref.n2 * m
        if cost > limit:
            raise ParameterError(
                f"instance too large for HIER-OPT (n1²·n2²·m = {cost} > {limit}); "
                "this DP is a small-instance oracle (paper §3.3)"
            )
        self.pref = pref
        self.m = m
        self._memo: dict = {}

    def solve(self, r0: int, r1: int, c0: int, c1: int, m: int) -> int:
        return self._solve(r0, r1, c0, c1, m)

    # value of the best cut at a fixed dim and processor split, by binary
    # search over the cut (both terms monotone in the cut position)
    def _best_cut(self, r0, r1, c0, c1, dim, j, m) -> tuple[int, int]:
        if _OPS:
            bump("cut_calls")
        if dim == 0:
            lo, hi = r0 + 1, r1 - 1
        else:
            lo, hi = c0 + 1, c1 - 1
        solve = self._solve

        def parts(x):
            if dim == 0:
                return solve(r0, x, c0, c1, j), solve(x, r1, c0, c1, m - j)
            return solve(r0, r1, c0, x, j), solve(r0, r1, x, c1, m - j)

        while lo < hi:
            mid = (lo + hi) // 2
            a, b = parts(mid)
            if a < b:
                lo = mid + 1
            elif a > b:
                hi = mid
            else:
                lo = hi = mid
        a, b = parts(lo)
        best_x, best_v = lo, max(a, b)
        # the discrete crossing can be off by one; check the neighbour
        if lo - 1 >= (r0 + 1 if dim == 0 else c0 + 1):
            a, b = parts(lo - 1)
            if max(a, b) < best_v:
                best_x, best_v = lo - 1, max(a, b)
        return best_x, best_v

    def _solve(self, r0, r1, c0, c1, m) -> int:
        key = (r0, r1, c0, c1, m)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if m == 1 or (r1 - r0) * (c1 - c0) <= 1:
            v = self.pref.load(r0, r1, c0, c1)
        else:
            v = None
            for j in range(1, m):
                if r1 - r0 >= 2:
                    _, val = self._best_cut(r0, r1, c0, c1, 0, j, m)
                    v = val if v is None else min(v, val)
                if c1 - c0 >= 2:
                    _, val = self._best_cut(r0, r1, c0, c1, 1, j, m)
                    v = val if v is None else min(v, val)
            if v is None:  # un-cuttable rectangle with several processors
                v = self.pref.load(r0, r1, c0, c1)
        self._memo[key] = v
        return v

    def run(self) -> int:
        return self._solve(0, self.pref.n1, 0, self.pref.n2, self.m)

    # ------------------------------------------------------------------
    def build_tree(self, r0, r1, c0, c1, m) -> HierNode:
        rect = Rect(r0, r1, c0, c1)
        node = HierNode(rect=rect, procs=m)
        if m == 1 or rect.area <= 1:
            return node
        target = self._solve(r0, r1, c0, c1, m)
        for j in range(1, m):
            for dim in (0, 1):
                if (dim == 0 and r1 - r0 < 2) or (dim == 1 and c1 - c0 < 2):
                    continue
                x, val = self._best_cut(r0, r1, c0, c1, dim, j, m)
                if val == target:
                    node.dim, node.cut = dim, x
                    if dim == 0:
                        node.left = self.build_tree(r0, x, c0, c1, j)
                        node.right = self.build_tree(x, r1, c0, c1, m - j)
                    else:
                        node.left = self.build_tree(r0, r1, c0, x, j)
                        node.right = self.build_tree(r0, r1, x, c1, m - j)
                    return node
        return node  # un-cuttable: keep as leaf (idle processors)


def hier_opt_bottleneck(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> int:
    """Optimal hierarchical bottleneck (small instances only)."""
    pref = prefix_2d(A)
    dp = _HierDP(pref, m, limit)
    return dp.run()


def hier_opt(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> Partition:
    """Optimal hierarchical bipartition (paper §3.3; small instances only)."""
    if m <= 0:
        raise ParameterError("m must be positive")
    pref = prefix_2d(A)
    dp = _HierDP(pref, m, limit)
    dp.run()
    root = dp.build_tree(0, pref.n1, 0, pref.n2, m)
    return tree_to_partition(root, pref, "HIER-OPT", m)
