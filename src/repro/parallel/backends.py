"""Parent-side dispatch hooks the algorithms call before their serial loops.

Each hook returns ``None`` when the parallel layer should stay out of the
way — layer disabled, one worker, instance under the work-size threshold,
or pool unavailable — and the caller falls through to its serial reference
loop.  When a hook does engage, it ships the independent units the paper's
structure exposes (per-stripe 1D partitions for the jagged family, §3.2;
independent subtrees for the hierarchical family, §3.3) to the worker pool
and reassembles results in deterministic order, merging worker op-counter
snapshots into the parent's open contexts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

import numpy as np

from ..core.prefix import PrefixSum2D
from ..perf.counters import counting
from .config import min_parallel_cells
from .pool import _merge_ops, get_pool, pool_workers
from .shm import export_prefix
from .worker import hetero_stripe_chunk, hier_subtree, split_jobs, stripe_chunk

__all__ = [
    "parallel_stripe_cuts",
    "parallel_hetero_stripe_cuts",
    "parallel_grow_tree",
]


def _engaged_pool(pref: PrefixSum2D, units: int):
    """Shared dispatch gate: enough work, big enough instance, live pool."""
    if units < 2 or pref.n1 * pref.n2 < min_parallel_cells():
        return None
    return get_pool()


def parallel_stripe_cuts(
    pref: PrefixSum2D,
    stripe_cuts: np.ndarray,
    counts: Sequence[int],
    oned: str,
) -> list[np.ndarray] | None:
    """Fan the per-stripe 1D solves of JAG-PQ-HEUR / JAG-M-HEUR phase 2 out.

    ``counts[s]`` is stripe ``s``'s processor count.  Returns the per-stripe
    cut arrays in stripe order, or ``None`` when the serial loop should run.
    """
    P = len(stripe_cuts) - 1
    pool = _engaged_pool(pref, P)
    if pool is None:
        return None
    handle = export_prefix(pref)
    jobs = [
        (int(stripe_cuts[s]), int(stripe_cuts[s + 1]), int(counts[s])) for s in range(P)
    ]
    count_ops = counting()
    payloads = [
        (handle, oned, chunk, count_ops)
        for chunk in split_jobs(jobs, 2 * pool_workers())
    ]
    cuts: list[np.ndarray] = []
    for chunk_cuts, ops in pool.map(stripe_chunk, payloads):
        cuts.extend(chunk_cuts)
        _merge_ops(ops)
    return cuts


def parallel_hetero_stripe_cuts(
    pref: PrefixSum2D,
    stripe_cuts: np.ndarray,
    group_speeds: Sequence[np.ndarray],
) -> list[np.ndarray] | None:
    """Heterogeneous twin: per-stripe makespan solves of JAG-HETERO phase 3."""
    P = len(stripe_cuts) - 1
    pool = _engaged_pool(pref, P)
    if pool is None:
        return None
    handle = export_prefix(pref)
    jobs = [
        (int(stripe_cuts[s]), int(stripe_cuts[s + 1]), np.asarray(group_speeds[s]))
        for s in range(P)
    ]
    count_ops = counting()
    payloads = [
        (handle, chunk, count_ops) for chunk in split_jobs(jobs, 2 * pool_workers())
    ]
    cuts: list[np.ndarray] = []
    for chunk_cuts, ops in pool.map(hetero_stripe_chunk, payloads):
        cuts.extend(chunk_cuts)
        _merge_ops(ops)
    return cuts


def parallel_grow_tree(pref: PrefixSum2D, m: int, algo: str, variant: str) -> Any | None:
    """Task-parallel HIER-RB / HIER-RELAXED tree growth, or ``None``.

    The top levels are expanded in-process with the serial chooser until the
    frontier holds enough independent subtrees to feed the pool; each
    frontier node ``(rect, procs, depth)`` is then grown to completion in a
    worker and spliced back.  Every cut decision depends only on
    ``(rect, procs, depth)`` and Γ, so the result is bit-identical to the
    serial recursion.
    """
    pool = _engaged_pool(pref, m // 2)
    if pool is None:
        return None
    from ..core.rectangle import Rect
    from ..hierarchical.tree import HierNode
    from .worker import _chooser

    chooser = _chooser(algo, variant)
    root = HierNode(rect=Rect(0, pref.n1, 0, pref.n2), procs=m)
    target = 2 * pool_workers()
    pending: deque[tuple[HierNode, int]] = deque([(root, 0)])
    while pending and len(pending) < target:
        node, depth = pending.popleft()
        if node.procs == 1 or node.rect.area <= 1:
            continue  # final leaf
        choice = chooser(pref, node.rect, node.procs, depth)
        if choice is None:
            continue  # un-cuttable: stays a leaf, same as serial
        dim, cut_abs, wl, wr = choice
        r = node.rect
        if dim == 0:
            lrect = Rect(r.r0, cut_abs, r.c0, r.c1)
            rrect = Rect(cut_abs, r.r1, r.c0, r.c1)
        else:
            lrect = Rect(r.r0, r.r1, r.c0, cut_abs)
            rrect = Rect(r.r0, r.r1, cut_abs, r.c1)
        node.dim, node.cut = dim, cut_abs
        node.left = HierNode(rect=lrect, procs=wl)
        node.right = HierNode(rect=rrect, procs=wr)
        # left appended first: deterministic frontier order (not required for
        # identity — each subtree is independent — but keeps runs comparable)
        pending.append((node.left, depth + 1))
        pending.append((node.right, depth + 1))
    frontier = list(pending)
    if not frontier:
        return root  # the whole tree fit in the serial warm-up
    handle = export_prefix(pref)
    count_ops = counting()
    payloads = [
        (handle, algo, variant, (n.rect.r0, n.rect.r1, n.rect.c0, n.rect.c1), n.procs, d, count_ops)
        for n, d in frontier
    ]
    for (node, _), (sub, ops) in zip(frontier, pool.map(hier_subtree, payloads)):
        node.dim, node.cut = sub.dim, sub.cut
        node.left, node.right = sub.left, sub.right
        _merge_ops(ops)
    return root
