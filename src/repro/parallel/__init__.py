"""Shared-memory multicore execution layer (see ``docs/performance.md``).

Once stripe boundaries are fixed, each jagged stripe's 1D partition is
independent (paper §3.2), and every hierarchical subtree is independent
(§3.3) — embarrassingly parallel inner structure this package exploits with
a persistent spawn-safe process pool:

* :mod:`repro.parallel.config` — the ``REPRO_PARALLEL`` /
  ``REPRO_PARALLEL_WORKERS`` switches and the work-size threshold; like the
  perf layer, dispatch keeps the serial reference path alive and
  **bit-identity with serial is the enforced contract**.
* :mod:`repro.parallel.shm` — zero-copy export/attach of
  :class:`~repro.core.prefix.PrefixSum2D` over
  ``multiprocessing.shared_memory``, with a refcounted lifecycle and
  guaranteed unlink on pool shutdown or crash.
* :mod:`repro.parallel.pool` — the lazily-created persistent worker pool
  plus :func:`~repro.parallel.pool.pmap`, an order-preserving map with a
  serial fallback, and :func:`~repro.parallel.pool.pmap_batched`, its
  chunk-shipping variant that amortizes the per-task round trip (what the
  experiment harness schedules whole sweep grids through).
* :mod:`repro.parallel.backends` / :mod:`repro.parallel.worker` — the
  per-algorithm dispatch hooks (stripe-parallel jagged phase 2,
  subtree-parallel hierarchical growth) and their worker-side twins.
"""

from .config import (
    effective_workers,
    min_parallel_cells,
    parallel_enabled,
    set_parallel_enabled,
    use_parallel,
    worker_count,
)
from .pool import get_pool, pmap, pmap_batched, pool_workers, shutdown_pool
from .shm import (
    PrefixHandle,
    SparsePrefixHandle,
    attach_prefix,
    export_prefix,
    live_segments,
    release_all,
)

__all__ = [
    "PrefixHandle",
    "SparsePrefixHandle",
    "attach_prefix",
    "effective_workers",
    "export_prefix",
    "get_pool",
    "live_segments",
    "min_parallel_cells",
    "parallel_enabled",
    "pmap",
    "pmap_batched",
    "pool_workers",
    "release_all",
    "set_parallel_enabled",
    "shutdown_pool",
    "use_parallel",
    "worker_count",
]
