"""Task functions executed inside pool workers.

Every function here is top-level (picklable by reference), takes one payload
tuple, and runs *exactly* the code the serial path would have run against a
:func:`~repro.parallel.shm.attach_prefix`-mapped prefix — the parallel layer
adds scheduling, never arithmetic.  Payloads carry a ``count_ops`` flag;
when set, the task runs under :func:`~repro.perf.counters.op_counters` and
returns the snapshot so the parent can merge it into its own open contexts
(see ``backends._merge_ops``).

Heavy sibling packages (``repro.hierarchical``) are imported lazily inside
the task bodies: ``repro.hierarchical`` imports ``repro.parallel.backends``
for its dispatch hook, and backends imports this module, so a module-level
import here would be circular.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Sequence

import numpy as np

from ..oned.api import ONED_METHODS
from ..oned.hetero import hetero_cuts, hetero_makespan
from ..perf.counters import OpCounters, op_counters
from .shm import PrefixHandle, attach_prefix

__all__ = ["stripe_chunk", "hetero_stripe_chunk", "hier_subtree"]


def _ops_context(count_ops: bool):
    return op_counters() if count_ops else nullcontext(None)


def stripe_chunk(
    payload: tuple[PrefixHandle, str, tuple[tuple[int, int, int], ...], bool],
) -> tuple[list[np.ndarray], OpCounters | None]:
    """Solve a chunk of per-stripe 1D partitions: ``(lo, hi, q)`` triples.

    Mirrors the serial loop of JAG-PQ-HEUR / JAG-M-HEUR phase 2: project the
    stripe band onto the auxiliary dimension and cut it into ``q`` intervals
    with the named optimal 1D method.
    """
    handle, oned, jobs, count_ops = payload
    pref = attach_prefix(handle)
    solve = ONED_METHODS[oned]
    with _ops_context(count_ops) as ops:
        cuts = []
        for lo, hi, q in jobs:
            band = pref.axis_prefix(1, lo, hi)
            _, cc = solve(band, q)
            cuts.append(cc)
    return cuts, ops


def hetero_stripe_chunk(
    payload: tuple[PrefixHandle, tuple[tuple[int, int, Any], ...], bool],
) -> tuple[list[np.ndarray], OpCounters | None]:
    """Heterogeneous twin of :func:`stripe_chunk`: ``(lo, hi, speeds)`` triples.

    Runs the same makespan bisection + probe rebuild as the serial loop of
    :func:`repro.jagged.hetero.jag_hetero` phase 3.
    """
    handle, jobs, count_ops = payload
    pref = attach_prefix(handle)
    with _ops_context(count_ops) as ops:
        cuts = []
        for lo, hi, speeds in jobs:
            band = pref.axis_prefix(1, lo, hi)
            gs = np.asarray(speeds, dtype=np.float64)  # repro-lint: disable=RPL003 — heterogeneous speeds are fractional by design
            Ts = hetero_makespan(band, gs)
            cc = hetero_cuts(band, gs, Ts * (1 + 1e-12) + 1e-9)
            assert cc is not None
            cuts.append(cc)
    return cuts, ops


def hier_subtree(
    payload: tuple[PrefixHandle, str, str, tuple[int, int, int, int], int, int, bool],
) -> tuple[Any, OpCounters | None]:
    """Fully grow one hierarchical subtree from a frontier node.

    ``algo`` is ``"rb"`` or ``"relaxed"``; the chooser is rebuilt in the
    worker from ``(algo, variant)`` so the subtree's cut decisions are the
    ones the serial recursion would have made at the same ``(rect, procs,
    depth)`` — depth is passed through because the HOR/VER variants
    alternate dimensions by level.
    """
    handle, algo, variant, rect_tuple, procs, depth, count_ops = payload
    from ..core.rectangle import Rect
    from ..hierarchical.tree import HierNode, grow_tree

    pref = attach_prefix(handle)
    chooser = _chooser(algo, variant)
    root = HierNode(rect=Rect(*rect_tuple), procs=procs)
    with _ops_context(count_ops) as ops:
        grow_tree(pref, procs, chooser, root=root, depth0=depth)
    return root, ops


def _chooser(algo: str, variant: str):
    """Resolve ``(algo, variant)`` to the serial chooser implementation."""
    if algo == "rb":
        from ..hierarchical.rb import _rb_chooser

        return _rb_chooser(variant)
    if algo == "relaxed":
        from ..hierarchical.relaxed import _relaxed_chooser

        return _relaxed_chooser(variant)
    raise ValueError(f"unknown hierarchical algo {algo!r}")


def split_jobs(
    jobs: Sequence[Any], parts: int
) -> list[tuple[Any, ...]]:
    """Contiguous, order-preserving chunking of a job list (parent side).

    Lives here (not in ``pool``) so the chunk layout used by dispatch and
    expected by the task functions is defined in one place.
    """
    n = len(jobs)
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        if size:
            out.append(tuple(jobs[start : start + size]))
        start += size
    return out
