"""Switches and sizing knobs for the multicore execution layer.

The parallel layer follows the ``repro.perf`` playbook (see
``docs/performance.md``): every parallel code path dispatches on
:func:`parallel_enabled` and keeps the straight-line serial implementation
alive next to it, and **bit-identity with the serial path is the enforced
contract** — same cuts, same rectangles, same op counts, merely computed on
more cores.  ``tests/test_parallel_equality.py`` enforces the contract
property-test-style and ``benchmarks/perf_regress.py --parallel`` re-asserts
it on every timed run.

Unlike the perf layer the parallel layer is **off by default**: spawning a
process pool is a visible side effect (worker processes, shared-memory
segments) that library code should not trigger implicitly.  Turn it on with
``REPRO_PARALLEL=1`` in the environment, ``repro-experiments --jobs N``, or
the scoped :func:`use_parallel` context manager.

Environment knobs:

``REPRO_PARALLEL``
    Truthy values (anything but ``0/false/off/no``) enable the layer.
``REPRO_PARALLEL_WORKERS``
    Worker-process count (default: ``os.cpu_count()``).  A pool of one
    worker is never spawned — dispatch short-circuits to the serial path.
    On a single-CPU machine dispatch short-circuits the same way whatever
    the configured count: pool round trips cannot buy parallelism there
    (``force=True`` on :func:`use_parallel` overrides, for tests that
    exercise the pool machinery itself).
``REPRO_PARALLEL_MIN_CELLS``
    Work-size threshold: instances with fewer load-matrix cells than this
    stay serial (default ``131072`` = 362², see the measured crossovers in
    ``docs/performance.md``).  Set to ``0`` to force dispatch (tests and the
    bench harness do).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "parallel_enabled",
    "set_parallel_enabled",
    "use_parallel",
    "worker_count",
    "min_parallel_cells",
    "effective_workers",
]


def _env_truthy(raw: str) -> bool:
    return raw.strip().lower() not in {"0", "false", "off", "no", ""}


_ENABLED: bool = _env_truthy(os.environ.get("REPRO_PARALLEL", "0"))

#: runtime override of the worker count; ``None`` defers to the environment
_WORKERS: int | None = None

#: when set, the single-CPU serial short-circuit is bypassed — the pool is
#: spawned even where it cannot win (bit-identity tests need the machinery)
_FORCE_POOL: bool = False

#: cached "this machine has >1 CPU" bit.  ``os.cpu_count()`` is a ~2 µs
#: syscall-backed call and :func:`effective_workers` sits on every dispatch
#: gate, so the check is sampled here at import and re-sampled on every
#: :func:`set_parallel_enabled` — which is how the pin tests that
#: monkeypatch ``os.cpu_count`` (always before entering ``use_parallel``)
#: still see the short-circuit react
_MULTI_CPU: bool = (os.cpu_count() or 1) >= 2

#: default work-size threshold (load-matrix cells) below which stripe and
#: subtree dispatch stays serial; chosen from the measured pool round-trip
#: cost (~1 ms/task) against per-stripe 1D solve times — see
#: docs/performance.md "Parallel execution" for the measurements.
_DEFAULT_MIN_CELLS = 131_072


def parallel_enabled() -> bool:
    """True when the multicore layer is active (default: off)."""
    return _ENABLED


def set_parallel_enabled(
    on: bool, *, workers: int | None = None, force: bool | None = None
) -> tuple[bool, int | None, bool]:
    """Set the global switch (and optionally the worker count / force flag).

    ``force=True`` bypasses the single-CPU serial short-circuit of
    :func:`effective_workers`.  Returns the previous
    ``(enabled, workers_override, force)`` triple so callers can restore it;
    prefer the scoped :func:`use_parallel`.
    """
    global _ENABLED, _WORKERS, _FORCE_POOL, _MULTI_CPU
    prev = (_ENABLED, _WORKERS, _FORCE_POOL)
    _ENABLED = bool(on)
    if workers is not None:
        _WORKERS = max(1, int(workers))
    if force is not None:
        _FORCE_POOL = bool(force)
    _MULTI_CPU = (os.cpu_count() or 1) >= 2
    return prev


@contextmanager
def use_parallel(
    on: bool, *, workers: int | None = None, force: bool = False
) -> Iterator[None]:
    """Context manager scoping the switch (used by tests, benches, the CLI)."""
    global _ENABLED, _WORKERS, _FORCE_POOL, _MULTI_CPU
    prev = set_parallel_enabled(on, workers=workers, force=force)
    try:
        yield
    finally:
        _ENABLED, _WORKERS, _FORCE_POOL = prev
        _MULTI_CPU = (os.cpu_count() or 1) >= 2


def worker_count() -> int:
    """Configured worker-process count (override > env > ``os.cpu_count()``)."""
    if _WORKERS is not None:
        return _WORKERS
    raw = os.environ.get("REPRO_PARALLEL_WORKERS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def min_parallel_cells() -> int:
    """Work-size threshold in load-matrix cells (``REPRO_PARALLEL_MIN_CELLS``)."""
    raw = os.environ.get("REPRO_PARALLEL_MIN_CELLS", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return _DEFAULT_MIN_CELLS


def effective_workers() -> int:
    """Workers the dispatch layer will actually use: 0 when the layer is off.

    A configured pool of one worker reports 0 as well — running every task
    through a single worker process would cost the round trips and buy
    nothing, so one-worker configurations *are* the serial path (enforced by
    ``tests/test_parallel_equality.py``).  The same reasoning short-circuits
    any configuration on a single-CPU machine: worker processes would
    time-slice one core while paying spawn and pickle round trips, so
    dispatch stays serial there unless ``force=True`` was requested (tests
    that exercise the pool machinery itself).
    """
    if not _ENABLED:
        return 0
    if not _FORCE_POOL and not _MULTI_CPU:
        return 0
    w = worker_count()
    return w if w >= 2 else 0
