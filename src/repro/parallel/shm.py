"""Zero-copy sharing of :class:`~repro.core.prefix.PrefixSum2D` across processes.

The paper's algorithms never touch the load matrix after the prefix array Γ
is built — every probe is an O(1) int64 read (§2.1).  That makes Γ the one
large, immutable input of every worker task, and pickling it per task would
dwarf the work being shipped.  Instead the parent exports Γ once into a
``multiprocessing.shared_memory`` segment; workers attach a *read-only*
ndarray view over the same physical pages and rebuild a ``PrefixSum2D``
around it with ``is_prefix=True`` — bit-identical queries, zero copies.

Lifecycle (the part that must not leak):

* One segment per exported ``PrefixSum2D`` object, created on first
  :func:`export_prefix` and reused by later calls for the same object.
* The segment is unlinked when the owning prefix is garbage-collected
  (``weakref.finalize``), when :func:`release_all` runs (pool shutdown), or
  at interpreter exit (``atexit``) — whichever comes first.  Unlinking is
  idempotent.
* Workers attach but never unlink; the attach suppresses resource-tracker
  registration (CPython < 3.13 tracks attachments too, bpo-39959, and the
  tracker process is shared with the parent — see :func:`_attach_untracked`).

``tests/test_parallel_equality.py`` scans ``/dev/shm`` for the
``repro-pool-`` name prefix to prove nothing survives normal shutdown *or*
a worker crash.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import NamedTuple

import numpy as np

from ..core.prefix import PrefixSum2D

__all__ = ["PrefixHandle", "export_prefix", "attach_prefix", "release_all", "live_segments"]

#: every segment this module creates carries this name prefix, so tests (and
#: operators) can audit ``/dev/shm`` for leaks attributable to this layer
SEGMENT_PREFIX = "repro-pool-"

_SEQ = itertools.count()

#: parent side: id(pref) -> (segment name, finalizer); the finalizer owns the
#: actual unlink and is reused by release_all/atexit so unlink happens once
_EXPORTS: dict[int, tuple[str, weakref.finalize]] = {}

#: parent side: segment name -> SharedMemory (kept open while exported)
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}

#: worker side: segment name -> (SharedMemory, attached PrefixSum2D); cached
#: so repeated tasks against the same instance reuse one mapping (and one
#: projection cache)
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, PrefixSum2D]] = {}


class PrefixHandle(NamedTuple):
    """Small picklable reference to an exported prefix segment."""

    name: str
    shape: tuple[int, int]  #: Γ's shape ``(n1+1, n2+1)``, dtype always int64


def _unlink_segment(name: str) -> None:
    """Close and unlink one exported segment; idempotent, crash-safe."""
    seg = _SEGMENTS.pop(name, None)
    if seg is None:
        return
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # already gone (e.g. external cleanup)
        pass


def export_prefix(pref: PrefixSum2D) -> PrefixHandle:
    """Export ``pref``'s Γ into shared memory; repeated calls reuse the segment.

    The segment lives until the prefix object is garbage-collected or
    :func:`release_all` runs.
    """
    key = id(pref)
    entry = _EXPORTS.get(key)
    if entry is not None and entry[1].alive:
        return PrefixHandle(entry[0], pref.G.shape)
    name = f"{SEGMENT_PREFIX}{os.getpid()}-{next(_SEQ)}-{secrets.token_hex(2)}"  # repro-lint: disable=RPL010 — entropy names the segment only; partition results never depend on it
    seg = shared_memory.SharedMemory(name=name, create=True, size=pref.G.nbytes)
    try:
        view = np.ndarray(pref.G.shape, dtype=np.int64, buffer=seg.buf)
        view[:] = pref.G
    except BaseException:
        # the segment is a kernel object: if the copy dies before the
        # registration below, nothing would ever unlink it
        seg.close()
        seg.unlink()
        raise
    _SEGMENTS[name] = seg
    fin = weakref.finalize(pref, _unlink_segment, name)
    fin.atexit = False  # release_all's atexit hook covers interpreter exit
    _EXPORTS[key] = (name, fin)
    return PrefixHandle(name, pref.G.shape)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it as ours.

    CPython < 3.13 registers *attachments* with the resource tracker as if
    the attaching process owned them (bpo-39959).  Spawned workers share the
    parent's tracker process, so unregistering after the fact would remove
    the parent's own registration (and the parent's later unlink would log a
    tracker ``KeyError``); instead the register call is suppressed for the
    duration of the attach.
    """
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    try:
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def attach_prefix(handle: PrefixHandle) -> PrefixSum2D:
    """Worker side: map the exported Γ and wrap it in a ``PrefixSum2D``.

    The returned prefix is backed directly by the shared pages (read-only);
    attachments are cached per segment for the worker's lifetime.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    seg = _attach_untracked(handle.name)
    G = np.ndarray(handle.shape, dtype=np.int64, buffer=seg.buf)
    G.flags.writeable = False
    pref = PrefixSum2D(G, is_prefix=True)
    _ATTACHED[handle.name] = (seg, pref)
    return pref


def release_all() -> None:
    """Unlink every live export (pool shutdown / interpreter exit path)."""
    for key, (name, fin) in list(_EXPORTS.items()):
        fin.detach()  # the prefix may still be alive; unlink explicitly
        _unlink_segment(name)
        _EXPORTS.pop(key, None)


def live_segments() -> list[str]:
    """Names of segments this process currently keeps exported (for tests)."""
    return sorted(_SEGMENTS)


atexit.register(release_all)
