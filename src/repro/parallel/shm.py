"""Zero-copy sharing of load substrates across processes.

The paper's algorithms never touch the load matrix after the prefix
substrate is built — every probe is an O(1) int64 read (§2.1).  That makes
the substrate the one large, immutable input of every worker task, and
pickling it per task would dwarf the work being shipped.  Instead the
parent exports it once into ``multiprocessing.shared_memory``; workers
attach *read-only* ndarray views over the same physical pages and rebuild
the substrate around them — bit-identical queries, zero copies.

Two substrate kinds ship differently:

* :class:`~repro.core.prefix.PrefixSum2D` exports Γ as one segment; workers
  wrap it with ``is_prefix=True``.
* :class:`~repro.core.sparse.SparsePrefix2D` exports its three canonical
  CSR arrays (``indptr``, ``cols``, ``vals``) as three segments; workers
  rebuild the derived prefixes locally in O(nnz) via ``_from_csr`` — still
  no O(n1·n2) allocation anywhere.

Lifecycle (the part that must not leak):

* One segment group per exported substrate object, created on first
  :func:`export_prefix` and reused by later calls for the same object.
* Segments are unlinked when the owning substrate is garbage-collected
  (``weakref.finalize``), when :func:`release_all` runs (pool shutdown), or
  at interpreter exit (``atexit``) — whichever comes first.  Unlinking is
  idempotent.
* Workers attach but never unlink; the attach suppresses resource-tracker
  registration (CPython < 3.13 tracks attachments too, bpo-39959, and the
  tracker process is shared with the parent — see :func:`_attach_untracked`).

``tests/test_parallel_equality.py`` scans ``/dev/shm`` for the
``repro-pool-`` name prefix to prove nothing survives normal shutdown *or*
a worker crash.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import NamedTuple, Union

import numpy as np

from ..core.prefix import PrefixSum2D
from ..core.sparse import SparsePrefix2D

__all__ = [
    "PrefixHandle",
    "SparsePrefixHandle",
    "export_prefix",
    "attach_prefix",
    "release_all",
    "live_segments",
]

#: every segment this module creates carries this name prefix, so tests (and
#: operators) can audit ``/dev/shm`` for leaks attributable to this layer
SEGMENT_PREFIX = "repro-pool-"

_SEQ = itertools.count()

#: parent side: id(pref) -> (segment names, finalizer, handle); the finalizer
#: owns the actual unlink and is reused by release_all/atexit so unlink
#: happens once per segment
_EXPORTS: dict[int, tuple[tuple[str, ...], weakref.finalize, "AnyHandle"]] = {}

#: parent side: segment name -> SharedMemory (kept open while exported)
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}

#: worker side: first segment name -> (open segments, attached substrate);
#: cached so repeated tasks against the same instance reuse one mapping (and
#: one projection cache)
_ATTACHED: dict[str, tuple[tuple[shared_memory.SharedMemory, ...], object]] = {}


class PrefixHandle(NamedTuple):
    """Small picklable reference to an exported dense-Γ segment."""

    name: str
    shape: tuple[int, int]  #: Γ's shape ``(n1+1, n2+1)``, dtype always int64


class SparsePrefixHandle(NamedTuple):
    """Picklable reference to the three CSR segments of a sparse substrate."""

    names: tuple[str, str, str]  #: indptr, cols, vals segment names
    shape: tuple[int, int]  #: logical matrix shape ``(n1, n2)``
    nnz: int  #: stored nonzeros (lengths of cols/vals), dtype always int64


AnyHandle = Union[PrefixHandle, SparsePrefixHandle]


def _unlink_segment(name: str) -> None:
    """Close and unlink one exported segment; idempotent, crash-safe."""
    seg = _SEGMENTS.pop(name, None)
    if seg is None:
        return
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # already gone (e.g. external cleanup)
        pass


def _unlink_many(names: tuple[str, ...]) -> None:
    """Unlink a whole segment group (the finalizer payload)."""
    for name in names:
        _unlink_segment(name)


def _export_array(arr: np.ndarray) -> str:
    """Copy one int64 array into a fresh named segment; returns its name.

    The caller owns failure handling *across* arrays of a group; within one
    array, a failed copy unlinks the just-created segment before the
    exception escapes (a kernel object with no registered cleanup would
    otherwise leak for the process lifetime).
    """
    name = f"{SEGMENT_PREFIX}{os.getpid()}-{next(_SEQ)}-{secrets.token_hex(2)}"  # repro-lint: disable=RPL010 — entropy names the segment only; partition results never depend on it
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, arr.nbytes))
    try:
        if arr.size:
            view = np.ndarray(arr.shape, dtype=np.int64, buffer=seg.buf)
            view[:] = arr
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    _SEGMENTS[name] = seg
    return name


def export_prefix(pref: Union[PrefixSum2D, SparsePrefix2D]) -> AnyHandle:
    """Export a substrate into shared memory; repeated calls reuse the segments.

    The segments live until the substrate object is garbage-collected or
    :func:`release_all` runs.
    """
    key = id(pref)
    entry = _EXPORTS.get(key)
    if entry is not None and entry[1].alive:
        return entry[2]
    if isinstance(pref, PrefixSum2D):
        names: tuple[str, ...] = (_export_array(pref.G),)
        handle: AnyHandle = PrefixHandle(names[0], pref.G.shape)
    else:
        done: list[str] = []
        try:
            for arr in (pref.indptr, pref.cols, pref.vals):
                done.append(_export_array(arr))
        except BaseException:
            _unlink_many(tuple(done))  # partial group: unlink what exists
            raise
        names = tuple(done)
        handle = SparsePrefixHandle(
            (names[0], names[1], names[2]), pref.shape, pref.nnz
        )
    fin = weakref.finalize(pref, _unlink_many, names)
    fin.atexit = False  # release_all's atexit hook covers interpreter exit
    _EXPORTS[key] = (names, fin, handle)
    return handle


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it as ours.

    CPython < 3.13 registers *attachments* with the resource tracker as if
    the attaching process owned them (bpo-39959).  Spawned workers share the
    parent's tracker process, so unregistering after the fact would remove
    the parent's own registration (and the parent's later unlink would log a
    tracker ``KeyError``); instead the register call is suppressed for the
    duration of the attach.
    """
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    try:
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def attach_prefix(handle: AnyHandle) -> Union[PrefixSum2D, SparsePrefix2D]:
    """Worker side: map the exported segments and rebuild the substrate.

    The returned substrate is backed directly by the shared pages
    (read-only); attachments are cached per segment group for the worker's
    lifetime.  Sparse attaches rebuild only the derived O(nnz) arrays
    locally — the three CSR arrays stay zero-copy.
    """
    first = handle.name if isinstance(handle, PrefixHandle) else handle.names[0]
    cached = _ATTACHED.get(first)
    if cached is not None:
        return cached[1]  # type: ignore[return-value]
    if isinstance(handle, PrefixHandle):
        seg = _attach_untracked(handle.name)
        G = np.ndarray(handle.shape, dtype=np.int64, buffer=seg.buf)
        G.flags.writeable = False
        pref: Union[PrefixSum2D, SparsePrefix2D] = PrefixSum2D(G, is_prefix=True)
        _ATTACHED[first] = ((seg,), pref)
        return pref
    n1, _n2 = handle.shape
    segs = tuple(_attach_untracked(name) for name in handle.names)
    indptr = np.ndarray(n1 + 1, dtype=np.int64, buffer=segs[0].buf)
    cols = np.ndarray(handle.nnz, dtype=np.int64, buffer=segs[1].buf)
    vals = np.ndarray(handle.nnz, dtype=np.int64, buffer=segs[2].buf)
    for arr in (indptr, cols, vals):
        arr.flags.writeable = False
    pref = SparsePrefix2D._from_csr(indptr, cols, vals, handle.shape)
    _ATTACHED[first] = (segs, pref)
    return pref


def release_all() -> None:
    """Unlink every live export (pool shutdown / interpreter exit path)."""
    for key, (names, fin, _handle) in list(_EXPORTS.items()):
        fin.detach()  # the substrate may still be alive; unlink explicitly
        _unlink_many(names)
        _EXPORTS.pop(key, None)


def live_segments() -> list[str]:
    """Names of segments this process currently keeps exported (for tests)."""
    return sorted(_SEGMENTS)


atexit.register(release_all)
