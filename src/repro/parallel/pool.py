"""Lazily-created persistent worker pool behind the parallel dispatch layer.

One spawn-context :class:`~concurrent.futures.ProcessPoolExecutor` per
process, created on first use and kept alive across calls (spawning costs
tens of milliseconds per worker; the figure sweeps dispatch thousands of
small task batches).  ``spawn`` rather than ``fork``: workers must not
inherit the parent's pool, open shared-memory maps, or perf-layer caches,
and spawn is the only start method that is safe on every platform the CI
matrix covers.

Workers are initialized with the parallel layer *disabled* (no nested
pools) and the parent's perf-layer switch mirrored, so a task executes
exactly the code path the parent would have executed serially — the
bit-identity contract's mechanical basis.

Crash safety: segments exported via :mod:`repro.parallel.shm` are unlinked
by :func:`shutdown_pool` and at interpreter exit; if the parent dies hard
(SIGKILL) its ``resource_tracker`` unlinks them — creation registers there.
A worker crash surfaces as :class:`~concurrent.futures.process.BrokenProcessPool`
in the parent, which discards the broken executor (a later dispatch spawns
a fresh one) and keeps the segments owned by the parent, so nothing leaks.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from multiprocessing import get_context
from typing import Any, Callable, Sequence, TypeVar

from ..perf.counters import OpCounters, counting, merge_snapshot, op_counters
from . import shm
from .config import effective_workers

__all__ = ["get_pool", "shutdown_pool", "pool_workers", "pmap", "pmap_batched"]

T = TypeVar("T")

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS: int = 0
#: set after a pool failed to start; dispatch stays serial for the process
_POOL_BROKEN_PERMANENTLY = False


def _worker_init(perf_on: bool, perf_backend: str) -> None:
    """Runs in each worker at spawn: no nested pools, mirror the perf layer."""
    os.environ["REPRO_PARALLEL"] = "0"
    from ..perf.config import set_perf_backend, set_perf_enabled
    from .config import set_parallel_enabled

    set_parallel_enabled(False)
    set_perf_enabled(perf_on)
    set_perf_backend(perf_backend)


def get_pool() -> ProcessPoolExecutor | None:
    """The shared executor sized to :func:`effective_workers`, or ``None``.

    Returns ``None`` when the layer is off, fewer than two workers are
    configured, or pool creation failed earlier in this process.  A change
    of the configured worker count replaces the pool.
    """
    global _POOL, _POOL_WORKERS, _POOL_BROKEN_PERMANENTLY
    workers = effective_workers()
    if workers == 0 or _POOL_BROKEN_PERMANENTLY:
        return None
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
    from ..perf.config import perf_backend, perf_enabled

    try:
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(perf_enabled(), perf_backend()),
        )
    except OSError:  # no process support in this environment: stay serial
        _POOL_BROKEN_PERMANENTLY = True
        return None
    _POOL_WORKERS = workers
    return _POOL


def pool_workers() -> int:
    """Worker count of the currently live pool (0 when no pool is alive)."""
    return _POOL_WORKERS if _POOL is not None else 0


def shutdown_pool(*, release_segments: bool = True) -> None:
    """Shut the pool down and (by default) unlink every exported segment."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0
    if release_segments:
        shm.release_all()


def _discard_broken_pool() -> None:
    """Drop a broken executor so the next dispatch spawns a fresh one."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def pmap(fn: Callable[[Any], T], items: Sequence[Any]) -> list[T]:
    """Ordered map over the pool, falling back to a serial loop.

    Results are returned in ``items`` order regardless of completion order,
    so reductions over them are bit-identical to the serial loop.  Worker
    exceptions propagate to the caller (after which the pool, if broken, is
    discarded rather than left wedged).
    """
    pool = get_pool() if len(items) > 1 else None
    if pool is None:
        return [fn(it) for it in items]
    chunk = max(1, len(items) // (4 * _POOL_WORKERS))
    try:
        return list(pool.map(fn, items, chunksize=chunk))
    except BrokenProcessPool:
        _discard_broken_pool()
        raise


def _merge_ops(ops: OpCounters | None) -> None:
    """Fold a worker's op-counter snapshot into the parent's open contexts.

    Counters add across workers; gauges (``substrate_bytes``) keep the max —
    see :func:`repro.perf.counters.merge_snapshot`.
    """
    if ops:
        merge_snapshot(ops)


def _batch_task(
    payload: tuple[Callable[[Any], Any], tuple[Any, ...], bool],
) -> tuple[list[Any], OpCounters | None]:
    """Worker-side body of :func:`pmap_batched`: run ``fn`` over one chunk.

    Top-level (picklable by reference); mirrors the task-function protocol of
    :mod:`repro.parallel.worker` — when the parent had op-counter contexts
    open, the chunk runs under :func:`~repro.perf.counters.op_counters` and
    the snapshot travels back for merging.
    """
    fn, chunk, count_ops = payload
    with (op_counters() if count_ops else nullcontext(None)) as ops:
        results = [fn(it) for it in chunk]
    return results, ops


def pmap_batched(fn: Callable[[Any], T], items: Sequence[Any], *, chunks: int | None = None) -> list[T]:
    """Chunked ordered map: one pool round trip per *chunk*, not per item.

    :func:`pmap` pays pickle + future overhead per item, which swamps
    sub-millisecond tasks — exactly the shape of the experiment sweeps
    (thousands of small independent cells).  This variant ships whole chunks
    (``chunks`` of them, default ``2 ×`` the pool width for tail balance) and
    reassembles results in ``items`` order, so reductions stay bit-identical
    to the serial loop.  Parent op-counter contexts see the same counts as a
    serial run: each worker snapshot is merged exactly once per chunk.
    """
    items = list(items)
    pool = get_pool() if len(items) > 1 else None
    if pool is None:
        return [fn(it) for it in items]
    from .worker import split_jobs

    count_ops = counting()
    payloads = [
        (fn, chunk, count_ops)
        for chunk in split_jobs(items, chunks if chunks is not None else 2 * _POOL_WORKERS)
    ]
    out: list[T] = []
    try:
        for results, ops in pool.map(_batch_task, payloads):
            out.extend(results)
            _merge_ops(ops)
    except BrokenProcessPool:
        _discard_broken_pool()
        raise
    return out


atexit.register(shutdown_pool)
