"""Solution-quality metrics and bounds (paper Section 2.1, plus the
communication/migration measures motivating the paper's future work).

* ``Lavg``-based lower bound, max-element lower bound,
* the DirectCut upper bound ``L*max <= sum/m + max`` (Section 2.2),
* load imbalance ``Lmax/Lavg - 1``,
* communication volume (boundary-cell edges, the quantity rectangles
  implicitly minimize, Section 1),
* migration volume between two successive partitions (Section 5).
"""

from __future__ import annotations

import numpy as np

from .partition import Partition
from .prefix import MatrixLike, prefix_2d

__all__ = [
    "lower_bound",
    "upper_bound",
    "load_imbalance",
    "communication_volume",
    "max_boundary",
    "migration_volume",
    "neighbor_counts",
]


def lower_bound(A: MatrixLike, m: int) -> int:
    """Lower bound on the optimal maximum load.

    ``L*max >= max(ceil(sum(A)/m), max(A))`` — both bounds of Section 2.1
    (with the ceiling valid because loads are integers).
    """
    pref = prefix_2d(A)
    return max(-(-pref.total // m), pref.max_element())


def upper_bound(A: MatrixLike, m: int) -> int:
    """Upper bound ``L*max <= sum(A)/m + max(A)`` from DirectCut (§2.2).

    The bound holds for the 1D problem on the flattened array, which is a
    relaxation-free feasible 2D solution only for row counts dividing nicely;
    we use it as the safe initial incumbent for bisection searches on single
    rows/stripes, and as the paper does, as a coarse optimum bracket.
    """
    pref = prefix_2d(A)
    return int(pref.total // m + pref.max_element() + 1)


def load_imbalance(A: MatrixLike, partition: Partition) -> float:
    """Load imbalance ``Lmax / Lavg - 1`` of a partition (Section 2.1)."""
    return partition.imbalance(A)


def communication_volume(partition: Partition) -> int:
    """Total number of grid edges crossing rectangle boundaries.

    Each cell communicates with its 4-neighbours (Section 1); an edge between
    two cells owned by different processors costs one unit in each direction.
    For a valid rectangle partition this equals the sum of the rectangles'
    interior boundary lengths divided by... each crossing edge is counted once
    from each side, so the sum of boundary lengths counts every cross edge
    exactly twice.  We return the number of crossing edges (undirected).
    """
    n1, n2 = partition.shape
    total = sum(r.boundary_length(n1, n2) for r in partition.rects)
    return total // 2


def max_boundary(partition: Partition) -> int:
    """Largest per-processor boundary (a per-step communication bottleneck)."""
    n1, n2 = partition.shape
    if not partition.rects:
        return 0
    return max(r.boundary_length(n1, n2) for r in partition.rects)


def neighbor_counts(partition: Partition) -> np.ndarray:
    """Number of distinct neighbouring processors of each processor.

    Two processors are neighbours when their rectangles share a positive-
    length edge segment (diagonal touching does not exchange halo data in a
    4-neighbour stencil).  This is the per-processor *message count* of a
    halo exchange — the latency term of the communication model, next to
    :func:`max_boundary`'s bandwidth term.  O(m²) pairwise, vectorized.
    """
    coords = partition.coords()
    m = len(coords)
    out = np.zeros(m, dtype=np.int64)
    if m == 0:
        return out
    r0, r1, c0, c1 = coords.T
    nonempty = (r1 > r0) & (c1 > c0)
    # vertical adjacency: column ranges overlap and one's bottom is the
    # other's top; horizontal symmetrically
    col_overlap = (c0[:, None] < c1[None, :]) & (c0[None, :] < c1[:, None])
    row_overlap = (r0[:, None] < r1[None, :]) & (r0[None, :] < r1[:, None])
    vert = col_overlap & ((r1[:, None] == r0[None, :]) | (r0[:, None] == r1[None, :]))
    horiz = row_overlap & ((c1[:, None] == c0[None, :]) | (c0[:, None] == c1[None, :]))
    adj = (vert | horiz) & nonempty[:, None] & nonempty[None, :]
    np.fill_diagonal(adj, False)
    return adj.sum(axis=1).astype(np.int64)


def migration_volume(
    old: Partition, new: Partition, A: MatrixLike
) -> int:
    """Load that changes owner between two partitions of the same matrix.

    Computed exactly from rectangle intersections: processor ``i`` keeps the
    load of ``old[i] ∩ new[i]``; everything else migrates.  This is the data
    (re)migration cost of dynamic applications discussed in Section 5.

    ``A`` may be a raw matrix or any prebuilt
    :class:`~repro.core.prefix.LoadView` substrate — substrates are used
    as-is, never re-densified.  Both partitions must address the same
    processor set: a differing ``m`` raises :class:`ValueError` (owner
    identity is positional, so truncating to ``min(old.m, new.m)`` would
    silently misaccount the dropped processors' load; pad with empty
    rectangles — e.g. ``build_jagged_partition(..., pad_to=m)`` — to compare
    partitions produced for different processor counts).
    """
    if old.shape != new.shape:
        raise ValueError("partitions cover different matrices")
    if old.m != new.m:
        raise ValueError(
            f"partitions address different processor counts "
            f"(old.m={old.m}, new.m={new.m}); pad the smaller one with "
            f"empty rectangles to compare"
        )
    pref = prefix_2d(A)
    kept = 0
    for i in range(old.m):
        inter = old.rects[i].intersect(new.rects[i])
        if inter is not None:
            kept += pref.load(inter.r0, inter.r1, inter.c0, inter.c1)
    return pref.total - kept
