"""Render partitions for terminals and docs (ASCII art and PPM images).

The paper communicates partition structure visually (Figure 1); these
helpers do the same for any :class:`~repro.core.partition.Partition` without
adding a plotting dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .errors import ParameterError
from .partition import Partition
from .prefix import MatrixLike, prefix_2d

__all__ = ["ascii_render", "save_ppm"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ#@%&*+=?"


def ascii_render(
    partition: Partition, *, max_width: int = 64, max_height: int = 32
) -> str:
    """Owner map as ASCII art, downsampled to fit the requested size.

    Each character is one sampled cell, cycling through 70 glyphs; adjacent
    rectangles virtually always receive different glyphs, so the structure
    (rectilinear grid, jagged stripes, hierarchical cuts, spiral strips) is
    readable at a glance.
    """
    if max_width < 1 or max_height < 1:
        raise ParameterError("max_width and max_height must be positive")
    n1, n2 = partition.shape
    owner = partition.owner_map()
    rows = np.linspace(0, n1 - 1, min(n1, max_height)).astype(int)
    cols = np.linspace(0, n2 - 1, min(n2, max_width)).astype(int)
    sampled = owner[np.ix_(rows, cols)]
    lines = [
        "".join(_GLYPHS[v % len(_GLYPHS)] if v >= 0 else "." for v in line)
        for line in sampled
    ]
    return "\n".join(lines)


def save_ppm(
    partition: Partition,
    path: str | Path,
    *,
    A: MatrixLike | None = None,
    scale: int = 1,
) -> Path:
    """Write the partition as a binary PPM image (no dependencies).

    Rectangles get distinct hues; when the load matrix ``A`` is given, the
    brightness encodes each cell's load (the paper's Figure 2 style: "the
    whiter the more computation").
    """
    if scale < 1:
        raise ParameterError("scale must be >= 1")
    owner = partition.owner_map().astype(np.int64)
    n1, n2 = owner.shape
    # golden-ratio hue walk gives well-separated colours for any m
    hues = (np.arange(max(partition.m, 1)) * 0.61803398875) % 1.0
    rgb = _hsv_to_rgb(hues, 0.55, 0.95)
    img = rgb[np.clip(owner, 0, None)]
    img[owner < 0] = 0.0
    if A is not None:
        pref = prefix_2d(A)
        cells = pref.cells_dense().astype(np.float64)
        lo, hi = cells.min(), cells.max()
        shade = 0.35 + 0.65 * (cells - lo) / (hi - lo) if hi > lo else np.ones_like(cells)
        img = img * shade[..., None]
    img8 = (np.clip(img, 0, 1) * 255).astype(np.uint8)
    if scale > 1:
        img8 = np.repeat(np.repeat(img8, scale, axis=0), scale, axis=1)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        fh.write(f"P6 {img8.shape[1]} {img8.shape[0]} 255\n".encode())
        fh.write(img8.tobytes())
    return path


def _hsv_to_rgb(h: np.ndarray, s: float, v: float) -> np.ndarray:
    """Vectorized HSV→RGB for hue arrays with scalar s, v."""
    i = np.floor(h * 6.0).astype(int) % 6
    f = h * 6.0 - np.floor(h * 6.0)
    p = v * (1.0 - s)
    q = v * (1.0 - f * s)
    t = v * (1.0 - (1.0 - f) * s)
    out = np.empty((len(h), 3))
    vv = np.full_like(f, v)
    table = [
        (vv, t, np.full_like(f, p)),
        (q, vv, np.full_like(f, p)),
        (np.full_like(f, p), vv, t),
        (np.full_like(f, p), q, vv),
        (t, np.full_like(f, p), vv),
        (vv, np.full_like(f, p), q),
    ]
    for idx, (r, g, b) in enumerate(table):
        mask = i == idx
        out[mask, 0] = r[mask]
        out[mask, 1] = g[mask]
        out[mask, 2] = b[mask]
    return out
