"""CSR-backed sparse load substrate with exact prefix queries.

The paper's dense prefix array ``Γ`` (Section 2.1) answers rectangle loads
in O(1) but costs O(n1·n2) memory — the wall that caps instance size.  The
instances that matter at scale (SLAC mesh projections, R-MAT spmv traces)
are sparse, and the rectilinear-partitioning literature runs on them via
sparse count structures instead of densified arrays (Yaşar et al.,
*On Symmetric Rectilinear Matrix Partitioning*; Balın et al., *SGORP*).

:class:`SparsePrefix2D` is that substrate: CSR row pointers with per-row
sorted column indices, a global value-prefix ``csum`` over the nonzeros,
and dense row/column *marginal* prefixes.  It satisfies the same
:class:`~repro.core.prefix.LoadView` surface as
:class:`~repro.core.prefix.PrefixSum2D` with

* rectangle loads in O(log nnz) per touched row (two ``searchsorted``
  probes against the monotone row-major key array per row, one prefix
  subtraction), O(1) for full-width/full-height rectangles via the
  marginals;
* stripe projections (:meth:`_axis_prefix_ref`) by scatter-add over only
  the nonzeros inside the stripe;
* all arithmetic exact ``int64`` — the bit-identity contract with the
  dense substrate holds on every solver family, which the
  ``tests/test_sparse_equality.py`` gate enforces.

:func:`auto_substrate` dispatches between the two substrates on the
``REPRO_SPARSE_THRESHOLD`` density knob (registered in
``repro.config.ENV_VARS``), with the reference (dense) twin always one
``else`` away, per the RPL009 dispatch contract.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..config import env_str
from ..perf.cache import LRUCache
from ..perf.config import perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump
from ..sweep.state import sweep_active
from .errors import ParameterError
from .prefix import LoadView, PrefixSum2D, _ProjectionMemo, as_load_matrix

__all__ = [
    "SparsePrefix2D",
    "auto_substrate",
    "sparse_enabled",
    "sparse_threshold",
    "substrate_from_triplets",
]


def sparse_threshold() -> float:
    """Density (nnz/cells) at or below which :func:`auto_substrate` goes sparse.

    Parsed from ``REPRO_SPARSE_THRESHOLD`` on every call (the knob is a
    test/bench surface); an unparsable value falls back to the registered
    default rather than failing the solver path.
    """
    raw = env_str("REPRO_SPARSE_THRESHOLD")
    try:
        return float(raw)  # repro-lint: disable=RPL003 -- parses a config knob, not a load value
    except ValueError:
        return 0.25


def sparse_enabled() -> bool:
    """Whether the density dispatcher may pick the sparse substrate at all."""
    return sparse_threshold() > 0.0


class SparsePrefix2D(_ProjectionMemo):
    """CSR substrate with exact int64 prefix queries over a sparse matrix.

    Storage (``nnz`` nonzeros over an ``n1 × n2`` matrix):

    ``indptr``
        length ``n1+1`` row pointers into ``cols``/``vals``.
    ``cols`` / ``vals``
        column index and (positive) load of each nonzero, row-major and
        column-sorted within each row.
    ``keys``
        ``row * n2 + col`` of each nonzero — globally strictly increasing,
        so a rectangle row-segment is one ``searchsorted`` window.
    ``csum``
        length ``nnz+1`` value prefix over ``vals``; the load of any key
        range ``[a, b)`` is ``csum[b] - csum[a]``.
    ``row_pref`` / ``col_pref``
        dense marginal prefixes (lengths ``n1+1`` / ``n2+1``): O(1)
        full-width and full-height loads, and free full-band projections.

    Total memory is O(nnz + n1 + n2) against the dense substrate's
    O(n1·n2).
    """

    __slots__ = (
        "indptr",
        "cols",
        "vals",
        "keys",
        "csum",
        "row_pref",
        "col_pref",
        "n1",
        "n2",
        "_cache",
        "_cache_default",
        "_max_el",
        "_min_el",
        "_T",
        "__weakref__",
    )

    def __init__(self, A: np.ndarray):
        A = as_load_matrix(A)
        rows, cols = np.nonzero(A)  # C-order scan: row-major, sorted keys
        n1, n2 = A.shape
        vals = np.ascontiguousarray(A[rows, cols], dtype=np.int64)
        keys = rows.astype(np.int64) * n2 + cols
        counts = np.bincount(rows, minlength=n1)
        indptr = np.zeros(n1 + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._init_csr(indptr, cols.astype(np.int64), vals, keys, (int(n1), int(n2)))

    def _init_csr(
        self,
        indptr: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        keys: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        """Wire all slots from canonical CSR arrays (no copies, O(nnz) derive)."""
        n1, n2 = shape
        self.indptr = indptr
        self.cols = cols
        self.vals = vals
        self.keys = keys
        csum = np.zeros(len(vals) + 1, dtype=np.int64)
        np.cumsum(vals, out=csum[1:])
        self.csum = csum
        self.row_pref = csum[indptr]  # fancy index: owns its memory
        col_pref = np.zeros(n2 + 1, dtype=np.int64)
        np.add.at(col_pref, cols + 1, vals)  # exact int64 (bincount would go float)
        np.cumsum(col_pref, out=col_pref)
        self.col_pref = col_pref
        self.n1 = n1
        self.n2 = n2
        self._cache: LRUCache | None = None
        self._cache_default: bool | None = None
        self._max_el: int | None = None
        self._min_el: int | None = None
        self._T: "SparsePrefix2D | None" = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_triplets(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
    ) -> "SparsePrefix2D":
        """Build directly from COO triplets without densifying.

        Duplicate ``(row, col)`` entries are summed (the convention of every
        sparse-matrix assembly path); explicit zeros are dropped.  This is
        the O(nnz log nnz) entry point the ``large``-profile instance
        generators use — peak memory never touches O(n1·n2).
        """
        n1, n2 = int(shape[0]), int(shape[1])
        if n1 <= 0 or n2 <= 0:
            raise ParameterError(f"shape must be positive, got {(n1, n2)}")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals).ravel()
        if not (len(rows) == len(cols) == len(vals)):
            raise ParameterError("rows, cols and vals must have equal lengths")
        if not np.issubdtype(vals.dtype, np.integer):
            if np.issubdtype(vals.dtype, np.floating):
                if not np.isfinite(vals).all():
                    raise ParameterError("triplet values must be finite (contains NaN or inf)")
                if not np.allclose(vals, np.rint(vals)):
                    raise ParameterError("triplet values must be integers")
                vals = np.rint(vals)
            else:
                raise ParameterError(f"unsupported triplet dtype {vals.dtype}")
        vals = vals.astype(np.int64)
        if len(rows) and (
            rows.min() < 0 or rows.max() >= n1 or cols.min() < 0 or cols.max() >= n2
        ):
            raise ParameterError("triplet indices out of bounds for shape")
        if (vals < 0).any():
            raise ParameterError("triplet values must be non-negative")
        keys = rows * n2 + cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]
        if len(keys):
            first = np.empty(len(keys), dtype=bool)
            first[0] = True
            np.not_equal(keys[1:], keys[:-1], out=first[1:])
            starts = np.flatnonzero(first)
            vals = np.add.reduceat(vals, starts)  # exact int64 duplicate collapse
            keys = keys[starts]
        nz = vals != 0
        return cls._from_sorted(keys[nz], vals[nz], (n1, n2))

    @classmethod
    def _from_sorted(
        cls, keys: np.ndarray, vals: np.ndarray, shape: tuple[int, int]
    ) -> "SparsePrefix2D":
        """From strictly-increasing keys and positive values (internal)."""
        n1, n2 = shape
        rows = keys // n2
        cols = keys - rows * n2
        counts = np.bincount(rows, minlength=n1)
        indptr = np.zeros(n1 + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self = cls.__new__(cls)
        self._init_csr(indptr, cols, vals, keys, (n1, n2))
        return self

    @classmethod
    def _from_csr(
        cls,
        indptr: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
    ) -> "SparsePrefix2D":
        """From the three canonical CSR arrays — the shared-memory attach path.

        The arrays are adopted as-is (zero-copy views over shm buffers are
        fine: every query only reads them); the derived ``keys``/``csum``/
        marginal arrays are rebuilt locally in O(nnz).
        """
        n1, n2 = int(shape[0]), int(shape[1])
        counts = np.diff(indptr)
        keys = np.repeat(np.arange(n1, dtype=np.int64) * n2, counts) + cols
        self = cls.__new__(cls)
        self._init_csr(indptr, cols, vals, keys, (n1, n2))
        return self

    # -- query surface (LoadView) ---------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(n1, n2)`` of the underlying load matrix."""
        return (self.n1, self.n2)

    @property
    def total(self) -> int:
        """Total load of the matrix."""
        return int(self.csum[-1])

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) cells."""
        return len(self.vals)

    @property
    def density(self) -> float:
        """``nnz / (n1 * n2)`` — what the dispatch threshold compares against."""
        return len(self.vals) / (self.n1 * self.n2)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the substrate (all seven arrays)."""
        return int(
            self.indptr.nbytes
            + self.cols.nbytes
            + self.vals.nbytes
            + self.keys.nbytes
            + self.csum.nbytes
            + self.row_pref.nbytes
            + self.col_pref.nbytes
        )

    def _load(self, r0: int, r1: int, c0: int, c1: int) -> int:
        if c0 == 0 and c1 == self.n2:
            return int(self.row_pref[r1] - self.row_pref[r0])
        if r0 == 0 and r1 == self.n1:
            return int(self.col_pref[c1] - self.col_pref[c0])
        s0 = int(self.indptr[r0])
        s1 = int(self.indptr[r1])
        if s0 == s1:
            return 0
        seg = self.keys[s0:s1]
        base = np.arange(r0, r1, dtype=np.int64) * self.n2
        a = np.searchsorted(seg, base + c0, side="left") + s0
        b = np.searchsorted(seg, base + c1, side="left") + s0
        return int((self.csum[b] - self.csum[a]).sum())

    def load(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Load of the half-open rectangle ``[r0, r1) × [c0, c1)``.

        O(1) for full-width/full-height rectangles (marginal prefixes),
        otherwise two binary searches per touched row against the windowed
        key segment plus one value-prefix subtraction per row.
        """
        if _OPS:
            bump("load_queries")
        return self._load(r0, r1, c0, c1)

    def rect_loads(self, coords: np.ndarray) -> np.ndarray:
        """Loads of many rectangles at once (same layout as the dense twin)."""
        out = np.empty(len(coords), dtype=np.int64)
        for i in range(len(coords)):
            r0, r1, c0, c1 = coords[i]
            out[i] = self._load(int(r0), int(r1), int(c0), int(c1))
        return out

    def _axis_prefix_ref(self, axis: int, lo: int, hi: int | None) -> np.ndarray:
        if axis == 0:
            hi = self.n2 if hi is None else hi
            if lo == 0 and hi == self.n2:
                # full band: the row marginal, copied so the memo's freeze
                # cannot reach the substrate's own array
                return self.row_pref.copy()
            out = np.zeros(self.n1 + 1, dtype=np.int64)
            base = np.arange(self.n1, dtype=np.int64) * self.n2
            a = np.searchsorted(self.keys, base + lo, side="left")
            b = np.searchsorted(self.keys, base + hi, side="left")
            np.cumsum(self.csum[b] - self.csum[a], out=out[1:])
            return out
        elif axis == 1:
            hi = self.n1 if hi is None else hi
            if lo == 0 and hi == self.n1:
                return self.col_pref.copy()
            out = np.zeros(self.n2 + 1, dtype=np.int64)
            s0 = int(self.indptr[lo])
            s1 = int(self.indptr[hi])
            # scatter-add over only the stripe's nonzeros, then prefix
            np.add.at(out, self.cols[s0:s1] + 1, self.vals[s0:s1])
            np.cumsum(out, out=out)
            return out
        raise ParameterError(f"axis must be 0 or 1, got {axis}")

    def max_element(self) -> int:
        """Largest single cell load (lower bound ``max A[x][y]`` of §2.1)."""
        if self._max_el is None:
            self._max_el = int(self.vals.max()) if len(self.vals) else 0
        return self._max_el

    def min_element(self) -> int:
        """Smallest single cell load — 0 whenever any cell is unstored."""
        if self._min_el is None:
            if len(self.vals) < self.n1 * self.n2:
                self._min_el = 0
            else:
                self._min_el = int(self.vals.min())
        return self._min_el

    def cells_dense(self) -> np.ndarray:
        """The load matrix ``A`` densified — O(n1·n2) memory, use sparingly."""
        A = np.zeros((self.n1, self.n2), dtype=np.int64)
        A[self.keys // self.n2, self.cols] = self.vals
        return A

    def transpose(self) -> "SparsePrefix2D":
        """CSR substrate of the transposed matrix (for -VER variants).

        Mirrors the dense twin's adaptive caching: with the perf layer on,
        large instances (or any instance during a sweep — warm-start facts
        key on object identity) pin the transposed substrate and back-link
        it so ``pref.transpose().transpose() is pref``.
        """
        if perf_enabled():
            if self._T is None and (self._reuse_default() or sweep_active()):
                T = self._transpose_new()
                T._T = self
                self._T = T
            if self._T is not None:
                return self._T
        return self._transpose_new()

    def _transpose_new(self) -> "SparsePrefix2D":
        tkeys = self.cols * np.int64(self.n1) + self.keys // self.n2
        order = np.argsort(tkeys, kind="stable")
        T = SparsePrefix2D._from_sorted(tkeys[order], self.vals[order], (self.n2, self.n1))
        T._cache_default = self._cache_default  # same n1·n2 cell count
        T._max_el = self._max_el  # same multiset of cell loads
        T._min_el = self._min_el
        return T

    # -- digest ----------------------------------------------------------

    def matrix_digest(self) -> tuple[str, int]:
        """``(digest, scale)`` equal to the dense :func:`repro.sweep.store.matrix_digest`.

        Streams the logical dense matrix through sha256 in bounded row
        blocks (~4 MiB of int64 at a time), so warm sweep/raw-store facts
        recorded against the dense substrate transfer to the sparse one and
        vice versa without ever materializing the full array.
        """
        nnz = len(self.vals)
        scale = int(np.gcd.reduce(self.vals)) if nnz else 1
        if scale <= 0:
            scale = 1
        h = hashlib.sha256()
        h.update(b"int64|")
        h.update(repr((self.n1, self.n2)).encode())
        h.update(b"|")
        block = max(1, (1 << 22) // max(1, 8 * self.n2))
        counts = np.diff(self.indptr)
        prim = self.vals // scale
        for r0 in range(0, self.n1, block):
            r1 = min(self.n1, r0 + block)
            s0 = int(self.indptr[r0])
            s1 = int(self.indptr[r1])
            buf = np.zeros((r1 - r0, self.n2), dtype=np.int64)
            local = np.repeat(np.arange(r1 - r0), counts[r0:r1])
            buf[local, self.cols[s0:s1]] = prim[s0:s1]
            h.update(buf.tobytes())
        return h.hexdigest(), scale


def auto_substrate(A: np.ndarray) -> LoadView:
    """Density-dispatched substrate for a raw load matrix.

    Sparse when the dispatcher is enabled and the density is at or below
    :func:`sparse_threshold`; the dense reference twin otherwise.  Both
    branches build from the same canonicalized matrix, and every query
    answers bit-identically (``tests/test_sparse_equality.py``).
    """
    A = as_load_matrix(A)
    nnz = int(np.count_nonzero(A))
    if sparse_enabled() and nnz <= sparse_threshold() * A.size:
        return SparsePrefix2D(A)
    else:
        return PrefixSum2D(A)


def substrate_from_triplets(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
) -> LoadView:
    """Density-dispatched substrate for a COO triplet stream.

    The sparse build happens first (O(nnz) memory); only when the dispatch
    resolves dense — disabled, or the instance too dense to profit — does
    the matrix densify.  Generators at the ``large`` profile therefore
    never allocate O(n1·n2) unless the data genuinely is dense.
    """
    n1, n2 = int(shape[0]), int(shape[1])
    sp = SparsePrefix2D.from_triplets(rows, cols, vals, shape)
    if sparse_enabled() and sp.nnz <= sparse_threshold() * (n1 * n2):
        return sp
    return PrefixSum2D(sp.cells_dense())
