"""Partition container: m rectangles forming a partition of a load matrix.

Implements the validity test of Section 2.1 of the paper (pairwise
disjointness + full coverage), load/imbalance metrics, and cell→processor
lookup.  Structured algorithm families attach a fast *indexer* (rectilinear:
two binary searches; jagged: stripe then in-stripe search; hierarchical: tree
descent) matching the paper's remark that compact representations "allow to
easily find which processor a given cell is allocated to".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional, Sequence

import numpy as np

from .errors import InvalidPartitionError, ParameterError
from .prefix import MatrixLike, prefix_2d
from .rectangle import Rect

__all__ = ["Partition"]

# A cell indexer maps (i, j) -> processor index.
Indexer = Callable[[int, int], int]


class Partition:
    """A set of ``m`` rectangles partitioning an ``n1 × n2`` matrix.

    Parameters
    ----------
    rects:
        One rectangle per processor; empty rectangles (zero area) are allowed
        and represent idle processors.
    shape:
        Shape ``(n1, n2)`` of the partitioned matrix.
    method:
        Optional name of the generating algorithm (for reporting).
    indexer:
        Optional O(log)-time cell→processor lookup; a linear scan is used
        otherwise.
    meta:
        Free-form metadata recorded by the generating algorithm (stripe cuts,
        tree root, iteration counts, ...).
    """

    __slots__ = ("rects", "shape", "method", "meta", "_indexer")

    def __init__(
        self,
        rects: Sequence[Rect],
        shape: tuple[int, int],
        *,
        method: str = "",
        indexer: Optional[Indexer] = None,
        meta: Optional[dict] = None,
    ):
        self.rects: tuple[Rect, ...] = tuple(rects)
        self.shape = (int(shape[0]), int(shape[1]))
        self.method = method
        self.meta = dict(meta or {})
        self._indexer = indexer

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of processors (rectangles), including idle ones."""
        return len(self.rects)

    def __len__(self) -> int:
        return len(self.rects)

    def __iter__(self):
        return iter(self.rects)

    def __getitem__(self, i: int) -> Rect:
        return self.rects[i]

    def __repr__(self) -> str:
        name = self.method or "Partition"
        return f"<{name} m={self.m} shape={self.shape}>"

    # ------------------------------------------------------------------
    # geometry / validity
    # ------------------------------------------------------------------
    def coords(self) -> np.ndarray:
        """``(m, 4)`` int array of ``(r0, r1, c0, c1)`` rows."""
        if not self.rects:
            return np.zeros((0, 4), dtype=np.int64)
        return np.array(
            [(r.r0, r.r1, r.c0, r.c1) for r in self.rects], dtype=np.int64
        )

    def validate(self, *, method: str = "auto") -> None:
        """Check the two validity properties of Section 2.1.

        1. the rectangles are pairwise disjoint (no collision), and
        2. they cover the whole matrix (all inside ``A`` and the areas sum to
           the area of ``A``).

        ``method`` is ``"pairwise"`` (the paper's O(m²) test, vectorized),
        ``"paint"`` (O(n1·n2·…) owner-map painting, exact and simple), or
        ``"auto"`` (paint for small grids, pairwise otherwise).

        Raises
        ------
        InvalidPartitionError
            If either property fails.
        """
        n1, n2 = self.shape
        coords = self.coords()
        if coords.size == 0:
            raise InvalidPartitionError("partition has no rectangles")
        nonempty = coords[(coords[:, 1] > coords[:, 0]) & (coords[:, 3] > coords[:, 2])]
        if (
            (nonempty[:, 0] < 0).any()
            or (nonempty[:, 2] < 0).any()
            or (nonempty[:, 1] > n1).any()
            or (nonempty[:, 3] > n2).any()
        ):
            raise InvalidPartitionError("rectangle outside the matrix")
        areas = (nonempty[:, 1] - nonempty[:, 0]) * (nonempty[:, 3] - nonempty[:, 2])
        if int(areas.sum()) != n1 * n2:
            raise InvalidPartitionError(
                f"areas sum to {int(areas.sum())}, expected {n1 * n2}"
            )
        if method == "auto":
            method = "paint" if n1 * n2 <= 1 << 20 else "pairwise"
        if method == "paint":
            owner = self.owner_map()
            if (owner < 0).any():
                raise InvalidPartitionError("uncovered cell detected")
            # area check above + full cover ⇒ disjoint, but double-check counts
            counts = np.bincount(owner.ravel(), minlength=self.m)
            my_areas = np.array([r.area for r in self.rects])
            if (counts > my_areas).any():
                raise InvalidPartitionError("overlapping rectangles detected")
        elif method == "pairwise":
            self._validate_pairwise(nonempty)
        else:
            raise ParameterError(f"unknown validation method {method!r}")

    def _validate_pairwise(self, coords: np.ndarray, chunk: int = 512) -> None:
        """Vectorized O(m²) pairwise overlap test (chunked for memory)."""
        r0, r1, c0, c1 = coords.T
        k = len(coords)
        for lo in range(0, k, chunk):
            hi = min(lo + chunk, k)
            # overlap(a, b) for a in [lo,hi) against all b > a
            ov = (
                (r0[lo:hi, None] < r1[None, :])
                & (r0[None, :] < r1[lo:hi, None])
                & (c0[lo:hi, None] < c1[None, :])
                & (c0[None, :] < c1[lo:hi, None])
            )
            idx = np.arange(lo, hi)[:, None] >= np.arange(k)[None, :]
            ov &= ~idx  # keep strictly-upper pairs only
            if ov.any():
                a, b = np.argwhere(ov)[0]
                raise InvalidPartitionError(
                    f"rectangles overlap: {coords[lo + a]} and {coords[b]}"
                )

    def is_valid(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except InvalidPartitionError:
            return False
        return True

    # ------------------------------------------------------------------
    # loads and metrics
    # ------------------------------------------------------------------
    def loads(self, A: MatrixLike) -> np.ndarray:
        """Per-processor loads ``L(r_i)`` as an int64 array of length ``m``."""
        pref = prefix_2d(A)
        coords = self.coords()
        if coords.size == 0:
            return np.zeros(0, dtype=np.int64)
        return pref.rect_loads(coords)

    def max_load(self, A: MatrixLike) -> int:
        """Load of the most loaded processor (the paper's ``Lmax``)."""
        return int(self.loads(A).max())

    def imbalance(self, A: MatrixLike) -> float:
        """Load imbalance ``Lmax / Lavg - 1`` (Section 2.1).

        Evaluated as the exact rational ``(Lmax·m − total) / total`` with a
        single correctly-rounded conversion to float: the naive
        ``Lmax / (total / m)`` rounds twice and drifts once loads exceed
        2^53.
        """
        pref = prefix_2d(A)
        total = pref.total
        if total == 0:
            return 0.0
        return float(Fraction(self.max_load(pref) * self.m - total, total))

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def owner_of(self, i: int, j: int) -> int:
        """Processor index owning cell ``(i, j)``.

        Uses the structure-specific indexer when available, otherwise a
        linear scan over the rectangles.
        """
        n1, n2 = self.shape
        if not (0 <= i < n1 and 0 <= j < n2):
            raise ParameterError(f"cell ({i}, {j}) outside matrix {self.shape}")
        if self._indexer is not None:
            return self._indexer(i, j)
        for k, r in enumerate(self.rects):
            if r.contains(i, j):
                return k
        raise InvalidPartitionError(f"cell ({i}, {j}) is not covered")

    def owner_map(self) -> np.ndarray:
        """Paint an ``n1 × n2`` int array of owner indices (-1 = uncovered).

        O(total rectangle area); intended for metrics and small/medium grids.
        """
        n1, n2 = self.shape
        owner = np.full((n1, n2), -1, dtype=np.int32)
        for k, r in enumerate(self.rects):
            if not r.is_empty:
                owner[r.r0 : r.r1, r.c0 : r.c1] = k
        return owner

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "Partition":
        """Partition of the transposed matrix (swap axes of every rectangle)."""
        idx = self._indexer
        t_indexer = (lambda i, j: idx(j, i)) if idx is not None else None
        return Partition(
            [r.transpose() for r in self.rects],
            (self.shape[1], self.shape[0]),
            method=self.method,
            indexer=t_indexer,
            meta=dict(self.meta),
        )

    def with_method(self, name: str) -> "Partition":
        """Copy of this partition tagged with a different method name."""
        p = Partition(
            self.rects, self.shape, method=name, indexer=self._indexer, meta=self.meta
        )
        return p
