"""Core substrate: prefix sums, rectangles, partitions, metrics, registry."""

from .analysis import PartitionReport, analyze
from .errors import (
    InfeasibleError,
    InvalidPartitionError,
    ParameterError,
    ReproError,
)
from .metrics import (
    communication_volume,
    load_imbalance,
    lower_bound,
    max_boundary,
    migration_volume,
    upper_bound,
)
from .partition import Partition
from .prefix import PrefixSum1D, PrefixSum2D, as_load_matrix, prefix_1d, prefix_2d
from .rectangle import Rect
from .render import ascii_render, save_ppm
from .serialize import load_partition, partition_from_dict, partition_to_dict, save_partition

__all__ = [
    "PartitionReport",
    "analyze",
    "InfeasibleError",
    "InvalidPartitionError",
    "ParameterError",
    "ReproError",
    "communication_volume",
    "load_imbalance",
    "lower_bound",
    "max_boundary",
    "migration_volume",
    "upper_bound",
    "Partition",
    "PrefixSum1D",
    "PrefixSum2D",
    "as_load_matrix",
    "prefix_1d",
    "prefix_2d",
    "Rect",
    "ascii_render",
    "save_ppm",
    "load_partition",
    "partition_from_dict",
    "partition_to_dict",
    "save_partition",
]
