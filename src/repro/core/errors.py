"""Exception types for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class InvalidPartitionError(ReproError):
    """A set of rectangles does not form a valid partition of the matrix."""


class InfeasibleError(ReproError):
    """No solution exists for the requested parameters.

    Raised, e.g., when a probe target is below the largest single element or
    when a structured class cannot accommodate the requested processor count.
    """


class ParameterError(ReproError, ValueError):
    """An argument is out of its documented domain."""
