"""Algorithm registry: the paper's algorithm names → implementations.

Every algorithm evaluated in Section 4 is reachable by its paper name, e.g.
``partition_2d(A, m, "JAG-M-HEUR")``.  Variant suffixes follow §4.1:

* jagged algorithms: ``-HOR``, ``-VER``, ``-BEST`` (default ``-BEST``, the
  choice made in §4.2);
* hierarchical algorithms: ``-LOAD``, ``-DIST``, ``-HOR``, ``-VER``
  (default ``-LOAD``, the best variant per §4.2).
"""

from __future__ import annotations

from typing import Callable

from ..hierarchical.opt import hier_opt
from ..hierarchical.rb import hier_rb
from ..hierarchical.relaxed import hier_relaxed
from ..jagged.m_heur import jag_m_heur
from ..jagged.m_opt import jag_m_opt
from ..jagged.pq_heur import jag_pq_heur
from ..jagged.pq_opt import jag_pq_opt
from ..perf.counters import OpCounters, counting, op_counters
from ..rectilinear.nicol import rect_nicol
from ..rectilinear.uniform import rect_uniform
from .errors import ParameterError
from .partition import Partition
from .prefix import MatrixLike

__all__ = ["ALGORITHMS", "partition_2d", "algorithm_names"]

Algo = Callable[..., Partition]


def _jag(fn: Algo, orientation: str) -> Algo:
    def run(A: MatrixLike, m: int, **kw) -> Partition:
        return fn(A, m, orientation=orientation, **kw)

    # let inspect.unwrap (and RPL004) reach the documented implementation
    run.__wrapped__ = fn  # type: ignore[attr-defined]
    run.__name__ = getattr(fn, "__name__", "jagged")
    run.__doc__ = fn.__doc__
    return run


def _hier(fn: Algo, variant: str) -> Algo:
    def run(A: MatrixLike, m: int, **kw) -> Partition:
        return fn(A, m, variant=variant, **kw)

    run.__wrapped__ = fn  # type: ignore[attr-defined]
    run.__name__ = getattr(fn, "__name__", "hierarchical")
    run.__doc__ = fn.__doc__
    return run


def _build_registry() -> dict[str, Algo]:
    reg: dict[str, Algo] = {
        "RECT-UNIFORM": rect_uniform,
        "RECT-NICOL": rect_nicol,
        "HIER-OPT": hier_opt,
    }
    for base, fn in (
        ("JAG-PQ-HEUR", jag_pq_heur),
        ("JAG-PQ-OPT", jag_pq_opt),
        ("JAG-M-HEUR", jag_m_heur),
        ("JAG-M-OPT", jag_m_opt),
    ):
        reg[base] = _jag(fn, "best")
        for o in ("hor", "ver", "best"):
            reg[f"{base}-{o.upper()}"] = _jag(fn, o)
    for base, fn in (("HIER-RB", hier_rb), ("HIER-RELAXED", hier_relaxed)):
        reg[base] = _hier(fn, "load")
        for v in ("load", "dist", "hor", "ver"):
            reg[f"{base}-{v.upper()}"] = _hier(fn, v)
    # §3.4 general recursive schemes (extension: not in the paper's evaluation)
    from ..spiral.peel import spiral_opt, spiral_relaxed

    reg["SPIRAL-RELAXED"] = spiral_relaxed
    reg["SPIRAL-OPT"] = spiral_opt
    return reg


#: All registered algorithm names → callables ``(A, m, **kw) -> Partition``.
ALGORITHMS: dict[str, Algo] = _build_registry()


def algorithm_names(*, heuristics_only: bool = False) -> list[str]:
    """Registered base algorithm names (no variant suffixes).

    With ``heuristics_only`` the slow exact algorithms (JAG-PQ-OPT,
    JAG-M-OPT, HIER-OPT) are excluded — the set plotted in the paper's
    Figures 12–14.
    """
    base = [
        "RECT-UNIFORM",
        "RECT-NICOL",
        "JAG-PQ-HEUR",
        "JAG-M-HEUR",
        "HIER-RB",
        "HIER-RELAXED",
    ]
    if not heuristics_only:
        base[3:3] = ["JAG-PQ-OPT", "JAG-M-OPT"]
        base.append("HIER-OPT")
    return base


def partition_2d(A: MatrixLike, m: int, method: str = "JAG-M-HEUR", **kw) -> Partition:
    """Partition load matrix ``A`` into ``m`` rectangles with a named algorithm.

    Parameters
    ----------
    A:
        2D non-negative integer load matrix (or a prebuilt
        :class:`~repro.core.prefix.PrefixSum2D`).
    m:
        Number of processors.
    method:
        A name from :data:`ALGORITHMS` (case-insensitive), e.g.
        ``"JAG-M-HEUR"``, ``"HIER-RELAXED-LOAD"``, ``"RECT-NICOL"``.
    **kw:
        Forwarded to the algorithm (e.g. ``num_stripes`` for JAG-M-HEUR,
        ``P``/``Q`` for the P×Q-structured methods).

    Returns
    -------
    Partition
        A valid partition of ``A`` into ``m`` rectangles (idle processors
        hold empty rectangles).
    """
    key = method.upper()
    if key not in ALGORITHMS:
        raise ParameterError(
            f"unknown algorithm {method!r}; choose from {sorted(ALGORITHMS)}"
        )
    if counting():
        # a counter context is open: attach this call's own op counts to the
        # partition (nested context, so outer contexts still see every event)
        with op_counters() as ops:
            part = ALGORITHMS[key](A, m, **kw)
        part.meta["op_counts"] = OpCounters(ops)
        return part
    return ALGORITHMS[key](A, m, **kw)
