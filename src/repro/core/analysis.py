"""Partition quality analysis: one-call diagnostic report.

Collects every §2.1 metric plus the geometric diagnostics an application
engineer checks before adopting a decomposition (per-processor load
distribution, rectangle aspect ratios, boundary statistics, distance to the
lower bound) into a single dataclass with a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from .metrics import communication_volume, lower_bound, max_boundary
from .partition import Partition
from .prefix import MatrixLike, prefix_2d

__all__ = ["PartitionReport", "analyze"]


@dataclass(frozen=True)
class PartitionReport:
    """Quality summary of one partition on one load matrix."""

    method: str
    shape: tuple[int, int]
    m: int
    active: int  #: processors with a non-empty rectangle
    total_load: int
    max_load: int
    min_load: int
    mean_load: float
    std_load: float
    imbalance: float  #: Lmax/Lavg − 1 (§2.1)
    lower_bound: int  #: max(⌈total/m⌉, max cell)
    optimality_gap: float  #: max_load/lower_bound − 1 (0 ⇒ provably optimal)
    comm_volume: int  #: grid edges crossing owners
    max_boundary: int  #: largest per-processor boundary
    worst_aspect: float  #: max rectangle aspect ratio (≥ 1)
    load_percentiles: dict[int, float] = field(default_factory=dict)

    def to_text(self) -> str:
        """Aligned human-readable rendering."""
        lines = [
            f"partition     : {self.method or '(unnamed)'} on {self.shape[0]}x{self.shape[1]}",
            f"processors    : {self.m} ({self.active} active)",
            f"total load    : {self.total_load:,}",
            f"max load      : {self.max_load:,}  (lower bound {self.lower_bound:,}, "
            f"gap {self.optimality_gap:.2%})",
            f"load spread   : min {self.min_load:,} / mean {self.mean_load:,.0f} / "
            f"std {self.std_load:,.0f}",
            f"imbalance     : {self.imbalance:.4%}",
            f"comm volume   : {self.comm_volume:,} edges "
            f"(max per processor {self.max_boundary:,})",
            f"worst aspect  : {self.worst_aspect:.1f}:1",
        ]
        if self.load_percentiles:
            pct = "  ".join(f"p{p}={v:,.0f}" for p, v in sorted(self.load_percentiles.items()))
            lines.append(f"percentiles   : {pct}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def analyze(A: MatrixLike, partition: Partition) -> PartitionReport:
    """Compute a :class:`PartitionReport` for ``partition`` on matrix ``A``."""
    pref = prefix_2d(A)
    loads = partition.loads(pref).astype(np.int64)
    active = [r for r in partition.rects if not r.is_empty]
    lb = lower_bound(pref, partition.m)
    maxload = int(loads.max(initial=0))
    aspects = [
        max(r.height / r.width, r.width / r.height) for r in active if r.area > 0
    ]
    # ratio metrics go through Fraction with one final float conversion:
    # dividing big-int loads as floats rounds twice and drifts past 2^53
    return PartitionReport(
        method=partition.method,
        shape=partition.shape,
        m=partition.m,
        active=len(active),
        total_load=pref.total,
        max_load=maxload,
        min_load=int(loads.min(initial=0)),
        mean_load=float(Fraction(pref.total, partition.m)) if partition.m else 0.0,
        std_load=float(loads.std()) if len(loads) else 0.0,
        imbalance=(
            float(Fraction(maxload * partition.m - pref.total, pref.total))
            if pref.total and partition.m
            else 0.0
        ),
        lower_bound=lb,
        optimality_gap=float(Fraction(maxload - lb, lb)) if lb else 0.0,
        comm_volume=communication_volume(partition),
        max_boundary=max_boundary(partition),
        worst_aspect=float(max(aspects)) if aspects else 1.0,
        load_percentiles={
            p: float(np.percentile(loads, p)) for p in (10, 50, 90, 99)
        }
        if len(loads)
        else {},
    )
