"""Prefix-sum substrates for O(1) interval and rectangle load queries.

The paper (Section 2.1) assumes the load matrix ``A`` is given as a 2D prefix
sum array ``Γ`` with ``Γ[x][y] = sum_{x'<=x, y'<=y} A[x'][y']`` so that the
load of a rectangle is computed in O(1).  This module provides that substrate
for both one and two dimensions, using NumPy and half-open index conventions
(``[lo, hi)``), which map directly onto array slices.

All loads are kept as ``int64``: the evaluation instances are integer load
matrices, and exact integer arithmetic lets the optimal algorithms use exact
bisection on the bottleneck value.
"""

from __future__ import annotations

from typing import Protocol, Union, runtime_checkable

import numpy as np

from ..perf.cache import LRUCache
from ..perf.config import cache_budget_bytes, cache_min_cells, perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump, gauge
from ..sweep.state import sweep_active
from .errors import ParameterError

__all__ = [
    "LoadView",
    "PrefixSum1D",
    "PrefixSum2D",
    "prefix_1d",
    "prefix_2d",
    "as_load_matrix",
]


def as_load_matrix(A: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a load matrix to a 2D C-contiguous int64 array.

    Negative entries are rejected; zero entries are allowed (sparse instances
    such as the SLAC mesh contain zeros, cf. paper Section 4.1).
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ParameterError(f"load matrix must be 2D, got shape {A.shape}")
    if A.size == 0:
        raise ParameterError("load matrix must be non-empty")
    if not np.issubdtype(A.dtype, np.integer):
        if np.issubdtype(A.dtype, np.floating):
            if not np.isfinite(A).all():
                # report non-finite input for what it is: np.allclose below
                # would fail on NaN/inf and mislabel it a non-integer matrix
                raise ParameterError("load matrix must be finite (contains NaN or inf)")
            if not np.allclose(A, np.rint(A)):
                raise ParameterError("load matrix must contain integers")
            A = np.rint(A)
        else:
            raise ParameterError(f"unsupported dtype {A.dtype}")
    A = np.ascontiguousarray(A, dtype=np.int64)
    if (A < 0).any():
        raise ParameterError("load matrix entries must be non-negative")
    return A


def prefix_1d(values: np.ndarray) -> np.ndarray:
    """Return the length ``n+1`` prefix-sum array of a 1D load array.

    ``P[i]`` is the sum of the first ``i`` elements, so the load of the
    half-open interval ``[i, j)`` is ``P[j] - P[i]``.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ParameterError("expected a 1D array")
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:], dtype=np.int64)
    return out


class PrefixSum1D:
    """One-dimensional prefix-sum array with O(1) interval loads.

    Parameters
    ----------
    values:
        Either the raw 1D load array, or (with ``is_prefix=True``) an already
        computed prefix array of length ``n+1`` starting at 0.
    """

    __slots__ = ("P", "n", "_max_el")

    def __init__(self, values: np.ndarray, *, is_prefix: bool = False):
        if is_prefix:
            P = np.ascontiguousarray(values, dtype=np.int64)
            if P.ndim != 1 or len(P) < 1 or P[0] != 0:
                raise ParameterError("prefix array must be 1D and start at 0")
        else:
            P = prefix_1d(values)
        self.P = P
        self.n = len(P) - 1
        self._max_el: int | None = None

    @property
    def total(self) -> int:
        """Total load of the array."""
        return int(self.P[-1])

    def load(self, lo: int, hi: int) -> int:
        """Load of the half-open interval ``[lo, hi)``."""
        return int(self.P[hi] - self.P[lo])

    def max_element(self) -> int:
        """Largest single-element load (the second lower bound of §2.1).

        A pure property of the array, computed once and cached: the ``diff``
        temporary is not worth re-allocating on every bound evaluation.
        """
        if self._max_el is None:
            self._max_el = int(np.max(np.diff(self.P))) if self.n else 0
        return self._max_el

    def __len__(self) -> int:
        return self.n


@runtime_checkable
class LoadView(Protocol):
    """Query surface every load substrate provides.

    Both :class:`PrefixSum2D` (dense ``Γ``) and
    :class:`repro.core.sparse.SparsePrefix2D` (CSR prefixes) satisfy this
    protocol; algorithms written against it run bit-identically on either
    substrate.  ``n1``/``n2`` are the load-matrix dimensions.
    """

    n1: int
    n2: int

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def total(self) -> int: ...

    @property
    def nbytes(self) -> int: ...

    def load(self, r0: int, r1: int, c0: int, c1: int) -> int: ...

    def rect_loads(self, coords: np.ndarray) -> np.ndarray: ...

    def axis_prefix(
        self, axis: int, lo: int = 0, hi: int | None = None, *, reuse: bool | None = None
    ) -> np.ndarray: ...

    def band_prefix(
        self, axis: int, lo: int, hi: int, j0: int, j1: int, *, reuse: bool | None = None
    ) -> np.ndarray: ...

    def boundary_list(
        self, axis: int, lo: int = 0, hi: int | None = None, *, reuse: bool | None = None
    ) -> list[int]: ...

    def max_element(self) -> int: ...

    def min_element(self) -> int: ...

    def cells_dense(self) -> np.ndarray: ...

    def transpose(self) -> "LoadView": ...


class _ProjectionMemo:
    """Adaptive per-instance memo for stripe projections and boundary lists.

    Shared by both substrates: the memo logic only needs ``n1``/``n2``, the
    ``_cache``/``_cache_default`` slots and the substrate's
    ``_axis_prefix_ref`` reference query — the dispatch, keying, freezing
    and op-counting are substrate-independent.
    """

    __slots__ = ()

    # provided by the concrete substrate
    n1: int
    n2: int

    def _axis_prefix_ref(self, axis: int, lo: int, hi: int | None) -> np.ndarray:
        raise NotImplementedError

    def projection_cache(self) -> LRUCache:
        """The per-instance projection/boundary-list memo (created lazily)."""
        if self._cache is None:
            self._cache = LRUCache(cache_budget_bytes())
        return self._cache

    def _reuse_default(self) -> bool:
        """Whether size-defaulted projection queries memoize on this instance.

        Small matrices lose to the cache bookkeeping (the straight-line
        subtraction is a handful of microseconds), so memoization defaults
        on only above :func:`~repro.perf.config.cache_min_cells` cells.
        Resolved once per instance — the threshold is a process-level knob.
        """
        if self._cache_default is None:
            self._cache_default = self.n1 * self.n2 >= cache_min_cells()
        return self._cache_default

    def axis_prefix(
        self,
        axis: int,
        lo: int = 0,
        hi: int | None = None,
        *,
        reuse: bool | None = None,
    ) -> np.ndarray:
        """Prefix array along ``axis`` restricted to band ``[lo, hi)`` of the other axis.

        For ``axis == 0`` this returns the length ``n1+1`` prefix of the row
        sums of columns ``[lo, hi)`` — i.e. the projection of the band onto
        the first dimension (paper §3.2: "there is actually no projection to
        make", the prefix differences suffice).  With the perf layer enabled
        the result is memoized per ``(axis, lo, hi)`` in a bounded LRU and
        returned *read-only*; otherwise it is a fresh array (one vectorized
        subtraction of two views of ``Γ``, or a sparse stripe scatter).

        ``reuse`` controls memoization: ``True`` forces it (callers that
        revisit the same band many times, e.g. the exact-solver DPs),
        ``False`` forces the straight-line path, and ``None`` (default)
        memoizes only when the instance has at least
        :func:`~repro.perf.config.cache_min_cells` cells — on small
        matrices the cache bookkeeping costs more than the subtraction.
        """
        if not perf_enabled():
            return self._axis_prefix_ref(axis, lo, hi)
        if reuse is None:
            # inlined slot read: this dispatch runs on every projection
            # query, and the resolved default is the overwhelmingly common
            # case — the helper call only happens once per instance
            reuse = self._cache_default
            if reuse is None:
                reuse = self._reuse_default()
        if not reuse:
            return self._axis_prefix_ref(axis, lo, hi)
        if hi is None:
            hi = self.n2 if axis == 0 else self.n1
        key = ("ap", axis, lo, hi)
        cache = self.projection_cache()
        if _OPS:
            bump("proj_queries")
        hit = cache.get(key)
        if hit is not None:
            if _OPS:
                bump("proj_hits")
            return hit  # type: ignore[return-value]
        p = self._axis_prefix_ref(axis, lo, hi)
        p.flags.writeable = False  # shared across callers: freeze it
        cache.put(key, p)
        return p

    def band_prefix(
        self,
        axis: int,
        lo: int,
        hi: int,
        j0: int,
        j1: int,
        *,
        reuse: bool | None = None,
    ) -> np.ndarray:
        """Prefix along ``axis`` of the sub-rectangle band.

        Like :meth:`axis_prefix` but additionally windowed to ``[j0, j1)``
        along ``axis`` itself and re-based so the first entry is 0.  Used by
        hierarchical algorithms working on sub-rectangles.  The full-width
        window equals :meth:`axis_prefix` exactly (the first row/column of
        ``Γ`` is zero), so that case is delegated to the memoized projection.
        ``reuse`` is forwarded to :meth:`axis_prefix`.
        """
        if j0 == 0 and perf_enabled():
            if j1 == (self.n1 if axis == 0 else self.n2):
                return self.axis_prefix(axis, lo, hi, reuse=reuse)
            # axis prefixes start at 0, so no rebase is needed: hand out a
            # (read-only) view of the memoized projection
            return self.axis_prefix(axis, lo, hi, reuse=reuse)[: j1 + 1]  # repro-lint: disable=RPL002
        # the prefix window of half-open [j0, j1) has j1-j0+1 entries
        p = self.axis_prefix(axis, lo, hi, reuse=reuse)[j0 : j1 + 1]  # repro-lint: disable=RPL002
        return p - p[0]

    def boundary_list(
        self,
        axis: int,
        lo: int = 0,
        hi: int | None = None,
        *,
        reuse: bool | None = None,
    ) -> list[int]:
        """List form of :meth:`axis_prefix` — what the probe hot path wants.

        The probe family binary-searches plain Python lists (C-speed
        ``bisect_right``, see :mod:`repro.oned.probe`); converting an
        ``ndarray`` costs O(n) per call.  This query converts once per
        ``(axis, lo, hi)`` and memoizes the list alongside the projection.
        Callers must treat the returned list as immutable.  ``reuse`` as in
        :meth:`axis_prefix` (``None`` defers to the instance-size default).
        """
        if not perf_enabled():
            return self._axis_prefix_ref(axis, lo, hi).tolist()
        if reuse is None:
            reuse = self._cache_default  # inlined, as in axis_prefix
            if reuse is None:
                reuse = self._reuse_default()
        if not reuse:
            return self._axis_prefix_ref(axis, lo, hi).tolist()
        p = self.axis_prefix(axis, lo, hi, reuse=True)
        if hi is None:
            hi = self.n2 if axis == 0 else self.n1
        key = ("bl", axis, lo, hi)
        cache = self.projection_cache()
        if _OPS:
            bump("proj_queries")
        hit = cache.get(key)
        if hit is not None:
            if _OPS:
                bump("proj_hits")
            return hit  # type: ignore[return-value]
        pl = p.tolist()
        cache.put(key, pl)
        return pl


class PrefixSum2D(_ProjectionMemo):
    """Two-dimensional prefix-sum array ``Γ`` with O(1) rectangle loads.

    ``Γ`` has shape ``(n1+1, n2+1)``; the load of the half-open rectangle
    ``[r0, r1) × [c0, c1)`` is::

        Γ[r1, c1] - Γ[r0, c1] - Γ[r1, c0] + Γ[r0, c0]

    which is the half-open form of the formula in Section 2.1 of the paper.
    """

    # __weakref__ lets repro.parallel.shm key exported shared-memory segments
    # to the prefix's lifetime (weakref.finalize unlinks on collection)
    __slots__ = (
        "G",
        "n1",
        "n2",
        "_cache",
        "_cache_default",
        "_max_el",
        "_min_el",
        "_T",
        "__weakref__",
    )

    def __init__(self, A: np.ndarray, *, is_prefix: bool = False):
        if is_prefix:
            G = np.ascontiguousarray(A, dtype=np.int64)
            if G.ndim != 2 or G[0, 0] != 0 or (G[0, :] != 0).any() or (G[:, 0] != 0).any():
                raise ParameterError("2D prefix array must have a zero first row/column")
        else:
            A = as_load_matrix(A)
            G = np.zeros((A.shape[0] + 1, A.shape[1] + 1), dtype=np.int64)
            np.cumsum(A, axis=0, out=G[1:, 1:], dtype=np.int64)
            np.cumsum(G[1:, 1:], axis=1, out=G[1:, 1:])
        self.G = G
        self.n1 = G.shape[0] - 1
        self.n2 = G.shape[1] - 1
        self._cache: LRUCache | None = None
        self._cache_default: bool | None = None
        self._max_el: int | None = None
        self._min_el: int | None = None
        self._T: "PrefixSum2D | None" = None

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(n1, n2)`` of the underlying load matrix."""
        return (self.n1, self.n2)

    @property
    def total(self) -> int:
        """Total load of the matrix."""
        return int(self.G[-1, -1])

    @property
    def nbytes(self) -> int:
        """Resident bytes of the substrate (the dense ``Γ`` array)."""
        return int(self.G.nbytes)

    def load(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Load of the half-open rectangle ``[r0, r1) × [c0, c1)``."""
        if _OPS:
            bump("load_queries")
        G = self.G
        return int(G[r1, c1] - G[r0, c1] - G[r1, c0] + G[r0, c0])

    def rect_loads(self, coords: np.ndarray) -> np.ndarray:
        """Loads of many rectangles at once — one vectorized 4-corner gather.

        ``coords`` is an ``(k, 4)`` int array of ``r0, r1, c0, c1`` rows
        (the layout of :meth:`repro.core.partition.Partition.coords`).
        """
        r0, r1, c0, c1 = coords.T
        G = self.G
        return G[r1, c1] - G[r0, c1] - G[r1, c0] + G[r0, c0]

    def _axis_prefix_ref(self, axis: int, lo: int, hi: int | None) -> np.ndarray:
        if axis == 0:
            hi = self.n2 if hi is None else hi
            return self.G[:, hi] - self.G[:, lo]
        elif axis == 1:
            hi = self.n1 if hi is None else hi
            return self.G[hi, :] - self.G[lo, :]
        raise ParameterError(f"axis must be 0 or 1, got {axis}")

    def cells_dense(self) -> np.ndarray:
        """The load matrix ``A`` reconstructed from ``Γ`` (O(n1·n2) memory)."""
        return np.diff(np.diff(self.G, axis=0), axis=1)

    def max_element(self) -> int:
        """Largest single cell load (lower bound ``max A[x][y]`` of §2.1).

        A pure property of ``Γ``, computed once per instance: the double
        ``np.diff`` allocates two full-matrix temporaries, which the exact
        algorithms would otherwise re-pay on every lower-bound evaluation.
        """
        if self._max_el is None:
            # Reconstruct cell loads from Γ by double differencing; vectorized.
            d = np.diff(np.diff(self.G, axis=0), axis=1)
            self._max_el = int(d.max()) if d.size else 0
        return self._max_el

    def min_element(self) -> int:
        """Smallest single cell load (the ``min A[x][y]`` of the Δ bound).

        Cached like :meth:`max_element` — same double-diff temporary, same
        repeated-bound-evaluation callers.
        """
        if self._min_el is None:
            d = np.diff(np.diff(self.G, axis=0), axis=1)
            self._min_el = int(d.min()) if d.size else 0
        return self._min_el

    def transpose(self) -> "PrefixSum2D":
        """Prefix of the transposed matrix (for -VER algorithm variants).

        With the perf layer enabled the transposed prefix is built once and
        reused (the -BEST orientation wrappers and repeated figure sweeps
        otherwise re-copy ``Γᵀ`` on every call); both directions share the
        link, so ``pref.transpose().transpose() is pref``.

        Caching is adaptive, like the projection memo: pinning ``Γᵀ`` to
        the instance extends its lifetime and ties the pair into a reference
        cycle (freed by the cycle collector, not refcounting), which on
        small matrices costs more than the copy it saves.  The cache engages
        above :func:`~repro.perf.config.cache_min_cells` cells — or whenever
        a sweep is active, because the sweep stores key warm-start facts by
        object identity and the -VER variants only accumulate facts if every
        call sees the *same* transposed prefix.  Below the threshold the
        perf layer still copies (the per-stripe band queries of the jagged
        heuristics want contiguous rows) but skips the constructor's border
        re-validation — ``Γᵀ``'s zero border *is* ``Γ``'s zero border.
        """
        if perf_enabled():
            if self._T is None and (self._reuse_default() or sweep_active()):
                T = self._transpose_unvalidated()
                T._T = self
                self._T = T
            if self._T is not None:
                return self._T
            return self._transpose_unvalidated()
        return PrefixSum2D(np.ascontiguousarray(self.G.T), is_prefix=True)

    def _transpose_unvalidated(self) -> "PrefixSum2D":
        """Contiguous transposed prefix without re-running border validation.

        The constructor's zero-border check is a proof obligation for
        *external* prefix arrays; ``Γᵀ`` of an already-validated ``Γ``
        satisfies it by construction, so the perf path skips the two
        full-border scans and seeds the size- and max-element slots (both
        are transpose-invariant) instead of re-resolving them.
        """
        T = PrefixSum2D.__new__(PrefixSum2D)
        T.G = np.ascontiguousarray(self.G.T)
        T.n1 = self.n2
        T.n2 = self.n1
        T._cache = None
        T._cache_default = self._cache_default  # same n1·n2 cell count
        T._max_el = self._max_el  # same multiset of cell loads
        T._min_el = self._min_el
        T._T = None
        return T


MatrixLike = Union[np.ndarray, PrefixSum2D, "LoadView"]


def prefix_2d(A: MatrixLike) -> "LoadView":
    """Coerce a raw matrix or an existing substrate to a load substrate.

    Existing substrates (dense :class:`PrefixSum2D` or any other
    :class:`LoadView`, e.g. ``SparsePrefix2D``) pass through unchanged, so
    callers that pre-build a sparse substrate keep it across the whole
    solver stack.  Raw arrays densify into :class:`PrefixSum2D`; automatic
    density dispatch lives in :func:`repro.core.sparse.auto_substrate` and
    is opt-in at the instance-construction layer, not here — solver-internal
    coercions must never silently change substrate.
    """
    if isinstance(A, PrefixSum2D):
        pref: "LoadView" = A
    elif isinstance(A, np.ndarray):
        pref = PrefixSum2D(A)
    elif isinstance(A, LoadView):
        pref = A
    else:
        pref = PrefixSum2D(A)
    if _OPS:
        gauge("substrate_bytes", pref.nbytes)
    return pref
