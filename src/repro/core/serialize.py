"""Partition (de)serialization: JSON-able dicts and .npz checkpoints.

A downstream application needs to ship the decomposition to every rank and
reload it across restarts; the rectangle representation is tiny ("their
compact representation", §1), so a partition round-trips through a plain
dict of ints.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .errors import ParameterError
from .partition import Partition
from .rectangle import Rect

__all__ = ["partition_to_dict", "partition_from_dict", "save_partition", "load_partition"]

_FORMAT = "repro-partition-v1"


def partition_to_dict(part: Partition) -> dict:
    """JSON-able representation: shape, method, rectangle coordinate rows.

    Structure metadata that is plain data (stripe cuts, grid cuts) is kept;
    callables and trees are dropped — the rectangles alone reconstruct the
    partition, only the O(log) indexer is lost.
    """
    meta = {}
    for key in ("stripe_cuts", "row_cuts", "col_cuts", "orientation", "iterations"):
        if key in part.meta:
            val = part.meta[key]
            if isinstance(val, np.ndarray):
                val = val.tolist()
            elif isinstance(val, (list, tuple)) and val and isinstance(val[0], np.ndarray):
                val = [v.tolist() for v in val]
            meta[key] = val
    return {
        "format": _FORMAT,
        "shape": list(part.shape),
        "method": part.method,
        "rects": [[r.r0, r.r1, r.c0, r.c1] for r in part.rects],
        "meta": meta,
    }


def partition_from_dict(data: dict) -> Partition:
    """Rebuild a partition from :func:`partition_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ParameterError(f"not a {_FORMAT} payload")
    rects = [Rect(*map(int, row)) for row in data["rects"]]
    return Partition(
        rects,
        tuple(data["shape"]),
        method=data.get("method", ""),
        meta=data.get("meta", {}),
    )


def save_partition(part: Partition, path: str | Path) -> Path:
    """Write a partition as JSON (``.json``) or NumPy archive (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".npz":
        np.savez_compressed(
            path,
            coords=part.coords(),
            shape=np.array(part.shape, dtype=np.int64),
            method=np.array(part.method),
        )
    else:
        path.write_text(json.dumps(partition_to_dict(part)))
    return path


def load_partition(path: str | Path) -> Partition:
    """Read a partition written by :func:`save_partition`."""
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as data:
            coords = data["coords"]
            shape = tuple(int(x) for x in data["shape"])
            method = str(data["method"])
        rects = [Rect(*map(int, row)) for row in coords]
        return Partition(rects, shape, method=method)
    return partition_from_dict(json.loads(path.read_text()))
