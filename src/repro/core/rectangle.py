"""Axis-aligned rectangles with half-open index semantics.

A rectangle ``Rect(r0, r1, c0, c1)`` covers matrix cells ``(i, j)`` with
``r0 <= i < r1`` and ``c0 <= j < c1``.  The paper uses inclusive coordinates
``(x1, x2, y1, y2)``; the half-open convention used here maps directly onto
NumPy slices (``A[r0:r1, c0:c1]``) and removes the off-by-one terms from the
prefix-sum formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """Half-open rectangle ``[r0, r1) × [c0, c1)``."""

    r0: int
    r1: int
    c0: int
    c1: int

    def __post_init__(self) -> None:
        if self.r1 < self.r0 or self.c1 < self.c0:
            raise ValueError(f"malformed rectangle {self!r}")

    @property
    def height(self) -> int:
        """Number of rows covered."""
        return self.r1 - self.r0

    @property
    def width(self) -> int:
        """Number of columns covered."""
        return self.c1 - self.c0

    @property
    def area(self) -> int:
        """Number of cells covered."""
        return self.height * self.width

    @property
    def is_empty(self) -> bool:
        """True when the rectangle covers no cell."""
        return self.r1 == self.r0 or self.c1 == self.c0

    def contains(self, i: int, j: int) -> bool:
        """Whether cell ``(i, j)`` lies inside this rectangle."""
        return self.r0 <= i < self.r1 and self.c0 <= j < self.c1

    def intersect(self, other: "Rect") -> Optional["Rect"]:
        """Intersection rectangle, or None when the interiors are disjoint."""
        r0 = max(self.r0, other.r0)
        r1 = min(self.r1, other.r1)
        c0 = max(self.c0, other.c0)
        c1 = min(self.c1, other.c1)
        if r0 >= r1 or c0 >= c1:
            return None
        return Rect(r0, r1, c0, c1)

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one cell."""
        return (
            self.r0 < other.r1
            and other.r0 < self.r1
            and self.c0 < other.c1
            and other.c0 < self.c1
        )

    def transpose(self) -> "Rect":
        """Swap the row and column axes (used by -VER algorithm variants)."""
        return Rect(self.c0, self.c1, self.r0, self.r1)

    def shift(self, dr: int, dc: int) -> "Rect":
        """Translate by ``(dr, dc)`` (used when lifting sub-problem solutions)."""
        return Rect(self.r0 + dr, self.r1 + dr, self.c0 + dc, self.c1 + dc)

    def to_inclusive(self) -> tuple[int, int, int, int]:
        """Coordinates in the paper's inclusive ``(x1, x2, y1, y2)`` convention.

        Only valid for non-empty rectangles.
        """
        if self.is_empty:
            raise ValueError("empty rectangle has no inclusive form")
        return (self.r0, self.r1 - 1, self.c0, self.c1 - 1)

    def cells(self) -> Iterator[tuple[int, int]]:
        """Iterate over covered cells (test/debug helper; O(area))."""
        for i in range(self.r0, self.r1):
            for j in range(self.c0, self.c1):
                yield (i, j)

    def boundary_length(self, n1: int, n2: int) -> int:
        """Number of cell edges shared with *other* cells of an ``n1×n2`` grid.

        This is the rectangle perimeter minus the portions lying on the
        matrix border — the communication volume proxy of the paper's
        future-work discussion (a cell only talks to its 4-neighbours).
        """
        if self.is_empty:
            return 0
        per = 0
        if self.r0 > 0:
            per += self.width
        if self.r1 < n1:
            per += self.width
        if self.c0 > 0:
            per += self.height
        if self.c1 < n2:
            per += self.height
        return per
