"""Evaluation instances: synthetic classes, PIC-MAG and SLAC substitutes (§4.1)."""

from .mesh import CavityConfig, slac_instance
from .pic import PICConfig, PICMagDataset, PICMagSimulator
from .rendering import render_scene
from .spmv import rmat_edges, spmv_instance
from .synthetic import (
    SYNTHETIC_CLASSES,
    diagonal,
    make_instance,
    multi_peak,
    peak,
    uniform,
)

__all__ = [
    "CavityConfig",
    "slac_instance",
    "PICConfig",
    "PICMagDataset",
    "PICMagSimulator",
    "render_scene",
    "rmat_edges",
    "spmv_instance",
    "SYNTHETIC_CLASSES",
    "diagonal",
    "make_instance",
    "multi_peak",
    "peak",
    "uniform",
]
