"""Field model for the PIC-MAG substitute (see DESIGN.md §4).

The real PIC-MAG data comes from a 3D hybrid particle-in-cell simulation of
the solar wind hitting the Earth's magnetosphere [Karimabadi et al. 2006].
For the reproduction we only need the *load matrices* such a code produces:
particle densities shaped by a magnetized obstacle in a streaming plasma.

We model the out-of-plane magnetic field of a 2D dipole sitting in the
domain.  A charged particle moving in a purely out-of-plane field rotates its
velocity at the local gyrofrequency ``ω ∝ |B|``, which for a 2D dipole falls
off as ``1/r³``.  That is all the physics needed to carve a magnetospheric
cavity, pile particles up at a bow-shock-like front and stretch a wake tail —
the spatial structure visible in the paper's Figure 2(a).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gyro_frequency", "DipoleField"]


def gyro_frequency(
    x: np.ndarray,
    y: np.ndarray,
    center: tuple[float, float],
    strength: float,
    softening: float = 0.02,
) -> np.ndarray:
    """Rotation rate ``ω(x, y)`` induced by a 2D dipole at ``center``.

    ``ω = strength / (r³ + softening³)`` with ``r`` the distance to the
    dipole; the softening keeps the field finite at the singularity (inside
    the absorption radius anyway).
    """
    dx = x - center[0]
    dy = y - center[1]
    r3 = (dx * dx + dy * dy) ** 1.5
    return strength / (r3 + softening**3)


class DipoleField:
    """Callable dipole field bound to a center and strength."""

    def __init__(self, center: tuple[float, float] = (0.62, 0.5), strength: float = 4e-4):
        self.center = (float(center[0]), float(center[1]))
        self.strength = float(strength)

    def omega(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gyrofrequency at particle positions."""
        return gyro_frequency(x, y, self.center, self.strength)

    def distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Distance to the dipole center."""
        return np.hypot(x - self.center[0], y - self.center[1])
