"""PIC-MAG snapshot dataset with the paper's cadence and a disk cache.

The paper extracts "the distribution of the particles every 500 iterations of
the simulations for the first 33,500 iterations" (§4.1).
:class:`PICMagDataset` reproduces that cadence on the substitute simulator,
memoizes snapshots in memory, and optionally persists them to an ``.npz``
cache so the benchmark suite does not re-run the particle pusher.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ...config import env_str
from ...core.errors import ParameterError
from .simulator import PICConfig, PICMagSimulator

__all__ = ["PICMagDataset", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE`` or ``~/.cache/repro``."""
    env = env_str("REPRO_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class PICMagDataset:
    """Snapshots of the PIC-MAG substitute every ``period`` iterations.

    Parameters
    ----------
    config:
        Simulator configuration (grid size, particle count, seed, ...).
    period:
        Snapshot cadence in iterations (500 in the paper).
    max_iteration:
        Last snapshot iteration (33 500 in the paper).
    cache:
        When true, snapshots are persisted under :func:`default_cache_dir`
        keyed by the configuration.
    """

    def __init__(
        self,
        config: PICConfig | None = None,
        *,
        period: int = 500,
        max_iteration: int = 33_500,
        cache: bool = True,
    ):
        if period <= 0:
            raise ParameterError("period must be positive")
        self.config = config or PICConfig()
        self.period = int(period)
        self.max_iteration = int(max_iteration)
        self._snapshots: dict[int, np.ndarray] = {}
        self._sim: PICMagSimulator | None = None
        self._cache_path: Path | None = None
        if cache:
            c = self.config
            key = (
                f"picmag_g{c.grid}_p{c.particles}_s{c.seed}_w{c.wind}"
                f"_d{c.dipole_strength}_b{c.base_load}_l{c.particle_load}"
                f"_per{self.period}_max{self.max_iteration}.npz"
            )
            self._cache_path = default_cache_dir() / key
            self._load_cache()

    # ------------------------------------------------------------------
    @property
    def iterations(self) -> list[int]:
        """All snapshot iterations: ``0, period, 2·period, …, max_iteration``."""
        return list(range(0, self.max_iteration + 1, self.period))

    def snapshot(self, iteration: int) -> np.ndarray:
        """Load matrix at ``iteration`` (must be a multiple of the cadence)."""
        if iteration % self.period != 0 or not (0 <= iteration <= self.max_iteration):
            raise ParameterError(
                f"iteration must be a multiple of {self.period} in "
                f"[0, {self.max_iteration}], got {iteration}"
            )
        if iteration not in self._snapshots:
            self._advance_to(iteration)
        return self._snapshots[iteration]

    def snapshots(self, iterations: list[int] | None = None):
        """Yield ``(iteration, load_matrix)`` pairs in increasing order."""
        for it in sorted(iterations if iterations is not None else self.iterations):
            yield it, self.snapshot(it)

    def stream(
        self,
        iterations: list[int] | None = None,
        *,
        substrate: str = "dense",
    ):
        """Scenario driver: yield ``(iteration, LoadView)`` pairs.

        The dynamic-loop entry point: each snapshot is wrapped in a load
        substrate ready for :meth:`repro.runtime.BSPSimulator.run` (which
        passes substrates through undensified).  ``substrate`` selects the
        wrapping:

        * ``"dense"`` — :class:`~repro.core.prefix.PrefixSum2D` (the full
          prefix grid Γ);
        * ``"sparse"`` — :class:`~repro.core.sparse.SparsePrefix2D` (CSR
          prefixes; right for mostly-empty grids);
        * ``"auto"`` — density-dispatched via
          :func:`~repro.core.sparse.auto_substrate`.
        """
        from ...core.prefix import PrefixSum2D
        from ...core.sparse import SparsePrefix2D, auto_substrate

        wrap = {
            "dense": PrefixSum2D,
            "sparse": SparsePrefix2D,
            "auto": auto_substrate,
        }.get(substrate)
        if wrap is None:
            raise ParameterError(
                f"substrate must be dense|sparse|auto, got {substrate!r}"
            )
        for it, A in self.snapshots(iterations):
            yield it, wrap(A)

    # ------------------------------------------------------------------
    def _advance_to(self, iteration: int) -> None:
        if self._sim is None:
            self._sim = PICMagSimulator(self.config)
        sim = self._sim
        if sim.iteration > iteration:
            # deterministic restart (snapshots were cached out of order)
            self._sim = sim = PICMagSimulator(self.config)
        while sim.iteration <= iteration:
            it = sim.iteration
            if it % self.period == 0 and it not in self._snapshots:
                self._snapshots[it] = sim.load_matrix()
            if it >= iteration:
                break
            sim.step(min(self.period, iteration - it))
        self._save_cache()

    # ------------------------------------------------------------------
    def _load_cache(self) -> None:
        p = self._cache_path
        if p is None or not p.exists():
            return
        with np.load(p) as data:
            for name in data.files:
                self._snapshots[int(name)] = data[name]

    def _save_cache(self) -> None:
        p = self._cache_path
        if p is None:
            return
        p.parent.mkdir(parents=True, exist_ok=True)
        tmp = p.with_suffix(".tmp.npz")
        np.savez_compressed(tmp, **{str(k): v for k, v in self._snapshots.items()})
        tmp.replace(p)
