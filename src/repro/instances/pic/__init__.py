"""PIC-MAG substitute: particle-in-cell-like load matrices (DESIGN.md §4)."""

from .dataset import PICMagDataset, default_cache_dir
from .fields import DipoleField, gyro_frequency
from .simulator import PICConfig, PICMagSimulator

__all__ = [
    "PICMagDataset",
    "default_cache_dir",
    "DipoleField",
    "gyro_frequency",
    "PICConfig",
    "PICMagSimulator",
]
