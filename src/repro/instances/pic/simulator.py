"""Vectorized 2D particle pusher for the PIC-MAG substitute.

The simulator advances ``N`` particles in the unit square:

* a solar-wind drift ``u = (u_wind, 0)`` blows particles left → right;
* the dipole field rotates velocities at the local gyrofrequency (a Boris-like
  velocity rotation, exact for out-of-plane B);
* a small velocity diffusion models thermal spread;
* particles leaving the domain or entering the absorption radius around the
  dipole are recycled as fresh solar wind at the left edge.

Load matrices are particle-count histograms on an ``n × n`` grid plus a
uniform base load, scaled so that the max/min cell ratio Δ lands in the
paper's PIC-MAG band (Δ ∈ [1.21, 1.51], §4.1).  Everything is NumPy; the
per-step cost is O(N).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fields import DipoleField

__all__ = ["PICConfig", "PICMagSimulator"]


def _box_smooth(H: np.ndarray, half: int) -> np.ndarray:
    """Box-average ``H`` over a ``(2·half+1)²`` window with clamped edges.

    Implemented with an integral image (two cumsums + four gathers), so the
    cost is O(cells) independent of the window size.
    """
    if half <= 0:
        return H
    n1, n2 = H.shape
    P = np.zeros((n1 + 1, n2 + 1), dtype=np.float64)
    np.cumsum(H, axis=0, out=P[1:, 1:])
    np.cumsum(P[1:, 1:], axis=1, out=P[1:, 1:])
    i = np.arange(n1)
    j = np.arange(n2)
    r0 = np.maximum(i - half, 0)
    r1 = np.minimum(i + half + 1, n1)
    c0 = np.maximum(j - half, 0)
    c1 = np.minimum(j + half + 1, n2)
    S = P[np.ix_(r1, c1)] - P[np.ix_(r0, c1)] - P[np.ix_(r1, c0)] + P[np.ix_(r0, c0)]
    area = (r1 - r0)[:, None] * (c1 - c0)[None, :]
    return S / area


@dataclass(frozen=True)
class PICConfig:
    """Tunable parameters of the PIC-MAG substitute.

    The defaults are calibrated (see ``tests/test_pic.py``) so snapshot load
    matrices have Δ inside the paper's reported [1.21, 1.51] window.
    """

    grid: int = 256  #: load-matrix resolution (n1 = n2 = grid)
    particles: int = 60_000  #: particle count
    seed: int = 2011  #: RNG seed (deterministic datasets)
    wind: float = 0.004  #: solar-wind drift per step
    thermal: float = 0.0015  #: velocity diffusion per step
    dipole_center: tuple[float, float] = (0.62, 0.5)
    dipole_strength: float = 1.1e-4  #: gyrofrequency scale
    max_rotation: float = 0.6  #: cap on the per-step gyro rotation (radians)
    absorb_radius: float = 0.045  #: recycling radius around the dipole
    base_load: int = 1000  #: uniform per-cell computation cost
    particle_load: int = 26  #: cost contribution scale of the local density
    smooth: int = 3  #: box half-width for density smoothing (cells)
    substeps: int = 1  #: pushes per reported "iteration"


class PICMagSimulator:
    """Deterministic particle-in-cell-like simulator producing load matrices."""

    def __init__(self, config: PICConfig | None = None):
        self.config = config or PICConfig()
        c = self.config
        self.rng = np.random.default_rng(c.seed)
        self.field = DipoleField(c.dipole_center, c.dipole_strength)
        n = c.particles
        self.x = self.rng.uniform(0.0, 1.0, n)
        self.y = self.rng.uniform(0.0, 1.0, n)
        self.vx = np.full(n, c.wind) + self.rng.normal(0, c.thermal, n)
        self.vy = self.rng.normal(0, c.thermal, n)
        self.iteration = 0

    # ------------------------------------------------------------------
    def _recycle(self, mask: np.ndarray) -> None:
        """Re-inject particles as fresh solar wind at the left edge."""
        k = int(mask.sum())
        if k == 0:
            return
        c = self.config
        self.x[mask] = self.rng.uniform(0.0, 0.02, k)
        self.y[mask] = self.rng.uniform(0.0, 1.0, k)
        self.vx[mask] = c.wind * self.rng.uniform(0.8, 1.2, k)
        self.vy[mask] = self.rng.normal(0, c.thermal, k)

    def step(self, iterations: int = 1) -> None:
        """Advance the simulation by ``iterations`` reported iterations."""
        c = self.config
        for _ in range(iterations * c.substeps):
            # velocity rotation by the local gyrofrequency (out-of-plane B);
            # the cap keeps near-dipole orbits resolvable at this step size
            w = np.minimum(self.field.omega(self.x, self.y), c.max_rotation)
            cw, sw = np.cos(w), np.sin(w)
            vx = cw * self.vx - sw * self.vy
            vy = sw * self.vx + cw * self.vy
            # thermal diffusion + drift restoring the wind
            vx += 0.02 * (c.wind - vx)
            self.vx = vx + self.rng.normal(0, c.thermal * 0.05, len(vx))
            self.vy = vy + self.rng.normal(0, c.thermal * 0.05, len(vy))
            self.x += self.vx
            self.y += self.vy
            out = (
                (self.x < 0.0)
                | (self.x >= 1.0)
                | (self.y < 0.0)
                | (self.y >= 1.0)
                | (self.field.distance(self.x, self.y) < c.absorb_radius)
            )
            self._recycle(out)
        self.iteration += iterations

    # ------------------------------------------------------------------
    def density(self) -> np.ndarray:
        """Particle counts per grid cell (``grid × grid`` int64)."""
        n = self.config.grid
        ix = np.clip((self.x * n).astype(np.int64), 0, n - 1)
        iy = np.clip((self.y * n).astype(np.int64), 0, n - 1)
        counts = np.bincount(ix * n + iy, minlength=n * n)
        return counts.reshape(n, n).astype(np.int64)

    def load_matrix(self) -> np.ndarray:
        """Current load matrix: base load plus density-proportional cost.

        The raw histogram is box-smoothed (a cheap stand-in for the particle
        shape functions of a real PIC deposit) and scaled by its mean, so the
        matrix keeps a stable Δ band across the run as structures sharpen.
        """
        c = self.config
        dens = _box_smooth(self.density().astype(np.float64), c.smooth)
        mean = max(dens.mean(), 1e-9)
        load = c.base_load + np.rint(dens * (c.particle_load / mean)).astype(np.int64)
        return load

    def delta(self) -> float:
        """Current max/min cell-load ratio Δ (finite: loads are positive)."""
        A = self.load_matrix()
        return float(A.max() / A.min())
