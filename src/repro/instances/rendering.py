"""Image-rendering workload generator (the intro's third application class).

The paper motivates rectangle partitioning with "image rendering
algorithms" [4] — sort-first parallel volume rendering assigns screen-space
tiles to processors, and the per-pixel cost follows the scene's depth
complexity.  This generator produces such screen-space load matrices: a
collection of random ellipse "objects" is splatted onto the screen; each
pixel's load is a base shading cost plus the summed per-object costs of the
objects covering it (cost ∝ object area⁻¹·weight, i.e. small dense objects
are expensive per pixel).

Deterministic under a seed, fully vectorized (one mask per object).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError

__all__ = ["render_scene"]


def render_scene(
    n: int,
    *,
    objects: int = 120,
    base_cost: int = 10,
    cost_scale: float = 60.0,
    cluster: float = 0.35,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Screen-space load matrix for a random scene of ``objects`` ellipses.

    Parameters
    ----------
    n:
        Screen resolution (``n × n``).
    objects:
        Number of ellipses splatted.
    base_cost:
        Per-pixel cost with no geometry (ray setup / background).
    cost_scale:
        Per-object per-pixel cost multiplier.
    cluster:
        Fraction of objects drawn near the scene's focus point (depth
        complexity is spatially clustered in real scenes, which is what
        makes uniform tiling imbalanced).
    seed:
        RNG seed or generator.
    """
    if n <= 0 or objects < 0:
        raise ParameterError("need n > 0 and objects >= 0")
    if not (0.0 <= cluster <= 1.0):
        raise ParameterError("cluster must be in [0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    ii, jj = np.meshgrid(
        np.arange(n, dtype=np.float64), np.arange(n, dtype=np.float64), indexing="ij"
    )
    load = np.full((n, n), float(base_cost))
    focus = rng.uniform(0.25 * n, 0.75 * n, size=2)
    for _ in range(objects):
        if rng.uniform() < cluster:
            center = focus + rng.normal(0, 0.08 * n, size=2)
        else:
            center = rng.uniform(0, n, size=2)
        a = rng.uniform(0.02, 0.12) * n  # semi-axes
        b = rng.uniform(0.02, 0.12) * n
        theta = rng.uniform(0, np.pi)
        ct, st = np.cos(theta), np.sin(theta)
        x = ii - center[0]
        y = jj - center[1]
        u = (x * ct + y * st) / a
        v = (-x * st + y * ct) / b
        mask = (u * u + v * v) <= 1.0
        # smaller objects cost more per covered pixel (finer shading)
        per_pixel = cost_scale * (0.05 * n) ** 2 / (a * b)
        load[mask] += per_pixel
    return np.maximum(np.rint(load).astype(np.int64), 1)
