"""Synthetic load-matrix generators (paper §4.1, Figure 2(c)–(f)).

Four classes of square matrices:

* **uniform** — each cell load uniform in ``[1000, 1000·Δ]`` for a target
  max/min ratio Δ;
* **diagonal / peak / multi-peak** — each cell draws a number uniformly in
  ``[0, #cells]`` and divides it by the Euclidean distance to a reference
  point (+0.1 to avoid dividing by zero).  The reference point is the closest
  point on the main diagonal (diagonal), one random point (peak), or the
  closest of several random points (multi-peak, 3 points in the paper).

All generators are deterministic given a seed and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError

__all__ = ["uniform", "diagonal", "peak", "multi_peak", "make_instance", "SYNTHETIC_CLASSES"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform(
    n: int, delta: float = 1.2, seed: int | np.random.Generator | None = 0, *, n2: int | None = None
) -> np.ndarray:
    """Uniform instance: loads uniform in ``[1000, 1000·Δ]`` (int64).

    ``Δ >= 1`` controls the max/min element ratio of §3.2's theorems.
    """
    if delta < 1.0:
        raise ParameterError(f"delta must be >= 1, got {delta}")
    rng = _rng(seed)
    n2 = n if n2 is None else n2
    lo, hi = 1000, int(round(1000 * delta))
    return rng.integers(lo, hi + 1, size=(n, n2), dtype=np.int64)


def _distance_based(n: int, dist: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Common body of the diagonal/peak/multi-peak rules."""
    ncells = float(n) * n
    u = rng.uniform(0.0, ncells, size=(n, n))
    vals = u / (dist + 0.1)
    # floor to integers; keep cells positive (the paper's classes are strictly
    # positive loads, Δ being defined for them is not required)
    return np.maximum(vals.astype(np.int64), 1)


def _grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    i = np.arange(n, dtype=np.float64)
    return np.meshgrid(i, i, indexing="ij")


def diagonal(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Diagonal instance: reference point = closest point on the main diagonal.

    The closest diagonal point to ``(i, j)`` is ``((i+j)/2, (i+j)/2)``, at
    distance ``|i - j| / sqrt(2)``.
    """
    rng = _rng(seed)
    ii, jj = _grid(n)
    dist = np.abs(ii - jj) / np.sqrt(2.0)
    return _distance_based(n, dist, rng)


def peak(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Peak instance: one random reference point chosen up front."""
    rng = _rng(seed)
    ref = rng.uniform(0, n, size=2)
    ii, jj = _grid(n)
    dist = np.hypot(ii - ref[0], jj - ref[1])
    return _distance_based(n, dist, rng)


def multi_peak(
    n: int, seed: int | np.random.Generator | None = 0, *, peaks: int = 3
) -> np.ndarray:
    """Multi-peak instance: the closest of ``peaks`` random points (3 in the paper)."""
    if peaks < 1:
        raise ParameterError("peaks must be >= 1")
    rng = _rng(seed)
    refs = rng.uniform(0, n, size=(peaks, 2))
    ii, jj = _grid(n)
    dist = np.full((n, n), np.inf)
    for r in refs:
        np.minimum(dist, np.hypot(ii - r[0], jj - r[1]), out=dist)
    return _distance_based(n, dist, rng)


SYNTHETIC_CLASSES = ("uniform", "diagonal", "peak", "multi-peak")


def make_instance(
    kind: str, n: int, seed: int | np.random.Generator | None = 0, **kw
) -> np.ndarray:
    """Dispatch on the synthetic class name used in the paper's figures."""
    key = kind.lower().replace("_", "-")
    if key == "uniform":
        return uniform(n, seed=seed, **kw)
    if key == "diagonal":
        return diagonal(n, seed=seed, **kw)
    if key == "peak":
        return peak(n, seed=seed, **kw)
    if key in ("multi-peak", "multipeak"):
        return multi_peak(n, seed=seed, **kw)
    raise ParameterError(f"unknown synthetic class {kind!r}; choose from {SYNTHETIC_CLASSES}")
