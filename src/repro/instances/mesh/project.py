"""Projection and discretization of 3D mesh vertices to a 2D load matrix.

Matches the paper's SLAC construction: project the mesh onto a 2D plane and
histogram the vertices at a chosen granularity; each vertex contributes one
unit of computation.  The result is a sparse matrix containing zeros, so the
Δ = max/min ratio is undefined ("Notice that the matrix contains zeroes,
therefore Δ is undefined", §4.1).
"""

from __future__ import annotations

import numpy as np

from ...core.errors import ParameterError
from .cavity import CavityConfig, cavity_vertices

__all__ = ["project_vertices", "project_vertices_sparse", "slac_instance", "slac_sparse"]


def project_vertices(
    vertices: np.ndarray,
    n: int = 512,
    *,
    axes: tuple[int, int] = (0, 1),
    n2: int | None = None,
) -> np.ndarray:
    """Histogram 3D vertices onto an ``n × n2`` grid along two axes.

    Parameters
    ----------
    vertices:
        ``(N, 3)`` coordinates.
    n, n2:
        Grid resolution (``n2`` defaults to ``n``) — the paper's
        "granularity of the discretization".
    axes:
        Which coordinate pair spans the projection plane (default: the side
        view ``(z, x)``).
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise ParameterError("vertices must have shape (N, 3)")
    n2 = n if n2 is None else n2
    u = vertices[:, axes[0]]
    v = vertices[:, axes[1]]
    H, _, _ = np.histogram2d(
        u,
        v,
        bins=(n, n2),
        range=((u.min(), u.max() + 1e-12), (v.min(), v.max() + 1e-12)),
    )
    return H.astype(np.int64)


def project_vertices_sparse(
    vertices: np.ndarray,
    n: int = 512,
    *,
    axes: tuple[int, int] = (0, 1),
    n2: int | None = None,
):
    """Sparse-substrate twin of :func:`project_vertices` — never densifies.

    Same edges, same binning (digest-equal to the densified projection):
    the histogram runs as a triplet stream and the substrate builds via
    :func:`repro.core.sparse.substrate_from_triplets`, so peak memory is
    O(vertices + nnz) instead of O(n·n2).
    """
    from ...core.sparse import substrate_from_triplets
    from ..spmv import hist2d_triplets

    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise ParameterError("vertices must have shape (N, 3)")
    n2 = n if n2 is None else n2
    u = vertices[:, axes[0]]
    v = vertices[:, axes[1]]
    rows, cols, counts = hist2d_triplets(
        u,
        v,
        (n, n2),
        ((u.min(), u.max() + 1e-12), (v.min(), v.max() + 1e-12)),
    )
    return substrate_from_triplets(rows, cols, counts, (n, n2))


def slac_instance(
    n: int = 512, config: CavityConfig | None = None
) -> np.ndarray:
    """The SLAC substitute at resolution ``n × n`` (sparse, contains zeros)."""
    verts = cavity_vertices(config)
    return project_vertices(verts, n)


def slac_sparse(n: int = 512, config: CavityConfig | None = None):
    """Sparse-substrate SLAC substitute — the ``large``-profile entry point."""
    verts = cavity_vertices(config)
    return project_vertices_sparse(verts, n)
