"""Optional mesh-graph view of the cavity (uses networkx when available).

Not required by any partitioning algorithm — provided so the mesh example can
reason about vertex adjacency (e.g. per-processor cut edges when vertices are
assigned through the 2D projection), mirroring how a real application would
consume the partition.
"""

from __future__ import annotations

from .cavity import CavityConfig, cavity_vertices

__all__ = ["cavity_graph"]


def cavity_graph(config: CavityConfig | None = None, *, k_neighbors: int = 4):
    """Build a k-nearest-neighbour surface graph of the cavity vertices.

    Returns a ``networkx.Graph`` whose nodes are vertex indices with a
    ``pos`` attribute holding the 3D coordinate.  Requires :mod:`networkx`
    and :mod:`scipy` (both optional extras).
    """
    import networkx as nx
    from scipy.spatial import cKDTree

    verts = cavity_vertices(config)
    tree = cKDTree(verts)
    _, idx = tree.query(verts, k=k_neighbors + 1)
    g = nx.Graph()
    g.add_nodes_from((i, {"pos": verts[i]}) for i in range(len(verts)))
    for i, row in enumerate(idx):
        for j in row[1:]:
            g.add_edge(i, int(j))
    return g
