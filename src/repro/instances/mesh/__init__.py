"""SLAC substitute: synthetic cavity mesh, projection, sparse load matrices."""

from .cavity import CavityConfig, cavity_vertices, radius_profile
from .project import project_vertices, slac_instance

__all__ = [
    "CavityConfig",
    "cavity_vertices",
    "radius_profile",
    "project_vertices",
    "slac_instance",
]
