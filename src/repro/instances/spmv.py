"""Sparse matrix–vector multiplication workloads (intro refs [1]–[3]).

The paper's first application class is 2D-decomposed sparse linear algebra:
assigning a rectangle of the sparse matrix to each processor makes its work
proportional to the nonzeros inside the rectangle.  The load matrix is
therefore the *nonzero density histogram* of a sparse matrix at a chosen
blocking resolution.

Two synthetic sparsity models:

* ``rmat`` — recursive R-MAT quadrant sampling (power-law degrees, the
  skewed web/social-network regime where load-aware partitioners shine);
* ``mesh`` — a 5-point-stencil mesh matrix (banded, near-uniform rows; the
  structured-PDE regime).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError

__all__ = ["spmv_instance", "spmv_sparse", "rmat_edges", "hist2d_triplets"]


def rmat_edges(
    scale: int,
    edge_factor: int = 8,
    *,
    probs: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """R-MAT edge list: ``edge_factor · 2**scale`` edges over ``2**scale`` vertices.

    Each edge picks one of the four matrix quadrants per bit level with
    probabilities ``(a, b, c, d)`` — the Graph500 generator, vectorized over
    all edges at once (one random draw per bit level).
    """
    if scale <= 0 or edge_factor <= 0:
        raise ParameterError("need scale > 0 and edge_factor > 0")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ParameterError("quadrant probabilities must sum to 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n_edges = edge_factor * (1 << scale)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for _ in range(scale):
        # quadrant choice per bit level: P(col bit) = b + d, and the row bit
        # is drawn conditionally on the chosen column half
        r = rng.uniform(size=n_edges)
        col_bit = (r >= a + c).astype(np.int64)
        r2 = rng.uniform(size=n_edges)
        row_bit = np.where(
            col_bit == 1,
            (r2 >= b / (b + d)).astype(np.int64),
            (r2 >= a / (a + c)).astype(np.int64),
        )
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    return np.stack([rows, cols], axis=1)


def spmv_instance(
    n: int,
    *,
    model: str = "rmat",
    scale: int = 14,
    edge_factor: int = 8,
    mesh_size: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Nonzero-count load matrix of a synthetic sparse matrix at ``n × n`` blocks.

    ``model="rmat"`` histograms an R-MAT edge list (power-law skew, zeros in
    the tail quadrants); ``model="mesh"`` builds the 5-point stencil matrix
    of a ``mesh_size²`` grid (block-banded, near-uniform).
    """
    if n <= 0:
        raise ParameterError("n must be positive")
    key = model.lower()
    if key == "rmat":
        edges = rmat_edges(scale, edge_factor, seed=seed)
        size = 1 << scale
        H, _, _ = np.histogram2d(
            edges[:, 0], edges[:, 1], bins=n, range=((0, size), (0, size))
        )
        return H.astype(np.int64)
    if key == "mesh":
        k = mesh_size if mesh_size is not None else 256
        size = k * k
        idx = np.arange(size, dtype=np.int64)
        i, j = idx // k, idx % k
        rows = [idx]
        cols = [idx]
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            ok = (0 <= ni) & (ni < k) & (0 <= nj) & (nj < k)
            rows.append(idx[ok])
            cols.append((ni * k + nj)[ok])
        r = np.concatenate(rows)
        c = np.concatenate(cols)
        H, _, _ = np.histogram2d(r, c, bins=n, range=((0, size), (0, size)))
        return H.astype(np.int64)
    raise ParameterError(f"unknown model {model!r}; choose 'rmat' or 'mesh'")


def hist2d_triplets(
    x: np.ndarray,
    y: np.ndarray,
    bins: int | tuple[int, int],
    value_range: tuple[tuple[float, float], tuple[float, float]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets of the 2D histogram — bit-identical bins, O(points) memory.

    Replicates ``np.histogram2d(x, y, bins, range)`` binning exactly (same
    ``linspace`` edges, same right-side ``searchsorted``, same inclusive
    rightmost edge, same out-of-range exclusion) but returns only the
    *occupied* cells as ``(rows, cols, counts)`` instead of the dense
    histogram array.  This is what lets the ``large`` profile build a
    :class:`~repro.core.sparse.SparsePrefix2D` with the same digest as the
    densified instance, without the O(bins²) allocation.
    """
    bx_n, by_n = (bins, bins) if isinstance(bins, int) else (int(bins[0]), int(bins[1]))
    if bx_n <= 0 or by_n <= 0:
        raise ParameterError("bins must be positive")
    (x0, x1), (y0, y1) = value_range
    xe = np.linspace(x0, x1, bx_n + 1)
    ye = np.linspace(y0, y1, by_n + 1)
    bx = np.searchsorted(xe, x, side="right")
    by = np.searchsorted(ye, y, side="right")
    # histogramdd folds points sitting exactly on the rightmost edge into
    # the last bin; everything outside [lo, hi] is dropped
    bx[np.asarray(x) == xe[-1]] -= 1
    by[np.asarray(y) == ye[-1]] -= 1
    ok = (bx >= 1) & (bx <= bx_n) & (by >= 1) & (by <= by_n)
    keys = (bx[ok].astype(np.int64) - 1) * by_n + (by[ok].astype(np.int64) - 1)
    uniq, counts = np.unique(keys, return_counts=True)
    rows = uniq // by_n
    cols = uniq - rows * by_n
    return rows, cols, counts.astype(np.int64)


def spmv_sparse(
    n: int,
    *,
    model: str = "rmat",
    scale: int = 14,
    edge_factor: int = 8,
    mesh_size: int | None = None,
    seed: int | np.random.Generator | None = 0,
):
    """Sparse-substrate twin of :func:`spmv_instance` — never densifies.

    Same models, same parameters, same logical load matrix (digest-equal to
    ``spmv_instance`` with identical arguments): the histogram runs as a
    triplet stream through :func:`hist2d_triplets` and the substrate builds
    via :func:`repro.core.sparse.substrate_from_triplets`, so peak memory is
    O(edges + nnz) instead of O(n²).
    """
    from ..core.sparse import substrate_from_triplets

    if n <= 0:
        raise ParameterError("n must be positive")
    key = model.lower()
    if key == "rmat":
        edges = rmat_edges(scale, edge_factor, seed=seed)
        size = 1 << scale
        rows, cols, counts = hist2d_triplets(
            edges[:, 0], edges[:, 1], n, ((0, size), (0, size))
        )
        return substrate_from_triplets(rows, cols, counts, (n, n))
    if key == "mesh":
        k = mesh_size if mesh_size is not None else 256
        size = k * k
        idx = np.arange(size, dtype=np.int64)
        i, j = idx // k, idx % k
        r_parts = [idx]
        c_parts = [idx]
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            ok = (0 <= ni) & (ni < k) & (0 <= nj) & (nj < k)
            r_parts.append(idx[ok])
            c_parts.append((ni * k + nj)[ok])
        r = np.concatenate(r_parts)
        c = np.concatenate(c_parts)
        rows, cols, counts = hist2d_triplets(r, c, n, ((0, size), (0, size)))
        return substrate_from_triplets(rows, cols, counts, (n, n))
    raise ParameterError(f"unknown model {model!r}; choose 'rmat' or 'mesh'")
