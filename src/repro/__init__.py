"""repro — reproduction of *Partitioning Spatially Located Computations using
Rectangles* (Saule, Baş, Çatalyürek, IPDPS 2011).

The package partitions a 2D matrix of non-negative integer loads into ``m``
rectangles, minimizing the load of the most loaded rectangle.  The quickest
path::

    import numpy as np
    from repro import partition_2d, load_imbalance

    A = np.random.default_rng(0).integers(1000, 1201, (512, 512))
    part = partition_2d(A, 100, "JAG-M-HEUR")
    print(load_imbalance(A, part))

Sub-packages
------------
``repro.oned``
    1D interval partitioning (DirectCut, recursive bisection, Nicol,
    NicolPlus, DP, bisection, striped costs).
``repro.rectilinear`` / ``repro.jagged`` / ``repro.hierarchical``
    The 2D solution classes of the paper with their heuristics and optimal
    algorithms.
``repro.instances``
    Synthetic (uniform/diagonal/peak/multi-peak), PIC-MAG-like, and
    SLAC-like evaluation instances.
``repro.theory``
    The approximation guarantees of Theorems 1–4.
``repro.runtime``
    A BSP-style execution simulator with communication and migration costs.
``repro.experiments``
    Reproduction harness for every figure of the paper's evaluation.
"""

from .core import (
    InfeasibleError,
    InvalidPartitionError,
    ParameterError,
    Partition,
    PrefixSum1D,
    PrefixSum2D,
    Rect,
    ReproError,
    communication_volume,
    load_imbalance,
    lower_bound,
    max_boundary,
    migration_volume,
    upper_bound,
)
from .core.registry import ALGORITHMS, algorithm_names, partition_2d
from .oned import partition_1d

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "algorithm_names",
    "partition_2d",
    "partition_1d",
    "InfeasibleError",
    "InvalidPartitionError",
    "ParameterError",
    "Partition",
    "PrefixSum1D",
    "PrefixSum2D",
    "Rect",
    "ReproError",
    "communication_volume",
    "load_imbalance",
    "lower_bound",
    "max_boundary",
    "migration_volume",
    "upper_bound",
    "__version__",
]
