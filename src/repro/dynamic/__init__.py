"""Dynamic repartitioning with migration awareness (§5 future work)."""

from .incremental import IncrementalJagged, refine_jagged

__all__ = ["IncrementalJagged", "refine_jagged"]
