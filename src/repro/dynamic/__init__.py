"""Dynamic repartitioning with migration awareness (§5 future work)."""

from .incremental import IncrementalJagged, refine_jagged
from .policies import (
    EveryK,
    ImbalanceTriggered,
    MigrationBudgeted,
    RepartitionPolicy,
    StepContext,
    WarmStarted,
    drift_exceeds,
)

__all__ = [
    "IncrementalJagged",
    "refine_jagged",
    "RepartitionPolicy",
    "StepContext",
    "EveryK",
    "ImbalanceTriggered",
    "MigrationBudgeted",
    "WarmStarted",
    "drift_exceeds",
]
