"""Repartitioning policies for the dynamic BSP loop (paper §5).

The paper's future work asks to "integrate the proposed algorithms in a real
dynamic application and study their end-to-end effects", including data
migration.  :class:`repro.runtime.BSPSimulator` is that application side;
this module supplies the *when to repartition* half of the loop as pluggable
:class:`RepartitionPolicy` objects:

* :class:`EveryK` — repartition every ``k`` snapshots (the simulator's
  original hardwired behavior, extracted; ``k=0`` is a static
  decomposition);
* :class:`ImbalanceTriggered` — repartition only when the *current*
  partition's drift on the new snapshot exceeds a threshold against the
  exact ``L_avg``.  The test is one O(m) load query plus an exact rational
  comparison — no fresh solve is paid just to decide;
* :class:`MigrationBudgeted` — pay a candidate solve, but migrate only when
  the projected compute savings over a horizon amortize the ``γ``-priced
  migration volume, with hysteresis against threshold chatter;
* :class:`WarmStarted` — delegate the decision to an inner policy and route
  every per-snapshot solve through one long-lived sweep scope
  (:func:`repro.sweep.use_sweep`), optionally backed by a persistent
  :class:`~repro.sweep.store.SweepStore`.  Facts are digest-keyed, so a
  rerun over the same snapshot stream starts every solve warm while the
  partitions stay bit-identical to cold calls.

:class:`repro.dynamic.IncrementalJagged` is itself a policy (it subclasses
the base and re-produces a partition every snapshot — cheap refinement or
full rebuild), so all strategies compose with the simulator the same way.

Decision exactness: threshold comparisons against integer loads go through
:func:`drift_exceeds`, which evaluates ``value > (1 + threshold) · baseline``
as exact rationals.  The naive float form double-rounds and flips decisions
once loads near 2^62 (the same failure PR 5 pinned in
``Partition.imbalance``); ``tests/test_policies.py`` pins the flip.
Cost-model arithmetic (:class:`MigrationBudgeted`'s α/γ trade) is float by
design — unit costs are real-valued, like the heterogeneous speeds of
:mod:`repro.oned.hetero`.
"""
# repro-lint: disable-file=RPL003 — cost-model seconds are fractional by design

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, ContextManager, Optional

from ..core.errors import ParameterError
from ..core.metrics import migration_volume
from ..core.partition import Partition
from ..core.prefix import LoadView

__all__ = [
    "StepContext",
    "RepartitionPolicy",
    "EveryK",
    "ImbalanceTriggered",
    "MigrationBudgeted",
    "WarmStarted",
    "drift_exceeds",
]

#: the solver the simulator injects: ``(pref, m) -> Partition``
Partitioner = Callable[[LoadView, int], Partition]


def drift_exceeds(value: int, baseline: int, threshold: float) -> bool:
    """Exact ``value > (1 + threshold) · baseline`` for integer loads.

    Both sides are compared as exact rationals (``threshold`` contributes
    its exact binary value), so the decision is a pure function of the
    integers — no double rounding.  The naive float expression
    ``value > (1.0 + threshold) * baseline`` rounds ``baseline`` to 53 bits
    and the product once more, flipping decisions when loads near 2^62 sit
    within a few thousand of the boundary (pinned in
    ``tests/test_policies.py``).

    ``baseline <= 0`` degenerates to ``value > baseline`` — the exact limit
    of the formula for an empty baseline load.
    """
    value = int(value)
    baseline = int(baseline)
    if baseline <= 0:
        return value > baseline
    # value/baseline > 1 + threshold, cleared of denominators exactly
    return Fraction(value - baseline, baseline) > Fraction(threshold)


@dataclass(frozen=True)
class StepContext:
    """Everything a policy may consult when deciding one snapshot.

    ``part`` is the partition currently in place (``None`` before the first
    solve); ``pref`` is the new snapshot's load substrate; ``cost`` is the
    simulator's :class:`~repro.runtime.CostModel` (duck-typed: policies read
    ``alpha``/``gamma``).
    """

    index: int
    iteration: int
    pref: LoadView
    part: Optional[Partition]
    m: int
    cost: Any
    steps_per_snapshot: int = 1


class RepartitionPolicy:
    """Base class: when to repartition, and how to run the solve.

    The simulator calls, in order: :meth:`reset` once per run,
    :meth:`scope` to wrap the whole run (a context manager — the warm-start
    policy opens its sweep scope here), then per snapshot
    :meth:`should_repartition` and — only when it returned true —
    :meth:`solve`.  The base ``solve`` just invokes the simulator's
    partitioner; stateful strategies override it.

    Policies must be deterministic: the same snapshot stream and the same
    policy configuration produce the identical decision sequence and
    partitions (``tests/test_policies.py`` pins report equality across
    runs).
    """

    name = "policy"

    def reset(self) -> None:
        """Forget per-run state (the base policy keeps none)."""

    def scope(self) -> ContextManager[Any]:
        """Context wrapped around one whole simulated run (default: none)."""
        return nullcontext()

    def should_repartition(self, ctx: StepContext) -> bool:
        raise NotImplementedError

    def solve(self, partitioner: Partitioner, ctx: StepContext) -> Partition:
        """Produce the new partition (default: the injected partitioner)."""
        return partitioner(ctx.pref, ctx.m)


class EveryK(RepartitionPolicy):
    """Repartition every ``k`` snapshots — the extracted legacy behavior.

    ``k=1`` repartitions on every snapshot, ``k=0`` never after the first
    (a static decomposition).  Bit-compatible with the old
    ``BSPSimulator(repartition_every=k)`` hardwired rule, which this class
    now implements.
    """

    def __init__(self, k: int = 1) -> None:
        super().__init__()
        if k < 0:
            raise ParameterError(f"k must be non-negative, got {k}")
        self.k = int(k)
        self.name = f"every-{self.k}"

    def should_repartition(self, ctx: StepContext) -> bool:
        return ctx.part is None or (self.k > 0 and ctx.index % self.k == 0)


class ImbalanceTriggered(RepartitionPolicy):
    """Repartition when the current partition drifts past a threshold.

    The trigger is the exact test ``Lmax·m > (1 + threshold) · total`` —
    i.e. the current partition's imbalance on the *new* snapshot exceeds
    ``threshold``.  Deciding costs one vectorized O(m) load query against
    the new prefix; no fresh solve is paid per step (unlike
    :class:`~repro.dynamic.IncrementalJagged`, which must solve to compare
    refine against rebuild).
    """

    def __init__(self, threshold: float = 0.10) -> None:
        super().__init__()
        if threshold < 0:
            raise ParameterError("threshold must be non-negative")
        self.threshold = float(threshold)
        self.name = f"imbalance-{self.threshold:g}"

    def should_repartition(self, ctx: StepContext) -> bool:
        if ctx.part is None:
            return True
        total = ctx.pref.total
        if total == 0:
            return False
        lmax = ctx.part.max_load(ctx.pref)
        return drift_exceeds(lmax * ctx.m, total, self.threshold)


class MigrationBudgeted(RepartitionPolicy):
    """Repartition only when projected savings amortize the migration bill.

    Each snapshot pays one candidate solve; the candidate is installed only
    when the projected compute savings over the next ``horizon`` snapshots

    ``alpha · (Lmax(current) − Lmax(candidate)) · steps_per_snapshot · horizon``

    exceed ``hysteresis · gamma · migration_volume(current, candidate)``.
    ``hysteresis > 1`` demands a margin over break-even, suppressing chatter
    when the two sides are close; ``cooldown`` skips the candidate solve
    entirely for that many snapshots after a migration (the freshly
    installed partition is assumed near-optimal for a while).

    The trade itself is float cost-model arithmetic by design; the load and
    migration volumes feeding it are exact integers.
    """

    def __init__(
        self, *, horizon: int = 5, hysteresis: float = 1.0, cooldown: int = 0
    ) -> None:
        super().__init__()
        if horizon < 1:
            raise ParameterError("horizon must be >= 1")
        if hysteresis < 0:
            raise ParameterError("hysteresis must be non-negative")
        if cooldown < 0:
            raise ParameterError("cooldown must be non-negative")
        self.horizon = int(horizon)
        self.hysteresis = float(hysteresis)
        self.cooldown = int(cooldown)
        self.name = f"budgeted-h{self.horizon}"
        self.candidate_solves = 0
        self._since_migration = 0

    def reset(self) -> None:
        super().reset()
        self.candidate_solves = 0
        self._since_migration = 0

    # The candidate solve needs the simulator's partitioner, which only
    # solve() receives in the base protocol — so the decision is made
    # lazily: should_repartition() answers True whenever a candidate might
    # pay off (i.e. past the cooldown window), and solve() hands back the
    # *current* partition object unchanged when the trade says keep.  The
    # simulator treats a solve() returning the identical object as "kept":
    # no migration is billed and the step is not counted a repartition.

    def should_repartition(self, ctx: StepContext) -> bool:
        if ctx.part is None:
            return True
        if self._since_migration < self.cooldown:
            self._since_migration += 1
            return False
        return True

    def solve(self, partitioner: Partitioner, ctx: StepContext) -> Partition:
        if ctx.part is None:
            self._since_migration = 0
            return partitioner(ctx.pref, ctx.m)
        candidate = partitioner(ctx.pref, ctx.m)
        self.candidate_solves += 1
        cur_lmax = ctx.part.max_load(ctx.pref)
        new_lmax = candidate.max_load(ctx.pref)
        saving = (
            ctx.cost.alpha
            * float(cur_lmax - new_lmax)
            * ctx.steps_per_snapshot
            * self.horizon
        )
        bill = ctx.cost.gamma * float(
            migration_volume(ctx.part, candidate, ctx.pref)
        )
        if saving > self.hysteresis * bill:
            self._since_migration = 0
            return candidate
        self._since_migration += 1
        return ctx.part


class WarmStarted(RepartitionPolicy):
    """Route every per-snapshot solve through one warm sweep scope.

    Consecutive snapshots are near-identical instances; with a persistent
    :class:`~repro.sweep.store.SweepStore` attached, every instance's
    proven facts (bounds, probe staircases, witnesses, cut memos) are
    digest-keyed on disk, so a rerun over the same stream — the steady
    state of a long-running dynamic application that revisits load
    configurations — seeds each solve warm.  Results stay **bit-identical**
    to cold calls (the sweep engine's contract); only the work to reach
    them shrinks.

    The repartitioning *decision* is delegated to ``inner`` (default:
    :class:`EveryK` with ``k=1``).  ``store`` is a
    :class:`~repro.sweep.store.SweepStore`, a path, or ``None`` (ambient
    default, i.e. ``$REPRO_SWEEP_STORE``/:func:`repro.sweep.set_default_store`).
    """

    def __init__(
        self,
        inner: Optional[RepartitionPolicy] = None,
        *,
        store: Any = None,
    ) -> None:
        super().__init__()
        self.inner = inner if inner is not None else EveryK(1)
        self.store = store
        self.name = f"warm-{self.inner.name}"

    def reset(self) -> None:
        super().reset()
        self.inner.reset()

    def scope(self) -> ContextManager[Any]:
        from ..sweep import use_sweep

        return use_sweep(store=self.store)

    def should_repartition(self, ctx: StepContext) -> bool:
        return self.inner.should_repartition(ctx)

    def solve(self, partitioner: Partitioner, ctx: StepContext) -> Partition:
        return self.inner.solve(partitioner, ctx)
