"""Migration-aware dynamic repartitioning (paper §5 future work).

The paper closes with: "we plan to investigate … taking into account data
migration costs in dynamic applications."  This module implements the
natural first answer for the jagged class:

:class:`IncrementalJagged` keeps the *stripe structure* of the previous
m-way jagged partition and only re-optimizes the per-stripe column cuts on
each new load matrix.  Because a processor's stripe (and its position inside
the stripe) is stable, most cells keep their owner; a full JAG-M-HEUR
repartition is triggered only when the achievable imbalance under the frozen
stripes drifts past a threshold over the best fresh partition.

This trades balance for migration:

* refine-only step — cheap (P optimal 1D calls), low migration;
* full repartition — the paper's JAG-M-HEUR, as balanced as Figure 8, but
  moving much more data.

The strategy plugs into :class:`repro.runtime.BSPSimulator` via
:meth:`IncrementalJagged.partitioner`.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..jagged.common import build_jagged_partition
from ..jagged.m_heur import jag_m_heur
from ..oned.api import ONED_METHODS
from .policies import RepartitionPolicy, StepContext, drift_exceeds

__all__ = ["IncrementalJagged", "refine_jagged"]


def refine_jagged(
    previous: Partition, A: MatrixLike, *, oned: str = "nicolplus"
) -> Partition:
    """Re-optimize the column cuts of a jagged partition for a new matrix.

    The stripe cuts and per-stripe processor counts of ``previous`` are kept
    verbatim; each stripe's auxiliary dimension is re-partitioned optimally.
    ``previous`` must carry jagged metadata (``stripe_cuts``/``col_cuts``),
    i.e. come from a jagged algorithm or an earlier refinement.
    """
    if "stripe_cuts" not in previous.meta:
        raise ParameterError("previous partition is not jagged (no stripe_cuts meta)")
    pref = prefix_2d(A)
    transposed = bool(previous.meta.get("transposed", False))
    work = pref.transpose() if transposed else pref
    stripe_cuts = np.asarray(previous.meta["stripe_cuts"], dtype=np.int64)
    old_cols = previous.meta["col_cuts"]
    if int(stripe_cuts[-1]) != work.n1:
        raise ParameterError("previous partition does not match the matrix shape")
    solve = ONED_METHODS[oned]
    col_cuts = []
    for s in range(len(stripe_cuts) - 1):
        q = len(old_cols[s]) - 1
        band = work.band_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]), 0, work.n2)
        _, cc = solve(band, q)
        col_cuts.append(cc)
    part = build_jagged_partition(
        work, stripe_cuts, col_cuts, method="JAG-M-REFINE", pad_to=previous.m
    )
    part.meta["transposed"] = transposed
    if transposed:
        out = part.transpose().with_method("JAG-M-REFINE")
        out.meta["transposed"] = True
        out.meta["stripe_cuts"] = stripe_cuts
        out.meta["col_cuts"] = col_cuts
        return out
    return part


class IncrementalJagged(RepartitionPolicy):
    """Stateful repartitioner: refine cheaply, rebuild only when drifted.

    Also a :class:`~repro.dynamic.policies.RepartitionPolicy`: it produces a
    (refined or rebuilt) partition on *every* snapshot, so plugged into
    :class:`repro.runtime.BSPSimulator` via ``policy=`` its
    ``should_repartition`` is always true and ``solve`` runs :meth:`step`.
    The legacy :meth:`partitioner` adapter remains for the
    ``partitioner=``-argument route.

    The full-vs-refine decision compares exact integer loads through
    :func:`~repro.dynamic.policies.drift_exceeds` — the earlier float form
    ``refined > (1.0 + threshold) * fresh`` double-rounds and flips
    decisions once loads near 2^62 (regression pinned in
    ``tests/test_dynamic.py``).

    Parameters
    ----------
    m:
        Number of processors.
    threshold:
        Relative drift tolerance: a full repartition happens when the
        refined partition's max load exceeds ``(1 + threshold)`` times the
        max load of a fresh JAG-M-HEUR partition.
    oned:
        1D method used for the refinements.
    """

    def __init__(self, m: int, *, threshold: float = 0.10, oned: str = "nicolplus"):
        if m <= 0:
            raise ParameterError("m must be positive")
        if threshold < 0:
            raise ParameterError("threshold must be non-negative")
        self.m = m
        self.threshold = threshold
        self.oned = oned
        self.current: Partition | None = None
        self.full_repartitions = 0
        self.refinements = 0
        self.name = f"incremental-{threshold:g}"

    def _fresh(self, pref: PrefixSum2D) -> Partition:
        part = jag_m_heur(pref, self.m, oned=self.oned)
        # record orientation so refinements follow the same main dimension
        part.meta["transposed"] = part.meta.get("orientation") == "ver"
        return part

    def step(self, A: MatrixLike) -> Partition:
        """Produce the partition for the next load matrix."""
        pref = prefix_2d(A)
        if self.current is None:
            self.current = self._fresh(pref)
            self.full_repartitions += 1
            return self.current
        refined = refine_jagged(self.current, pref, oned=self.oned)
        fresh = self._fresh(pref)
        # exact rational comparison: the float form double-rounds near 2^62
        if drift_exceeds(
            refined.max_load(pref), fresh.max_load(pref), self.threshold
        ):
            self.current = fresh
            self.full_repartitions += 1
        else:
            self.current = refined
            self.refinements += 1
        return self.current

    # ------------------------------------------------------------------
    # RepartitionPolicy protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop the held partition and counters (fresh simulated run)."""
        self.current = None
        self.full_repartitions = 0
        self.refinements = 0

    def should_repartition(self, ctx: StepContext) -> bool:
        return True  # every snapshot gets a refined (or rebuilt) partition

    def solve(self, partitioner, ctx: StepContext) -> Partition:
        if ctx.m != self.m:
            raise ParameterError(f"simulator m={ctx.m} != strategy m={self.m}")
        return self.step(ctx.pref)

    def partitioner(self):
        """Adapter: ``(PrefixSum2D, m) -> Partition`` for the BSP simulator."""

        def run(pref: PrefixSum2D, m: int) -> Partition:
            if m != self.m:
                raise ParameterError(f"simulator m={m} != strategy m={self.m}")
            return self.step(pref)

        return run
