"""Spiral partitions (paper §3.4, Figure 1(e)).

Section 3.4 observes that any recursively defined partitioning scheme with a
polynomial number of choices per level admits an optimal dynamic program —
"the only difference will be in the cost of evaluating the function calls" —
and that such DPs "can generate heuristics similarly to HIER-RELAXED".  The
paper does not implement spiral partitions; this module does both
constructions for the class:

* :func:`spiral_opt` — the exact DP over (sub-rectangle, side, processors),
  feasible for small instances only (the paper's point exactly);
* :func:`spiral_relaxed` — the HIER-RELAXED-style heuristic extracted from
  it: at each step the next strip is peeled off the current side so that its
  load best matches its processor share under the average-load relaxation.

A spiral partition peels full-width/height strips off the rectangle's sides
in rotating order (top → right → bottom → left …); each strip is one
processor's rectangle.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..core.rectangle import Rect

__all__ = ["spiral_relaxed", "spiral_opt", "spiral_opt_bottleneck", "SIDES"]

#: strip sides in spiral order: top (rows), right (cols), bottom, left
SIDES = ("top", "right", "bottom", "left")


def _strip(rect: Rect, side: str, width: int) -> tuple[Rect, Rect]:
    """Split ``rect`` into (peeled strip, remainder) at ``width`` cells."""
    r0, r1, c0, c1 = rect.r0, rect.r1, rect.c0, rect.c1
    if side == "top":
        return Rect(r0, r0 + width, c0, c1), Rect(r0 + width, r1, c0, c1)
    if side == "bottom":
        return Rect(r1 - width, r1, c0, c1), Rect(r0, r1 - width, c0, c1)
    if side == "left":
        return Rect(r0, r1, c0, c0 + width), Rect(r0, r1, c0 + width, c1)
    if side == "right":
        return Rect(r0, r1, c1 - width, c1), Rect(r0, r1, c0, c1 - width)
    raise ParameterError(f"unknown side {side!r}")


def _side_extent(rect: Rect, side: str) -> int:
    return rect.height if side in ("top", "bottom") else rect.width


def _strip_load(pref: PrefixSum2D, rect: Rect, side: str, width: int) -> int:
    s, _ = _strip(rect, side, width)
    return pref.load(s.r0, s.r1, s.c0, s.c1)


def spiral_relaxed(A: MatrixLike, m: int, *, start_side: str = "top") -> Partition:
    """Spiral heuristic (§3.4): peel one strip per processor in rotating side order.

    At each step the strip width is chosen so the strip load is closest to
    the remaining average load (the HIER-RELAXED relaxation with j = 1): a
    binary search over the monotone strip load.  The last processor takes
    the remaining rectangle.
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    if start_side not in SIDES:
        raise ParameterError(f"start_side must be one of {SIDES}")
    pref = prefix_2d(A)
    rect = Rect(0, pref.n1, 0, pref.n2)
    rects: list[Rect] = []
    side_idx = SIDES.index(start_side)
    for k in range(m - 1):
        remaining = m - k
        if rect.is_empty:
            rects.append(Rect(rect.r0, rect.r0, rect.c0, rect.c0))
            continue
        side = SIDES[side_idx % 4]
        side_idx += 1
        extent = _side_extent(rect, side)
        if extent <= 1:
            # cannot peel without emptying the remainder: rotate to the
            # perpendicular side if possible
            side = SIDES[(side_idx) % 4]
            side_idx += 1
            extent = _side_extent(rect, side)
            if extent <= 1:
                rects.append(rect)
                rect = Rect(rect.r0, rect.r0, rect.c0, rect.c0)
                continue
        total = pref.load(rect.r0, rect.r1, rect.c0, rect.c1)
        # exact rational target: integer strip loads compare against it
        # without float rounding (RPL003 discipline)
        target = Fraction(total, remaining)
        lo, hi = 1, extent - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if _strip_load(pref, rect, side, mid) < target:
                lo = mid + 1
            else:
                hi = mid
        # lo = first width with load >= target; compare with lo - 1
        best_w = lo
        if lo > 1:
            below = abs(_strip_load(pref, rect, side, lo - 1) - target)
            at = abs(_strip_load(pref, rect, side, lo) - target)
            if below <= at:
                best_w = lo - 1
        strip, rect = _strip(rect, side, best_w)
        rects.append(strip)
    rects.append(rect)
    return Partition(rects, pref.shape, method="SPIRAL-RELAXED")


# ----------------------------------------------------------------------
# exact DP (small instances) — the §3.4 construction
# ----------------------------------------------------------------------
def _spiral_solver(pref: PrefixSum2D):
    """The §3.4 DP over (sub-rectangle, side, processors, consecutive skips).

    Each level peels one strip for one processor off the prescribed side and
    rotates.  A side whose extent is ≤ 1 may instead be *skipped* (rotate
    without peeling): peeling it would consume the whole remainder, and
    :func:`spiral_relaxed` rotates past such sides too — the DP must search
    a superset of the heuristic's reachable partitions or it is not an upper
    oracle for the class.  ``skips`` counts consecutive skips (≤ 3: after
    four the rotation is back where it started), which bounds the state and
    guarantees termination.
    """

    @lru_cache(maxsize=None)
    def solve(r0: int, r1: int, c0: int, c1: int, side_idx: int, procs: int, skips: int) -> int:
        rect = Rect(r0, r1, c0, c1)
        load = pref.load(r0, r1, c0, c1)
        if procs == 1 or rect.is_empty:
            return load
        side = SIDES[side_idx]
        extent = _side_extent(rect, side)
        nxt = (side_idx + 1) % 4
        best = None
        for width in range(1, extent + 1):
            strip, rest = _strip(rect, side, width)
            sl = pref.load(strip.r0, strip.r1, strip.c0, strip.c1)
            if best is not None and sl >= best:
                break  # strip load is monotone in width
            v = max(sl, solve(rest.r0, rest.r1, rest.c0, rest.c1, nxt, procs - 1, 0))
            if best is None or v < best:
                best = v
        if extent <= 1 and skips < 3:
            skip = solve(r0, r1, c0, c1, nxt, procs, skips + 1)
            if best is None or skip < best:
                best = skip
        return load if best is None else best

    return solve


def _spiral_guard(pref: PrefixSum2D, m: int, limit: int) -> None:
    cost = pref.n1 * pref.n1 * pref.n2 * pref.n2 * m
    if cost > limit:
        raise ParameterError(
            f"instance too large for the spiral DP (n1²·n2²·m = {cost} > {limit})"
        )


def spiral_opt_bottleneck(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> int:
    """Optimal spiral-partition bottleneck via the §3.4 dynamic program.

    State: (sub-rectangle, side to peel next, processors, skips).  All four
    starting sides are tried.  Complexity O(n1²·n2²·m·max(n1,n2)) — a
    small-instance oracle, as the paper predicts.
    """
    pref = prefix_2d(A)
    _spiral_guard(pref, m, limit)
    solve = _spiral_solver(pref)
    return min(solve(0, pref.n1, 0, pref.n2, s, m, 0) for s in range(4))


def spiral_opt(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> Partition:
    """Optimal spiral partition (small instances; backtracks the §3.4 DP)."""
    pref = prefix_2d(A)
    _spiral_guard(pref, m, limit)
    solve = _spiral_solver(pref)
    target = min(solve(0, pref.n1, 0, pref.n2, s, m, 0) for s in range(4))
    # backtracking: at each level take any peel (or degenerate-side skip)
    # whose branch value equals the state's DP value
    rects: list[Rect] = []
    rect = Rect(0, pref.n1, 0, pref.n2)
    side_idx = min(range(4), key=lambda s: solve(0, pref.n1, 0, pref.n2, s, m, 0))
    procs = m
    skips = 0
    while procs > 1 and not rect.is_empty:
        value = solve(rect.r0, rect.r1, rect.c0, rect.c1, side_idx, procs, skips)
        side = SIDES[side_idx]
        extent = _side_extent(rect, side)
        nxt = (side_idx + 1) % 4
        chosen = None
        for width in range(1, extent + 1):
            strip, rest = _strip(rect, side, width)
            sl = pref.load(strip.r0, strip.r1, strip.c0, strip.c1)
            v = max(sl, solve(rest.r0, rest.r1, rest.c0, rest.c1, nxt, procs - 1, 0))
            if v == value:
                chosen = (strip, rest)
                break
        if chosen is not None:
            rects.append(chosen[0])
            rect = chosen[1]
            procs -= 1
            skips = 0
        else:  # the optimum came from skipping this degenerate side
            assert extent <= 1 and skips < 3, "DP value unreachable from state"
            skips += 1
        side_idx = nxt
    rects.append(rect)
    rects.extend(Rect(0, 0, 0, 0) for _ in range(m - len(rects)))
    part = Partition(rects, pref.shape, method="SPIRAL-OPT")
    assert part.max_load(pref) == target, "backtracking must reach the DP optimum"
    return part
