"""Spiral partitions (paper §3.4, Figure 1(e)).

Section 3.4 observes that any recursively defined partitioning scheme with a
polynomial number of choices per level admits an optimal dynamic program —
"the only difference will be in the cost of evaluating the function calls" —
and that such DPs "can generate heuristics similarly to HIER-RELAXED".  The
paper does not implement spiral partitions; this module does both
constructions for the class:

* :func:`spiral_opt` — the exact DP over (sub-rectangle, side, processors),
  feasible for small instances only (the paper's point exactly);
* :func:`spiral_relaxed` — the HIER-RELAXED-style heuristic extracted from
  it: at each step the next strip is peeled off the current side so that its
  load best matches its processor share under the average-load relaxation.

A spiral partition peels full-width/height strips off the rectangle's sides
in rotating order (top → right → bottom → left …); each strip is one
processor's rectangle.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..core.rectangle import Rect

__all__ = ["spiral_relaxed", "spiral_opt", "spiral_opt_bottleneck", "SIDES"]

#: strip sides in spiral order: top (rows), right (cols), bottom, left
SIDES = ("top", "right", "bottom", "left")


def _strip(rect: Rect, side: str, width: int) -> tuple[Rect, Rect]:
    """Split ``rect`` into (peeled strip, remainder) at ``width`` cells."""
    r0, r1, c0, c1 = rect.r0, rect.r1, rect.c0, rect.c1
    if side == "top":
        return Rect(r0, r0 + width, c0, c1), Rect(r0 + width, r1, c0, c1)
    if side == "bottom":
        return Rect(r1 - width, r1, c0, c1), Rect(r0, r1 - width, c0, c1)
    if side == "left":
        return Rect(r0, r1, c0, c0 + width), Rect(r0, r1, c0 + width, c1)
    if side == "right":
        return Rect(r0, r1, c1 - width, c1), Rect(r0, r1, c0, c1 - width)
    raise ParameterError(f"unknown side {side!r}")


def _side_extent(rect: Rect, side: str) -> int:
    return rect.height if side in ("top", "bottom") else rect.width


def _strip_load(pref: PrefixSum2D, rect: Rect, side: str, width: int) -> int:
    s, _ = _strip(rect, side, width)
    return pref.load(s.r0, s.r1, s.c0, s.c1)


def spiral_relaxed(A: MatrixLike, m: int, *, start_side: str = "top") -> Partition:
    """Spiral heuristic (§3.4): peel one strip per processor in rotating side order.

    At each step the strip width is chosen so the strip load is closest to
    the remaining average load (the HIER-RELAXED relaxation with j = 1): a
    binary search over the monotone strip load.  The last processor takes
    the remaining rectangle.
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    if start_side not in SIDES:
        raise ParameterError(f"start_side must be one of {SIDES}")
    pref = prefix_2d(A)
    rect = Rect(0, pref.n1, 0, pref.n2)
    rects: list[Rect] = []
    side_idx = SIDES.index(start_side)
    for k in range(m - 1):
        remaining = m - k
        if rect.is_empty:
            rects.append(Rect(rect.r0, rect.r0, rect.c0, rect.c0))
            continue
        side = SIDES[side_idx % 4]
        side_idx += 1
        extent = _side_extent(rect, side)
        if extent <= 1:
            # cannot peel without emptying the remainder: rotate to the
            # perpendicular side if possible
            side = SIDES[(side_idx) % 4]
            side_idx += 1
            extent = _side_extent(rect, side)
            if extent <= 1:
                rects.append(rect)
                rect = Rect(rect.r0, rect.r0, rect.c0, rect.c0)
                continue
        total = pref.load(rect.r0, rect.r1, rect.c0, rect.c1)
        # exact rational target: integer strip loads compare against it
        # without float rounding (RPL003 discipline)
        target = Fraction(total, remaining)
        lo, hi = 1, extent - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if _strip_load(pref, rect, side, mid) < target:
                lo = mid + 1
            else:
                hi = mid
        # lo = first width with load >= target; compare with lo - 1
        best_w = lo
        if lo > 1:
            below = abs(_strip_load(pref, rect, side, lo - 1) - target)
            at = abs(_strip_load(pref, rect, side, lo) - target)
            if below <= at:
                best_w = lo - 1
        strip, rect = _strip(rect, side, best_w)
        rects.append(strip)
    rects.append(rect)
    return Partition(rects, pref.shape, method="SPIRAL-RELAXED")


# ----------------------------------------------------------------------
# exact DP (small instances) — the §3.4 construction
# ----------------------------------------------------------------------
def spiral_opt_bottleneck(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> int:
    """Optimal spiral-partition bottleneck via the §3.4 dynamic program.

    State: (sub-rectangle, side to peel next, processors).  Each level peels
    one strip for one processor off the prescribed side; the side rotates.
    All four starting sides are tried.  Complexity O(n1²·n2²·m·max(n1,n2)) —
    a small-instance oracle, as the paper predicts.
    """
    pref = prefix_2d(A)
    cost = pref.n1 * pref.n1 * pref.n2 * pref.n2 * m
    if cost > limit:
        raise ParameterError(
            f"instance too large for the spiral DP (n1²·n2²·m = {cost} > {limit})"
        )

    @lru_cache(maxsize=None)
    def solve(r0: int, r1: int, c0: int, c1: int, side_idx: int, procs: int) -> int:
        rect = Rect(r0, r1, c0, c1)
        load = pref.load(r0, r1, c0, c1)
        if procs == 1 or rect.is_empty:
            return load
        side = SIDES[side_idx % 4]
        extent = _side_extent(rect, side)
        best = None
        for width in range(1, extent + 1):
            strip, rest = _strip(rect, side, width)
            sl = pref.load(strip.r0, strip.r1, strip.c0, strip.c1)
            if best is not None and sl >= best:
                break  # strip load is monotone in width
            v = max(
                sl,
                solve(rest.r0, rest.r1, rest.c0, rest.c1, side_idx + 1, procs - 1),
            )
            if best is None or v < best:
                best = v
        # peeling nothing from this side is also allowed (skip a rotation)
        skip = solve(r0, r1, c0, c1, side_idx + 1, procs) if extent == 0 else None
        if skip is not None and (best is None or skip < best):
            best = skip
        return load if best is None else best

    return min(solve(0, pref.n1, 0, pref.n2, s, m) for s in range(4))


def spiral_opt(A: MatrixLike, m: int, *, limit: int = 1 << 24) -> Partition:
    """Optimal spiral partition (small instances; backtracks the §3.4 DP)."""
    pref = prefix_2d(A)
    target = spiral_opt_bottleneck(pref, m, limit=limit)
    # greedy reconstruction: at each level pick any (side-consistent) strip
    # whose max(strip, optimal rest) equals the target
    rects: list[Rect] = []
    rect = Rect(0, pref.n1, 0, pref.n2)

    @lru_cache(maxsize=None)
    def solve(r0, r1, c0, c1, side_idx, procs) -> int:
        inner = Rect(r0, r1, c0, c1)
        load = pref.load(r0, r1, c0, c1)
        if procs == 1 or inner.is_empty:
            return load
        side = SIDES[side_idx % 4]
        extent = _side_extent(inner, side)
        best = load
        found = False
        for width in range(1, extent + 1):
            strip, rest = _strip(inner, side, width)
            sl = pref.load(strip.r0, strip.r1, strip.c0, strip.c1)
            if found and sl >= best:
                break
            v = max(sl, solve(rest.r0, rest.r1, rest.c0, rest.c1, side_idx + 1, procs - 1))
            if not found or v < best:
                best, found = v, True
        return best

    start = min(range(4), key=lambda s: solve(0, pref.n1, 0, pref.n2, s, m))
    side_idx = start
    procs = m
    while procs > 1 and not rect.is_empty:
        side = SIDES[side_idx % 4]
        extent = _side_extent(rect, side)
        chosen = None
        for width in range(1, extent + 1):
            strip, rest = _strip(rect, side, width)
            sl = pref.load(strip.r0, strip.r1, strip.c0, strip.c1)
            v = max(sl, solve(rest.r0, rest.r1, rest.c0, rest.c1, side_idx + 1, procs - 1))
            if v == solve(rect.r0, rect.r1, rect.c0, rect.c1, side_idx, procs):
                chosen = (strip, rest)
                break
        if chosen is None:  # no strip achieves the value: stop peeling
            break
        rects.append(chosen[0])
        rect = chosen[1]
        side_idx += 1
        procs -= 1
    rects.append(rect)
    rects.extend(Rect(0, 0, 0, 0) for _ in range(m - len(rects)))
    part = Partition(rects, pref.shape, method="SPIRAL-OPT")
    assert part.max_load(pref) == target, "backtracking must reach the DP optimum"
    return part
