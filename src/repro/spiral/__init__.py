"""Spiral partitions — the §3.4 general recursive scheme, implemented."""

from .peel import SIDES, spiral_opt, spiral_opt_bottleneck, spiral_relaxed

__all__ = ["SIDES", "spiral_opt", "spiral_opt_bottleneck", "spiral_relaxed"]
