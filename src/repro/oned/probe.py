"""The Probe parametric-search subroutine (Han–Narahari–Choi [10], §2.2).

``Probe(B)`` answers: *can the array be partitioned into at most m intervals,
each of load at most B?*  The greedy rule — allocate to each processor the
largest prefix not exceeding B — is optimal for this decision problem, so the
answer is exact.

Implementation notes (see the HPC guides referenced in DESIGN.md): the probe
performs ``m`` *scalar* binary searches with increasing targets.  A scalar
``np.searchsorted`` call costs ~1.5 µs of wrapper overhead, so the hot path
uses :func:`bisect.bisect_right` on a plain Python list (C speed, ~0.1 µs);
callers that probe the same prefix repeatedly should convert it once with
:func:`as_boundary_list` and pass the list.  NumPy arrays are accepted
everywhere and converted on the fly.

:func:`probe_sliced` keeps the original array-slicing technique of [10]
(binary searches confined to ``n/m``-sized slices) for fidelity with the
paper and for the ablation benchmark.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..perf import kernels as _kernels
from ..perf.config import perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump

__all__ = ["probe", "probe_cuts", "probe_sliced", "min_parts", "as_boundary_list"]


def as_boundary_list(P) -> list[int]:
    """Convert a prefix array to the list form used by the probe hot path."""
    if isinstance(P, list):
        return P
    return P.tolist()


def probe(P, m: int, B: int, lo: int = 0, hi: int | None = None) -> bool:
    """Exact decision: can ``[lo, hi)`` be cut into ``<= m`` intervals of load ``<= B``?

    ``P`` is a prefix-sum array or list (``P[0] == 0``); indices refer to
    cell boundaries, so the searched range covers cells ``lo .. hi-1``.
    """
    Pl = as_boundary_list(P)
    if hi is None:
        hi = len(Pl) - 1
    if _OPS:  # counting twin: keeps the uncounted loop free of bookkeeping
        return _probe_counted(Pl, m, B, lo, hi)
    if B < 0:
        return False
    pos = lo
    for _ in range(m):
        if pos >= hi:
            return True
        # rightmost boundary nxt in (pos, hi] with P[nxt] <= P[pos] + B
        nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
        if nxt <= pos:  # single cell exceeds B
            return False
        pos = nxt
    return pos >= hi


def _probe_counted(Pl: list, m: int, B: int, lo: int, hi: int) -> bool:
    """Instrumented twin of :func:`probe`: same decisions, counted steps."""
    bump("probe_calls")
    if B < 0:
        return False
    pos = lo
    steps = 0
    result = pos >= hi
    for _ in range(m):
        if pos >= hi:
            result = True
            break
        steps += 1
        nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
        if nxt <= pos:
            result = False
            break
        pos = nxt
    else:
        result = pos >= hi
    bump("probe_steps", steps)
    return result


def probe_cuts(P, m: int, B: int, lo: int = 0, hi: int | None = None) -> np.ndarray | None:
    """Greedy cut points realizing bottleneck ``B``, or None if infeasible.

    Returns an int array of length ``m + 1`` with ``cuts[0] == lo`` and
    ``cuts[m] == hi``; trailing intervals may be empty when fewer than ``m``
    intervals suffice.

    With the perf layer enabled this dispatches to the ``probe_cuts`` kernel
    (:mod:`repro.perf.kernels`): a jump-table walk in the dense-cut regime,
    backend-selectable via ``REPRO_PERF_BACKEND``, bit-identical to the
    scalar greedy below — which stays as the reference twin.
    """
    if perf_enabled():
        return _kernels.probe_cuts(P, m, B, lo, hi)
    Pl = as_boundary_list(P)
    if hi is None:
        hi = len(Pl) - 1
    if B < 0:
        return None
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = lo
    pos = lo
    for p in range(1, m + 1):
        if pos < hi:
            nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
            if nxt <= pos:
                return None
            pos = nxt
        cuts[p] = pos
    if pos < hi:
        return None
    cuts[m] = hi
    return cuts


def probe_sliced(P, m: int, B: int, lo: int = 0, hi: int | None = None) -> bool:
    """Probe with the slicing technique of Han et al. [10].

    The boundary range is divided into ``m`` slices.  The greedy targets are
    increasing, so the slice holding each next cut is found by walking the
    slice boundaries forward (amortized O(1)), and the binary search runs
    inside a single slice (O(log(n/m))).
    """
    Pl = as_boundary_list(P)
    if hi is None:
        hi = len(Pl) - 1
    if B < 0:
        return False
    n = hi - lo
    if n <= 0:
        return True
    slices = np.linspace(lo, hi, m + 1).astype(np.int64).tolist()
    pos = lo
    s = 0
    for _ in range(m):
        if pos >= hi:
            return True
        target = Pl[pos] + B
        # advance to the slice whose last boundary holds a value > target
        while s < m and Pl[slices[s + 1]] <= target:
            s += 1
        s_lo = max(slices[s], pos)
        s_hi = min(slices[s + 1] if s < m else hi, hi)
        nxt = bisect_right(Pl, target, s_lo, s_hi + 1) - 1
        if nxt <= pos:
            return False
        pos = nxt
    return pos >= hi


def min_parts(P, B: int, lo: int = 0, hi: int | None = None, cap: int | None = None) -> int:
    """Minimum number of intervals of load ``<= B`` covering ``[lo, hi)``.

    Returns ``cap + 1`` as soon as more than ``cap`` intervals are needed
    (early abort for branch-and-bound callers), and ``cap + 1`` as well when
    some single cell exceeds ``B`` (infeasible at any count).  With
    ``cap=None`` an infeasible call raises ``ValueError``.
    """
    Pl = as_boundary_list(P)
    if hi is None:
        hi = len(Pl) - 1
    limit = cap if cap is not None else (hi - lo) + 1
    pos = lo
    parts = 0
    while pos < hi:
        if parts >= limit:
            return limit + 1
        nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
        if nxt <= pos:
            if cap is None:
                raise ValueError(f"single cell exceeds bottleneck {B}")
            return limit + 1
        pos = nxt
        parts += 1
    return parts
