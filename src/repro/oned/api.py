"""Public 1D partitioning API.

The paper's 2D algorithms all call "an optimal 1D partitioning algorithm"
(NicolPlus by default, per §2.2).  This module exposes a uniform entry point
over every 1D method implemented in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.errors import ParameterError
from ..core.prefix import PrefixSum1D, prefix_1d
from .bisect import partition_bisect
from .dp import partition_dp
from .heuristics import direct_cut, direct_cut_refined, recursive_bisection
from .nicol import nicol, nicol_plus

__all__ = ["OneDResult", "partition_1d", "ONED_METHODS", "interval_loads"]


@dataclass(frozen=True)
class OneDResult:
    """Result of a 1D partitioning call.

    Attributes
    ----------
    cuts:
        Boundary array of length ``m+1``; interval ``p`` is
        ``[cuts[p], cuts[p+1])``.
    bottleneck:
        Load of the most loaded interval.
    method:
        Name of the algorithm that produced the cuts.
    """

    cuts: np.ndarray
    bottleneck: int
    method: str

    @property
    def m(self) -> int:
        """Number of intervals."""
        return len(self.cuts) - 1

    def loads(self, P: np.ndarray) -> np.ndarray:
        """Per-interval loads given the prefix array the cuts refer to."""
        return (P[self.cuts[1:]] - P[self.cuts[:-1]]).astype(np.int64)

    def imbalance(self, P: np.ndarray) -> float:
        """Load imbalance ``Lmax / Lavg - 1`` of this 1D partition."""
        avg = int(P[-1]) / self.m
        # reporting boundary: floats never feed back into a search
        return (self.bottleneck / avg - 1.0) if avg > 0 else 0.0  # repro-lint: disable=RPL003


def _run_heuristic(fn: Callable[[np.ndarray, int], np.ndarray]):
    def run(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
        cuts = fn(P, m)
        B = int(np.max(P[cuts[1:]] - P[cuts[:-1]]))
        return B, cuts

    return run


#: name -> callable(P, m) -> (bottleneck, cuts). Optimal methods: ``nicolplus``
#: (default, §2.2), ``nicol``, ``dp`` (Manne–Olstad), ``bisect``.  Heuristics:
#: ``dc`` (DirectCut), ``dc2`` (Miguet–Pierson H2), ``rb`` (recursive bisection).
ONED_METHODS: dict[str, Callable[[np.ndarray, int], tuple[int, np.ndarray]]] = {
    "dc": _run_heuristic(direct_cut),
    "directcut": _run_heuristic(direct_cut),
    "dc2": _run_heuristic(direct_cut_refined),
    "rb": _run_heuristic(recursive_bisection),
    "dp": partition_dp,
    "bisect": partition_bisect,
    "nicol": nicol,
    "nicolplus": nicol_plus,
}


def partition_1d(
    values: np.ndarray | PrefixSum1D,
    m: int,
    method: str = "nicolplus",
    *,
    is_prefix: bool = False,
) -> OneDResult:
    """Partition a 1D load array into ``m`` intervals.

    Parameters
    ----------
    values:
        Raw load array, or a prefix array / :class:`PrefixSum1D` when
        ``is_prefix`` is set.
    m:
        Number of intervals (processors); must be positive.
    method:
        One of :data:`ONED_METHODS`.

    Returns
    -------
    OneDResult
        Cut points and the achieved bottleneck.
    """
    if m <= 0:
        raise ParameterError(f"m must be positive, got {m}")
    if isinstance(values, PrefixSum1D):
        P = values.P
    elif is_prefix:
        P = np.ascontiguousarray(values, dtype=np.int64)
    else:
        P = prefix_1d(np.asarray(values))
    key = method.lower().replace("-", "").replace("_", "")
    if key not in ONED_METHODS:
        raise ParameterError(
            f"unknown 1D method {method!r}; choose from {sorted(ONED_METHODS)}"
        )
    B, cuts = ONED_METHODS[key](P, m)
    return OneDResult(cuts=cuts, bottleneck=int(B), method=key)


def interval_loads(P: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Loads of the intervals delimited by ``cuts`` on prefix ``P``."""
    cuts = np.asarray(cuts)
    return (P[cuts[1:]] - P[cuts[:-1]]).astype(np.int64)
