"""Fast 1D partitioning heuristics (paper §2.2).

* :func:`direct_cut` — DirectCut / "Heuristic 1" of Miguet & Pierson [12]:
  each processor greedily takes the smallest interval exceeding the average
  load.  2-approximation; more precisely
  ``Lmax(DC) <= sum/m + max`` — which also upper-bounds the optimum.
* :func:`direct_cut_refined` — Miguet & Pierson's "Heuristic 2": round each
  cut to whichever neighbouring boundary is closest to the ideal target.
* :func:`recursive_bisection` — Berger & Bokhari recursive bisection [21]:
  split into two halves of similar load, give half the processors to each;
  also ``Lmax(RB) <= sum/m + max``.

All functions take a prefix-sum array (``P[0] == 0``, length ``n+1``) and
return an int64 cut array of length ``m+1``.  All arithmetic is exact:
cut targets are integer floor divisions (``P[i] > p·total/m`` is equivalent
to ``P[i] > (p·total)//m`` for integer prefixes) and tie-breaking compares
:class:`fractions.Fraction` values, so the heuristics are bit-stable even
when loads approach 2**53 (enforced by RPL003, see ``docs/lint.md``).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = ["direct_cut", "direct_cut_refined", "recursive_bisection"]


def direct_cut(P: np.ndarray, m: int) -> np.ndarray:
    """DirectCut: ``cuts[p] = min{ i : P[i] > p * total / m }``.

    Vectorized as a single :func:`np.searchsorted` over all m-1 targets.
    """
    n = len(P) - 1
    total = int(P[-1])
    # integer P[i] > p·total/m  ⇔  P[i] > (p·total)//m: exact integer targets
    targets = (np.arange(1, m, dtype=np.int64) * total) // m
    inner = np.searchsorted(P, targets, side="right").astype(np.int64)
    np.clip(inner, 0, n, out=inner)
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = 0
    cuts[1:m] = inner
    cuts[m] = n
    np.maximum.accumulate(cuts, out=cuts)
    return cuts


def direct_cut_refined(P: np.ndarray, m: int) -> np.ndarray:
    """Miguet–Pierson Heuristic 2: snap each cut to the closer boundary.

    For each target ``t_p = p * total / m`` choose between the first boundary
    whose prefix exceeds ``t_p`` and its predecessor, picking the prefix value
    closest to the target.  Often halves the imbalance of plain DirectCut.
    """
    n = len(P) - 1
    total = int(P[-1])
    # exact: |P[i] − p·total/m| ≤ |P[j] − p·total/m| ⇔ |m·P[i] − p·total| ≤ |m·P[j] − p·total|
    scaled_targets = np.arange(1, m, dtype=np.int64) * total
    hi = np.searchsorted(P, scaled_targets // m, side="right").astype(np.int64)
    np.clip(hi, 1, n, out=hi)
    lo = hi - 1
    pick_lo = np.abs(m * P[lo] - scaled_targets) <= np.abs(m * P[hi] - scaled_targets)
    inner = np.where(pick_lo, lo, hi)
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = 0
    cuts[1:m] = inner
    cuts[m] = n
    np.maximum.accumulate(cuts, out=cuts)
    return cuts


def _best_cut(P: np.ndarray, lo: int, hi: int, w1: int, w2: int) -> int:
    """Cut of ``[lo, hi)`` minimizing ``max(L_left/w1, L_right/w2)``.

    The left term increases and the right term decreases with the cut, so the
    max is bimonotonic; the optimum straddles the weighted balance point,
    which one binary search locates.
    """
    base = int(P[lo])
    total = int(P[hi]) - base
    # integer floor target is exact: P[i] ≤ base + total·w1/(w1+w2) ⇔ P[i] ≤ floor(·)
    target = base + (total * w1) // (w1 + w2)
    window = P[lo : hi + 1]  # prefix window of [lo, hi) # repro-lint: disable=RPL002
    c = int(np.searchsorted(window, target, side="right")) - 1 + lo
    best_c, best_v = lo, None
    for cand in (c, c + 1):
        if cand < lo or cand > hi:
            continue
        l1 = int(P[cand]) - base
        l2 = total - l1
        v = max(Fraction(l1, w1), Fraction(l2, w2))
        if best_v is None or v < best_v:
            best_c, best_v = cand, v
    return best_c


def recursive_bisection(P: np.ndarray, m: int) -> np.ndarray:
    """Berger–Bokhari recursive bisection with odd-m handling.

    When ``m`` is odd one side receives ``m//2`` and the other ``m//2 + 1``
    processors; both orientations are evaluated and the cut minimizing the
    load per processor is kept (paper §3.3 convention, applied in 1D).
    """
    n = len(P) - 1
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = 0
    cuts[m] = n

    def rec(lo: int, hi: int, procs: int, offset: int) -> None:
        # fill cuts[offset .. offset+procs] for interval [lo, hi)
        if procs == 1:
            return
        m1 = procs // 2
        m2 = procs - m1
        c = _best_cut(P, lo, hi, m1, m2)
        if m1 != m2:
            c_alt = _best_cut(P, lo, hi, m2, m1)
            v = max(
                Fraction(int(P[c] - P[lo]), m1), Fraction(int(P[hi] - P[c]), m2)
            )
            v_alt = max(
                Fraction(int(P[c_alt] - P[lo]), m2), Fraction(int(P[hi] - P[c_alt]), m1)
            )
            if v_alt < v:
                c, m1, m2 = c_alt, m2, m1
        cuts[offset + m1] = c
        rec(lo, c, m1, offset)
        rec(c, hi, m2, offset + m1)

    rec(0, n, m, 0)
    return cuts
