"""Exact 1D partitioning under *striped* interval costs (for RECT-NICOL).

RECT-NICOL (paper §3.1) repeatedly solves a one-dimensional problem in which
"the load of an interval … is the maximum of the load of the interval inside
each stripe of the fixed dimension".  Given ``S`` stripes this module
partitions ``[0, n)`` into ``m`` intervals minimizing::

    max_intervals  max_s  ( M[s, j] - M[s, i] )

where ``M`` stacks the per-stripe prefix arrays (shape ``(S, n+1)``).

The greedy probe generalizes directly: from boundary ``i`` the furthest
reachable boundary at bottleneck ``B`` is ``min_s`` of the per-stripe
furthest boundaries, each found with one binary search (on Python lists —
see :mod:`repro.oned.probe` for why).  Loads are integers, so exact integer
bisection over ``B`` yields the optimum.

With the perf layer enabled, :func:`probe_multi` dispatches to the
``probe_multi`` kernel (:mod:`repro.perf.kernels`): per-stripe jump tables
folded with a running min in the dense-cut regime, a compiled twin under
``REPRO_PERF_BACKEND=numba`` — bit-identical to the scalar greedy below,
which stays as the reference twin.  :func:`multi_bottleneck` then probes
the stacked int64 matrix directly instead of per-stripe Python lists.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..perf import kernels as _kernels
from ..perf.config import perf_enabled

__all__ = ["probe_multi", "multi_bottleneck", "partition_multi", "multi_cuts"]


def _rows(M) -> list[list[int]]:
    if isinstance(M, list):
        return M
    return [row.tolist() for row in np.asarray(M)]


def _reach(rows: list[list[int]], n: int, i: int, B: int) -> int:
    """Furthest boundary ``j >= i`` with every stripe load ``row[j]-row[i] <= B``."""
    j = n
    for row in rows:
        r = bisect_right(row, row[i] + B, i, j + 1) - 1
        if r < j:
            j = r
            if j <= i:
                break
    return j


def probe_multi(M, m: int, B: int) -> bool:
    """Can ``[0, n)`` be cut into ``<= m`` intervals of striped cost ``<= B``?"""
    if perf_enabled():
        return _kernels.probe_multi(M, m, B)
    rows = _rows(M)
    n = len(rows[0]) - 1 if rows else 0
    if B < 0:
        return False
    pos = 0
    for _ in range(m):
        if pos >= n:
            return True
        nxt = _reach(rows, n, pos, B)
        if nxt <= pos:
            return False
        pos = nxt
    return pos >= n


def multi_cuts(M, m: int, B: int) -> np.ndarray | None:
    """Greedy cuts realizing striped bottleneck ``B`` (None if infeasible)."""
    rows = _rows(M)
    n = len(rows[0]) - 1 if rows else 0
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = 0
    pos = 0
    for p in range(1, m + 1):
        if pos < n:
            nxt = _reach(rows, n, pos, B)
            if nxt <= pos:
                return None
            pos = nxt
        cuts[p] = pos
    if pos < n:
        return None
    cuts[m] = n
    return cuts


def multi_bottleneck(M, m: int, *, ub: int | None = None) -> int:
    """Optimal striped bottleneck by integer bisection with the multi-probe.

    ``ub`` is an optional starting guess for the feasible end of the
    bracket (e.g. a bottleneck some known partition achieves).  The guess
    is *verified* by the doubling loop before the bisection starts, so a
    wrong hint only costs extra probes — the returned optimum is identical
    for any hint.
    """
    M = np.ascontiguousarray(M, dtype=np.int64)
    n = M.shape[1] - 1
    if n == 0 or M.shape[0] == 0:
        return 0
    cell = np.diff(M, axis=1)
    # any interval covering boundary step b costs at least max_s cell[s, b]
    max_step = int(cell.max(axis=0).max()) if cell.size else 0
    heaviest = int(M[:, -1].max())
    lb = max(max_step, -(-heaviest // m))
    # the kernel path probes the stacked int64 matrix in place (no per-call
    # list conversion); the reference path converts to lists once up front
    MM = M if perf_enabled() else _rows(M)
    # The single-array DirectCut bound does not transfer to striped costs
    # (different intervals may be bottlenecked by different stripes), so
    # bracket the optimum by doubling from the heaviest-stripe bound (or
    # the caller's hint when given).
    ub = max(lb, heaviest // m + max_step) if ub is None else max(lb, int(ub))
    while not probe_multi(MM, m, ub):
        ub = max(ub * 2, ub + 1)
    while lb < ub:
        mid = (lb + ub) // 2
        if probe_multi(MM, m, mid):
            ub = mid
        else:
            lb = mid + 1
    return int(lb)


def partition_multi(M, m: int, *, ub: int | None = None) -> tuple[int, np.ndarray]:
    """Optimal striped 1D partition ``(bottleneck, cuts)``.

    ``ub`` is forwarded to :func:`multi_bottleneck` (a verified hint; the
    result is identical with or without it).
    """
    M = np.ascontiguousarray(M, dtype=np.int64)
    rows = _rows(M)
    B = multi_bottleneck(M, m, ub=ub)
    cuts = multi_cuts(rows, m, B)
    assert cuts is not None
    return B, cuts
