"""1D partitioning for processors with heterogeneous speeds.

The paper's related work (§1, ref [7]) points at the dual problem of
distributing load over processors of different speeds.  This extension
generalizes the 1D layer: processor ``p`` with relative speed ``s_p``
finishes an interval of load ``L`` in time ``L / s_p``; the objective is to
minimize the *makespan* ``max_p L_p / s_p``.

The Probe generalizes directly — with a time budget ``T``, processor ``p``
greedily takes the largest prefix of load ``<= T·s_p`` — and stays exact.
Because the optimal makespan is no longer an integer, the search bisects on
the integer *bottleneck load of the slowest-constrained interval*; concretely
we bisect on ``T`` over the discrete candidate set ``{load(i,j)/s_p}``
implicitly via floating bisection to machine precision, then rebuild cuts
with the feasibility probe.

Speeds are real-valued by definition, so the makespan objective is
inherently fractional: the whole module is an RPL003 exemption (interval
*loads* remain exact int64 prefix differences throughout; only the
speed-normalized times are floats).  See ``docs/lint.md``.
"""
# repro-lint: disable-file=RPL003 — heterogeneous speeds make times fractional by design

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..core.errors import ParameterError
from .probe import as_boundary_list

__all__ = ["probe_hetero", "hetero_cuts", "hetero_makespan", "partition_hetero"]


def _check_speeds(speeds) -> np.ndarray:
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.ndim != 1 or len(speeds) == 0:
        raise ParameterError("speeds must be a non-empty 1D array")
    if (speeds <= 0).any():
        raise ParameterError("speeds must be positive")
    return speeds


def probe_hetero(P, speeds: np.ndarray, T: float) -> bool:
    """Can the array be covered by the given processors within time ``T``?

    Greedy over processors *in the given order*: processor ``p`` takes the
    largest prefix with load ``<= T·s_p``.  For identical speeds this is the
    classical Probe; for distinct speeds the processor order is part of the
    problem statement (the assignment follows the array order).
    """
    Pl = as_boundary_list(P)
    n = len(Pl) - 1
    if T < 0:
        return False
    pos = 0
    for s in speeds:
        if pos >= n:
            return True
        budget = int(np.floor(T * s + 1e-9))
        nxt = bisect_right(Pl, Pl[pos] + budget, pos, n + 1) - 1
        if nxt > pos:
            pos = nxt
    return pos >= n


def hetero_cuts(P, speeds: np.ndarray, T: float) -> np.ndarray | None:
    """Greedy cuts realizing makespan ``T`` (None when infeasible)."""
    Pl = as_boundary_list(P)
    n = len(Pl) - 1
    m = len(speeds)
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = 0
    pos = 0
    for p, s in enumerate(speeds, start=1):
        if pos < n:
            budget = int(np.floor(T * s + 1e-9))
            nxt = bisect_right(Pl, Pl[pos] + budget, pos, n + 1) - 1
            if nxt > pos:
                pos = nxt
        cuts[p] = pos
    return cuts if pos >= n else None


def hetero_makespan(P, speeds) -> float:
    """Optimal makespan ``max_p load_p / s_p`` for ordered processors.

    Floating bisection on ``T``; the candidate makespans form a finite set
    (interval loads divided by speeds) so the bisection converges to the
    optimum; 100 iterations push the bracket far below the spacing of
    distinct candidates for int64 loads.
    """
    speeds = _check_speeds(speeds)
    P = np.asarray(P)
    total = int(P[-1])
    if total == 0 or len(P) <= 1:
        return 0.0
    max_el = int(np.max(np.diff(P)))
    lo = max(total / speeds.sum(), max_el / speeds.max())
    hi = total / speeds.min() + max_el
    Pl = as_boundary_list(P)
    if probe_hetero(Pl, speeds, lo):
        return lo
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if probe_hetero(Pl, speeds, mid):
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
    return hi


def partition_hetero(values, speeds, *, is_prefix: bool = False):
    """Optimal ordered heterogeneous 1D partition ``(makespan, cuts)``.

    ``speeds[p]`` is the relative speed of the processor receiving the
    ``p``-th interval.  Returns the achieved makespan (from the actual cuts,
    hence exact) and the ``m+1`` cut array.
    """
    speeds = _check_speeds(speeds)
    if is_prefix:
        P = np.ascontiguousarray(values, dtype=np.int64)
    else:
        v = np.asarray(values, dtype=np.int64)
        P = np.zeros(len(v) + 1, dtype=np.int64)
        np.cumsum(v, out=P[1:])
    T = hetero_makespan(P, speeds)
    cuts = hetero_cuts(P, speeds, T * (1 + 1e-12) + 1e-9)
    assert cuts is not None
    loads = (P[cuts[1:]] - P[cuts[:-1]]).astype(np.float64)
    return float(np.max(loads / speeds)), cuts
