"""Optimal 1D partitioning by dynamic programming (Manne & Olstad [11], §2.2).

``L*max(j, k) = min_{i <= j} max( L*max(i, k-1), P[j] - P[i] )``

For a fixed ``k`` the inner minimizer ``i`` is non-decreasing in ``j`` (the
first term is non-decreasing in ``i``, the second decreasing, so the max is
bimonotonic in ``i``); a two-pointer sweep evaluates each row in O(n),
giving O(m·n) total — the role of the paper's O(m(n-m)) reference optimum.

This is the *test oracle* of the 1D layer: slower than Nicol's algorithm but
straightforwardly correct.  Cut points are recovered by running the greedy
probe at the optimal bottleneck.
"""

from __future__ import annotations

import numpy as np

from .probe import probe_cuts

__all__ = ["dp_bottleneck", "partition_dp"]


def dp_bottleneck(P: np.ndarray, m: int) -> int:
    """Optimal bottleneck value for partitioning prefix ``P`` into ``m`` intervals."""
    n = len(P) - 1
    if m <= 0:
        raise ValueError("m must be positive")
    if n == 0:
        return 0
    # f[j] = optimal bottleneck of prefix cells [0, j) with current k intervals
    f = (P[: n + 1] - P[0]).astype(np.int64).copy()  # k = 1
    for _ in range(2, m + 1):
        g = np.empty_like(f)
        g[0] = 0
        i = 0
        for j in range(1, n + 1):
            # advance i while doing so cannot hurt:
            # max(f[i], P[j]-P[i]) is minimized where the terms cross
            while i < j and max(f[i + 1], int(P[j] - P[i + 1])) <= max(
                f[i], int(P[j] - P[i])
            ):
                i += 1
            g[j] = max(f[i], int(P[j] - P[i]))
        f = g
        if f[n] == 0:
            break
    return int(f[n])


def partition_dp(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
    """Optimal 1D partition ``(bottleneck, cuts)`` via dynamic programming."""
    B = dp_bottleneck(P, m)
    cuts = probe_cuts(P, m, B)
    assert cuts is not None, "optimal bottleneck must be probe-feasible"
    return B, cuts
