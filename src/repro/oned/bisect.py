"""Exact 1D partitioning by integer bisection on the bottleneck value.

Loads are integers throughout the reproduction (cf. DESIGN.md), so the
optimal bottleneck is an integer in ``[LB, UB]`` with

* ``LB = max(ceil(total/m), max element)`` (the lower bounds of §2.1), and
* ``UB = total/m + max element`` (the DirectCut guarantee of §2.2 — the
  paper highlights this bound precisely because it brackets the optimum).

``Probe`` is monotone in ``B``, so a standard bisection yields the optimum in
``O(m log(n) log(max - min))``.  This is not one of the paper's named
algorithms but serves as an independent exact method to cross-check Nicol's
search, and as the inner engine for generalized interval costs
(:mod:`repro.oned.multicost`).
"""

from __future__ import annotations

import numpy as np

from .probe import min_parts, probe, probe_cuts

__all__ = ["bisect_bottleneck", "partition_bisect"]


def _bounds(P: np.ndarray, m: int) -> tuple[int, int]:
    total = int(P[-1])
    max_el = int(np.max(np.diff(P))) if len(P) > 1 else 0
    lb = max(-(-total // m), max_el)
    ub = total // m + max_el
    return lb, max(lb, ub)


def bisect_bottleneck(P: np.ndarray, m: int) -> int:
    """Optimal bottleneck of an m-way interval partition of prefix ``P``."""
    n = len(P) - 1
    if n == 0:
        return 0
    lb, ub = _bounds(P, m)
    while lb < ub:
        mid = (lb + ub) // 2
        if probe(P, m, mid):
            ub = mid
        else:
            lb = mid + 1
    return lb


def partition_bisect(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
    """Optimal 1D partition ``(bottleneck, cuts)`` via integer bisection."""
    B = bisect_bottleneck(P, m)
    cuts = probe_cuts(P, m, B)
    assert cuts is not None
    return B, cuts


def min_parts_for(P: np.ndarray, B: int, cap: int | None = None) -> int:
    """Convenience re-export: minimum interval count at bottleneck ``B``."""
    return min_parts(P, B, cap=cap)
