"""Exact 1D partitioning by integer bisection on the bottleneck value.

Loads are integers throughout the reproduction (cf. DESIGN.md), so the
optimal bottleneck is an integer in ``[LB, UB]`` with

* ``LB = max(ceil(total/m), max element)`` (the lower bounds of §2.1), and
* ``UB = total/m + max element`` (the DirectCut guarantee of §2.2 — the
  paper highlights this bound precisely because it brackets the optimum).

``Probe`` is monotone in ``B``, so a standard bisection yields the optimum in
``O(m log(n) log(max - min))``.  This is not one of the paper's named
algorithms but serves as an independent exact method to cross-check Nicol's
search, and as the inner engine for generalized interval costs
(:mod:`repro.oned.multicost`).

Perf notes (measured; see ``docs/performance.md``): for large prefixes the
O(n) list conversion in front of the scalar probe loop dominates the whole
O(probes · m · log n) search, so with the perf layer enabled the bisection
probes the ndarray directly (:func:`_probe_nd`).  Batched *grid* narrowing
via :func:`~repro.perf.kernels.probe_batch` was measured here too and lost in
every regime — K batched candidates pay K full greedy walks but adaptive
bisection extracts only log2(K) bits from them.  The batch kernel wins when
many candidates are genuinely independent, which is what
:func:`feasible_bottlenecks` exposes.
"""

from __future__ import annotations

import numpy as np

from ..perf.kernels import probe_batch
from ..perf.config import perf_enabled
from ..perf.counters import _STACK as _OPS
from ..perf.counters import bump
from ..sweep.state import current as _sweep_current
from .probe import as_boundary_list, min_parts, probe, probe_cuts

__all__ = ["bisect_bottleneck", "partition_bisect", "feasible_bottlenecks"]

#: cells-per-processor ratio above which the O(n) list conversion costs more
#: than the pricier per-step ndarray ``searchsorted`` of the direct path
_ND_PROBE_RATIO = 512


def _probe_nd(arr: np.ndarray, m: int, B: int, hi: int) -> bool:
    """Scalar probe over an int64 prefix *array* — no list conversion.

    Decision-identical to :func:`repro.oned.probe.probe` on ``[0, hi)``: the
    unrestricted ``searchsorted`` insertion point is ``>= pos + 1`` because
    the target is ``>= arr[pos]``, and clamping to ``hi`` reproduces the
    ``[pos, hi]`` window of the list-based binary search.
    """
    if _OPS:  # counting twin keeps the hot loop free of bookkeeping
        return _probe_nd_counted(arr, m, B, hi)
    if B < 0:
        return False
    pos = 0
    for _ in range(m):
        if pos >= hi:
            return True
        nxt = int(arr.searchsorted(arr[pos] + B, side="right")) - 1
        if nxt > hi:
            nxt = hi
        if nxt <= pos:  # single cell exceeds B
            return False
        pos = nxt
    return pos >= hi


def _probe_nd_counted(arr: np.ndarray, m: int, B: int, hi: int) -> bool:
    """Instrumented twin of :func:`_probe_nd`: same decisions, counted steps."""
    bump("probe_calls")
    if B < 0:
        return False
    pos = 0
    steps = 0
    result = pos >= hi
    for _ in range(m):
        if pos >= hi:
            result = True
            break
        steps += 1
        nxt = int(arr.searchsorted(arr[pos] + B, side="right")) - 1
        if nxt > hi:
            nxt = hi
        if nxt <= pos:
            result = False
            break
        pos = nxt
    else:
        result = pos >= hi
    bump("probe_steps", steps)
    return result


def _bounds(P: np.ndarray, m: int) -> tuple[int, int]:
    total = int(P[-1])
    max_el = int(np.max(np.diff(P))) if len(P) > 1 else 0
    lb = max(-(-total // m), max_el)
    ub = total // m + max_el
    return lb, max(lb, ub)


def bisect_bottleneck(
    P: np.ndarray, m: int, *, lb: int | None = None, ub: int | None = None
) -> int:
    """Optimal bottleneck of an m-way interval partition of prefix ``P``.

    ``lb``/``ub`` are caller-asserted brackets of the optimum (the caller is
    trusted, like the ``ub`` hints of the exact jagged solvers); the result
    is identical for any valid bracket because the probe is monotone in
    ``B``.  Under an active :mod:`repro.sweep` context the bracket is
    additionally tightened from bounds proved by earlier calls on the same
    prefix array, and the computed optimum is recorded for later calls.
    """
    n = len(P) - 1
    if n == 0:
        return 0
    lo, hi = _bounds(P, m)
    if lb is not None and lb > lo:
        lo = int(lb)
    if ub is not None and ub < hi:
        hi = int(ub)
    state = _sweep_current()
    if state is not None:
        exact, wlb, wub = state.mono_bounds(P, "bisect", m)
        if exact is not None:
            return exact
        if wlb is not None and wlb > lo:
            lo = wlb
        if wub is not None and wub < hi:
            hi = wub
    lb, ub = lo, max(lo, hi)
    if perf_enabled() and isinstance(P, np.ndarray) and n >= _ND_PROBE_RATIO * m:
        # large prefix: skip the O(n) list conversion and probe the array
        # in place (each step is a ~0.6 µs method-call searchsorted, but
        # only O(probes · m) of them happen vs n list-element conversions)
        while lb < ub:
            mid = (lb + ub) // 2
            if _probe_nd(P, m, mid, n):
                ub = mid
            else:
                lb = mid + 1
    else:
        # hoist the list conversion out of the probe loop: every iteration
        # probes the same prefix (the conversion is O(n) per call otherwise)
        Pl = as_boundary_list(P)
        while lb < ub:
            mid = (lb + ub) // 2
            if probe(Pl, m, mid):
                ub = mid
            else:
                lb = mid + 1
    if state is not None:
        state.record_mono_opt(P, "bisect", m, lb)
    return lb


def feasible_bottlenecks(P: np.ndarray, m: int, Bs) -> np.ndarray:
    """Probe decisions for *many* candidate bottlenecks against one prefix.

    Returns a boolean array with ``out[i] == probe(P, m, Bs[i])``.  The
    candidates are independent, which is exactly the shape the vectorized
    :func:`~repro.perf.kernels.probe_batch` kernel wins at: all candidates
    advance in lockstep through one chained ``searchsorted`` per greedy
    round instead of ``len(Bs)`` separate scalar walks.  Used for
    feasibility curves and the perf-regression harness; the reference path
    runs the scalar probe per candidate (with the list conversion hoisted).
    """
    Bs = np.atleast_1d(np.asarray(Bs, dtype=np.int64))
    if perf_enabled():
        arr = np.asarray(P, dtype=np.int64)
        return probe_batch(arr, m, Bs)
    Pl = as_boundary_list(P)
    return np.array([probe(Pl, m, int(B)) for B in Bs], dtype=bool)


def partition_bisect(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
    """Optimal 1D partition ``(bottleneck, cuts)`` via integer bisection."""
    B = bisect_bottleneck(P, m)
    cuts = probe_cuts(P, m, B)
    assert cuts is not None
    return B, cuts


def min_parts_for(P: np.ndarray, B: int, cap: int | None = None) -> int:
    """Convenience re-export: minimum interval count at bottleneck ``B``."""
    return min_parts(P, B, cap=cap)
