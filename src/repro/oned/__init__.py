"""One-dimensional partitioning substrate (paper §2.2).

Heuristics (DirectCut, recursive bisection), exact algorithms (Nicol,
NicolPlus, Manne–Olstad DP, integer bisection), the Probe subroutine, and
the striped-cost generalization used by RECT-NICOL.
"""

from .api import ONED_METHODS, OneDResult, interval_loads, partition_1d
from .bisect import bisect_bottleneck, feasible_bottlenecks, partition_bisect
from .dp import dp_bottleneck, partition_dp
from .hetero import hetero_makespan, partition_hetero, probe_hetero
from .heuristics import direct_cut, direct_cut_refined, recursive_bisection
from .multicost import multi_bottleneck, partition_multi, probe_multi
from .nicol import nicol, nicol_bottleneck, nicol_plus, nicol_plus_bottleneck
from .probe import min_parts, probe, probe_cuts, probe_sliced

__all__ = [
    "ONED_METHODS",
    "OneDResult",
    "interval_loads",
    "partition_1d",
    "bisect_bottleneck",
    "feasible_bottlenecks",
    "partition_bisect",
    "dp_bottleneck",
    "partition_dp",
    "hetero_makespan",
    "partition_hetero",
    "probe_hetero",
    "direct_cut",
    "direct_cut_refined",
    "recursive_bisection",
    "multi_bottleneck",
    "partition_multi",
    "probe_multi",
    "nicol",
    "nicol_bottleneck",
    "nicol_plus",
    "nicol_plus_bottleneck",
    "min_parts",
    "probe",
    "probe_cuts",
    "probe_sliced",
]
