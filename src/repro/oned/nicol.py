"""Nicol's exact 1D partitioning algorithm and its engineered variant.

Paper §2.2: Nicol's algorithm [9] "exploits the property that if the maximum
load is given by the first interval then its load is given by the smallest
interval so that Probe(L({0,…,i})) is true.  Otherwise, the largest interval
so that Probe(L({0,…,i})) is false can safely be allocated to the first
interval."

:func:`nicol` implements this as an iterative sweep: at step ``p`` (first
uncovered boundary ``start``, ``k = m - p`` processors left for the suffix),
a binary search finds the smallest boundary ``e`` such that the suffix
``[e, n)`` fits into ``k`` intervals with bottleneck ``L([start, e))``.  That
load is recorded as a candidate (it is globally feasible), and the largest
failing prefix ``[start, e - 1)`` is committed to processor ``p``.  The
optimum is the minimum recorded candidate.  Unlike integer bisection this is
exact for arbitrary non-negative loads.

:func:`nicol_plus` is in the spirit of NicolPlus (Pınar & Aykanat [8]): the
same search with every binary-search range narrowed by *sound* bounds, so
exactness is preserved:

* boundaries whose first-interval load is below the suffix average
  ``rem/(k+1)`` cannot be probe-feasible (the suffix would exceed ``k``
  parts), which pushes the search window right;
* the first boundary whose load reaches ``ceil(rem/(k+1)) + max_element`` is
  always probe-feasible (DirectCut guarantee on the suffix), which caps the
  window;
* the sweep stops as soon as the incumbent reaches the global lower bound.

The window width is about one ``max_element`` worth of cells, which on
near-uniform instances collapses the search from O(log n) probes to a
handful — the effect measured by ``benchmarks/bench_ablation_oned.py``.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..perf.config import perf_enabled
from .probe import as_boundary_list, probe, probe_cuts

__all__ = ["nicol", "nicol_plus", "nicol_bottleneck", "nicol_plus_bottleneck"]


def _candidate_search(
    P: np.ndarray, start: int, procs_left: int, lo: int, hi: int
) -> int:
    """Smallest ``e`` in ``[lo, hi]`` whose suffix is feasible at ``L([start, e))``.

    Requires ``hi`` to be feasible (always true for ``hi = n``: empty suffix).
    """
    n = len(P) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        B = int(P[mid] - P[start])
        if probe(P, procs_left, B, lo=mid, hi=n):
            hi = mid
        else:
            lo = mid + 1
    return lo


def nicol_bottleneck(P: np.ndarray, m: int) -> int:
    """Optimal bottleneck via Nicol's rightmost-failing-prefix search."""
    n = len(P) - 1
    if n == 0 or int(P[-1]) == 0:
        return 0
    P = as_boundary_list(P)
    best: int | None = None
    start = 0
    for p in range(1, m):
        e = _candidate_search(P, start, m - p, start, n)
        cand = int(P[e] - P[start])
        if best is None or cand < best:
            best = cand
        if best == 0:
            break
        # commit the largest failing prefix [start, e-1) to processor p
        start = max(start, e - 1)
    last = int(P[n] - P[start])
    if best is None or last < best:
        best = last
    return int(best)


def nicol_plus_bottleneck(P: np.ndarray, m: int) -> int:
    """NicolPlus: Nicol's search with sound bound-narrowed binary searches."""
    n = len(P) - 1
    if n == 0 or int(P[-1]) == 0:
        return 0
    max_el = int(np.max(np.diff(P)))
    return _nicol_plus_core(as_boundary_list(P), m, max_el)


def _nicol_plus_core(P: list, m: int, max_el: int) -> int:
    """NicolPlus search on an already-converted boundary list."""
    n = len(P) - 1
    total = int(P[-1])
    global_lb = max(-(-total // m), max_el)
    best: int | None = None
    start = 0
    for p in range(1, m):
        k = m - p
        rem = int(P[n] - P[start])
        if rem == 0:
            break
        # lower narrowing: feasible boundaries need L >= ceil(rem / (k+1))
        lb_load = -(-rem // (k + 1))
        lo = bisect_left(P, P[start] + lb_load)
        lo = min(max(lo, start), n)
        # upper narrowing: L >= ceil(rem/(k+1)) + max_el is always feasible
        ub_load = lb_load + max_el
        hi = bisect_left(P, P[start] + ub_load)
        hi = min(max(hi, lo), n)
        e = _candidate_search(P, start, k, lo, hi)
        cand = int(P[e] - P[start])
        if best is None or cand < best:
            best = cand
        if best <= global_lb:
            return int(best)
        start = max(start, e - 1)
    last = int(P[n] - P[start])
    if best is None or last < best:
        best = last
    return int(best)


def nicol(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
    """Optimal 1D partition ``(bottleneck, cuts)`` via Nicol's algorithm."""
    B = nicol_bottleneck(P, m)
    cuts = probe_cuts(P, m, B)
    assert cuts is not None
    return B, cuts


def nicol_plus(P: np.ndarray, m: int) -> tuple[int, np.ndarray]:
    """Optimal 1D partition ``(bottleneck, cuts)`` via NicolPlus.

    With the perf layer enabled the boundary-list conversion is shared
    between the bottleneck search and the cut extraction (the reference
    path's two standalone calls each convert — the jagged heuristics pay
    that twice per stripe solve).  Same searches, same cuts.
    """
    if perf_enabled() and isinstance(P, np.ndarray):
        n = len(P) - 1
        if n == 0 or int(P[-1]) == 0:
            B = 0
            Pl: list = as_boundary_list(P)
        else:
            max_el = int(np.max(np.diff(P)))
            Pl = as_boundary_list(P)
            B = _nicol_plus_core(Pl, m, max_el)
        cuts = probe_cuts(Pl, m, B)
        assert cuts is not None
        return B, cuts
    B = nicol_plus_bottleneck(P, m)
    cuts = probe_cuts(P, m, B)
    assert cuts is not None
    return B, cuts
