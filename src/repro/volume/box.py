"""Axis-aligned boxes (rectangular volumes) with half-open semantics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Box"]


@dataclass(frozen=True, slots=True)
class Box:
    """Half-open box ``[a0, a1) × [b0, b1) × [c0, c1)``."""

    a0: int
    a1: int
    b0: int
    b1: int
    c0: int
    c1: int

    def __post_init__(self) -> None:
        if self.a1 < self.a0 or self.b1 < self.b0 or self.c1 < self.c0:
            raise ValueError(f"malformed box {self!r}")

    @property
    def extents(self) -> tuple[int, int, int]:
        """Edge lengths along the three axes."""
        return (self.a1 - self.a0, self.b1 - self.b0, self.c1 - self.c0)

    @property
    def volume(self) -> int:
        """Number of cells covered."""
        e = self.extents
        return e[0] * e[1] * e[2]

    @property
    def is_empty(self) -> bool:
        """True when the box covers no cell."""
        return self.volume == 0

    def contains(self, i: int, j: int, k: int) -> bool:
        """Whether cell ``(i, j, k)`` lies inside this box."""
        return (
            self.a0 <= i < self.a1
            and self.b0 <= j < self.b1
            and self.c0 <= k < self.c1
        )

    def overlaps(self, other: "Box") -> bool:
        """Whether the two boxes share at least one cell."""
        return (
            self.a0 < other.a1
            and other.a0 < self.a1
            and self.b0 < other.b1
            and other.b0 < self.b1
            and self.c0 < other.c1
            and other.c0 < self.c1
        )

    def intersect(self, other: "Box") -> Optional["Box"]:
        """Intersection box, or None when disjoint."""
        a0, a1 = max(self.a0, other.a0), min(self.a1, other.a1)
        b0, b1 = max(self.b0, other.b0), min(self.b1, other.b1)
        c0, c1 = max(self.c0, other.c0), min(self.c1, other.c1)
        if a0 >= a1 or b0 >= b1 or c0 >= c1:
            return None
        return Box(a0, a1, b0, b1, c0, c1)

    def surface_area(self, n0: int, n1: int, n2: int) -> int:
        """Cell faces shared with *other* cells of an ``n0×n1×n2`` grid.

        The 3D analogue of :meth:`repro.core.rectangle.Rect.boundary_length`
        — the communication proxy for 6-neighbour stencils.
        """
        if self.is_empty:
            return 0
        ea, eb, ec = self.extents
        area = 0
        if self.a0 > 0:
            area += eb * ec
        if self.a1 < n0:
            area += eb * ec
        if self.b0 > 0:
            area += ea * ec
        if self.b1 < n1:
            area += ea * ec
        if self.c0 > 0:
            area += ea * eb
        if self.c1 < n2:
            area += ea * eb
        return area
