"""Partition of a 3D load volume into boxes (rectangular volumes)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import InvalidPartitionError, ParameterError
from .box import Box
from .prefix3d import PrefixSum3D

__all__ = ["Partition3D"]


class Partition3D:
    """A set of ``m`` boxes partitioning an ``n0 × n1 × n2`` volume.

    The 3D analogue of :class:`repro.core.partition.Partition`: validity is
    pairwise disjointness plus full coverage; loads come from ``Γ₃`` corner
    gathers, fully vectorized over the boxes.
    """

    __slots__ = ("boxes", "shape", "method", "meta")

    def __init__(
        self,
        boxes: Sequence[Box],
        shape: tuple[int, int, int],
        *,
        method: str = "",
        meta: dict | None = None,
    ):
        self.boxes: tuple[Box, ...] = tuple(boxes)
        self.shape = (int(shape[0]), int(shape[1]), int(shape[2]))
        self.method = method
        self.meta = dict(meta or {})

    @property
    def m(self) -> int:
        """Number of processors (boxes), including idle ones."""
        return len(self.boxes)

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)

    def __getitem__(self, i: int) -> Box:
        return self.boxes[i]

    def __repr__(self) -> str:
        return f"<{self.method or 'Partition3D'} m={self.m} shape={self.shape}>"

    # ------------------------------------------------------------------
    def coords(self) -> np.ndarray:
        """``(m, 6)`` int array of box coordinates."""
        if not self.boxes:
            return np.zeros((0, 6), dtype=np.int64)
        return np.array(
            [(b.a0, b.a1, b.b0, b.b1, b.c0, b.c1) for b in self.boxes],
            dtype=np.int64,
        )

    def validate(self) -> None:
        """Disjointness + coverage, the 3D form of the §2.1 validity test."""
        n0, n1, n2 = self.shape
        coords = self.coords()
        if coords.size == 0:
            raise InvalidPartitionError("partition has no boxes")
        ext = coords[:, 1::2] - coords[:, 0::2]
        nonempty = coords[(ext > 0).all(axis=1)]
        if nonempty.size:
            if (
                (nonempty[:, 0::2] < 0).any()
                or (nonempty[:, 1] > n0).any()
                or (nonempty[:, 3] > n1).any()
                or (nonempty[:, 5] > n2).any()
            ):
                raise InvalidPartitionError("box outside the volume")
        vols = np.prod(nonempty[:, 1::2] - nonempty[:, 0::2], axis=1)
        if int(vols.sum()) != n0 * n1 * n2:
            raise InvalidPartitionError(
                f"volumes sum to {int(vols.sum())}, expected {n0 * n1 * n2}"
            )
        # pairwise overlap (vectorized, chunked)
        a0, a1, b0, b1, c0, c1 = nonempty.T
        k = len(nonempty)
        chunk = 256
        for lo in range(0, k, chunk):
            hi = min(lo + chunk, k)
            ov = (
                (a0[lo:hi, None] < a1[None, :])
                & (a0[None, :] < a1[lo:hi, None])
                & (b0[lo:hi, None] < b1[None, :])
                & (b0[None, :] < b1[lo:hi, None])
                & (c0[lo:hi, None] < c1[None, :])
                & (c0[None, :] < c1[lo:hi, None])
            )
            ov &= np.arange(lo, hi)[:, None] < np.arange(k)[None, :]
            if ov.any():
                i, j = np.argwhere(ov)[0]
                raise InvalidPartitionError(
                    f"boxes overlap: {nonempty[lo + i]} and {nonempty[j]}"
                )

    def is_valid(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except InvalidPartitionError:
            return False
        return True

    # ------------------------------------------------------------------
    def loads(self, pref: PrefixSum3D) -> np.ndarray:
        """Per-processor loads (vectorized 8-corner gather)."""
        coords = self.coords()
        if coords.size == 0:
            return np.zeros(0, dtype=np.int64)
        G = pref.G
        a0, a1, b0, b1, c0, c1 = coords.T
        return (
            G[a1, b1, c1]
            - G[a0, b1, c1]
            - G[a1, b0, c1]
            - G[a1, b1, c0]
            + G[a0, b0, c1]
            + G[a0, b1, c0]
            + G[a1, b0, c0]
            - G[a0, b0, c0]
        )

    def max_load(self, pref: PrefixSum3D) -> int:
        """Load of the most loaded processor."""
        return int(self.loads(pref).max())

    def imbalance(self, pref: PrefixSum3D) -> float:
        """Load imbalance ``Lmax / Lavg - 1``."""
        # reporting boundary: floats never feed back into a search
        lavg = pref.total / self.m  # repro-lint: disable=RPL003
        return self.max_load(pref) / lavg - 1.0 if lavg else 0.0  # repro-lint: disable=RPL003

    def owner_of(self, i: int, j: int, k: int) -> int:
        """Processor owning cell ``(i, j, k)`` (linear scan)."""
        n0, n1, n2 = self.shape
        if not (0 <= i < n0 and 0 <= j < n1 and 0 <= k < n2):
            raise ParameterError(f"cell ({i},{j},{k}) outside volume {self.shape}")
        for p, b in enumerate(self.boxes):
            if b.contains(i, j, k):
                return p
        raise InvalidPartitionError(f"cell ({i},{j},{k}) is not covered")

    def communication_volume(self) -> int:
        """Total cell faces crossing box boundaries (6-neighbour stencil)."""
        n0, n1, n2 = self.shape
        return sum(b.surface_area(n0, n1, n2) for b in self.boxes) // 2
