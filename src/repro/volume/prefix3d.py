"""3D prefix sums: O(1) box loads for rectangular-volume partitioning.

The paper's introduction targets computations "located in a discrete, two or
three-dimensional space", and notes that "rectangles (and rectangular
volumes) are the most preferred shape"; its PIC-MAG data is a 3D simulation
accumulated to 2D.  This module extends the §2.1 prefix-sum substrate to
three dimensions so the volume algorithms (:mod:`repro.volume.algorithms`)
can query any axis-aligned box in O(1) by inclusion–exclusion over the 8
corners of ``Γ₃``.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError

__all__ = ["PrefixSum3D", "as_load_volume"]


def as_load_volume(A: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a 3D load array to C-contiguous int64."""
    A = np.asarray(A)
    if A.ndim != 3:
        raise ParameterError(f"load volume must be 3D, got shape {A.shape}")
    if A.size == 0:
        raise ParameterError("load volume must be non-empty")
    if not np.issubdtype(A.dtype, np.integer):
        if np.issubdtype(A.dtype, np.floating) and np.allclose(A, np.rint(A)):
            A = np.rint(A)
        else:
            raise ParameterError(f"unsupported dtype {A.dtype}")
    A = np.ascontiguousarray(A, dtype=np.int64)
    if (A < 0).any():
        raise ParameterError("load volume entries must be non-negative")
    return A


class PrefixSum3D:
    """3D prefix-sum array ``Γ₃`` with O(1) box loads.

    ``Γ₃`` has shape ``(n0+1, n1+1, n2+1)``; the load of the half-open box
    ``[a0,a1) × [b0,b1) × [c0,c1)`` is the signed sum of its 8 corners.
    """

    __slots__ = ("G", "n0", "n1", "n2")

    def __init__(self, A: np.ndarray):
        A = as_load_volume(A)
        G = np.zeros(tuple(s + 1 for s in A.shape), dtype=np.int64)
        np.cumsum(A, axis=0, out=G[1:, 1:, 1:])
        np.cumsum(G[1:, 1:, 1:], axis=1, out=G[1:, 1:, 1:])
        np.cumsum(G[1:, 1:, 1:], axis=2, out=G[1:, 1:, 1:])
        self.G = G
        self.n0, self.n1, self.n2 = A.shape

    @property
    def shape(self) -> tuple[int, int, int]:
        """Shape ``(n0, n1, n2)`` of the underlying load volume."""
        return (self.n0, self.n1, self.n2)

    @property
    def total(self) -> int:
        """Total load."""
        return int(self.G[-1, -1, -1])

    def load(self, a0: int, a1: int, b0: int, b1: int, c0: int, c1: int) -> int:
        """Load of the half-open box (8-corner inclusion–exclusion)."""
        G = self.G
        return int(
            G[a1, b1, c1]
            - G[a0, b1, c1]
            - G[a1, b0, c1]
            - G[a1, b1, c0]
            + G[a0, b0, c1]
            + G[a0, b1, c0]
            + G[a1, b0, c0]
            - G[a0, b0, c0]
        )

    def axis_prefix(
        self,
        axis: int,
        lo1: int,
        hi1: int,
        lo2: int,
        hi2: int,
    ) -> np.ndarray:
        """Prefix along ``axis`` restricted to the other-axes window.

        For ``axis == 0`` the window is ``[lo1, hi1) × [lo2, hi2)`` over
        axes (1, 2); the result has length ``n0 + 1`` — one vectorized
        4-corner inclusion–exclusion over views of ``Γ₃``.
        """
        G = self.G
        if axis == 0:
            return (
                G[:, hi1, hi2] - G[:, lo1, hi2] - G[:, hi1, lo2] + G[:, lo1, lo2]
            )
        if axis == 1:
            return (
                G[hi1, :, hi2] - G[lo1, :, hi2] - G[hi1, :, lo2] + G[lo1, :, lo2]
            )
        if axis == 2:
            return (
                G[hi1, hi2, :] - G[lo1, hi2, :] - G[hi1, lo2, :] + G[lo1, lo2, :]
            )
        raise ParameterError(f"axis must be 0, 1 or 2, got {axis}")

    def slab_matrix(self, axis: int, lo: int, hi: int) -> np.ndarray:
        """2D prefix of the slab ``[lo, hi)`` along ``axis``.

        Returns a 2D prefix array (same convention as
        :class:`~repro.core.prefix.PrefixSum2D.G`) of the slab's projection
        onto the remaining two axes — the bridge from 3D slabs to the 2D
        algorithms.
        """
        G = self.G
        if axis == 0:
            return G[hi, :, :] - G[lo, :, :]
        if axis == 1:
            return G[:, hi, :] - G[:, lo, :]
        if axis == 2:
            return G[:, :, hi] - G[:, :, lo]
        raise ParameterError(f"axis must be 0, 1 or 2, got {axis}")

    def max_element(self) -> int:
        """Largest single-cell load."""
        d = np.diff(np.diff(np.diff(self.G, axis=0), axis=1), axis=2)
        return int(d.max()) if d.size else 0
