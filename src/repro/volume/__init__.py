"""Rectangular-volume (3D) partitioning — the paper's "rectangular volumes".

Extends the 2D machinery to three dimensions: ``Γ₃`` prefix sums with O(1)
box loads, a box partition container with the §2.1 validity test, and 3D
lifts of RECT-UNIFORM, JAG-M-HEUR and HIER-RB.
"""

from .algorithms import choose_pqr, vol_hier_rb, vol_jag_m_heur, vol_uniform
from .box import Box
from .partition3d import Partition3D
from .prefix3d import PrefixSum3D, as_load_volume

__all__ = [
    "choose_pqr",
    "vol_hier_rb",
    "vol_jag_m_heur",
    "vol_uniform",
    "Box",
    "Partition3D",
    "PrefixSum3D",
    "as_load_volume",
]
