"""Rectangular-volume partitioning algorithms (3D extension).

Three algorithms lifted from the paper's 2D families:

* :func:`vol_uniform` — the ``P×Q×R`` area-balancing grid (RECT-UNIFORM in
  3D; what ``MPI_Cart`` does for a 3D topology);
* :func:`vol_jag_m_heur` — the m-way jagged heuristic in 3D: an optimal 1D
  partition slices the volume into *slabs* along one axis, processors are
  distributed over the slabs proportionally to their loads (the paper's
  §3.2.2 rule), and each slab's 2D projection is partitioned by the 2D
  JAG-M-HEUR — every resulting rectangle extrudes through its slab;
* :func:`vol_hier_rb` — recursive bisection choosing the best of the three
  axes at each node (the HIER-RB-LOAD rule in 3D).

All run through ``Γ₃`` (O(1) box loads) and the 2D machinery via
:meth:`~repro.volume.prefix3d.PrefixSum3D.slab_matrix`.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..core.errors import ParameterError
from ..core.prefix import PrefixSum2D
from ..jagged.m_heur import _jag_m_heur_main0, allocate_processors
from ..oned.api import ONED_METHODS
from .box import Box
from .partition3d import Partition3D
from .prefix3d import PrefixSum3D

__all__ = ["vol_uniform", "vol_jag_m_heur", "vol_hier_rb", "choose_pqr"]


def _prefix3(A) -> PrefixSum3D:
    return A if isinstance(A, PrefixSum3D) else PrefixSum3D(A)


def choose_pqr(m: int, shape: tuple[int, int, int]) -> tuple[int, int, int]:
    """Factor ``m = P·Q·R`` as close to a cube as possible, fitting ``shape``."""
    if m <= 0:
        raise ParameterError("m must be positive")
    best = None
    for p in range(1, int(round(m ** (1 / 3))) + 2):
        if m % p:
            continue
        rest = m // p
        for q in range(1, int(np.sqrt(rest)) + 1):
            if rest % q:
                continue
            r = rest // q
            for cand in (
                (p, q, r), (p, r, q), (q, p, r), (q, r, p), (r, p, q), (r, q, p),
            ):
                if all(c <= s for c, s in zip(cand, shape)):
                    spread = max(cand) - min(cand)
                    if best is None or spread < best[0]:
                        best = (spread, cand)
    if best is None:
        # fall back to the most balanced factorization regardless of fit
        p = max(d for d in range(1, int(round(m ** (1 / 3))) + 2) if m % d == 0)
        rest = m // p
        q = max(d for d in range(1, int(np.sqrt(rest)) + 1) if rest % d == 0)
        return (p, q, rest // q)
    return best[1]


def _uniform_cuts(n: int, parts: int) -> np.ndarray:
    return np.round(np.linspace(0, n, parts + 1)).astype(np.int64)


def vol_uniform(
    A, m: int, dims: tuple[int, int, int] | None = None
) -> Partition3D:
    """Uniform ``P×Q×R`` grid over the volume (balances volume, not load)."""
    pref = _prefix3(A)
    P, Q, R = dims if dims is not None else choose_pqr(m, pref.shape)
    if P * Q * R != m:
        raise ParameterError(f"P*Q*R must equal m ({P}*{Q}*{R} != {m})")
    ac = _uniform_cuts(pref.n0, P)
    bc = _uniform_cuts(pref.n1, Q)
    cc = _uniform_cuts(pref.n2, R)
    boxes = [
        Box(
            int(ac[i]), int(ac[i + 1]),
            int(bc[j]), int(bc[j + 1]),
            int(cc[k]), int(cc[k + 1]),
        )
        for i in range(P)
        for j in range(Q)
        for k in range(R)
    ]
    return Partition3D(boxes, pref.shape, method="VOL-UNIFORM")


def vol_jag_m_heur(
    A,
    m: int,
    *,
    num_slabs: int | None = None,
    axis: int = 0,
    oned: str = "nicolplus",
) -> Partition3D:
    """3D m-way jagged heuristic: 1D slabs × 2D m-way jagged per slab.

    ``num_slabs`` defaults to ``m**(1/3)`` (the 3D analogue of the paper's
    ``√m`` stripes, balancing the three levels of the decomposition).
    """
    pref = _prefix3(A)
    if axis not in (0, 1, 2):
        raise ParameterError("axis must be 0, 1 or 2")
    n_axis = pref.shape[axis]
    S = num_slabs if num_slabs is not None else max(1, round(m ** (1 / 3)))
    S = max(1, min(S, n_axis, m))
    # projection of the whole volume onto the slab axis
    full = {
        0: pref.axis_prefix(0, 0, pref.n1, 0, pref.n2),
        1: pref.axis_prefix(1, 0, pref.n0, 0, pref.n2),
        2: pref.axis_prefix(2, 0, pref.n0, 0, pref.n1),
    }[axis]
    solve = ONED_METHODS[oned]
    _, slab_cuts = solve(full, S)
    slab_loads = full[slab_cuts[1:]] - full[slab_cuts[:-1]]
    q = allocate_processors(slab_loads, m)
    boxes: list[Box] = []
    for s in range(S):
        lo_s, hi_s = int(slab_cuts[s]), int(slab_cuts[s + 1])
        M2 = pref.slab_matrix(axis, lo_s, hi_s)
        part2 = _jag_m_heur_main0(
            PrefixSum2D(M2, is_prefix=True), int(q[s]), oned=oned
        )
        for r in part2.rects:
            if axis == 0:
                boxes.append(Box(lo_s, hi_s, r.r0, r.r1, r.c0, r.c1))
            elif axis == 1:
                boxes.append(Box(r.r0, r.r1, lo_s, hi_s, r.c0, r.c1))
            else:
                boxes.append(Box(r.r0, r.r1, r.c0, r.c1, lo_s, hi_s))
    return Partition3D(
        boxes, pref.shape, method="VOL-JAG-M-HEUR", meta={"slab_cuts": slab_cuts}
    )


def vol_hier_rb(A, m: int) -> Partition3D:
    """3D recursive bisection with the best-of-three-axes (LOAD) rule."""
    pref = _prefix3(A)
    if m <= 0:
        raise ParameterError("m must be positive")
    boxes: list[Box] = []
    stack = [(Box(0, pref.n0, 0, pref.n1, 0, pref.n2), m)]
    while stack:
        box, procs = stack.pop()
        if procs == 1 or box.volume <= 1:
            boxes.append(box)
            boxes.extend(Box(0, 0, 0, 0, 0, 0) for _ in range(procs - 1))
            continue
        m1, m2 = procs // 2, procs - procs // 2
        orientations = ((m1, m2),) if m1 == m2 else ((m1, m2), (m2, m1))
        best = None  # (value, axis, cut_abs, wl, wr)
        for axis in (0, 1, 2):
            bp = _box_axis_prefix(pref, box, axis)
            L = len(bp) - 1
            if L < 2:
                continue
            total = int(bp[-1])
            for wl, wr in orientations:
                # exact integer balance target and Fraction scores, as in
                # hierarchical.cuts.best_weighted_cut (RPL003 discipline)
                target = (total * wl) // procs
                c = int(np.searchsorted(bp, target, side="right")) - 1
                for cand in (c, c + 1):
                    if not (1 <= cand <= L - 1):
                        continue
                    l1 = int(bp[cand])
                    v = max(Fraction(l1, wl), Fraction(total - l1, wr))
                    if best is None or v < best[0]:
                        best = (v, axis, cand, wl, wr)
        if best is None:  # un-cuttable box with several processors
            boxes.append(box)
            boxes.extend(Box(0, 0, 0, 0, 0, 0) for _ in range(procs - 1))
            continue
        _, axis, cut, wl, wr = best
        left, right = _split_box(box, axis, cut)
        stack.append((left, wl))
        stack.append((right, wr))
    return Partition3D(boxes, pref.shape, method="VOL-HIER-RB")


def _box_axis_prefix(pref: PrefixSum3D, box: Box, axis: int) -> np.ndarray:
    """Rebased prefix along ``axis`` inside ``box``."""
    if axis == 0:
        p = pref.axis_prefix(0, box.b0, box.b1, box.c0, box.c1)[box.a0 : box.a1 + 1]
    elif axis == 1:
        p = pref.axis_prefix(1, box.a0, box.a1, box.c0, box.c1)[box.b0 : box.b1 + 1]
    else:
        p = pref.axis_prefix(2, box.a0, box.a1, box.b0, box.b1)[box.c0 : box.c1 + 1]
    return p - p[0]


def _split_box(box: Box, axis: int, cut_rel: int) -> tuple[Box, Box]:
    if axis == 0:
        c = box.a0 + cut_rel
        return (
            Box(box.a0, c, box.b0, box.b1, box.c0, box.c1),
            Box(c, box.a1, box.b0, box.b1, box.c0, box.c1),
        )
    if axis == 1:
        c = box.b0 + cut_rel
        return (
            Box(box.a0, box.a1, box.b0, c, box.c0, box.c1),
            Box(box.a0, box.a1, c, box.b1, box.c0, box.c1),
        )
    c = box.c0 + cut_rel
    return (
        Box(box.a0, box.a1, box.b0, box.b1, box.c0, c),
        Box(box.a0, box.a1, box.b0, box.b1, c, box.c1),
    )
