"""Central registry of every environment variable the repo reads.

Each knob the codebase consults from the environment is declared here once,
with its default and a one-line description.  The layer-specific config
modules (:mod:`repro.perf.config`, :mod:`repro.parallel.config`, the sweep
engine) keep their own parsing — a truthy switch and a byte budget want
different validation — but the *names and defaults* live in this table, and
``repro-lint`` (RPL011) enforces three properties against it:

* every ``os.environ`` read in the tree happens inside a declared config
  module (this one, a ``*/config.py``, or the sweep engine);
* every variable name read anywhere is declared in :data:`ENV_VARS`;
* every declared variable is documented under ``docs/``.

``ENV_VARS`` must stay a plain dict literal with string-constant keys: the
lint rule reads it statically, without importing this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["EnvVar", "ENV_VARS", "env_str"]


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment knob."""

    default: str
    description: str
    consumer: str  #: module that parses and applies the value


ENV_VARS: dict[str, EnvVar] = {
    "REPRO_PERF": EnvVar(
        default="1",
        description="optimized-kernel layer switch; 0/false/off/no disables",
        consumer="repro.perf.config",
    ),
    "REPRO_PERF_BACKEND": EnvVar(
        default="numpy",
        description="kernel-registry backend: reference, numpy or numba (degrades to numpy when the [perf] extra is absent)",
        consumer="repro.perf.config",
    ),
    "REPRO_PERF_CACHE_MB": EnvVar(
        default="64",
        description="per-prefix projection-cache budget in MiB",
        consumer="repro.perf.config",
    ),
    "REPRO_PERF_CACHE_MIN_CELLS": EnvVar(
        default="65536",
        description="instance size (cells) below which memoization is skipped",
        consumer="repro.perf.config",
    ),
    "REPRO_PARALLEL": EnvVar(
        default="0",
        description="multicore execution layer switch; off by default",
        consumer="repro.parallel.config",
    ),
    "REPRO_PARALLEL_WORKERS": EnvVar(
        default="",
        description="worker-process count; empty means os.cpu_count()",
        consumer="repro.parallel.config",
    ),
    "REPRO_PARALLEL_MIN_CELLS": EnvVar(
        default="262144",
        description="work size (cells) below which dispatch stays serial",
        consumer="repro.parallel.config",
    ),
    "REPRO_SWEEP_STORE": EnvVar(
        default="",
        description="sweep fact-store path; empty keeps sweeps in-memory",
        consumer="repro.sweep.engine",
    ),
    "REPRO_RAW_STORE": EnvVar(
        default="",
        description="raw figure-result store directory; empty recomputes every cell",
        consumer="repro.experiments.rawstore",
    ),
    "REPRO_SCALE": EnvVar(
        default="small",
        description="experiment scale profile: tiny, small, paper or large",
        consumer="repro.experiments.scale",
    ),
    "REPRO_SPARSE_THRESHOLD": EnvVar(
        default="0.25",
        description="density (nnz/cells) at or below which auto_substrate builds the CSR substrate; 0 disables sparse",
        consumer="repro.core.sparse",
    ),
    "REPRO_CACHE": EnvVar(
        default="",
        description="instance cache directory; empty means ~/.cache/repro",
        consumer="repro.instances.pic.dataset",
    ),
}


def env_str(name: str) -> str:
    """The current value of a *declared* variable, or its registered default.

    Raises ``KeyError`` for undeclared names — an env read that bypasses the
    registry is exactly what RPL011 exists to prevent, so the runtime
    accessor refuses it too.
    """
    spec = ENV_VARS[name]
    return os.environ.get(name, spec.default)  # repro-lint: disable=RPL011 — the registry accessor itself; the name is validated against ENV_VARS above
