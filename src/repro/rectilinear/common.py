"""Shared rectilinear helpers: partition assembly and grid bottleneck."""

from __future__ import annotations

import numpy as np

from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..core.rectangle import Rect

__all__ = ["build_rectilinear_partition", "grid_bottleneck"]


def grid_bottleneck(
    pref: PrefixSum2D, row_cuts: np.ndarray, col_cuts: np.ndarray
) -> int:
    """Max block load of the ``P×Q`` grid — fully vectorized over blocks."""
    G = getattr(pref, "G", None)
    if G is not None:
        sub = G[np.ix_(row_cuts, col_cuts)]
        blocks = sub[1:, 1:] - sub[:-1, 1:] - sub[1:, :-1] + sub[:-1, :-1]
        return int(blocks.max()) if blocks.size else 0
    # sparse substrate: one stripe projection per row band, gathered at the
    # column cuts — touches only the nnz inside each stripe
    cuts = np.asarray(col_cuts, dtype=np.int64)
    best = 0
    for p in range(len(row_cuts) - 1):
        band = pref.axis_prefix(1, int(row_cuts[p]), int(row_cuts[p + 1]))
        at_cuts = band[cuts]
        blocks = at_cuts[1:] - at_cuts[:-1]
        if blocks.size:
            best = max(best, int(blocks.max()))
    return best


def build_rectilinear_partition(
    pref: PrefixSum2D,
    row_cuts: np.ndarray,
    col_cuts: np.ndarray,
    *,
    method: str = "",
) -> Partition:
    """Assemble a partition from grid cuts, with a two-binary-search indexer."""
    row_cuts = np.asarray(row_cuts, dtype=np.int64)
    col_cuts = np.asarray(col_cuts, dtype=np.int64)
    P = len(row_cuts) - 1
    Q = len(col_cuts) - 1
    rects = [
        Rect(int(row_cuts[p]), int(row_cuts[p + 1]), int(col_cuts[q]), int(col_cuts[q + 1]))
        for p in range(P)
        for q in range(Q)
    ]

    def indexer(i: int, j: int) -> int:
        p = int(np.searchsorted(row_cuts, i, side="right")) - 1
        q = int(np.searchsorted(col_cuts, j, side="right")) - 1
        p = min(max(p, 0), P - 1)
        q = min(max(q, 0), Q - 1)
        while row_cuts[p + 1] <= i and p < P - 1:
            p += 1
        while col_cuts[q + 1] <= j and q < Q - 1:
            q += 1
        return p * Q + q

    return Partition(
        rects,
        pref.shape,
        method=method,
        indexer=indexer,
        meta={"row_cuts": row_cuts, "col_cuts": col_cuts},
    )
