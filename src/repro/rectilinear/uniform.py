"""RECT-UNIFORM: the naive rectilinear partition (paper §3.1).

Divides the first dimension into ``P`` and the second into ``Q`` intervals
of (near-)equal *size* — the MPI_Cart-style distribution that "balances the
area and not the load".  Serves as the reference baseline of the paper's
Figure 12.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, prefix_2d
from ..jagged.common import choose_pq
from .common import build_rectilinear_partition

__all__ = ["rect_uniform", "uniform_cuts"]


def uniform_cuts(n: int, parts: int) -> np.ndarray:
    """Equal-size interval boundaries: ``round(k · n / parts)``."""
    return np.round(np.linspace(0, n, parts + 1)).astype(np.int64)


def rect_uniform(
    A: MatrixLike, m: int, P: int | None = None, Q: int | None = None
) -> Partition:
    """Uniform ``P×Q`` rectilinear partition (§3.1; area-balanced, load-oblivious)."""
    pref = prefix_2d(A)
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    row_cuts = uniform_cuts(pref.n1, P)
    col_cuts = uniform_cuts(pref.n2, Q)
    return build_rectilinear_partition(pref, row_cuts, col_cuts, method="RECT-UNIFORM")
