"""Exact rectilinear partitioning — small-instance oracle (§3.1).

Computing the optimal rectilinear partition is NP-hard [17] and admits no
(2−ε)-approximation unless P=NP [14]; nevertheless, for *small* instances
the optimum is computable by enumerating the ``P-1`` row cuts and solving
each candidate's column side exactly (the striped 1D problem RECT-NICOL
refines against is *optimal* once one dimension is fixed).

Used by the tests to (a) measure how far RECT-NICOL's local refinement
lands from the true rectilinear optimum and (b) verify the class hierarchy
of Figure 1: ``OPT_rectilinear ≥ OPT_{P×Q jagged}`` (every rectilinear
partition is a P×Q jagged partition with aligned stripes).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, prefix_2d
from ..jagged.common import choose_pq
from ..oned.multicost import multi_bottleneck, multi_cuts
from .common import build_rectilinear_partition
from .nicol import _stripe_matrix

__all__ = ["rect_opt", "rect_opt_bottleneck"]


def _enumerate(pref, P: int, Q: int, limit: int):
    """Yield ``(bottleneck, row_cuts, col_cuts)`` over all row-cut choices."""
    n1 = pref.n1
    k = min(P, n1) - 1
    from math import comb

    if comb(n1 - 1, k) > limit:
        raise ParameterError(
            f"instance too large for exact rectilinear enumeration "
            f"(C({n1 - 1},{k}) row-cut choices > {limit})"
        )
    for cuts in combinations(range(1, n1), k):
        row_cuts = np.array([0, *cuts, *([n1] * (P - k))], dtype=np.int64)
        M = _stripe_matrix(pref, row_cuts, 0)
        B = multi_bottleneck(M, Q)
        yield B, row_cuts, M


def rect_opt_bottleneck(
    A: MatrixLike, P: int, Q: int, *, limit: int = 200_000
) -> int:
    """Optimal ``P×Q`` rectilinear bottleneck by row-cut enumeration."""
    pref = prefix_2d(A)
    best: int | None = None
    for B, _, _ in _enumerate(pref, P, Q, limit):
        if best is None or B < best:
            best = B
    assert best is not None
    return int(best)


def rect_opt(
    A: MatrixLike,
    m: int,
    P: int | None = None,
    Q: int | None = None,
    *,
    limit: int = 200_000,
) -> Partition:
    """Optimal ``P×Q`` rectilinear partition (small instances only)."""
    pref = prefix_2d(A)
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    best = None  # (B, row_cuts, M)
    for B, row_cuts, M in _enumerate(pref, P, Q, limit):
        if best is None or B < best[0]:
            best = (B, row_cuts, M)
    assert best is not None
    B, row_cuts, M = best
    col_cuts = multi_cuts(M, Q, B)
    assert col_cuts is not None
    return build_rectilinear_partition(pref, row_cuts, col_cuts, method="RECT-OPT")
