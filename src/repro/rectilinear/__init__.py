"""Rectilinear (general block) partitions: RECT-UNIFORM and RECT-NICOL (§3.1)."""

from .common import build_rectilinear_partition, grid_bottleneck
from .nicol import rect_nicol
from .opt import rect_opt, rect_opt_bottleneck
from .uniform import rect_uniform, uniform_cuts

__all__ = [
    "build_rectilinear_partition",
    "grid_bottleneck",
    "rect_nicol",
    "rect_opt",
    "rect_opt_bottleneck",
    "rect_uniform",
    "uniform_cuts",
]
