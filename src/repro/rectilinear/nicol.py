"""RECT-NICOL: Nicol's iterative rectilinear refinement (paper §3.1, refs [9], [15]).

"Provided the partition in one dimension, called the fixed dimension,
RECT-NICOL computes the optimal partition in the other dimension using an
optimal one dimension partitioning algorithm.  The one dimension partitioning
problem is built by setting the load of an interval … as the maximum of the
load of the interval inside each stripe of the fixed dimension.  At each
iteration, the partition of one dimension is refined."

The striped 1D sub-problem is solved exactly by
:func:`repro.oned.multicost.partition_multi`, whose feasibility probes route
through the ``probe_multi`` registry kernel (:mod:`repro.perf.kernels`,
selected by ``REPRO_PERF_BACKEND``) when the perf layer is on — so the
refinement's inner loop shares the batched/compiled probe implementations
with the rest of the tree while staying bit-identical to the scalar
reference.  Iteration stops when the grid bottleneck stops improving (the
paper observes 3–10 iterations in practice for a 514×514 matrix up to
10 000 processors) or at ``max_iters``.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..jagged.common import choose_pq
from ..oned.multicost import partition_multi
from ..perf.config import perf_enabled
from .common import build_rectilinear_partition, grid_bottleneck
from .uniform import uniform_cuts

__all__ = ["rect_nicol"]


def _stripe_matrix(pref: PrefixSum2D, cuts: np.ndarray, axis: int) -> np.ndarray:
    """Stacked per-stripe prefix arrays along the *free* dimension.

    ``axis`` is the fixed dimension carrying the stripes delimited by
    ``cuts``; row ``s`` of the result is the prefix of the free dimension
    restricted to stripe ``s``.  One fancy-indexing subtraction on Γ.
    """
    G = getattr(pref, "G", None)
    if G is not None:
        if axis == 0:
            return G[cuts[1:], :] - G[cuts[:-1], :]
        return (G[:, cuts[1:]] - G[:, cuts[:-1]]).T
    # sparse substrate: one stripe projection per band (axis 0 stripes
    # project onto axis 1 and vice versa), identical values to the dense
    # fancy-indexing subtraction above
    return np.stack(
        [
            pref.axis_prefix(1 - axis, int(cuts[s]), int(cuts[s + 1]))
            for s in range(len(cuts) - 1)
        ]
    )


def _validated_cuts(cuts, n: int, parts: int, what: str) -> np.ndarray:
    out = np.asarray(cuts, dtype=np.int64)
    if out.ndim != 1 or len(out) != parts + 1:
        raise ParameterError(f"{what} init_cuts must have length {parts + 1}")
    if out[0] != 0 or out[-1] != n or (np.diff(out) < 0).any():
        raise ParameterError(f"{what} init_cuts must be nondecreasing from 0 to {n}")
    return out


def rect_nicol(
    A: MatrixLike,
    m: int,
    P: int | None = None,
    Q: int | None = None,
    *,
    max_iters: int = 20,
    init_cuts: tuple | None = None,
) -> Partition:
    """Iteratively refined ``P×Q`` rectilinear partition (§3.1, refs [9, 15]).

    Starts from uniform row cuts, then alternately re-optimizes the column
    and row cuts against the striped max-load cost until the bottleneck
    stops improving.

    ``init_cuts`` optionally replaces the uniform starting point with a
    caller-provided ``(row_cuts, col_cuts)`` pair (validated).  Note that a
    different starting point changes the refinement *trajectory* and may
    converge to a different (better or worse) local fixed point — which is
    exactly why the sweep engine does **not** chain cuts across ``m``
    values: its contract is bit-identity with cold calls.  The identity-
    safe warm start used instead is internal: each striped sub-problem is
    seeded with the incumbent grid bottleneck as a feasible upper-bound
    hint, which :func:`~repro.oned.multicost.multi_bottleneck` verifies
    before trusting (perf-gated; the reference path keeps the cold
    bracket).
    """
    pref = prefix_2d(A)
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    if init_cuts is not None:
        row_init, col_init = init_cuts
        row_cuts = _validated_cuts(row_init, pref.n1, P, "row")
        col_cuts = _validated_cuts(col_init, pref.n2, Q, "column")
    else:
        row_cuts = uniform_cuts(pref.n1, P)
        col_cuts = uniform_cuts(pref.n2, Q)
    best = grid_bottleneck(pref, row_cuts, col_cuts)
    best_cuts = (row_cuts.copy(), col_cuts.copy())
    iters_used = 0
    fast = perf_enabled()
    # the current cuts achieve `cur` on the grid, so `cur` upper-bounds the
    # next refinement's striped optimum — a valid (and verified) hint
    cur = best
    for it in range(max_iters):
        prev = best
        # refine columns against fixed rows, then rows against fixed columns;
        # each refinement's striped bottleneck IS the grid bottleneck of the
        # (fixed, refined) pair
        M = _stripe_matrix(pref, row_cuts, 0)
        b1, col_cuts = partition_multi(M, Q, ub=cur if fast else None)
        cur = b1
        if b1 < best:
            best = b1
            best_cuts = (row_cuts.copy(), col_cuts.copy())
        M = _stripe_matrix(pref, col_cuts, 1)
        b2, row_cuts = partition_multi(M, P, ub=cur if fast else None)
        cur = b2
        iters_used = it + 1
        if b2 < best:
            best = b2
            best_cuts = (row_cuts.copy(), col_cuts.copy())
        if best >= prev:
            break  # no refinement improved: converged
    part = build_rectilinear_partition(
        pref, best_cuts[0], best_cuts[1], method="RECT-NICOL"
    )
    part.meta["iterations"] = iters_used
    return part
