"""RECT-NICOL: Nicol's iterative rectilinear refinement (paper §3.1, refs [9], [15]).

"Provided the partition in one dimension, called the fixed dimension,
RECT-NICOL computes the optimal partition in the other dimension using an
optimal one dimension partitioning algorithm.  The one dimension partitioning
problem is built by setting the load of an interval … as the maximum of the
load of the interval inside each stripe of the fixed dimension.  At each
iteration, the partition of one dimension is refined."

The striped 1D sub-problem is solved exactly by
:func:`repro.oned.multicost.partition_multi`.  Iteration stops when the grid
bottleneck stops improving (the paper observes 3–10 iterations in practice
for a 514×514 matrix up to 10 000 processors) or at ``max_iters``.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..jagged.common import choose_pq
from ..oned.multicost import partition_multi
from .common import build_rectilinear_partition, grid_bottleneck
from .uniform import uniform_cuts

__all__ = ["rect_nicol"]


def _stripe_matrix(pref: PrefixSum2D, cuts: np.ndarray, axis: int) -> np.ndarray:
    """Stacked per-stripe prefix arrays along the *free* dimension.

    ``axis`` is the fixed dimension carrying the stripes delimited by
    ``cuts``; row ``s`` of the result is the prefix of the free dimension
    restricted to stripe ``s``.  One fancy-indexing subtraction on Γ.
    """
    G = pref.G
    if axis == 0:
        return G[cuts[1:], :] - G[cuts[:-1], :]
    return (G[:, cuts[1:]] - G[:, cuts[:-1]]).T


def rect_nicol(
    A: MatrixLike,
    m: int,
    P: int | None = None,
    Q: int | None = None,
    *,
    max_iters: int = 20,
) -> Partition:
    """Iteratively refined ``P×Q`` rectilinear partition (§3.1, refs [9, 15]).

    Starts from uniform row cuts, then alternately re-optimizes the column
    and row cuts against the striped max-load cost until the bottleneck
    stops improving.
    """
    pref = prefix_2d(A)
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    row_cuts = uniform_cuts(pref.n1, P)
    col_cuts = uniform_cuts(pref.n2, Q)
    best = grid_bottleneck(pref, row_cuts, col_cuts)
    best_cuts = (row_cuts.copy(), col_cuts.copy())
    iters_used = 0
    for it in range(max_iters):
        prev = best
        # refine columns against fixed rows, then rows against fixed columns;
        # each refinement's striped bottleneck IS the grid bottleneck of the
        # (fixed, refined) pair
        M = _stripe_matrix(pref, row_cuts, 0)
        b1, col_cuts = partition_multi(M, Q)
        if b1 < best:
            best = b1
            best_cuts = (row_cuts.copy(), col_cuts.copy())
        M = _stripe_matrix(pref, col_cuts, 1)
        b2, row_cuts = partition_multi(M, P)
        iters_used = it + 1
        if b2 < best:
            best = b2
            best_cuts = (row_cuts.copy(), col_cuts.copy())
        if best >= prev:
            break  # no refinement improved: converged
    part = build_rectilinear_partition(
        pref, best_cuts[0], best_cuts[1], method="RECT-NICOL"
    )
    part.meta["iterations"] = iters_used
    return part
