"""Worst-case guarantees of the paper (Lemma 1, Theorems 1–4).

All formulas assume a zero-free load matrix with element ratio
``Δ = max A[i][j] / min A[i][j]`` (the paper's hypothesis "if there is no
zero in the array").  ``delta_of`` computes Δ and raises on matrices with
zeros (e.g. the SLAC mesh, for which "Δ is undefined", §4.1).

The bounds are *approximation ratios*: a ρ-approximation yields load
imbalance at most ρ - 1 (§2.1).  Property tests assert that the heuristics
never exceed their guarantees.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ParameterError
from ..core.prefix import LoadView, MatrixLike, PrefixSum2D, prefix_2d

__all__ = [
    "delta_of",
    "jag_m_guarantee",
    "jag_pq_guarantee",
    "lemma1_dc_bound",
    "theorem1_ratio",
    "theorem2_best_p",
    "theorem3_ratio",
    "theorem4_best_p",
]


def delta_of(A: MatrixLike) -> float:
    """Element ratio ``Δ = max / min`` of a zero-free load matrix."""
    if isinstance(A, (PrefixSum2D, LoadView)):
        mn = A.min_element()
        mx = A.max_element()
    else:
        cells = np.asarray(A)
        mn = cells.min()
        mx = cells.max()
    if mn <= 0:
        raise ParameterError("Δ is undefined for matrices containing zeros (§4.1)")
    return float(mx / mn)


def lemma1_dc_bound(total: int, m: int, n: int, delta: float) -> float:
    """Lemma 1: ``Lmax(DC) <= (total/m)(1 + Δ·m/n)`` for zero-free 1D arrays."""
    if m <= 0 or n <= 0 or delta < 1:
        raise ParameterError("need m, n >= 1 and Δ >= 1")
    return (total / m) * (1.0 + delta * m / n)


def theorem1_ratio(delta: float, P: int, Q: int, n1: int, n2: int) -> float:
    """Theorem 1: JAG-PQ-HEUR is a ``(1 + Δ·P/n1)(1 + Δ·Q/n2)``-approximation.

    Requires ``P < n1`` and ``Q < n2`` (each stripe/interval must contain at
    least one full line of cells).
    """
    if not (0 < P < n1 and 0 < Q < n2):
        raise ParameterError("Theorem 1 requires 0 < P < n1 and 0 < Q < n2")
    if delta < 1:
        raise ParameterError("Δ >= 1")
    return (1.0 + delta * P / n1) * (1.0 + delta * Q / n2)


def theorem2_best_p(m: int, n1: int, n2: int) -> float:
    """Theorem 2: the ratio of Theorem 1 is minimized at ``P = sqrt(m·n1/n2)``."""
    if m <= 0 or n1 <= 0 or n2 <= 0:
        raise ParameterError("need positive m, n1, n2")
    return math.sqrt(m * n1 / n2)


def theorem3_ratio(delta: float, P: int, m: int, n1: int, n2: int) -> float:
    """Theorem 3: JAG-M-HEUR approximation ratio with ``P`` stripes.

    ``m/(m-P)·(1 + Δ/n2) + Δ·m/(P·n2)·(1 + Δ·P/n1)``; requires ``P < n1``
    and ``P < m``.
    """
    if not (0 < P < n1):
        raise ParameterError("Theorem 3 requires 0 < P < n1")
    if not (P < m):
        raise ParameterError("Theorem 3 requires P < m")
    if delta < 1:
        raise ParameterError("Δ >= 1")
    return (m / (m - P)) * (1.0 + delta / n2) + (delta * m / (P * n2)) * (
        1.0 + delta * P / n1
    )


def theorem4_best_p(delta: float, m: int, n2: int) -> float:
    """Theorem 4: the ratio of Theorem 3 is minimized at
    ``P = m(sqrt(Δ(Δ + n2)) - Δ)/n2``.

    Notably linear in ``m`` and independent of ``n1``; the paper observes the
    Δ-dependence makes it hard to use in practice and falls back to
    ``P = √m`` (tested and swept in Figure 9).
    """
    if delta < 1 or m <= 0 or n2 <= 0:
        raise ParameterError("need Δ >= 1 and positive m, n2")
    return m * (math.sqrt(delta * (delta + n2)) - delta) / n2


def jag_pq_guarantee(A: MatrixLike, P: int, Q: int) -> float:
    """Theorem 1 instantiated on a concrete matrix (convenience wrapper)."""
    pref = prefix_2d(A)
    return theorem1_ratio(delta_of(pref), P, Q, pref.n1, pref.n2)


def jag_m_guarantee(A: MatrixLike, P: int, m: int) -> float:
    """Theorem 3 instantiated on a concrete matrix (convenience wrapper)."""
    pref = prefix_2d(A)
    return theorem3_ratio(delta_of(pref), P, m, pref.n1, pref.n2)
