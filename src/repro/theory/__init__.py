"""Worst-case analysis: Lemma 1 and Theorems 1–4 of the paper."""

from .bounds import (
    delta_of,
    jag_m_guarantee,
    jag_pq_guarantee,
    lemma1_dc_bound,
    theorem1_ratio,
    theorem2_best_p,
    theorem3_ratio,
    theorem4_best_p,
)

__all__ = [
    "delta_of",
    "jag_m_guarantee",
    "jag_pq_guarantee",
    "lemma1_dc_bound",
    "theorem1_ratio",
    "theorem2_best_p",
    "theorem3_ratio",
    "theorem4_best_p",
]
