"""Global switch and sizing knobs for the optimized kernel layer.

Every optimized code path in the repo dispatches on :func:`perf_enabled` and
keeps the straight-line reference implementation alive next to it.  That
costs one branch per call, and buys two properties the perf work depends on:

* the perf-regression harness (``benchmarks/perf_regress.py``) can time the
  *same* entry points before and after, in one process, and
* the equality tests can assert the optimized kernels produce bit-identical
  partitions to the reference paths on randomized instances.

The switch defaults to on; ``REPRO_PERF=0`` in the environment turns the
whole layer off (useful for bisecting a suspected cache bug).

Orthogonal to the on/off switch, ``REPRO_PERF_BACKEND`` selects which
implementation the kernel registry (:mod:`repro.perf.kernels`) resolves for
the *fast* branch: ``numpy`` (the default — the vectorized paths), ``numba``
(the optional compiled twins; silently degrades to numpy when the ``[perf]``
extra is not installed), or ``reference`` (the registry's scalar ground
truth, for timing and debugging).  Unrecognized values fall back to
``numpy``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "perf_enabled",
    "set_perf_enabled",
    "use_perf",
    "perf_backend",
    "set_perf_backend",
    "use_perf_backend",
    "cache_budget_bytes",
    "cache_min_cells",
]

_ENABLED: bool = os.environ.get("REPRO_PERF", "1").strip().lower() not in {
    "0",
    "false",
    "off",
    "no",
}

#: default per-prefix cache budget; enough for the JAG-M-OPT feasibility DP
#: on the small-profile instances to keep every (stripe start, stripe end)
#: band resident across all bisection iterations.
_DEFAULT_CACHE_MB = 64


def perf_enabled() -> bool:
    """True when the optimized kernels are active (default)."""
    return _ENABLED


def set_perf_enabled(on: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(on)
    return prev


@contextmanager
def use_perf(on: bool) -> Iterator[None]:
    """Context manager scoping the global switch (used by tests/benchmarks)."""
    prev = set_perf_enabled(on)
    try:
        yield
    finally:
        set_perf_enabled(prev)


#: backends the kernel registry can resolve (see repro.perf.kernels)
_VALID_BACKENDS = ("reference", "numpy", "numba")


def _parse_backend(raw: str) -> str:
    val = raw.strip().lower()
    return val if val in _VALID_BACKENDS else "numpy"


_BACKEND: str = _parse_backend(os.environ.get("REPRO_PERF_BACKEND", "numpy"))


def perf_backend() -> str:
    """The kernel backend the registry resolves (``REPRO_PERF_BACKEND``)."""
    return _BACKEND


def set_perf_backend(name: str) -> str:
    """Set the kernel backend; returns the previous one.

    Raises ``ValueError`` on unknown names — unlike the environment parse,
    which falls back to ``numpy``, a programmatic typo should be loud.
    """
    global _BACKEND
    if name not in _VALID_BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {_VALID_BACKENDS}")
    prev = _BACKEND
    _BACKEND = name
    return prev


@contextmanager
def use_perf_backend(name: str) -> Iterator[None]:
    """Context manager scoping the kernel backend (tests and the bench harness)."""
    prev = set_perf_backend(name)
    try:
        yield
    finally:
        set_perf_backend(prev)


def cache_budget_bytes() -> int:
    """Per-prefix projection-cache budget in bytes (``REPRO_PERF_CACHE_MB``)."""
    raw = os.environ.get("REPRO_PERF_CACHE_MB", "").strip()
    try:
        mb = int(raw) if raw else _DEFAULT_CACHE_MB
    except ValueError:
        mb = _DEFAULT_CACHE_MB
    return max(1, mb) * 1024 * 1024


#: instance size (n1·n2 cells) below which projection memoization is skipped
#: by default: on small matrices the straight-line subtraction is cheaper
#: than the cache key/lookup bookkeeping (measured — see the small-instance
#: rows of BENCH_core.json and docs/performance.md), and the exact solvers
#: that *do* win from reuse at any size request it explicitly per call.
_DEFAULT_CACHE_MIN_CELLS = 65536


def cache_min_cells() -> int:
    """Memoization size threshold in cells (``REPRO_PERF_CACHE_MIN_CELLS``).

    Callers that pass an explicit ``reuse=`` to the projection queries are
    unaffected; this only sets the default for call sites that leave the
    decision to the instance size.  ``0`` restores the pre-threshold
    behavior (memoize always).
    """
    raw = os.environ.get("REPRO_PERF_CACHE_MIN_CELLS", "").strip()
    try:
        cells = int(raw) if raw else _DEFAULT_CACHE_MIN_CELLS
    except ValueError:
        cells = _DEFAULT_CACHE_MIN_CELLS
    return max(0, cells)
