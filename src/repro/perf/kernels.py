"""The stable kernel interface: named kernels × selectable backends.

Grown out of ``repro.perf.batch`` (PR 2): every vectorized inner loop of the
partitioners now lives here as a *named kernel* with up to three
implementations —

``reference``
    A self-contained scalar transliteration of the algorithm module's
    straight-line path (Python ``bisect`` / exact int arithmetic).  This is
    the ground truth the other backends are property-tested against
    bit-for-bit (``tests/test_kernels_equality.py``).
``numpy``
    The vectorized array-program formulation (chained/jump-table
    ``searchsorted``, fused windowed scoring).  The default backend, and
    exactly the behavior the perf layer shipped before the registry existed.
``numba``
    An optional compiled twin (``pip install .[perf]``), lazily imported
    from :mod:`repro.perf._numba` on first use.  When numba is absent — or a
    kernel has no compiled form — resolution silently degrades to ``numpy``;
    requesting the backend never errors.  Kernels whose decisions need
    arbitrary-precision Python-int arithmetic (``weighted_cut``,
    ``relaxed_split``, ``alloc_tail``) deliberately have no compiled form:
    int64 nopython arithmetic could overflow where the contract promises
    exactness at any load magnitude.

The backend is selected by ``REPRO_PERF_BACKEND`` (parsed in
:mod:`repro.perf.config`, declared in :data:`repro.config.ENV_VARS`), or
scoped with :func:`repro.perf.config.use_perf_backend`.  Backend selection
is *orthogonal* to :func:`~repro.perf.config.perf_enabled`: call sites keep
their ``perf_enabled()`` dispatch and reference twins (the RPL009 contract),
and only the fast branch routes through this registry.

This module is deliberately self-contained — it imports nothing from the
algorithm packages (``oned``/``jagged``/``hierarchical``), because those
packages import *it*; the reference implementations are transliterations,
pinned against the originals by the equality suites rather than by sharing
code.

Overflow discipline: every ``searchsorted`` target is clamped into the
window (``target = p[pos] + min(B, p[hi] - p[pos])`` decides identically —
any target at or beyond ``p[hi]`` resolves to the window end) and balance
targets fall back to exact Python-int arithmetic when ``total · (m-1)``
could exceed int64, so loads near ``2**62`` are safe in every backend.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Sequence

import numpy as np

from .config import perf_backend
from .counters import _STACK as _OPS
from .counters import bump

__all__ = [
    "Kernel",
    "KERNELS",
    "kernel",
    "numba_available",
    "probe_batch",
    "min_parts_batch",
    "probe_cuts",
    "weighted_cut_win",
    "relaxed_split_win",
    "relaxed_split_scalar",
    "alloc_tail",
    "probe_multi",
    "SCALAR_MAX_M",
]

_I64_MAX = 2**63 - 1

#: boundaries-per-interval ratio above which building an O(n) jump table
#: cannot amortize against a greedy walk that visits at most m boundaries
_CUTS_JUMP_RATIO = 16

#: amortization bar for the probe_cuts jump table: the greedy realizes a
#: *feasible* bottleneck, so it covers the window in ~span/B steps and pads
#: the remaining cuts without further searches.  The O(window) table build
#: (~40ns/boundary) only beats per-step ``bisect_right`` (~250ns/step on
#: a 10^5-boundary window) when the walk visits at least window/4
#: boundaries — measured crossover on the bench box, see
#: docs/performance.md ("probe_cuts regime crossover")
_CUTS_STEP_AMORT = 4

#: min_parts jump-table walk: list conversion of the whole table only
#: amortizes when the walk visits at least window/5 entries; sparser walks
#: read the ndarray directly (same values, no O(window) ``tolist``)
_MINPARTS_LIST_AMORT = 5

#: processor count below which the scalar relaxed-split path beats the
#: vectorized one (small-array numpy call overhead dominates under ~32)
SCALAR_MAX_M = 32

#: memoized ``np.arange(1, m)`` split indices — every recursion node with the
#: same processor count re-needs the identical tiny array
_J_CACHE: dict[int, np.ndarray] = {}


def _split_indices(m: int) -> np.ndarray:
    j = _J_CACHE.get(m)
    if j is None:
        j = np.arange(1, m, dtype=np.int64)
        j.flags.writeable = False
        _J_CACHE[m] = j
    return j


# ----------------------------------------------------------------------
# probe_batch — many candidate bottlenecks against one prefix
# ----------------------------------------------------------------------
def _probe_ref(Pl: list[int], m: int, B: int, lo: int, hi: int) -> bool:
    """Scalar greedy probe on a boundary list (exact Python ints)."""
    if _OPS:
        bump("probe_calls")
    if B < 0:
        return False
    pos = lo
    steps = 0
    result = pos >= hi
    for _ in range(m):
        if pos >= hi:
            result = True
            break
        steps += 1
        nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
        if nxt <= pos:  # single cell exceeds B
            result = False
            break
        pos = nxt
    else:
        result = pos >= hi
    if _OPS:
        bump("probe_steps", steps)
    return result


def _probe_batch_reference(
    P: np.ndarray, m: int, Bs: np.ndarray, lo: int = 0, hi: int | None = None
) -> np.ndarray:
    """K independent scalar probes — the ground truth for the batch kernel."""
    arr = np.asarray(P, dtype=np.int64)
    B = np.atleast_1d(np.asarray(Bs, dtype=np.int64))
    if hi is None:
        hi = arr.shape[0] - 1
    Pl = arr.tolist()
    out = np.empty(B.shape, dtype=bool)
    for i, b in enumerate(B.tolist()):
        out[i] = _probe_ref(Pl, m, b, lo, hi)
    return out


def _probe_batch_numpy(
    P: np.ndarray, m: int, Bs: np.ndarray, lo: int = 0, hi: int | None = None
) -> np.ndarray:
    """Lockstep vectorized probes over a *compacted* active candidate set.

    Each of the at most ``m`` rounds performs one chained ``searchsorted``
    over only the candidates still walking; candidates that reach ``hi``
    (success) or get stuck (failure) leave the working set immediately, and
    the loop exits as soon as it is empty.  Op counters are accumulated per
    round and flushed once per call.
    """
    arr = np.asarray(P, dtype=np.int64)
    B = np.atleast_1d(np.asarray(Bs, dtype=np.int64))
    if hi is None:
        hi = arr.shape[0] - 1
    ok = np.zeros(B.shape, dtype=bool)
    if lo >= hi:
        # empty window: every non-negative candidate trivially covers it
        ok[B >= 0] = True
        if _OPS:
            bump("probe_batch_calls")
        return ok
    arr_hi = int(arr[hi])
    idx = np.flatnonzero(B >= 0)
    pos = np.full(idx.shape, lo, dtype=np.int64)
    Ba = B[idx]
    rounds = 0
    items = 0
    for _ in range(m):
        if idx.size == 0:
            break  # early exit: every candidate already decided
        base = arr[pos]
        # clamp the chained targets into the window: any target at or beyond
        # arr[hi] resolves to the window end either way, and the clamped sum
        # cannot overflow int64 even with loads near 2**62
        targets = base + np.minimum(Ba, arr_hi - base)
        nxt = np.searchsorted(arr, targets, side="right") - 1
        np.minimum(nxt, hi, out=nxt)
        rounds += 1
        items += int(idx.shape[0])  # repro-lint: disable=RPL001 — op-counter bookkeeping, not a load accumulation
        stuck = nxt <= pos  # a single cell exceeds B: candidate fails
        done = nxt >= hi  # window covered: candidate succeeds
        ok[idx[done & ~stuck]] = True
        keep = ~(stuck | done)
        idx = idx[keep]
        pos = nxt[keep]
        Ba = Ba[keep]
    # candidates still walking after m rounds did not cover the window: fail
    if _OPS:
        bump("probe_batch_calls")
        bump("searchsorted_calls", rounds)
        bump("searchsorted_items", items)
    return ok


# ----------------------------------------------------------------------
# min_parts — greedy interval count from a jump table
# ----------------------------------------------------------------------
def _min_parts_reference(
    P: np.ndarray, B: int, lo: int = 0, hi: int | None = None, cap: int | None = None
) -> int:
    """Scalar greedy count (same contract as :func:`repro.oned.probe.min_parts`)."""
    arr = np.asarray(P, dtype=np.int64)
    Pl = arr.tolist()
    if hi is None:
        hi = len(Pl) - 1
    limit = cap if cap is not None else (hi - lo) + 1
    if B < 0:
        if cap is None:
            raise ValueError(f"single cell exceeds bottleneck {B}")
        return limit + 1
    pos = lo
    parts = 0
    while pos < hi:
        if parts >= limit:
            return limit + 1
        nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
        if nxt <= pos:
            if cap is None:
                raise ValueError(f"single cell exceeds bottleneck {B}")
            return limit + 1
        pos = nxt
        parts += 1
    return parts


def _min_parts_numpy(
    P: np.ndarray, B: int, lo: int = 0, hi: int | None = None, cap: int | None = None
) -> int:
    """Jump-table count: one vectorized ``searchsorted``, then a pointer walk.

    Returns ``cap + 1`` past the cap or on an infeasible single cell
    (``cap=None`` raises ``ValueError`` on infeasibility, like the scalar
    reference).
    """
    arr = np.asarray(P, dtype=np.int64)
    if hi is None:
        hi = arr.shape[0] - 1
    limit = cap if cap is not None else (hi - lo) + 1
    if B < 0:
        if cap is None:
            raise ValueError(f"single cell exceeds bottleneck {B}")
        return limit + 1
    # the jump-table window covers boundaries lo..hi of the prefix
    w = arr[lo : hi + 1]  # repro-lint: disable=RPL002 — boundary window, not cells
    span = 0
    if w.size:
        span = int(w[-1]) - int(w[0])
        if B > span:
            B = span  # any B covering the whole window jumps the same; stays in int64
        targets = w[-1] - w  # stays int64: both ends bounded by the total
        np.minimum(targets, B, out=targets)
        np.add(targets, w, out=targets)  # clamped: cannot overflow int64
    else:
        targets = w
    nxt = np.searchsorted(w, targets, side="right")
    nxt -= 1
    if _OPS:
        bump("searchsorted_calls")
        bump("searchsorted_items", hi - lo + 1)
    end = hi - lo
    # the walk reads ~span/B of the (hi-lo) table entries; converting the
    # whole table to a list (~17ns/entry) only amortizes against per-read
    # ``.item`` overhead (~90ns) when the walk is dense — measured
    # crossover at window/_MINPARTS_LIST_AMORT on the bench box
    est = min(limit, span // B + 1) if B > 0 else 1
    if est * _MINPARTS_LIST_AMORT >= end:
        fetch = nxt.tolist().__getitem__
    else:
        fetch = nxt.item
    pos = 0
    parts = 0
    while pos < end:
        if parts >= limit:
            if _OPS:
                bump("probe_calls")
                bump("probe_steps", parts)
            return limit + 1
        step = fetch(pos)
        if step <= pos:  # single cell exceeds B
            if cap is None:
                raise ValueError(f"single cell exceeds bottleneck {B}")
            if _OPS:
                bump("probe_calls")
                bump("probe_steps", parts)
            return limit + 1
        pos = step
        parts += 1
    if _OPS:
        bump("probe_calls")
        bump("probe_steps", parts)
    return parts


# ----------------------------------------------------------------------
# probe_cuts — greedy cut points realizing a bottleneck
# ----------------------------------------------------------------------
def _probe_cuts_reference(
    P: np.ndarray | list[int],
    m: int,
    B: int,
    lo: int = 0,
    hi: int | None = None,
) -> np.ndarray | None:
    """Scalar greedy cuts (same contract as :func:`repro.oned.probe.probe_cuts`)."""
    Pl: list[int] = P if isinstance(P, list) else np.asarray(P, dtype=np.int64).tolist()
    if hi is None:
        hi = len(Pl) - 1
    if B < 0:
        return None
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = lo
    pos = lo
    for p in range(1, m + 1):
        if pos < hi:
            nxt = bisect_right(Pl, Pl[pos] + B, pos, hi + 1) - 1
            if nxt <= pos:
                return None
            pos = nxt
        cuts[p] = pos
    if pos < hi:
        return None
    cuts[m] = hi
    return cuts


def _probe_cuts_numpy(
    P: np.ndarray | list[int],
    m: int,
    B: int,
    lo: int = 0,
    hi: int | None = None,
) -> np.ndarray | None:
    """Adaptive greedy cuts: jump table only when the walk can amortize it.

    The greedy realizes a bottleneck ``B`` and stops searching once the
    window is covered — after roughly ``span/B`` steps — padding the
    remaining cuts for free.  Estimated walk length (capped at ``m``) must
    reach a constant fraction of the window (``_CUTS_STEP_AMORT``) for the
    O(window) table build to beat per-step ``bisect_right``; below that
    measured crossover the scalar walk (trivially identical to the
    reference) is kept.
    """
    if hi is None:
        hi = len(P) - 1
    if B < 0:
        return None
    window = hi - lo
    span = int(P[hi]) - int(P[lo]) if window > 0 else 0
    steps = min(m, span // B + 1) if B > 0 else 0
    if steps * _CUTS_STEP_AMORT < window:
        return _probe_cuts_reference(P, m, B, lo, hi)
    arr = np.asarray(P, dtype=np.int64)
    w = arr[lo : hi + 1]  # repro-lint: disable=RPL002 — boundary window, not cells
    if w.size:
        if B > span:
            B = span  # any B covering the whole window jumps the same
        targets = w[-1] - w  # stays int64: both ends bounded by the total
        np.minimum(targets, B, out=targets)
        np.add(targets, w, out=targets)  # clamped: cannot overflow int64
    else:
        targets = w
    nxt = np.searchsorted(w, targets, side="right")
    nxt -= 1
    jump = nxt.tolist()
    if _OPS:
        bump("searchsorted_calls")
        bump("searchsorted_items", hi - lo + 1)
    end = hi - lo
    cuts = np.empty(m + 1, dtype=np.int64)
    cuts[0] = lo
    pos = 0
    for p in range(1, m + 1):
        if pos < end:
            step = jump[pos]
            if step <= pos:  # single cell exceeds B
                return None
            pos = step
        cuts[p] = lo + pos
    if pos < end:
        return None
    cuts[m] = hi
    return cuts


# ----------------------------------------------------------------------
# weighted_cut — windowed, orientation-fused HIER-RB cut selection
# ----------------------------------------------------------------------
def _weighted_cut_reference(
    p: np.ndarray, j0: int, j1: int, orientations: tuple[tuple[int, int], ...]
) -> tuple[int, int, int, int] | None:
    """Rebased per-orientation scalar scoring — exact Python-int arithmetic."""
    L = j1 - j0
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls", len(orientations))
    band = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    b0 = int(band[0])
    bl = [int(x) - b0 for x in band]
    total = bl[-1]
    best: tuple[int, int, int, int] | None = None
    for w1, w2 in orientations:
        # integer bp ≤ total·w1/(w1+w2)  ⇔  bp ≤ floor(·): the floor target is exact
        target = (total * w1) // (w1 + w2)
        c = bisect_right(bl, target) - 1
        found: tuple[int, int] | None = None
        for cand in (c, c + 1):
            if cand < 1 or cand > L - 1:
                continue
            l1 = bl[cand]
            v = max(l1 * w2, (total - l1) * w1)
            if found is None or v < found[1]:
                found = (cand, v)
        if found is None:
            # balance point at a border; fall back to the nearest interior cut
            cand = min(max(c, 1), L - 1)
            l1 = bl[cand]
            found = (cand, max(l1 * w2, (total - l1) * w1))
        if best is None or found[1] < best[1]:
            best = (found[0], found[1], w1, w2)
    return best


def _weighted_cut_numpy(
    p: np.ndarray, j0: int, j1: int, orientations: tuple[tuple[int, int], ...]
) -> tuple[int, int, int, int] | None:
    """Windowed scoring on the un-rebased memoized projection.

    The rebased band prefix is ``p[j0:j1+1] - p[j0]``; shifting every
    comparison by the constant ``base = p[j0]`` leaves the integer
    searchsorted and the integer scores unchanged, so no per-node band
    allocation is needed.  All orientations share the window, total and
    search bounds; the first orientation attaining the minimum wins,
    matching the sequential first-occurrence rule of the chooser loop.
    """
    L = j1 - j0
    if L < 2:
        return None
    if _OPS:
        bump("cut_calls", len(orientations))
    base = int(p[j0])
    total = int(p[j1]) - base
    view = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    best: tuple[int, int, int, int] | None = None
    for w1, w2 in orientations:
        # integer bp ≤ t  ⇔  p ≤ base + t: the shifted floor target is exact
        target = base + (total * w1) // (w1 + w2)
        c = int(view.searchsorted(target, side="right")) - 1
        found: tuple[int, int] | None = None
        for cand in (c, c + 1):
            if cand < 1 or cand > L - 1:
                continue
            l1 = int(view[cand]) - base
            v = max(l1 * w2, (total - l1) * w1)
            if found is None or v < found[1]:
                found = (cand, v)
        if found is None:
            cand = min(max(c, 1), L - 1)
            l1 = int(view[cand]) - base
            found = (cand, max(l1 * w2, (total - l1) * w1))
        if best is None or found[1] < best[1]:
            best = (found[0], found[1], w1, w2)
    return best


# ----------------------------------------------------------------------
# relaxed_split — joint (cut, processor split) selection for HIER-RELAXED
# ----------------------------------------------------------------------
def relaxed_split_scalar(
    bp: np.ndarray, m: int, total: int, lo: list[int], L: int, *, base: int = 0
) -> tuple[int, int, float]:
    """Scalar twin of the vectorized relaxed split for small ``m``.

    Below ~32 splits the per-call overhead of clip/concatenate/where
    dominates the vectorized path; most nodes of a recursion tree are deep
    and small, so this is the common case.  Candidates are enumerated in
    the exact array order of the vectorized path (all ``lo`` cuts, then all
    ``lo + 1`` cuts) with the same float arithmetic and the same
    first-occurrence argmax tie-breaking, so the chosen split is
    bit-identical.
    """
    n = m - 1
    vals: list[float] = []
    v: float | None = None
    for off in (0, 1):
        for idx in range(n):
            jv = idx + 1
            cut = lo[idx] + off
            if cut < 1:
                cut = 1
            elif cut > L - 1:
                cut = L - 1
            l1 = float(int(bp[cut]) - base)  # repro-lint: disable=RPL003 — relaxed score
            a = l1 / jv  # repro-lint: disable=RPL003
            b = (total - l1) / (m - jv)  # repro-lint: disable=RPL003
            if b > a:
                a = b
            vals.append(a)
            if v is None or a < v:
                v = a
    assert v is not None
    thr = v * (1.0 + 1e-3) + 1e-9
    best_bal = -1
    best_i = 0
    for i, val in enumerate(vals):
        if val <= thr:
            jv = i % n + 1
            bal = jv if jv <= m - jv else m - jv
            if bal > best_bal:
                best_bal, best_i = bal, i
    jv = best_i % n + 1
    cut = lo[best_i % n] + (1 if best_i >= n else 0)
    if cut < 1:
        cut = 1
    elif cut > L - 1:
        cut = L - 1
    return (cut, jv, vals[best_i])


def _relaxed_targets(base: int, total: int, m: int) -> np.ndarray:
    """Shifted integer balance targets ``base + total·j/m`` for ``j in [1, m)``.

    Falls back to exact Python-int arithmetic when ``total · (m-1)`` could
    overflow int64 — each *result* fits (it is at most ``base + total``,
    a prefix value), only the vectorized intermediate product does not.
    """
    if total > 0 and m > 2 and total > _I64_MAX // (m - 1):
        return np.array(
            [base + (total * jv) // m for jv in range(1, m)], dtype=np.int64
        )
    return base + (total * _split_indices(m)) // m


def _relaxed_split_reference(
    p: np.ndarray, j0: int, j1: int, m: int
) -> tuple[int, int, float] | None:
    """Per-target scalar searches + exhaustive scalar candidate enumeration."""
    L = j1 - j0
    if L < 2 or m < 2:
        return None
    if _OPS:
        bump("cut_calls")
    base = int(p[j0])
    total = int(p[j1]) - base
    view = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    lo = [
        int(view.searchsorted(base + (total * jv) // m, side="right")) - 1
        for jv in range(1, m)
    ]
    return relaxed_split_scalar(view, m, total, lo, L, base=base)


def _relaxed_split_numpy(
    p: np.ndarray, j0: int, j1: int, m: int
) -> tuple[int, int, float] | None:
    """Windowed relaxed split on an un-rebased projection.

    Same shifting argument as the weighted-cut kernel: the rebased band is
    ``p[j0:j1+1] - base``, integer searchsorted targets shift by ``base``
    exactly, and the float scores are computed from the *same* integers
    (``l1 = view[cut] - base``), so the chosen ``(cut, j, value)`` is
    bit-identical to rebasing first — without the per-node band copy.
    """
    L = j1 - j0
    if L < 2 or m < 2:
        return None
    if _OPS:
        bump("cut_calls")
    base = int(p[j0])
    total = int(p[j1]) - base
    view = p[j0 : j1 + 1]  # repro-lint: disable=RPL002 — prefix window, not a load slice
    if m == 2:
        # a bipartition node — j = 1 is the only split, and roughly half the
        # nodes of any recursion tree look like this: pure scalar, no numpy
        # temporaries.  Same candidate order and float scores as the
        # vectorized path (j/1 division and (m-j) = 1 division are exact).
        c = int(view.searchsorted(base + total // 2, side="right")) - 1
        ca = 1 if c < 1 else (L - 1 if c > L - 1 else c)
        cb = c + 1
        cb = 1 if cb < 1 else (L - 1 if cb > L - 1 else cb)
        la = float(int(view[ca]) - base)  # repro-lint: disable=RPL003 — relaxed score
        lb = float(int(view[cb]) - base)  # repro-lint: disable=RPL003
        va = la if la > total - la else total - la
        vb = lb if lb > total - lb else total - lb
        v = va if va < vb else vb
        # both candidates tie on processor balance, so argmax keeps the first
        # candidate within the near-tie threshold
        if va <= v * (1.0 + 1e-3) + 1e-9:
            return (ca, 1, va)
        return (cb, 1, vb)
    j = _split_indices(m)
    targets = _relaxed_targets(base, total, m)
    lo = view.searchsorted(targets, side="right") - 1
    if m <= SCALAR_MAX_M:
        return relaxed_split_scalar(view, m, total, lo.tolist(), L, base=base)
    cuts = np.concatenate([np.clip(lo, 1, L - 1), np.clip(lo + 1, 1, L - 1)])
    jj = np.concatenate([j, j])
    # the relaxed node score is an estimate by construction: vectorized
    # float scoring is the documented RPL003 exemption (see
    # repro.hierarchical.cuts); the partition loads themselves stay exact
    l1 = (view[cuts] - base).astype(np.float64)  # repro-lint: disable=RPL003
    val = np.maximum(l1 / jj, (total - l1) / (m - jj))  # repro-lint: disable=RPL003
    v2 = float(val.min())  # repro-lint: disable=RPL003 — reporting boundary
    # many (cut, j) pairs score within noise of each other; among splits
    # within 0.1% of the best score, prefer the most balanced processor
    # split — unbalanced chains deepen the tree and accumulate rounding
    # error (measured in benchmarks/bench_ablation_hier.py)
    near = val <= v2 * (1.0 + 1e-3) + 1e-9
    bal = np.where(near, np.minimum(jj, m - jj), -1)
    k = int(np.argmax(bal))
    return (int(cuts[k]), int(jj[k]), float(val[k]))  # repro-lint: disable=RPL003


# ----------------------------------------------------------------------
# alloc_tail — JAG-M-HEUR stripe-allocation shave + leftover-assign tail
# ----------------------------------------------------------------------
def _alloc_tail_reference(loads: np.ndarray, q: np.ndarray, m: int) -> np.ndarray:
    """Exact ``Fraction``-keyed shave/assign loops (the paper's rule verbatim)."""
    P = len(loads)
    out = np.array(q, dtype=np.int64)
    while int(out.sum()) > m:
        s = min(
            (s for s in range(P) if out[s] > 1),
            key=lambda s: Fraction(int(loads[s]), int(out[s])),
        )
        out[s] -= 1
    remaining = m - int(out.sum())
    if remaining > 0:
        heap = [(Fraction(-int(loads[s]), int(out[s])), s) for s in range(P)]
        heapq.heapify(heap)
        for _ in range(remaining):
            _, s = heapq.heappop(heap)
            out[s] += 1
            heapq.heappush(heap, (Fraction(-int(loads[s]), int(out[s])), s))
    return out


class _RatioKey:
    """Heap key ordering stripes by descending ``load/q``, exact integers.

    Induces the same total order as the reference path's
    ``(Fraction(-load, q), s)`` tuples: ratios compare by cross-
    multiplication (exact in unbounded ints, RPL003 discipline), ties fall
    back to the stripe index.  Skipping ``Fraction``'s gcd normalization on
    every heap push is the whole point.
    """

    __slots__ = ("load", "q", "s")

    def __init__(self, load: int, q: int, s: int):
        self.load = load
        self.q = q
        self.s = s

    def __lt__(self, other: "_RatioKey") -> bool:
        # load/q > other.load/other.q  (descending ratio; q > 0 always)
        a = self.load * other.q
        b = other.load * self.q
        if a != b:
            return a > b
        return self.s < other.s


def _alloc_tail_numpy(loads: np.ndarray, q: np.ndarray, m: int) -> np.ndarray:
    """Cross-multiplied Python-int twin of the ``Fraction`` reference loops.

    Same decisions (exact comparisons, first minimal index wins) on plain
    Python ints — int64 scalar arithmetic and ``Fraction`` construction both
    disappear from the per-call cost.  No compiled form on purpose: the
    cross products exceed int64 once loads approach ``2**32``.
    """
    P = len(loads)
    ql = [int(x) for x in q]
    ll = [int(x) for x in loads]
    s_total = sum(ql)
    while s_total > m:
        # argmin of load/q over stripes with q > 1; strict < keeps the
        # first minimal stripe, matching min() over the reference generator
        bs = -1
        bl = bq = 0
        for s in range(P):
            if ql[s] > 1:
                load, qs = ll[s], ql[s]
                if bs < 0 or load * bq < bl * qs:
                    bs, bl, bq = s, load, qs
        ql[bs] -= 1
        s_total -= 1
    remaining = m - s_total
    if remaining > 0:
        heap = [_RatioKey(ll[s], ql[s], s) for s in range(P)]
        heapq.heapify(heap)
        for _ in range(remaining):
            k = heapq.heappop(heap)
            ql[k.s] += 1
            heapq.heappush(heap, _RatioKey(k.load, ql[k.s], k.s))
    return np.array(ql, dtype=np.int64)


# ----------------------------------------------------------------------
# probe_multi — striped-cost probe for RECT-NICOL's inner 1D problem
# ----------------------------------------------------------------------
def _probe_multi_reference(M: Any, m: int, B: int) -> bool:
    """Scalar greedy with per-stripe shrinking-window binary searches."""
    rows: list[list[int]] = (
        M if isinstance(M, list) else [row.tolist() for row in np.asarray(M)]
    )
    n = len(rows[0]) - 1 if rows else 0
    if B < 0:
        return False
    pos = 0
    for _ in range(m):
        if pos >= n:
            return True
        j = n
        for row in rows:
            r = bisect_right(row, row[pos] + B, pos, j + 1) - 1
            if r < j:
                j = r
                if j <= pos:
                    break
        if j <= pos:
            return False
        pos = j
    return pos >= n


def _probe_multi_numpy(M: Any, m: int, B: int) -> bool:
    """Adaptive striped probe on the stacked int64 prefix matrix.

    Dense-cut regime: per-stripe jump tables folded with a running min,
    then a pointer walk (min over stripes of clamped full-range searches
    equals the iterative shrinking-window reach).  Sparse-cut regime: the
    greedy visits at most ``m`` boundaries, so the walk runs directly on the
    ndarray with clamped method-call searches — no O(S·n) table, no list
    conversion.
    """
    arr = np.ascontiguousarray(M, dtype=np.int64)
    if arr.ndim != 2:
        arr = arr.reshape(1, -1)
    S = arr.shape[0]
    n = arr.shape[1] - 1
    if B < 0:
        return False
    if S == 0 or n <= 0:
        return True
    if n > _CUTS_JUMP_RATIO * m:
        pos = 0
        for _ in range(m):
            if pos >= n:
                return True
            j = n
            for s in range(S):
                row = arr[s]
                rp = int(row[pos])
                rem = int(row[n]) - rp
                t = rp + (B if B < rem else rem)  # clamped: stays in int64
                r = int(row.searchsorted(t, side="right")) - 1
                # full-range search then clamp ≡ the shrinking [pos, j] window
                if r < j:
                    j = r
                    if j <= pos:
                        break
            if j <= pos:
                return False
            pos = j
        return pos >= n
    last = arr[:, n][:, None]
    span = int(arr[:, n].max())
    if B > span:
        B = span  # every per-stripe clamp saturates anyway; stays in int64
    targets = arr + np.minimum(B, last - arr)  # clamped: cannot overflow int64
    reach = np.empty(n + 1, dtype=np.int64)
    reach[:] = n
    for s in range(S):
        nxt = np.searchsorted(arr[s], targets[s], side="right") - 1
        np.minimum(reach, nxt, out=reach)
    if _OPS:
        bump("searchsorted_calls", S)
        bump("searchsorted_items", S * (n + 1))
    jump = reach.tolist()
    pos = 0
    for _ in range(m):
        if pos >= n:
            return True
        step = jump[pos]
        if step <= pos:
            return False
        pos = step
    return pos >= n


# ----------------------------------------------------------------------
# registry + backend resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Kernel:
    """One named kernel: reference/numpy implementations, optional compiled."""

    name: str
    reference: Callable[..., Any]
    numpy: Callable[..., Any]
    numba_attr: str | None = None  #: wrapper name in :mod:`repro.perf._numba`


KERNELS: dict[str, Kernel] = {
    "probe_batch": Kernel(
        "probe_batch", _probe_batch_reference, _probe_batch_numpy, "probe_batch"
    ),
    "min_parts": Kernel(
        "min_parts", _min_parts_reference, _min_parts_numpy, "min_parts_batch"
    ),
    "probe_cuts": Kernel(
        "probe_cuts", _probe_cuts_reference, _probe_cuts_numpy, "probe_cuts"
    ),
    "weighted_cut": Kernel("weighted_cut", _weighted_cut_reference, _weighted_cut_numpy),
    "relaxed_split": Kernel(
        "relaxed_split", _relaxed_split_reference, _relaxed_split_numpy
    ),
    "alloc_tail": Kernel("alloc_tail", _alloc_tail_reference, _alloc_tail_numpy),
    "probe_multi": Kernel(
        "probe_multi", _probe_multi_reference, _probe_multi_numpy, "probe_multi"
    ),
}

_NUMBA_MOD: Any | None = None
_NUMBA_FAILED: bool = False


def _numba_module() -> Any | None:
    """The compiled-backend module, imported lazily; ``None`` when absent."""
    global _NUMBA_MOD, _NUMBA_FAILED
    if _NUMBA_MOD is None and not _NUMBA_FAILED:
        try:
            from . import _numba as mod
        except ImportError:
            _NUMBA_FAILED = True
            return None
        _NUMBA_MOD = mod
    return _NUMBA_MOD


def numba_available() -> bool:
    """True when the compiled backend can serve requests (``[perf]`` extra)."""
    return _numba_module() is not None


def kernel(name: str, backend: str | None = None) -> Callable[..., Any]:
    """Resolve kernel ``name`` for ``backend`` (default: the active one).

    The ``numba`` backend degrades per kernel: kernels without a compiled
    implementation — or any kernel when numba is not installed — resolve to
    the numpy implementation.  Requesting it never raises.
    """
    k = KERNELS[name]
    b = perf_backend() if backend is None else backend
    if b == "reference":
        return k.reference
    if b == "numba" and k.numba_attr is not None:
        mod = _numba_module()
        if mod is not None:
            impl: Callable[..., Any] = getattr(mod, k.numba_attr)
            return impl
    return k.numpy


# ----------------------------------------------------------------------
# public entry points (stable signatures; call sites dispatch through these)
# ----------------------------------------------------------------------
def probe_batch(
    P: np.ndarray, m: int, Bs: np.ndarray, lo: int = 0, hi: int | None = None
) -> np.ndarray:
    """Vectorized ``probe``: one boolean per candidate bottleneck in ``Bs``.

    ``P`` is a prefix array (``P[0] == 0``); the answer for ``Bs[i]`` equals
    ``probe(P, m, Bs[i], lo, hi)`` exactly, on every backend.
    """
    return kernel("probe_batch")(P, m, Bs, lo, hi)


def min_parts_batch(
    P: np.ndarray,
    B: int,
    lo: int = 0,
    hi: int | None = None,
    cap: int | None = None,
) -> int:
    """Jump-table twin of :func:`repro.oned.probe.min_parts` (same contract)."""
    return kernel("min_parts")(P, B, lo, hi, cap)


def probe_cuts(
    P: np.ndarray | list[int], m: int, B: int, lo: int = 0, hi: int | None = None
) -> np.ndarray | None:
    """Greedy cut points realizing bottleneck ``B`` (None if infeasible)."""
    return kernel("probe_cuts")(P, m, B, lo, hi)


def weighted_cut_win(
    p: np.ndarray, j0: int, j1: int, orientations: tuple[tuple[int, int], ...]
) -> tuple[int, int, int, int] | None:
    """Best weighted cut of window ``[j0, j1]`` over the given orientations.

    Returns ``(cut_rel, value · w1·w2, w1, w2)`` or ``None`` when the window
    has fewer than 2 cells; scores are exact scaled ints on every backend.
    """
    return kernel("weighted_cut")(p, j0, j1, orientations)


def relaxed_split_win(
    p: np.ndarray, j0: int, j1: int, m: int
) -> tuple[int, int, float] | None:
    """Jointly optimal ``(cut, j, value)`` over all processor splits of a window."""
    return kernel("relaxed_split")(p, j0, j1, m)


def alloc_tail(loads: np.ndarray, q: Sequence[int] | np.ndarray, m: int) -> np.ndarray:
    """JAG-M-HEUR allocation tail: shave ceil-overflow, assign leftovers."""
    return kernel("alloc_tail")(loads, q, m)


def probe_multi(M: Any, m: int, B: int) -> bool:
    """Striped-cost probe: can ``[0, n)`` be cut into ``<= m`` intervals ``<= B``?"""
    return kernel("probe_multi")(M, m, B)
