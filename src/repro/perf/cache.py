"""Byte-budgeted LRU cache behind the prefix-sum projection queries.

The 2D algorithms repeatedly project bands of ``Γ`` onto one axis
(:meth:`~repro.core.prefix.PrefixSum2D.axis_prefix`) and convert the result
to the plain-list form the probe hot path wants
(:meth:`~repro.core.prefix.PrefixSum2D.boundary_list`).  The JAG-M-OPT
feasibility DP is the worst offender: every bisection iteration touches the
same ``O(n1²)`` (stripe start, stripe end) bands again.  One bounded memo
per prefix instance amortizes both the projection subtraction and the
list conversion across iterations, variants and algorithms.

The cache is bounded by approximate payload *bytes* rather than entry count
because entries range from a 17-element stripe prefix to a full-width
boundary list; a count bound would either thrash on small entries or blow
up on large ones.  Eviction is plain LRU.  Hit/miss/eviction counts are
kept for the counter layer and the cache tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Tuple

__all__ = ["LRUCache", "sizeof_entry"]

Key = Tuple[Hashable, ...]

#: rough per-element cost of a Python list of ints (pointer + int object)
_LIST_ELEM_BYTES = 40


def sizeof_entry(value: object) -> int:
    """Approximate payload size in bytes of a cached value."""
    nbytes = getattr(value, "nbytes", None)  # ndarray
    if nbytes is not None:
        return int(nbytes) + 112  # array header
    if isinstance(value, list):
        return 56 + _LIST_ELEM_BYTES * len(value)
    return 64


class LRUCache:
    """A byte-budgeted least-recently-used mapping.

    ``get`` returns ``None`` on a miss (cached values are never ``None``).
    ``put`` evicts least-recently-used entries until the new entry fits;
    an entry larger than the whole budget is simply not stored.
    """

    __slots__ = ("_data", "_sizes", "max_bytes", "nbytes", "hits", "misses", "evictions")

    def __init__(self, max_bytes: int):
        self._data: OrderedDict[Key, object] = OrderedDict()
        self._sizes: Dict[Key, int] = {}
        self.max_bytes = int(max_bytes)
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Key) -> bool:
        return key in self._data

    def get(self, key: Key) -> object | None:
        """Value for ``key`` (refreshing its recency), or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Key, value: object) -> None:
        """Insert ``key`` → ``value``, evicting LRU entries to fit."""
        if key in self._data:
            self._data.move_to_end(key)
            return
        size = sizeof_entry(value)
        if size > self.max_bytes:
            return
        while self._data and self.nbytes + size > self.max_bytes:
            old_key, _ = self._data.popitem(last=False)
            self.nbytes -= self._sizes.pop(old_key)
            self.evictions += 1
        self._data[key] = value
        self._sizes[key] = size
        self.nbytes += size

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()
        self._sizes.clear()
        self.nbytes = 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache counters and occupancy."""
        return {
            "entries": len(self._data),
            "nbytes": self.nbytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
