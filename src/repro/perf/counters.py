"""Near-zero-overhead operation counters for the partitioning hot paths.

The paper states per-algorithm complexity bounds (Probe ``O(m log n)``,
JAG-M-HEUR ``O(n + m log n)``, HIER-RB ``O(m log max(n1, n2))``, §2–3) and
ROADMAP's RPL006 open item wants those bounds *checked* by counting the
operations that dominate them.  This module is that substrate.

Design: a module-level stack of active :class:`OpCounters`.  When the stack
is empty — the common case — instrumented call sites pay exactly one
truthiness test on a list (they import the stack object directly); the
counting twins of the innermost loops are only entered while a counter
context is open, so the greedy/bisection hot loops carry no per-iteration
overhead in normal runs.

Usage::

    with op_counters() as ops:
        partition_2d(A, m, "JAG-M-HEUR")
    assert ops["probe_steps"] <= 8 * (n + m * ceil(log2(n + 1)))

Counter names used across the repo:

``probe_calls`` / ``probe_steps``
    Probe-family invocations and their greedy binary-search steps
    (``bisect_right`` or jump-table hops — one step per interval placed).
``probe_batch_calls`` / ``searchsorted_calls`` / ``searchsorted_items``
    Vectorized kernel invocations, chained ``np.searchsorted`` rounds, and
    total candidate items those rounds evaluated.
``cut_calls``
    Hierarchical cut-selection evaluations (weighted or relaxed).
``load_queries``
    O(1) rectangle-load queries against ``Γ``.
``proj_queries`` / ``proj_hits``
    Stripe-projection / boundary-list requests and how many were served
    from the :class:`~repro.perf.cache.LRUCache`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["OpCounters", "op_counters", "counting", "bump"]


class OpCounters(Dict[str, int]):
    """A ``dict`` of counter name → count; missing names read as 0."""

    def __missing__(self, key: str) -> int:
        return 0

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.items() if k.startswith(prefix))


#: Active counter contexts, innermost last.  Hot paths import this object
#: directly and test its truthiness before doing any counting work.
_STACK: list[OpCounters] = []


def counting() -> bool:
    """True when at least one counter context is open."""
    return bool(_STACK)


def bump(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` in every open context."""
    for c in _STACK:
        c[name] = c.get(name, 0) + n


@contextmanager
def op_counters() -> Iterator[OpCounters]:
    """Open a counter context; nested contexts each see all events."""
    c = OpCounters()
    _STACK.append(c)
    try:
        yield c
    finally:
        # remove by identity, not ==: nested contexts opened at the same
        # time hold equal dicts, and list.remove would pop the outer one,
        # leaving this (closed) dict counting and breaking the later unwind
        for i in reversed(range(len(_STACK))):
            if _STACK[i] is c:
                del _STACK[i]
                break
