"""Near-zero-overhead operation counters for the partitioning hot paths.

The paper states per-algorithm complexity bounds (Probe ``O(m log n)``,
JAG-M-HEUR ``O(n + m log n)``, HIER-RB ``O(m log max(n1, n2))``, §2–3) and
ROADMAP's RPL006 open item wants those bounds *checked* by counting the
operations that dominate them.  This module is that substrate.

Design: a module-level stack of active :class:`OpCounters`.  When the stack
is empty — the common case — instrumented call sites pay exactly one
truthiness test on a list (they import the stack object directly); the
counting twins of the innermost loops are only entered while a counter
context is open, so the greedy/bisection hot loops carry no per-iteration
overhead in normal runs.

Usage::

    with op_counters() as ops:
        partition_2d(A, m, "JAG-M-HEUR")
    assert ops["probe_steps"] <= 8 * (n + m * ceil(log2(n + 1)))

Counter names used across the repo:

``probe_calls`` / ``probe_steps``
    Probe-family invocations and their greedy binary-search steps
    (``bisect_right`` or jump-table hops — one step per interval placed).
``probe_batch_calls`` / ``searchsorted_calls`` / ``searchsorted_items``
    Vectorized kernel invocations, chained ``np.searchsorted`` rounds, and
    total candidate items those rounds evaluated.
``cut_calls``
    Hierarchical cut-selection evaluations (weighted or relaxed).
``load_queries``
    O(1) rectangle-load queries against ``Γ``.
``proj_queries`` / ``proj_hits``
    Stripe-projection / boundary-list requests and how many were served
    from the :class:`~repro.perf.cache.LRUCache`.
``substrate_bytes``
    Resident bytes of the largest load substrate (dense ``Γ`` or CSR
    arrays) a call touched — a *gauge* (max), not an event count.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["OpCounters", "op_counters", "counting", "bump", "gauge", "merge_snapshot"]


class OpCounters(Dict[str, int]):
    """A ``dict`` of counter name → count; missing names read as 0."""

    def __missing__(self, key: str) -> int:
        return 0

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.items() if k.startswith(prefix))


#: Active counter contexts, innermost last.  Hot paths import this object
#: directly and test its truthiness before doing any counting work.
_STACK: list[OpCounters] = []


def counting() -> bool:
    """True when at least one counter context is open."""
    return bool(_STACK)


def bump(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` in every open context."""
    for c in _STACK:
        c[name] = c.get(name, 0) + n


def gauge(name: str, value: int) -> None:
    """Record a high-water mark: keep the max of ``value`` per open context.

    Counters are additive; gauges are not — re-touching the same substrate
    twice must not double its reported memory.  Each open context keeps the
    largest value it has seen under ``name``.
    """
    for c in _STACK:
        if value > c.get(name, 0):
            c[name] = value


#: Names recorded via :func:`gauge`.  A snapshot travelling back from a
#: worker process carries plain ints, so the merge side needs this list to
#: know which entries fold with max rather than sum.
GAUGE_NAMES = frozenset({"substrate_bytes"})


def merge_snapshot(ops: Dict[str, int]) -> None:
    """Fold a snapshot from another context/process into every open context.

    Counter entries add; entries named in :data:`GAUGE_NAMES` keep the max,
    so N workers touching the same substrate report its size once, exactly
    as the serial loop would.
    """
    for name, n in ops.items():
        if name in GAUGE_NAMES:
            gauge(name, n)
        else:
            bump(name, n)


@contextmanager
def op_counters() -> Iterator[OpCounters]:
    """Open a counter context; nested contexts each see all events."""
    c = OpCounters()
    _STACK.append(c)
    try:
        yield c
    finally:
        # remove by identity, not ==: nested contexts opened at the same
        # time hold equal dicts, and list.remove would pop the outer one,
        # leaving this (closed) dict counting and breaking the later unwind
        for i in reversed(range(len(_STACK))):
            if _STACK[i] is c:
                del _STACK[i]
                break
