"""Optional compiled kernel backend (the ``pip install .[perf]`` extra).

Importing this module requires numba; :mod:`repro.perf.kernels` imports it
lazily inside :func:`~repro.perf.kernels.kernel` and degrades to the numpy
backend when the import fails, so the package works identically without the
extra installed.

Only the pure-int64 loop kernels have compiled forms (``probe_batch``,
``min_parts``, ``probe_cuts``, ``probe_multi``).  The scoring/allocation
kernels (``weighted_cut``, ``relaxed_split``, ``alloc_tail``) are excluded
on purpose: their contracts promise exact arithmetic at any load magnitude
(cross-multiplied Python ints / ``Fraction``), which nopython int64
arithmetic cannot provide.

Every compiled core is a direct transliteration of the scalar reference in
:mod:`repro.perf.kernels` — manual binary search, clamped targets (no int64
overflow at loads near ``2**62``) — and the wrappers return bit-identical
results; ``tests/test_kernels_equality.py`` compares this backend against
the reference whenever numba is importable.  ``@njit`` compiles lazily at
first call, so importing this module is cheap.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numba import njit  # ImportError here is the availability gate

from .counters import _STACK as _OPS
from .counters import bump

__all__ = ["probe_batch", "min_parts_batch", "probe_cuts", "probe_multi"]


@njit(cache=True)
def _bsearch_right(arr: np.ndarray, target: int, lo: int, hi: int) -> int:
    """``bisect_right(arr, target, lo, hi + 1) - 1`` on an int64 array."""
    a = lo
    b = hi + 1
    while a < b:
        mid = (a + b) // 2
        if arr[mid] <= target:
            a = mid + 1
        else:
            b = mid
    return a - 1


@njit(cache=True)
def _probe_batch_core(
    arr: np.ndarray, m: int, B: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    K = B.shape[0]
    out = np.zeros(K, dtype=np.bool_)
    for k in range(K):
        b = B[k]
        if b < 0:
            continue
        pos = lo
        dead = False
        i = 0
        while i < m and pos < hi and not dead:
            rem = arr[hi] - arr[pos]
            step = b if b < rem else rem  # clamped target: stays in int64
            nxt = _bsearch_right(arr, arr[pos] + step, pos, hi)
            if nxt <= pos:  # single cell exceeds B
                dead = True
            else:
                pos = nxt
            i += 1
        out[k] = (not dead) and pos >= hi
    return out


def probe_batch(
    P: np.ndarray, m: int, Bs: np.ndarray, lo: int = 0, hi: int | None = None
) -> np.ndarray:
    """Compiled twin of the ``probe_batch`` kernel (per-candidate greedy)."""
    arr = np.ascontiguousarray(P, dtype=np.int64)
    B = np.ascontiguousarray(np.atleast_1d(np.asarray(Bs, dtype=np.int64)))
    if hi is None:
        hi = arr.shape[0] - 1
    out = _probe_batch_core(arr, int(m), B, int(lo), int(hi))
    if _OPS:
        bump("probe_batch_calls")
    return out


@njit(cache=True)
def _min_parts_core(
    arr: np.ndarray, B: int, lo: int, hi: int, limit: int
) -> tuple[int, int, bool]:
    """Returns ``(result, steps_walked, infeasible_single_cell)``."""
    pos = lo
    parts = 0
    while pos < hi:
        if parts >= limit:
            return limit + 1, parts, False
        rem = arr[hi] - arr[pos]
        step = B if B < rem else rem
        nxt = _bsearch_right(arr, arr[pos] + step, pos, hi)
        if nxt <= pos:
            return limit + 1, parts, True
        pos = nxt
        parts += 1
    return parts, parts, False


def min_parts_batch(
    P: np.ndarray,
    B: int,
    lo: int = 0,
    hi: int | None = None,
    cap: int | None = None,
) -> int:
    """Compiled twin of the ``min_parts`` kernel (same contract)."""
    arr = np.ascontiguousarray(P, dtype=np.int64)
    if hi is None:
        hi = arr.shape[0] - 1
    limit = cap if cap is not None else (hi - lo) + 1
    if B < 0:
        if cap is None:
            raise ValueError(f"single cell exceeds bottleneck {B}")
        return limit + 1
    # prefix is nondecreasing, so a degenerate window clamps to span 0
    span = max(int(arr[hi]) - int(arr[lo]), 0)
    if B > span:
        B = span  # any B covering the whole window walks the same; stays in int64
    result, steps, infeasible = _min_parts_core(arr, int(B), int(lo), int(hi), int(limit))
    if infeasible and cap is None:
        raise ValueError(f"single cell exceeds bottleneck {B}")
    if _OPS:
        bump("probe_calls")
        bump("probe_steps", steps)
    return int(result)


@njit(cache=True)
def _probe_cuts_core(
    arr: np.ndarray, m: int, B: int, lo: int, hi: int, cuts: np.ndarray
) -> bool:
    pos = lo
    cuts[0] = lo
    for p in range(1, m + 1):
        if pos < hi:
            rem = arr[hi] - arr[pos]
            step = B if B < rem else rem
            nxt = _bsearch_right(arr, arr[pos] + step, pos, hi)
            if nxt <= pos:
                return False
            pos = nxt
        cuts[p] = pos
    if pos < hi:
        return False
    cuts[m] = hi
    return True


def probe_cuts(
    P: np.ndarray | list[int], m: int, B: int, lo: int = 0, hi: int | None = None
) -> np.ndarray | None:
    """Compiled twin of the ``probe_cuts`` kernel (greedy cut points)."""
    arr = np.ascontiguousarray(P, dtype=np.int64)
    if hi is None:
        hi = arr.shape[0] - 1
    if B < 0:
        return None
    cuts = np.empty(m + 1, dtype=np.int64)
    if not _probe_cuts_core(arr, int(m), int(B), int(lo), int(hi), cuts):
        return None
    return cuts


@njit(cache=True)
def _probe_multi_core(arr: np.ndarray, m: int, B: int) -> bool:
    S = arr.shape[0]
    n = arr.shape[1] - 1
    pos = 0
    for _ in range(m):
        if pos >= n:
            return True
        j = n
        for s in range(S):
            row = arr[s]
            rem = row[n] - row[pos]
            step = B if B < rem else rem  # clamped target: stays in int64
            r = _bsearch_right(row, row[pos] + step, pos, j)
            if r < j:
                j = r
                if j <= pos:
                    break
        if j <= pos:
            return False
        pos = j
    return pos >= n


def probe_multi(M: Any, m: int, B: int) -> bool:
    """Compiled twin of the ``probe_multi`` kernel (striped-cost greedy)."""
    arr = np.ascontiguousarray(M, dtype=np.int64)
    if arr.ndim != 2:
        arr = arr.reshape(1, -1)
    if B < 0:
        return False
    if arr.shape[0] == 0 or arr.shape[1] <= 1:
        return True
    return bool(_probe_multi_core(arr, int(m), int(B)))
