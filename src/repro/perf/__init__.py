"""Hot-path kernel and instrumentation layer (see ``docs/performance.md``).

The paper's headline engineering result is that careful algorithm
engineering turns exact 1D partitioning from minutes into milliseconds
(Probe with array slicing, NicolPlus bounding).  This package carries that
discipline through the 2D algorithms:

* :mod:`repro.perf.config` — a global switch between the optimized kernels
  and the straight-line reference paths, so the perf-regression harness can
  measure both and the equality tests can compare them bit for bit.
* :mod:`repro.perf.cache` — the bounded LRU memo behind
  :meth:`~repro.core.prefix.PrefixSum2D.axis_prefix` /
  :meth:`~repro.core.prefix.PrefixSum2D.boundary_list`: stripe projections
  and their probe-ready list forms are materialized once per (axis, lo, hi)
  instead of once per probe.
* :mod:`repro.perf.kernels` — the stable kernel interface: a registry of
  named kernels (``probe_batch``, ``min_parts``, ``probe_cuts``,
  ``weighted_cut``, ``relaxed_split``, ``alloc_tail``, ``probe_multi``),
  each with a scalar reference implementation, a vectorized numpy
  implementation, and (for the pure-int64 loops) an optional compiled numba
  twin, selected via ``REPRO_PERF_BACKEND``.
* :mod:`repro.perf.counters` — near-zero-overhead operation counters (probe
  calls, greedy/bisection steps, rectangle-load queries) with a
  context-manager API; the substrate for ROADMAP's RPL006 complexity
  budgets (see ``tests/test_complexity.py``).
"""

from .cache import LRUCache
from .config import (
    cache_budget_bytes,
    perf_backend,
    perf_enabled,
    set_perf_backend,
    set_perf_enabled,
    use_perf,
    use_perf_backend,
)
from .counters import OpCounters, bump, counting, op_counters
from .kernels import KERNELS, kernel, min_parts_batch, numba_available, probe_batch

__all__ = [
    "KERNELS",
    "LRUCache",
    "OpCounters",
    "bump",
    "cache_budget_bytes",
    "counting",
    "kernel",
    "min_parts_batch",
    "numba_available",
    "op_counters",
    "perf_backend",
    "perf_enabled",
    "probe_batch",
    "set_perf_backend",
    "set_perf_enabled",
    "use_perf",
    "use_perf_backend",
]
