"""Hot-path kernel and instrumentation layer (see ``docs/performance.md``).

The paper's headline engineering result is that careful algorithm
engineering turns exact 1D partitioning from minutes into milliseconds
(Probe with array slicing, NicolPlus bounding).  This package carries that
discipline through the 2D algorithms:

* :mod:`repro.perf.config` — a global switch between the optimized kernels
  and the straight-line reference paths, so the perf-regression harness can
  measure both and the equality tests can compare them bit for bit.
* :mod:`repro.perf.cache` — the bounded LRU memo behind
  :meth:`~repro.core.prefix.PrefixSum2D.axis_prefix` /
  :meth:`~repro.core.prefix.PrefixSum2D.boundary_list`: stripe projections
  and their probe-ready list forms are materialized once per (axis, lo, hi)
  instead of once per probe.
* :mod:`repro.perf.batch` — vectorized probe kernels: ``probe_batch``
  evaluates many candidate bottlenecks against one prefix with chained
  ``np.searchsorted``; ``min_parts_batch`` replaces the scalar greedy with a
  jump table built by a single vectorized ``searchsorted``.
* :mod:`repro.perf.counters` — near-zero-overhead operation counters (probe
  calls, greedy/bisection steps, rectangle-load queries) with a
  context-manager API; the substrate for ROADMAP's RPL006 complexity
  budgets (see ``tests/test_complexity.py``).
"""

from .batch import min_parts_batch, probe_batch
from .cache import LRUCache
from .config import cache_budget_bytes, perf_enabled, set_perf_enabled, use_perf
from .counters import OpCounters, bump, counting, op_counters

__all__ = [
    "LRUCache",
    "OpCounters",
    "bump",
    "cache_budget_bytes",
    "counting",
    "min_parts_batch",
    "op_counters",
    "perf_enabled",
    "probe_batch",
    "set_perf_enabled",
    "use_perf",
]
