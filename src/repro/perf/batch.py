"""Vectorized probe kernels: batched decisions and jump-table greedy counts.

Two kernels, both exact and property-tested against the scalar reference
implementations in :mod:`repro.oned.probe`:

``probe_batch``
    Evaluates *many* candidate bottlenecks against one prefix at once.  The
    greedy probe advances one interval per step; here every still-live
    candidate advances in lockstep through one chained ``np.searchsorted``
    per step, so ``K`` candidates cost ``m`` vectorized rounds instead of
    ``K·m`` scalar binary searches.  Used to pre-narrow the integer
    bisection bracket in :func:`repro.oned.bisect.bisect_bottleneck`.

``min_parts_batch``
    The greedy interval count for one bottleneck, computed from a *jump
    table*: a single vectorized ``searchsorted`` finds, for every boundary
    at once, the farthest boundary reachable within load ``B``; counting
    intervals is then a plain pointer walk with no per-step binary search.
    Wins over the scalar greedy once the interval count is large — exactly
    the regime of the JAG-M-OPT feasibility scan (paper §3.2.2), its main
    call site.
"""

from __future__ import annotations

import numpy as np

from .counters import _STACK as _OPS
from .counters import bump

__all__ = ["probe_batch", "min_parts_batch"]


def probe_batch(
    P: np.ndarray,
    m: int,
    Bs: np.ndarray,
    lo: int = 0,
    hi: int | None = None,
) -> np.ndarray:
    """Vectorized ``probe``: one boolean per candidate bottleneck in ``Bs``.

    ``P`` is a prefix array (``P[0] == 0``); the answer for ``Bs[i]`` equals
    ``probe(P, m, Bs[i], lo, hi)`` exactly.  All candidates advance in
    lockstep: each of the at most ``m`` rounds performs one chained
    ``np.searchsorted`` over the still-live candidates.
    """
    arr = np.asarray(P, dtype=np.int64)
    B = np.atleast_1d(np.asarray(Bs, dtype=np.int64))
    if hi is None:
        hi = arr.shape[0] - 1
    # candidates with a negative bottleneck are infeasible by definition
    alive = B >= 0
    pos = np.full(B.shape, lo, dtype=np.int64)
    rounds = 0
    items = 0
    for _ in range(m):
        run = alive & (pos < hi)
        if not run.any():
            break
        idx = np.flatnonzero(run)
        targets = arr[pos[idx]] + B[idx]
        # rightmost boundary with value <= target; the target is >= arr[pos]
        # so the unrestricted insertion point is already > pos, and clamping
        # to hi reproduces the [pos, hi] search window of the scalar probe
        nxt = np.searchsorted(arr, targets, side="right") - 1
        np.minimum(nxt, hi, out=nxt)
        stuck = nxt <= pos[idx]  # a single cell exceeds B: candidate fails
        if stuck.any():
            alive[idx[stuck]] = False
        moved = idx[~stuck]
        pos[moved] = nxt[~stuck]
        rounds += 1
        items += int(idx.shape[0])  # repro-lint: disable=RPL001 — op-counter bookkeeping, not a load accumulation
    if _OPS:
        bump("probe_batch_calls")
        bump("searchsorted_calls", rounds)
        bump("searchsorted_items", items)
    return alive & (pos >= hi)


def min_parts_batch(
    P: np.ndarray,
    B: int,
    lo: int = 0,
    hi: int | None = None,
    cap: int | None = None,
) -> int:
    """Jump-table twin of :func:`repro.oned.probe.min_parts` (same contract).

    One vectorized ``searchsorted`` computes, for every boundary of the
    window at once, the farthest boundary reachable within load ``B``; the
    interval count is then a pointer walk over that table.  Returns
    ``cap + 1`` past the cap or on an infeasible single cell (``cap=None``
    raises ``ValueError`` on infeasibility, like the scalar reference).
    """
    arr = np.asarray(P, dtype=np.int64)
    if hi is None:
        hi = arr.shape[0] - 1
    limit = cap if cap is not None else (hi - lo) + 1
    if B < 0:
        if cap is None:
            raise ValueError(f"single cell exceeds bottleneck {B}")
        return limit + 1
    # the jump-table window covers boundaries lo..hi of the prefix
    w = arr[lo : hi + 1]  # repro-lint: disable=RPL002 — boundary window, not cells
    nxt = np.searchsorted(w, w + B, side="right") - 1
    jump = nxt.tolist()
    if _OPS:
        bump("searchsorted_calls")
        bump("searchsorted_items", hi - lo + 1)
    end = hi - lo
    pos = 0
    parts = 0
    while pos < end:
        if parts >= limit:
            if _OPS:
                bump("probe_calls")
                bump("probe_steps", parts)
            return limit + 1
        step = jump[pos]
        if step <= pos:  # single cell exceeds B
            if cap is None:
                raise ValueError(f"single cell exceeds bottleneck {B}")
            if _OPS:
                bump("probe_calls")
                bump("probe_steps", parts)
            return limit + 1
        pos = step
        parts += 1
    if _OPS:
        bump("probe_calls")
        bump("probe_steps", parts)
    return parts
