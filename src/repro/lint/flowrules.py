"""The dispatch-contract ruleset: RPL009–RPL012.

PRs 2–5 layered three accelerated dispatch paths (perf, parallel,
sweep/store) over the reference solvers under a **bit-identical-to-
reference** contract, enforced dynamically by equality tests.  These rules
make the contract machine-checked at lint time, on top of the project graph
(:mod:`.graph`) and the intraprocedural dataflow framework
(:mod:`.dataflow`):

* **RPL009** — every guarded fast path has a reachable reference twin, and
  the dispatching function is reachable from at least one equality/sweep
  test;
* **RPL010** — bit-identity modules carry no nondeterminism source a lucky
  test run could miss (unordered iteration into results, ``id()`` escapes,
  entropy calls, unordered pool consumption);
* **RPL011** — environment reads go through declared config modules, are
  registered in ``repro/config.py`` and documented under ``docs/``;
* **RPL012** — shared-memory segments and process pools pair creation with
  cleanup on all paths.

Each rule's core checker is a plain function over parsed
:class:`~.engine.FileContext` trees so the tests can run them on synthetic
projects; the registered Rule/ProjectRule classes wire them to the real
tree (locating ``tests/`` and the algorithm registry the way RPL004 locates
``docs/``).
"""

from __future__ import annotations

import ast
import fnmatch
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from .dataflow import FunctionFlow, terminal_names, walk_scope
from .engine import HOT_PACKAGES, FileContext, ProjectRule, Rule, Violation
from .graph import FunctionInfo, ProjectGraph, module_name

__all__ = [
    "CONTRACT_PACKAGES",
    "EQUALITY_TEST_PATTERNS",
    "DispatchTwinRule",
    "DeterminismRule",
    "ConfigRegistryRule",
    "ResourceLifecycleRule",
    "check_dispatch_twins",
    "check_env_reads",
    "find_equality_test_files",
]

#: packages whose modules participate in the bit-identity contract
CONTRACT_PACKAGES = HOT_PACKAGES | {"sweep", "core"}

#: test files whose passing is the dynamic half of the contract
EQUALITY_TEST_PATTERNS = ("test_*_equality.py", "test_sweep*.py")

#: boolean switches that guard a fast path against its reference twin
GUARD_NAMES = frozenset(
    {"perf_enabled", "parallel_enabled", "effective_workers", "sweep_active", "sparse_enabled"}
)

#: dotted-target suffixes that denote the sweep-state accessor
_SWEEP_CURRENT_SUFFIXES = ("sweep.state.current", "sweep.current")

#: parent-side parallel hooks: ``None`` means "run the serial reference"
PARALLEL_HOOKS = frozenset(
    {
        "parallel_stripe_cuts",
        "parallel_hetero_stripe_cuts",
        "parallel_grow_tree",
        "get_pool",
    }
)


# ---------------------------------------------------------------------------
# RPL009 — dispatch-twin contract
# ---------------------------------------------------------------------------


def _callee_names(graph: ProjectGraph, mod: str, call: ast.Call) -> tuple[str, str]:
    """``(bare name, import-resolved dotted target)`` of a call's callee."""
    f = call.func
    bare = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
    minfo = graph.modules.get(mod)
    resolved = ""
    if isinstance(f, ast.Name) and minfo is not None:
        resolved = minfo.imports.get(f.id, "")
    elif isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) and minfo is not None:
        base = minfo.imports.get(f.value.id)
        if base is not None:
            resolved = f"{base}.{f.attr}"
    return bare, resolved


def _is_guard_call(graph: ProjectGraph, mod: str, expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    bare, resolved = _callee_names(graph, mod, expr)
    if bare in GUARD_NAMES or resolved.rsplit(".", 1)[-1] in GUARD_NAMES:
        return True
    return any(resolved.endswith(s) for s in _SWEEP_CURRENT_SUFFIXES)


def _is_hook_call(graph: ProjectGraph, mod: str, expr: ast.expr, hooks: frozenset[str]) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    bare, resolved = _callee_names(graph, mod, expr)
    return bare in hooks or resolved.rsplit(".", 1)[-1] in hooks


def _statement_lists(fn: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every statement list in ``fn`` (bodies, else/elif arms, handlers)."""
    for node in walk_scope(fn):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _build_parents(fn: ast.AST) -> dict[int, tuple[ast.AST, list[ast.stmt], int]]:
    """``id(stmt) -> (container node, containing block, index)`` within ``fn``."""
    parents: dict[int, tuple[ast.AST, list[ast.stmt], int]] = {}
    for node in walk_scope(fn):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list):
                for idx, stmt in enumerate(block):
                    if isinstance(stmt, ast.stmt):
                        parents[id(stmt)] = (node, block, idx)
    return parents


def _falls_off_end(
    fn: ast.AST,
    stmt: ast.stmt,
    parents: dict[int, tuple[ast.AST, list[ast.stmt], int]],
) -> bool:
    """True when the false edge of ``stmt`` reaches the function end directly.

    Walks the parent chain looking for a following sibling statement at any
    level; loop containers count as having a successor (the back edge runs
    the reference path on the next iteration).
    """
    handler_exit: dict[int, ast.AST] = {}
    for node in walk_scope(fn):
        if isinstance(node, ast.Try):
            for h in node.handlers:
                handler_exit[id(h)] = node
    cur: ast.AST = stmt
    while cur is not fn:
        entry = parents.get(id(cur))
        if entry is None:
            nxt = handler_exit.get(id(cur))
            if nxt is None:
                return True
            cur = nxt
            continue
        container, block, idx = entry
        if idx < len(block) - 1:
            return False
        if isinstance(container, (ast.For, ast.AsyncFor, ast.While)):
            return False
        cur = container
    return True


def _single_call_return(block: list[ast.stmt]) -> ast.Call | None:
    if len(block) == 1 and isinstance(block[0], ast.Return):
        val = block[0].value
        if isinstance(val, ast.Call):
            return val
    return None


def _twin_arities(
    graph: ProjectGraph, mod: str, site: ast.If
) -> tuple[FunctionInfo, FunctionInfo] | None:
    """The (fast, reference) twin functions when both branches are bare calls."""
    fast_call = _single_call_return(site.body)
    ref_call = _single_call_return(site.orelse)
    if fast_call is None or ref_call is None:
        return None

    def lookup(call: ast.Call) -> FunctionInfo | None:
        bare, resolved = _callee_names(graph, mod, call)
        keys = graph.resolve_target(resolved) if resolved else set()
        if not keys:
            keys = {k for k in graph.by_name.get(bare, set())}
        local = f"{mod}.{bare}"
        if local in graph.functions:
            keys = {local}
        if len(keys) == 1:
            return graph.functions[next(iter(keys))]
        return None

    fast = lookup(fast_call)
    ref = lookup(ref_call)
    if fast is None or ref is None or fast.key == ref.key:
        return None
    return fast, ref


def check_dispatch_twins(
    src_contexts: Sequence[FileContext],
    test_contexts: Sequence[FileContext],
    *,
    registry_names: Mapping[str, set[str]] | None = None,
    hooks: frozenset[str] = PARALLEL_HOOKS,
) -> list[Violation]:
    """RPL009 core check over parsed source + equality-test trees.

    ``registry_names`` maps registry key strings (``"JAG-M-HEUR"``) to the
    bare names of their implementation chain, bridging the string-keyed
    ``partition_2d`` dispatch the equality tests use.
    """
    out: list[Violation] = []
    graph = ProjectGraph.build([*src_contexts, *test_contexts])
    test_paths = {ctx.rel for ctx in test_contexts}

    # roots: every function defined in an equality/sweep test file, whatever
    # their module-level tables reference, plus the registry implementations
    # those files name as strings
    roots = {f.key for f in graph.functions.values() if f.path in test_paths}
    for ctx in test_contexts:
        roots |= graph.module_edges.get(module_name(ctx.rel), set())
    if registry_names:
        mentioned: set[str] = set()
        for ctx in test_contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    mentioned.add(node.value)
        for key, impl_names in registry_names.items():
            if key in mentioned:
                for bare in impl_names:
                    roots |= graph.by_name.get(bare, set())
    reachable = graph.reachable_from(roots)

    for ctx in src_contexts:
        mod = module_name(ctx.rel)
        for fn in graph.functions_in(ctx.rel):
            flow = FunctionFlow(fn.node)

            def guard_seed(e: ast.expr, _m: str = mod) -> bool:
                return _is_guard_call(graph, _m, e)

            def hook_seed(e: ast.expr, _m: str = mod) -> bool:
                return _is_hook_call(graph, _m, e, hooks)

            guard_vars = flow.tainted(seed=guard_seed)
            parents = _build_parents(fn.node)
            has_site = False

            # --- branch sites: `if perf_enabled():` / `if fast:` ---------
            for block in _statement_lists(fn.node):
                for stmt in block:
                    if not isinstance(stmt, ast.If):
                        continue
                    test_names = terminal_names(stmt.test)
                    is_site = bool(test_names & guard_vars) or any(
                        _is_guard_call(graph, mod, sub)
                        for sub in ast.walk(stmt.test)
                        if isinstance(sub, ast.Call)
                    )
                    if not is_site:
                        continue
                    has_site = True
                    fast_returns = bool(stmt.body) and isinstance(
                        stmt.body[-1], ast.Return
                    )
                    if (
                        not stmt.orelse
                        and fast_returns
                        and _falls_off_end(fn.node, stmt, parents)
                    ):
                        out.append(
                            Violation(
                                path=ctx.rel,
                                line=stmt.lineno,
                                col=stmt.col_offset + 1,
                                rule="RPL009",
                                message=(
                                    f"guarded fast path in `{fn.qualname}` has no "
                                    "reference twin: the dispatch `if` has no else "
                                    "branch and no fall-through code"
                                ),
                            )
                        )
                        continue
                    twins = _twin_arities(graph, mod, stmt)
                    if twins is not None and twins[0].arity != twins[1].arity:
                        fast, ref = twins
                        out.append(
                            Violation(
                                path=ctx.rel,
                                line=stmt.lineno,
                                col=stmt.col_offset + 1,
                                rule="RPL009",
                                message=(
                                    f"dispatch twins `{fast.name}` {fast.arity} and "
                                    f"`{ref.name}` {ref.arity} have incompatible "
                                    "positional signatures"
                                ),
                            )
                        )

            # --- hook sites: `cuts = parallel_stripe_cuts(...)` ----------
            hook_calls = [
                sub
                for sub in walk_scope(fn.node)
                if isinstance(sub, ast.Call) and _is_hook_call(graph, mod, sub, hooks)
            ]
            if hook_calls:
                has_site = True
                hook_vars = flow.tainted(seed=hook_seed)
                checked = any(
                    terminal_names(stmt.test) & hook_vars
                    for stmt in walk_scope(fn.node)
                    if isinstance(stmt, ast.If)
                )
                passed_through = any(
                    flow._expr_tainted(r, hook_vars, hook_seed) for r in flow.returns
                )
                if not checked and not passed_through:
                    call = hook_calls[0]
                    bare, _ = _callee_names(graph, mod, call)
                    out.append(
                        Violation(
                            path=ctx.rel,
                            line=call.lineno,
                            col=call.col_offset + 1,
                            rule="RPL009",
                            message=(
                                f"`{fn.qualname}` calls parallel hook `{bare}` but "
                                "never None-checks (or passes through) its result — "
                                "the serial reference fallback is unreachable"
                            ),
                        )
                    )

            # --- test reachability --------------------------------------
            if has_site and fn.key not in reachable:
                out.append(
                    Violation(
                        path=ctx.rel,
                        line=fn.lineno,
                        col=fn.node.col_offset + 1,
                        rule="RPL009",
                        message=(
                            f"dispatch function `{fn.qualname}` is not reachable "
                            "from any tests/test_*_equality.py / test_sweep*.py "
                            "test — the bit-identity contract on its fast path "
                            "is unenforced"
                        ),
                    )
                )
    return out


def find_equality_test_files(src_root: Path) -> list[Path]:
    """Locate the equality/sweep test files for a linted source tree.

    Walks up from ``src_root`` looking for a sibling ``tests`` directory
    (the same strategy RPL004 uses to locate ``docs/``).
    """
    node = src_root.resolve()
    for _ in range(6):
        tests = node / "tests"
        if tests.is_dir():
            return sorted(
                p
                for p in tests.glob("test_*.py")
                if any(fnmatch.fnmatch(p.name, pat) for pat in EQUALITY_TEST_PATTERNS)
            )
        if node.parent == node:
            break
        node = node.parent
    return []


class DispatchTwinRule(ProjectRule):
    """RPL009 — guarded fast paths have twins and equality-test coverage.

    Runs only when the linted tree contains ``repro/core/registry.py`` (the
    full source tree); skips quietly under ``--changed`` partial sets.
    """

    code = "RPL009"
    name = "dispatch-twin-contract"
    rationale = (
        "every perf_enabled()/parallel/sweep fast path needs a reachable "
        "reference twin, and its function must be reachable from an "
        "equality/sweep test — an untested twin is an unenforced contract"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        registry_ctx = next(
            (c for c in files if c.path.as_posix().endswith("repro/core/registry.py")),
            None,
        )
        if registry_ctx is None:
            return
        test_files = find_equality_test_files(registry_ctx.path.parent)
        test_contexts: list[FileContext] = []
        for path in test_files:
            try:
                source = path.read_text(encoding="utf-8")
                test_contexts.append(FileContext(path, path.as_posix(), source))
            except (OSError, SyntaxError, ValueError):
                continue
        registry_names: dict[str, set[str]] = {}
        try:
            from ..core.registry import ALGORITHMS

            from .rules import ExperimentsCoverageRule

            for key, fn in ALGORITHMS.items():
                if callable(fn):
                    registry_names[key] = ExperimentsCoverageRule._chain_names(fn)
        except Exception:  # pragma: no cover - registry import is best-effort
            registry_names = {}
        yield from check_dispatch_twins(
            list(files), test_contexts, registry_names=registry_names
        )


# ---------------------------------------------------------------------------
# RPL010 — determinism in bit-identity modules
# ---------------------------------------------------------------------------

_ENTROPY_MODULES = frozenset({"random", "secrets", "uuid"})
_TIME_CALLS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
     "process_time", "process_time_ns", "now", "utcnow"}
)
_UNORDERED_POOL = frozenset({"as_completed", "imap_unordered"})
_SET_CTORS = frozenset({"set", "frozenset"})
_SEQ_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
_DICT_VIEWS = frozenset({"values", "keys", "items"})


def _is_id_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "id"
    )


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _SET_CTORS
        and bool(expr.args)  # bare set() is an empty accumulator, not a source
    )


class DeterminismRule(Rule):
    """RPL010 — no nondeterminism sources in bit-identity modules.

    The equality tests compare two runs *within one process*; hash-order
    iteration, ``id()`` escapes and entropy calls can agree on a lucky run
    and diverge across processes or interpreter invocations.  This rule
    flags the sources statically, in the packages carrying the contract.
    """

    code = "RPL010"
    name = "determinism"
    rationale = (
        "bit-identity modules must not let set/hash iteration order, id() "
        "values, entropy or unordered pool results reach their outputs"
    )
    scope = CONTRACT_PACKAGES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        id_keyed = self._id_keyed_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, id_keyed)
            elif isinstance(node, ast.ImportFrom) and node.module in _ENTROPY_MODULES:
                yield self.violation(
                    ctx, node, f"import from entropy module `{node.module}` in a bit-identity module"
                )
        # module-scope entropy/pool patterns (rare but possible)
        yield from self._check_calls(ctx, ctx.tree, id_keyed)

    # -- building blocks ------------------------------------------------

    def _id_keyed_names(self, tree: ast.AST) -> set[str]:
        """Container names subscripted / ``.get``-ed with ``id()``-derived keys."""
        out: set[str] = set()
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            flow = FunctionFlow(fn)
            idt = flow.tainted(seed=_is_id_call)

            def keyed(expr: ast.expr) -> bool:
                return _is_id_call(expr) or bool(terminal_names(expr) & idt)

            for node in walk_scope(fn):
                if isinstance(node, ast.Subscript) and keyed(node.slice):
                    out |= terminal_names(node.value)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "setdefault", "pop")
                    and node.args
                    and keyed(node.args[0])
                ):
                    out |= terminal_names(node.func.value)
        return out

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        id_keyed: set[str],
    ) -> Iterator[Violation]:
        flow = FunctionFlow(fn)
        set_names = flow.tainted(seed=_is_set_expr)

        def unordered(expr: ast.expr) -> bool:
            if _is_set_expr(expr):
                return True
            if isinstance(expr, ast.Name) and expr.id in set_names:
                return True
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in _SEQ_WRAPPERS
                and expr.args
            ):
                return unordered(expr.args[0])
            return False

        def id_keyed_view(expr: ast.expr) -> bool:
            e = expr
            while (
                isinstance(e, ast.Call)
                and isinstance(e.func, ast.Name)
                and e.func.id in _SEQ_WRAPPERS
                and e.args
            ):
                e = e.args[0]
            if isinstance(e, ast.Name) and e.id in id_keyed:
                return True
            return (
                isinstance(e, ast.Call)
                and isinstance(e.func, ast.Attribute)
                and e.func.attr in _DICT_VIEWS
                and bool(terminal_names(e.func.value) & id_keyed)
            )

        # 1. unordered iteration (set order, or an identity-keyed container's
        #    allocation order) whose results reach the return value
        for node in walk_scope(fn):
            it: ast.expr | None = None
            target: ast.AST | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                it, target = node.iter, node.target
            elif isinstance(node, ast.comprehension):
                it, target = node.iter, node.target
            if it is None or target is None:
                continue
            if unordered(it):
                message = (
                    "iteration order of a set reaches the return value; "
                    "sort (or otherwise canonicalize) before iterating"
                )
            elif id_keyed_view(it):
                message = (
                    "iteration over an identity-keyed container reaches the "
                    "return value; results would follow object allocation order"
                )
            else:
                continue
            seeds = {n for n in terminal_names(target)}
            tainted = flow.tainted(seed_names=seeds)
            if flow.first_tainted_return(tainted) is not None:
                yield self.violation(
                    ctx, node if hasattr(node, "lineno") else it, message
                )

        # 2. id() value escaping through the return value (lookups by an
        #    id-derived key are laundered: the value found is not the id)
        id_tainted = flow.tainted(seed=_is_id_call, launder_lookups=True)
        escape = flow.first_tainted_return(
            id_tainted, seed=_is_id_call, launder_lookups=True
        )
        if escape is not None:
            yield self.violation(
                ctx,
                escape,
                "id()-derived value escapes through the return value; object "
                "identity differs across runs and processes",
            )

        yield from self._check_calls(ctx, fn, id_keyed)

    def _check_calls(
        self, ctx: FileContext, root: ast.AST, id_keyed: set[str]
    ) -> Iterator[Violation]:
        direct = root if isinstance(root, ast.Module) else None
        nodes = (
            [n for n in ast.iter_child_nodes(direct)] if direct is not None else list(walk_scope(root))
        )
        seen: set[int] = set()
        stack = nodes
        while stack:
            node = stack.pop()
            if direct is not None:
                # module scope: don't re-descend into functions (handled above)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call) or id(node) in seen:
                continue
            seen.add(id(node))
            f = node.func
            if isinstance(f, ast.Attribute):
                base = f.value
                root_name = base.id if isinstance(base, ast.Name) else None
                if root_name in _ENTROPY_MODULES:
                    yield self.violation(
                        ctx, node, f"entropy call `{root_name}.{f.attr}(...)` in a bit-identity module"
                    )
                elif root_name == "time" and f.attr in _TIME_CALLS:
                    yield self.violation(
                        ctx, node, f"wall-clock call `time.{f.attr}()` in a bit-identity module"
                    )
                elif (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("np", "numpy")
                ):
                    yield self.violation(
                        ctx, node, f"`np.random.{f.attr}(...)` in a bit-identity module"
                    )
                elif f.attr in _UNORDERED_POOL:
                    yield self.violation(
                        ctx, node, f"unordered pool consumption `{f.attr}(...)`: completion "
                        "order varies run to run",
                    )
            elif isinstance(f, ast.Name):
                if f.id in _UNORDERED_POOL:
                    yield self.violation(
                        ctx, node, f"unordered pool consumption `{f.id}(...)`: completion "
                        "order varies run to run",
                    )
                elif f.id == "default_rng" and not node.args:
                    yield self.violation(
                        ctx, node, "`default_rng()` without a seed in a bit-identity module"
                    )


# ---------------------------------------------------------------------------
# RPL011 — environment-variable config registry
# ---------------------------------------------------------------------------

#: modules allowed to read ``os.environ`` directly: any ``config.py`` plus
#: the sweep engine (whose store path knob predates the registry)
_CONFIG_MODULE_SUFFIXES = ("/config.py", "sweep/engine.py")


def _env_read_sites(tree: ast.AST) -> Iterator[tuple[ast.AST, str | None]]:
    """``(node, var name literal or None)`` for every environment *read*."""

    def env_base(expr: ast.expr) -> bool:
        # os.environ / environ
        if isinstance(expr, ast.Attribute) and expr.attr == "environ":
            return True
        return isinstance(expr, ast.Name) and expr.id == "environ"

    def literal(args: list[ast.expr]) -> str | None:
        if args and isinstance(args[0], ast.Constant) and isinstance(args[0].value, str):
            return args[0].value
        return None

    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and env_base(node.value):
            if isinstance(node.ctx, ast.Load):
                name = None
                if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
                    name = node.slice.value
                yield node, name
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr == "get" and env_base(f.value):
                yield node, literal(node.args)
            elif isinstance(f, ast.Attribute) and f.attr == "getenv":
                yield node, literal(node.args)
            elif isinstance(f, ast.Name) and f.id == "getenv":
                yield node, literal(node.args)


def check_env_reads(
    files: Sequence[FileContext],
    *,
    declared: Mapping[str, str] | None,
    registry_rel: str | None,
    docs_text: str | None,
) -> list[Violation]:
    """RPL011 core check.

    ``declared`` maps registered env-var names to their documented defaults
    (parsed from ``repro/config.py``); ``None`` skips the declaration and
    docs checks (partial file sets).
    """
    out: list[Violation] = []
    read_names: set[str] = set()
    for ctx in files:
        allowed = any(ctx.rel.endswith(suffix) for suffix in _CONFIG_MODULE_SUFFIXES)
        for node, name in _env_read_sites(ctx.tree):
            if name is not None:
                read_names.add(name)
            lineno = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            if not allowed:
                out.append(
                    Violation(
                        path=ctx.rel,
                        line=lineno,
                        col=col,
                        rule="RPL011",
                        message=(
                            "environment read outside a declared config module; "
                            "route it through repro.config (or a */config.py)"
                        ),
                    )
                )
            if name is None:
                out.append(
                    Violation(
                        path=ctx.rel,
                        line=lineno,
                        col=col,
                        rule="RPL011",
                        message=(
                            "environment read with a non-literal variable name "
                            "cannot be registered or documented"
                        ),
                    )
                )
        # os.environ[...] reads (even in config modules) bypass defaults
        for node, _name in _env_read_sites(ctx.tree):
            if isinstance(node, ast.Subscript):
                out.append(
                    Violation(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="RPL011",
                        message=(
                            "`os.environ[...]` read raises on absence and has no "
                            "default; use `.get(name, default)`"
                        ),
                    )
                )
    if declared is None or registry_rel is None:
        return out
    anchor = registry_rel
    for name in sorted(read_names - set(declared)):
        out.append(
            Violation(
                path=anchor,
                line=1,
                col=1,
                rule="RPL011",
                message=(
                    f"environment variable {name!r} is read but not declared in "
                    "ENV_VARS (repro/config.py)"
                ),
            )
        )
    if docs_text is not None:
        for name in sorted(set(declared)):
            if name not in docs_text:
                out.append(
                    Violation(
                        path=anchor,
                        line=1,
                        col=1,
                        rule="RPL011",
                        message=(
                            f"declared environment variable {name!r} is not "
                            "documented anywhere under docs/"
                        ),
                    )
                )
    return out


class ConfigRegistryRule(ProjectRule):
    """RPL011 — env reads go through declared, documented config modules."""

    code = "RPL011"
    name = "config-registry"
    rationale = (
        "every os.environ read must live in a declared config module, be "
        "registered in repro/config.py ENV_VARS with a default, and be "
        "documented under docs/"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        registry_ctx = next(
            (c for c in files if c.path.as_posix().endswith("repro/config.py")), None
        )
        declared: dict[str, str] | None = None
        registry_rel: str | None = None
        docs_text: str | None = None
        if registry_ctx is not None:
            registry_rel = registry_ctx.rel
            declared = self._parse_declared(registry_ctx.tree)
            docs_text = self._all_docs_text(registry_ctx.path)
        yield from check_env_reads(
            files, declared=declared, registry_rel=registry_rel, docs_text=docs_text
        )

    @staticmethod
    def _parse_declared(tree: ast.AST) -> dict[str, str]:
        """Keys (and rendered defaults) of the ``ENV_VARS`` dict literal."""
        out: dict[str, str] = {}
        for node in ast.walk(tree):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                value = node.value
            else:
                continue
            if (
                isinstance(target, ast.Name)
                and target.id == "ENV_VARS"
                and isinstance(value, ast.Dict)
            ):
                for k, v in zip(value.keys, value.values):
                    if isinstance(k, ast.Constant) and isinstance(k.value, str):
                        out[k.value] = ast.unparse(v) if v is not None else ""
        return out

    @staticmethod
    def _all_docs_text(config_path: Path) -> str | None:
        node = config_path.resolve().parent
        for _ in range(6):
            docs = node / "docs"
            if docs.is_dir():
                return "\n".join(
                    p.read_text(encoding="utf-8") for p in sorted(docs.glob("*.md"))
                )
            if node.parent == node:
                break
            node = node.parent
        return None


# ---------------------------------------------------------------------------
# RPL012 — shared-memory / pool resource lifecycle
# ---------------------------------------------------------------------------

_POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool", "ThreadPoolExecutor"})


def _call_name(call: ast.Call) -> str:
    f = call.func
    return f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")


def _mentions_cleanup(node: ast.AST, var: str) -> bool:
    """Does ``node`` contain ``var.close()`` / ``var.unlink()``?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("close", "unlink", "shutdown")
            and var in terminal_names(sub.func.value)
        ):
            return True
    return False


class ResourceLifecycleRule(Rule):
    """RPL012 — segments and pools pair creation with cleanup on all paths.

    A ``SharedMemory(create=True)`` segment is a kernel object surviving the
    creating frame; between creation and the registration of a cleanup
    (finalizer, module registry consumed by a release function, try/finally)
    any exception leaks it for the process lifetime.  Pools spawn worker
    processes and must register shutdown (``atexit`` or ``with``).
    """

    code = "RPL012"
    name = "resource-lifecycle"
    rationale = (
        "shared_memory create/attach must pair with unlink/close on all "
        "paths (try/finally or finalizer); pool spawns must register shutdown"
    )
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module_dicts = self._module_container_names(ctx.tree)
        has_atexit = self._has_atexit_register(ctx.tree)
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_segments(ctx, fn, module_dicts)
            yield from self._check_pools(ctx, fn, has_atexit)

    # -- module-level facts ---------------------------------------------

    @staticmethod
    def _module_container_names(tree: ast.AST) -> set[str]:
        out: set[str] = set()
        body = getattr(tree, "body", [])
        for node in body:
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Name) and (
                isinstance(value, (ast.Dict, ast.List))
                or (isinstance(value, ast.Call) and _call_name(value) in ("dict", "list", "deque"))
            ):
                out.add(target.id)
        return out

    @staticmethod
    def _has_atexit_register(tree: ast.AST) -> bool:
        for node in getattr(tree, "body", []):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _call_name(node.value) == "register"
            ):
                return True
        return False

    # -- segments -------------------------------------------------------

    def _check_segments(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module_dicts: set[str],
    ) -> Iterator[Violation]:
        for block in _statement_lists(fn):
            for idx, stmt in enumerate(block):
                site = self._segment_assign(stmt)
                if site is None:
                    continue
                var, call, is_create = site
                protected, leaky_window = self._segment_protection(
                    fn, block, idx, var, module_dicts
                )
                if not protected:
                    kind = "created" if is_create else "attached"
                    yield self.violation(
                        ctx,
                        call,
                        f"shared-memory segment {kind} with no reachable "
                        "unlink/close: register a finalizer, store it in a "
                        "released module registry, or close in try/finally",
                    )
                elif is_create and leaky_window is not None:
                    yield self.violation(
                        ctx,
                        leaky_window,
                        f"statement between segment creation and cleanup "
                        f"registration can leak `{var}` on exception; wrap it "
                        "in try/except unlink (or register the cleanup first)",
                    )

    @staticmethod
    def _segment_assign(stmt: ast.stmt) -> tuple[str, ast.Call, bool] | None:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and _call_name(stmt.value) == "SharedMemory"
        ):
            is_create = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in stmt.value.keywords
            )
            return stmt.targets[0].id, stmt.value, is_create
        return None

    def _segment_protection(
        self,
        fn: ast.AST,
        block: list[ast.stmt],
        idx: int,
        var: str,
        module_dicts: set[str],
    ) -> tuple[bool, ast.stmt | None]:
        """``(protected, first statement in an unprotected window or None)``."""

        def is_protection(stmt: ast.stmt) -> bool:
            if isinstance(stmt, ast.Return):
                return True  # ownership transferred to the caller
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and _call_name(sub) == "finalize"
                ):
                    return True
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Subscript)
                    and terminal_names(sub.targets[0].value) & module_dicts
                    and var in terminal_names(sub.value)
                ):
                    return True
            return False

        # try/finally or with anywhere in the function that cleans the var up
        for node in walk_scope(fn):
            if isinstance(node, ast.Try):
                for region in (node.finalbody, *[h.body for h in node.handlers]):
                    for stmt in region:
                        if _mentions_cleanup(stmt, var):
                            return True, None
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and _call_name(item.context_expr) == "SharedMemory"
                    ):
                        return True, None

        window: ast.stmt | None = None
        for stmt in block[idx + 1 :]:
            if is_protection(stmt):
                return True, window
            if isinstance(stmt, ast.Try):
                cleans = any(
                    _mentions_cleanup(s, var)
                    for region in (stmt.finalbody, *[h.body for h in stmt.handlers])
                    for s in region
                )
                if cleans and any(is_protection(s) for s in stmt.body):
                    return True, None
            if window is None:
                window = stmt
        return False, None

    # -- pools ----------------------------------------------------------

    def _check_pools(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        has_atexit: bool,
    ) -> Iterator[Violation]:
        with_ctors = {
            id(item.context_expr)
            for node in walk_scope(fn)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
            if isinstance(item.context_expr, ast.Call)
        }
        for node in walk_scope(fn):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) in _POOL_CTORS
                and id(node) not in with_ctors
                and not has_atexit
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"`{_call_name(node)}` spawned outside a `with` block in a "
                    "module with no atexit-registered shutdown path",
                )
