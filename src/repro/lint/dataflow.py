"""Small intraprocedural dataflow framework for the contract rules.

One :class:`FunctionFlow` models one function body as a name-level
assignment graph: which names are (re)bound from which expressions, which
containers accumulate which values, and which expressions leave the
function through ``return``/``yield``.  On top of it the rules ask taint
questions — "does any value derived from *this* kind of expression reach a
return?" — via a forward fixpoint over the graph.

The analysis is flow-insensitive (all assignments to a name merge) and
ignores control flow, which over-approximates reachability: a tainted name
is reported even if the tainting branch cannot execute.  For lint purposes
that is the right direction — suppressions carry the proof burden for the
false positives, and no real flow is missed.

Two deliberate precision choices, documented because rules rely on them:

* ``x += expr`` with an arithmetic operator does **not** propagate taint
  into ``x``: the dominant idiom is order-independent scalar accumulation
  (``total += load``), and treating it as ordered flow would flag every
  reduction over a set.  List growth uses ``append``/``extend``, which do
  propagate.
* ``sorted(...)`` (and the other order-erasing builtins in
  :data:`ORDER_LAUNDERING`) stops taint: its result no longer depends on
  iteration order.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

__all__ = ["FunctionFlow", "ORDER_LAUNDERING", "terminal_names", "walk_scope"]

#: calls through which iteration order does not survive
ORDER_LAUNDERING = frozenset({"sorted", "min", "max", "sum", "len", "any", "all", "frozenset", "set"})

#: container methods that write their argument into the receiver
_ACCUMULATORS = frozenset({"append", "extend", "add", "update", "insert", "appendleft"})


def terminal_names(node: ast.AST) -> set[str]:
    """Terminal identifiers mentioned in a subtree (``Name.id`` + ``Attribute.attr``)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def walk_scope(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function/class definitions."""
    stack: list[ast.AST] = [fn]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if node is not fn and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _binding_names(target: ast.AST) -> set[str]:
    """Names bound by an assignment/loop target (tuple targets flattened).

    Only the bound name itself counts: ``self._x = v`` binds ``_x`` (not
    ``self`` — that would taint every other attribute of the object), and
    ``d[k] = v`` binds ``d`` (``k`` is read, not written).
    """
    out: set[str] = set()
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out |= _binding_names(elt)
    elif isinstance(target, ast.Starred):
        out |= _binding_names(target.value)
    elif isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, ast.Attribute):
        out.add(target.attr)  # self._x = ... binds the attribute name
    elif isinstance(target, ast.Subscript):
        out |= _binding_names(target.value)
    return out


class FunctionFlow:
    """Assignment graph + taint queries for one function body."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module):
        self.fn = fn
        #: name -> source expressions it was bound from (Assign/For/With/NamedExpr)
        self.sources: dict[str, list[ast.expr]] = {}
        #: name -> expressions accumulated into it (``x.append(e)``)
        self.accumulated: dict[str, list[ast.expr]] = {}
        #: loop target names -> the iterable expression they range over
        self.loop_iters: dict[str, list[ast.expr]] = {}
        self.returns: list[ast.expr] = []
        self._build()

    def _bind(self, table: dict[str, list[ast.expr]], target: ast.AST, value: ast.expr) -> None:
        for name in _binding_names(target):
            table.setdefault(name, []).append(value)

    def _build(self) -> None:
        for node in walk_scope(self.fn):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    self._bind(self.sources, tgt, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(self.sources, node.target, node.value)
            elif isinstance(node, ast.NamedExpr):
                self._bind(self.sources, node.target, node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind(self.sources, node.target, node.iter)
                self._bind(self.loop_iters, node.target, node.iter)
            elif isinstance(node, ast.comprehension):
                self._bind(self.sources, node.target, node.iter)
                self._bind(self.loop_iters, node.target, node.iter)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind(self.sources, item.optional_vars, item.context_expr)
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in _ACCUMULATORS
                    and node.args
                ):
                    for name in _binding_names(f.value):
                        for arg in node.args:
                            self.accumulated.setdefault(name, []).append(arg)
            elif isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                self.returns.append(node.value)

    # -- taint ----------------------------------------------------------

    def _expr_tainted(
        self,
        expr: ast.expr,
        tainted: set[str],
        seed: Callable[[ast.expr], bool] | None,
        launder_lookups: bool = False,
    ) -> bool:
        """Does ``expr`` (or a sub-expression) carry taint?

        A call in :data:`ORDER_LAUNDERING` stops the descent; everything
        else propagates structurally.  With ``launder_lookups``, a container
        lookup (``d[key]`` / ``d.get(key)``) propagates only the container's
        taint, not the key's — the value *found by* a tainted key is not
        itself derived from it (the query RPL010's id-escape check needs).
        """
        if isinstance(expr, ast.Call):
            f = expr.func
            fname = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
            if fname in ORDER_LAUNDERING:
                return False
            if (
                launder_lookups
                and isinstance(f, ast.Attribute)
                and fname in ("get", "pop", "setdefault")
            ):
                return self._expr_tainted(f.value, tainted, seed, launder_lookups)
        if seed is not None and seed(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Attribute):
            if expr.attr in tainted:
                return True
            if isinstance(expr.value, ast.Name):
                return expr.value.id in tainted
            return self._expr_tainted(expr.value, tainted, seed, launder_lookups)
        if launder_lookups and isinstance(expr, ast.Subscript):
            return self._expr_tainted(expr.value, tainted, seed, launder_lookups)
        return any(
            self._expr_tainted(child, tainted, seed, launder_lookups)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    def tainted(
        self,
        seed: Callable[[ast.expr], bool] | None = None,
        seed_names: set[str] | None = None,
        launder_lookups: bool = False,
    ) -> set[str]:
        """Names transitively derived from seed expressions / seed names."""
        tainted: set[str] = set(seed_names or ())
        changed = True
        while changed:
            changed = False
            for table in (self.sources, self.accumulated):
                for name, exprs in table.items():
                    if name in tainted:
                        continue
                    if any(
                        self._expr_tainted(e, tainted, seed, launder_lookups)
                        for e in exprs
                    ):
                        tainted.add(name)
                        changed = True
        return tainted

    def first_tainted_return(
        self,
        tainted: set[str],
        seed: Callable[[ast.expr], bool] | None = None,
        launder_lookups: bool = False,
    ) -> ast.expr | None:
        """The first return/yield expression that carries taint, or None."""
        for expr in self.returns:
            if self._expr_tainted(expr, tainted, seed, launder_lookups):
                return expr
        return None
