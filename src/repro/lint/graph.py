"""Project-wide import + call graph over a linted file set.

The per-file rules (RPL001–RPL005) pattern-match one AST at a time; the
dispatch-contract rules (RPL009–RPL012) need to answer *cross-file*
questions — "is this guarded fast path reachable from an equality test?" —
so this module builds the minimal project model that supports them:

* a **function table**: every module-level function and method in the file
  set, keyed ``<module>.<qualname>`` with the dotted module name derived
  from the file path (``src/repro/jagged/m_heur.py`` → ``repro.jagged.m_heur``);
* an **import map** per module: local alias → dotted target, with relative
  imports resolved against the module's package;
* a **reference graph**: an edge from function F to function G whenever F
  *mentions* G — a direct call, an aliased call through an import, a method
  call matched by bare attribute name, or a bare reference (callbacks handed
  to ``pmap``/``pool.map`` count as calls).

The graph is deliberately an over-approximation: attribute calls resolve to
*every* project function sharing the bare name, and unresolvable names fall
back to bare-name matching.  For the reachability questions the rules ask
("is there *any* test exercising this dispatch function?") over-approximating
edges errs toward silence, never toward false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .engine import FileContext

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectGraph", "module_name"]


def module_name(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    Everything up to and including a ``src`` path component is dropped (the
    layout convention of this repo and of the synthetic trees the tests
    build); ``__init__.py`` names the package itself.
    """
    parts = rel.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One function or method in the project model."""

    module: str  #: dotted module name
    qualname: str  #: e.g. ``jag_m_heur`` or ``PrefixSum2D.axis_prefix``
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str  #: repo-relative file path
    #: (required positional params, total positional params) — ``self`` kept
    arity: tuple[int, int] = (0, 0)

    @property
    def key(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """Per-module import map plus the names defined at module level."""

    name: str
    path: str
    #: local alias -> dotted import target (``np`` → ``numpy``,
    #: ``_sweep_current`` → ``repro.sweep.state.current``)
    imports: dict[str, str] = field(default_factory=dict)
    #: names bound at module level (functions, classes, constants)
    toplevel: set[str] = field(default_factory=set)


def _fn_arity(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[int, int]:
    a = fn.args
    total = len(a.posonlyargs) + len(a.args)
    required = total - len(a.defaults)
    return (required, total)


def _resolve_relative(module: str, is_package: bool, level: int, target: str | None) -> str:
    """Absolute dotted target of a ``from ...x import y`` statement."""
    if level == 0:
        return target or ""
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    base = base[: len(base) - (level - 1)] if level > 1 else base
    if target:
        base = base + target.split(".")
    return ".".join(p for p in base if p)


class ProjectGraph:
    """Function table + reference edges + reachability over a file set."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.modules: dict[str, ModuleInfo] = {}
        #: bare function name -> keys of every project function with that name
        self.by_name: dict[str, set[str]] = {}
        #: caller key -> callee keys (reference edges)
        self.edges: dict[str, set[str]] = {}
        #: module name -> keys referenced from module-level code (dispatch
        #: tables, re-export dicts, decorator applications); reaching any
        #: function of the module pulls these in
        self.module_edges: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectGraph":
        g = cls()
        for ctx in contexts:
            g._index_module(ctx)
        for ctx in contexts:
            g._link_module(ctx)
        return g

    def _index_module(self, ctx: FileContext) -> None:
        mod = module_name(ctx.rel)
        info = ModuleInfo(name=mod, path=ctx.rel)
        is_package = ctx.rel.endswith("__init__.py")
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                info.toplevel.add(node.name)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        info.toplevel.add(tgt.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                info.toplevel.add(node.target.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(mod, is_package, node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    info.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        self.modules[mod] = info
        # function table: module-level functions and class methods
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node.name, node, ctx.rel)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(mod, f"{node.name}.{sub.name}", sub, ctx.rel)

    def _add_function(
        self,
        mod: str,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        path: str,
    ) -> None:
        info = FunctionInfo(
            module=mod, qualname=qualname, node=node, path=path, arity=_fn_arity(node)
        )
        self.functions[info.key] = info
        self.by_name.setdefault(info.name, set()).add(info.key)

    # -- edge resolution ------------------------------------------------

    def _link_module(self, ctx: FileContext) -> None:
        mod = module_name(ctx.rel)
        for key, fn in self.functions.items():
            if fn.path != ctx.rel:
                continue
            self.edges[key] = self._references(mod, fn.node)
        self.module_edges[mod] = self._references(
            mod, ctx.tree, skip_functions=True
        )

    def resolve_target(self, dotted: str) -> set[str]:
        """Function keys an absolute dotted import target denotes.

        Exact key match first; otherwise dot-boundary suffix match, so
        targets survive differing path roots (``repro.oned.probe.probe``
        matches a tree rooted anywhere).
        """
        if dotted in self.functions:
            return {dotted}
        suffix = "." + dotted
        return {k for k in self.functions if k.endswith(suffix)}

    def _iter_refs(self, root: ast.AST, skip_functions: bool) -> Iterable[ast.AST]:
        if not skip_functions:
            yield from ast.walk(root)
            return
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # function bodies get their own edge sets
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _references(
        self, mod: str, fn: ast.AST, *, skip_functions: bool = False
    ) -> set[str]:
        minfo = self.modules.get(mod)
        out: set[str] = set()
        for node in self._iter_refs(fn, skip_functions):
            if isinstance(node, ast.Name):
                name = node.id
                # local / imported resolution first, bare-name fallback last
                if f"{mod}.{name}" in self.functions:
                    out.add(f"{mod}.{name}")
                elif minfo is not None and name in minfo.imports:
                    resolved = self.resolve_target(minfo.imports[name])
                    # package re-exports (`from repro.parallel import pmap`)
                    # have no `<module>.<qualname>` key; fall back to bare name
                    if not resolved:
                        resolved = self.by_name.get(name, set())
                    out |= resolved
                elif name in self.by_name:
                    out |= self.by_name[name]
            elif isinstance(node, ast.Attribute):
                attr = node.attr
                if isinstance(node.value, ast.Name) and minfo is not None:
                    target = minfo.imports.get(node.value.id)
                    if target is not None:
                        resolved = self.resolve_target(f"{target}.{attr}")
                        if resolved:
                            out |= resolved
                            continue
                if attr in self.by_name:
                    out |= self.by_name[attr]
        fn_name = getattr(fn, "name", None)
        if fn_name is not None:
            out.discard(f"{mod}.{fn_name}")
        return out

    # -- queries --------------------------------------------------------

    def functions_in(self, path: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.path == path]

    def reachable_from(
        self, roots: Iterable[str], extra_edges: Mapping[str, set[str]] | None = None
    ) -> set[str]:
        """Keys reachable from ``roots`` over reference edges (roots included).

        Reaching any function of a module also follows that module's
        module-level references (string-dispatch tables like
        ``{"nicolplus": nicol_plus}`` live in top-level dicts, and the
        functions of the module reach their targets through them at runtime).
        """
        seen: set[str] = set()
        modules_pulled: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for nxt in self.edges.get(key, ()):  # pragma: no branch
                if nxt not in seen:
                    stack.append(nxt)
            mod = self.functions[key].module
            if mod not in modules_pulled:
                modules_pulled.add(mod)
                for nxt in self.module_edges.get(mod, ()):
                    if nxt not in seen:
                        stack.append(nxt)
            if extra_edges is not None:
                for nxt in extra_edges.get(key, ()):
                    if nxt not in seen:
                        stack.append(nxt)
        return seen
