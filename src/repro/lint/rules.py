"""The repro ruleset: RPL001–RPL008.

Each rule encodes one invariant the paper's algorithms rely on; see
``docs/lint.md`` for the catalogue with worked examples.
"""

from __future__ import annotations

import ast
import inspect
import re
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from .engine import (
    CORE_PACKAGES,
    HOT_PACKAGES,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
)
from .flowrules import (
    ConfigRegistryRule,
    DeterminismRule,
    DispatchTwinRule,
    ResourceLifecycleRule,
)

__all__ = [
    "PrefixSumRule",
    "HalfOpenRule",
    "IntegerLoadRule",
    "RegistryRule",
    "NoInputMutationRule",
    "ComplexityBudgetRule",
    "ComplexityClaimRule",
    "ExperimentsCoverageRule",
    "DispatchTwinRule",
    "DeterminismRule",
    "ConfigRegistryRule",
    "ResourceLifecycleRule",
    "check_registry",
    "check_budgets",
    "check_claims",
    "ALL_RULES",
    "ALL_PROJECT_RULES",
]


def _terminal_names(node: ast.AST) -> set[str]:
    """Terminal identifiers in a subtree: ``Name.id`` and ``Attribute.attr``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _is_name(node: ast.AST, names: frozenset[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in names


def _is_plus_one(node: ast.AST | None, names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Add)
        and (
            (_is_name(node.left, names) and _const_eq(node.right, 1))
            or (_is_name(node.right, names) and _const_eq(node.left, 1))
        )
    )


def _is_minus_one(node: ast.AST | None, names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and _is_name(node.left, names)
        and _const_eq(node.right, 1)
    )


def _const_eq(node: ast.AST, value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value == value


class PrefixSumRule(Rule):
    """RPL001 — hot-path rectangle/interval loads must be prefix-sum queries.

    Paper §2.1 assumes the load matrix is given as the 2D prefix array Γ so
    every rectangle load costs O(1).  A ``A[...].sum()`` / ``np.sum(A[...])``
    call or a Python accumulation loop over a slice re-scans the cells —
    O(area) per query — and silently voids every runtime bound in Table 1.
    """

    code = "RPL001"
    name = "prefix-sum-discipline"
    rationale = (
        "slice sums are O(area); use PrefixSum1D/2D/3D .load()/axis_prefix() "
        "queries (paper §2.1, the Γ array)"
    )
    scope = HOT_PACKAGES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        reported: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                hit = self._sum_over_slice(node)
                if hit is not None and id(node) not in reported:
                    reported.add(id(node))
                    yield self.violation(
                        ctx,
                        node,
                        f"O(n) `{hit}` over a slice in a hot path; use a "
                        "PrefixSum load()/axis_prefix() query instead",
                    )
            elif isinstance(node, (ast.For, ast.While)):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, ast.Add)
                        and id(sub) not in reported
                        and any(isinstance(s, ast.Subscript) for s in ast.walk(sub.value))
                    ):
                        reported.add(id(sub))
                        yield self.violation(
                            ctx,
                            sub,
                            "Python accumulation loop over subscripted values; "
                            "use a PrefixSum query or a vectorized prefix "
                            "difference instead",
                        )

    @staticmethod
    def _sum_over_slice(node: ast.Call) -> str | None:
        func = node.func
        # X[...].sum()
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sum"
            and isinstance(func.value, ast.Subscript)
        ):
            return ".sum()"
        # np.sum(X[...]) / builtin sum(X[...])
        is_np_sum = (
            isinstance(func, ast.Attribute)
            and func.attr == "sum"
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        )
        is_builtin_sum = isinstance(func, ast.Name) and func.id == "sum"
        if (is_np_sum or is_builtin_sum) and node.args:
            if isinstance(node.args[0], ast.Subscript):
                return "np.sum()" if is_np_sum else "sum()"
        return None


class HalfOpenRule(Rule):
    """RPL002 — all intervals are half-open ``[lo, hi)``.

    The prefix arrays and every cut array in the repo use half-open indices,
    which map directly onto slices (``P[hi] - P[lo]`` is the load of
    ``[lo, hi)``).  ``hi + 1`` / ``lo - 1`` slice arithmetic and inclusive
    comparisons against an upper bound are the classic symptom of an
    inclusive-bound convention leaking in, and produce off-by-one loads.
    """

    code = "RPL002"
    name = "half-open-intervals"
    rationale = (
        "intervals are [lo, hi); slice bounds like hi+1/lo-1 and `x <= hi` "
        "comparisons indicate an inclusive convention leaking in"
    )
    scope = CORE_PACKAGES

    UPPER = frozenset({"hi", "r1", "c1", "j1", "x1", "y1", "b1", "end", "stop", "last"})
    LOWER = frozenset({"lo", "r0", "c0", "j0", "x0", "y0", "b0", "begin", "first"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                for sl in self._slices(node.slice):
                    if _is_plus_one(sl.upper, self.UPPER):
                        yield self.violation(
                            ctx,
                            sl.upper or node,
                            "slice upper bound `<hi> + 1`; half-open [lo, hi) "
                            "bounds map onto slices without +1 (a prefix-array "
                            "window is the one documented exception)",
                        )
                    if _is_minus_one(sl.lower, self.LOWER):
                        yield self.violation(
                            ctx,
                            sl.lower or node,
                            "slice lower bound `<lo> - 1`; half-open [lo, hi) "
                            "bounds map onto slices without -1",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "range"
                    and node.args
                    and _is_plus_one(node.args[-1 if len(node.args) < 3 else 1], self.UPPER)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "`range(..., <hi> + 1)` iterates an inclusive interval; "
                        "half-open bounds need no +1",
                    )
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                op = node.ops[0]
                if isinstance(op, ast.LtE) and _is_name(node.comparators[0], self.UPPER):
                    yield self.violation(
                        ctx,
                        node,
                        "inclusive comparison `x <= <hi>`; half-open membership "
                        "is `lo <= x < hi`",
                    )
                elif isinstance(op, ast.GtE) and _is_name(node.left, self.UPPER):
                    yield self.violation(
                        ctx,
                        node,
                        "inclusive comparison `<hi> >= x`; half-open membership "
                        "is `lo <= x < hi`",
                    )

    @staticmethod
    def _slices(node: ast.AST) -> list[ast.Slice]:
        if isinstance(node, ast.Slice):
            return [node]
        if isinstance(node, ast.Tuple):
            return [e for e in node.elts if isinstance(e, ast.Slice)]
        return []


class IntegerLoadRule(Rule):
    """RPL003 — loads stay exact ``int64`` inside algorithm modules.

    The optimal algorithms bisect on the bottleneck value and rely on exact
    integer arithmetic (module docstring of :mod:`repro.core.prefix`); a
    ``float(...)`` cast or a true division on a load value introduces
    rounding at ~2**53 and breaks exactness.  Floor division ``//``,
    ceil-division ``-(-a // b)`` and :class:`fractions.Fraction` are the
    exact alternatives.
    """

    code = "RPL003"
    name = "integer-load-discipline"
    rationale = (
        "loads are exact int64 so bisection is exact; use // , -(-a//b) or "
        "Fraction instead of float casts and true division"
    )
    scope = HOT_PACKAGES

    #: identifiers that denote load values by repo convention
    LOAD_NAMES = frozenset(
        {
            "load",
            "loads",
            "total",
            "subtotal",
            "rem",
            "remaining",
            "lmax",
            "lavg",
            "l1",
            "l2",
            "sl",
            "stripe_load",
            "stripe_loads",
            "bottleneck",
        }
    )
    FLOAT_ATTRS = frozenset({"float16", "float32", "float64", "float128"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if self._mentions_load(node):
                    yield self.violation(
                        ctx,
                        node,
                        "true division on a load value loses exactness; use "
                        "`//`, ceil-division `-(-a // b)` or Fraction",
                    )
            elif isinstance(node, ast.Attribute) and node.attr in self.FLOAT_ATTRS:
                if isinstance(node.value, ast.Name) and node.value.id in ("np", "numpy"):
                    yield self.violation(
                        ctx,
                        node,
                        f"float dtype `np.{node.attr}` in an algorithm module; "
                        "loads are exact int64",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            # float("inf") / float("nan") sentinels are exact-comparison safe
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                yield self.violation(
                    ctx,
                    node,
                    "float(...) cast in an algorithm module; loads are exact "
                    "int64 (use int()/Fraction, or cast only at the reporting "
                    "boundary)",
                )
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if any(_is_name(a, frozenset({"float"})) for a in node.args):
                yield self.violation(
                    ctx, node, "astype(float) in an algorithm module; loads are exact int64"
                )
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_name(kw.value, frozenset({"float"})):
                yield self.violation(
                    ctx, node, "dtype=float in an algorithm module; loads are exact int64"
                )

    def _mentions_load(self, node: ast.BinOp) -> bool:
        for side in (node.left, node.right):
            if _terminal_names(side) & self.LOAD_NAMES:
                return True
            for sub in ast.walk(side):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in ("load", "sum"):
                        return True
                if isinstance(sub, ast.Attribute) and sub.attr == "total":
                    return True
        return False


class NoInputMutationRule(Rule):
    """RPL005 — partitioner entry points must not mutate their input matrix.

    Every public algorithm takes the load matrix ``A`` (or a prefix built
    from it) read-only; callers reuse the same matrix across algorithms when
    comparing them (the experiment harness does exactly that).  In-place
    writes to the parameter would corrupt cross-algorithm comparisons.
    """

    code = "RPL005"
    name = "no-input-mutation"
    rationale = (
        "algorithms must treat the load-matrix parameter A as read-only; "
        "copy before modifying"
    )
    scope = CORE_PACKAGES

    MUTATORS = frozenset({"sort", "fill", "resize", "put", "itemset", "partition"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {a.arg for a in fn.args.args + fn.args.posonlyargs + fn.args.kwonlyargs}
            if "A" not in params:
                continue
            yield from self._check_body(ctx, fn)

    def _check_body(self, ctx: FileContext, fn: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if self._writes_A(tgt):
                        yield self.violation(
                            ctx, node, "in-place write to input matrix `A[...] = ...`"
                        )
            elif isinstance(node, ast.AugAssign):
                if self._writes_A(node.target) or _is_name(node.target, frozenset({"A"})):
                    yield self.violation(
                        ctx, node, "augmented assignment mutates the input matrix A in place"
                    )
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in self.MUTATORS
                    and _is_name(f.value, frozenset({"A"}))
                ):
                    yield self.violation(
                        ctx, node, f"`A.{f.attr}(...)` mutates the input matrix in place"
                    )
                for kw in node.keywords:
                    if kw.arg == "out" and _is_name(kw.value, frozenset({"A"})):
                        yield self.violation(
                            ctx, node, "`out=A` writes into the input matrix in place"
                        )

    @staticmethod
    def _writes_A(target: ast.AST) -> bool:
        return isinstance(target, ast.Subscript) and _is_name(
            target.value, frozenset({"A"})
        )


_CITATION_RE = re.compile(r"§|\bSection\s+\d|\bTheorem\s+\d|\bFigure\s+\d|\b§?\d\.\d")
_VARIANT_SUFFIXES = ("-HOR", "-VER", "-BEST", "-LOAD", "-DIST")


def _strip_variant(name: str) -> str:
    for suffix in _VARIANT_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_registry(
    algorithms: dict[str, Callable[..., Any]],
    docs_text: str | None,
    registry_path: str = "src/repro/core/registry.py",
    registry_line: int = 1,
) -> list[Violation]:
    """RPL004 core check, factored out so tests can run it on fake registries.

    For every registered algorithm: it must be callable, its (unwrapped)
    implementation must annotate a ``Partition`` return and carry a docstring
    citing a paper section, and its base name must appear in
    ``docs/algorithms.md`` (``docs_text``; pass None to skip the doc check).
    """
    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(
            Violation(
                path=registry_path,
                line=registry_line,
                col=1,
                rule="RPL004",
                message=message,
            )
        )

    for name in sorted(algorithms):
        fn = algorithms[name]
        if not callable(fn):
            bad(f"ALGORITHMS[{name!r}] is not callable")
            continue
        target = inspect.unwrap(fn)
        doc = inspect.getdoc(target) or ""
        if not doc:
            bad(f"ALGORITHMS[{name!r}] resolves to {target!r} with no docstring")
        elif not _CITATION_RE.search(doc):
            bad(
                f"ALGORITHMS[{name!r}] docstring cites no paper section "
                "(expected a §/Section/Theorem/Figure reference)"
            )
        ret = getattr(target, "__annotations__", {}).get("return")
        ret_name = ret if isinstance(ret, str) else getattr(ret, "__name__", None)
        if ret_name != "Partition":
            bad(
                f"ALGORITHMS[{name!r}] implementation does not annotate a "
                f"Partition return (got {ret_name!r})"
            )
        if docs_text is not None and _strip_variant(name) not in docs_text:
            bad(f"ALGORITHMS[{name!r}] (base {_strip_variant(name)!r}) missing from docs/algorithms.md")
    return out


class RegistryRule(ProjectRule):
    """RPL004 — the algorithm registry, docs and implementations stay in sync.

    Runs only when the linted tree contains ``core/registry.py`` (i.e. the
    repro source tree itself); imports :data:`repro.core.registry.ALGORITHMS`
    and validates it with :func:`check_registry`.
    """

    code = "RPL004"
    name = "registry-consistency"
    rationale = (
        "every ALGORITHMS entry must be a documented, paper-cited callable "
        "returning Partition and listed in docs/algorithms.md"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        registry_ctx = next(
            (
                ctx
                for ctx in files
                if ctx.path.as_posix().endswith("repro/core/registry.py")
            ),
            None,
        )
        if registry_ctx is None:
            return
        from ..core.registry import ALGORITHMS

        docs_text = self._find_docs(registry_ctx.path)
        line = self._algorithms_line(registry_ctx)
        yield from check_registry(
            ALGORITHMS, docs_text, registry_ctx.rel, registry_line=line
        )

    @staticmethod
    def _find_docs(registry_path: Path) -> str | None:
        node = registry_path.resolve().parent
        for _ in range(6):
            candidate = node / "docs" / "algorithms.md"
            if candidate.is_file():
                return candidate.read_text(encoding="utf-8")
            node = node.parent
        return None

    @staticmethod
    def _algorithms_line(ctx: FileContext) -> int:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id == "ALGORITHMS":
                    return node.lineno
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if _is_name(tgt, frozenset({"ALGORITHMS"})):
                        return node.lineno
        return 1


class ExperimentsCoverageRule(ProjectRule):
    """RPL007 — every registry entry is exercised by at least one experiment.

    A registered algorithm nobody runs is a reproduction gap: its behavior is
    asserted by unit tests but never measured against the paper.  The rule
    statically collects, from the modules of the ``experiments`` package,

    * exact string constants (``ALGORITHMS["JAG-M-HEUR"]``-style lookups and
      name tuples like ``HEURISTICS``), excluding docstrings;
    * leading constant prefixes of f-strings (``f"HIER-RB-{variant}"``
      covers every ``HIER-RB-*`` variant);
    * referenced identifiers, matched against each entry's unwrapped
      implementation name (``jag_m_heur(...)`` called directly covers every
      entry that unwraps to ``jag_m_heur``);

    and reports each :data:`~repro.core.registry.ALGORITHMS` entry none of
    them reach.  Like RPL004 it runs only when the linted tree contains the
    registry, and skips quietly when the experiments package is not part of
    the linted file set (e.g. single-file invocations).
    """

    code = "RPL007"
    name = "experiments-coverage"
    rationale = (
        "every ALGORITHMS entry must be exercised by at least one "
        "figure/extension experiment, by name or by implementation reference"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        registry_ctx = next(
            (
                ctx
                for ctx in files
                if ctx.path.as_posix().endswith("repro/core/registry.py")
            ),
            None,
        )
        exp_files = [ctx for ctx in files if "experiments" in ctx.package_parts()]
        if registry_ctx is None or not exp_files:
            return
        from ..core.registry import ALGORITHMS

        strings: set[str] = set()
        prefixes: set[str] = set()
        idents: set[str] = set()
        for ctx in exp_files:
            docstrings = self._docstring_ids(ctx.tree)
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    if id(node) not in docstrings:
                        strings.add(node.value)
                elif isinstance(node, ast.JoinedStr):
                    first = node.values[0] if node.values else None
                    if isinstance(first, ast.Constant) and isinstance(first.value, str):
                        prefixes.add(first.value)
                elif isinstance(node, ast.Name):
                    idents.add(node.id)
                elif isinstance(node, ast.Attribute):
                    idents.add(node.attr)
        prefixes.discard("")
        line = RegistryRule._algorithms_line(registry_ctx)
        for name in sorted(ALGORITHMS):
            if name in strings:
                continue
            if any(name.startswith(p) for p in prefixes):
                continue
            if self._chain_names(ALGORITHMS[name]) & idents:
                continue
            yield Violation(
                path=registry_ctx.rel,
                line=line,
                col=1,
                rule="RPL007",
                message=(
                    f"ALGORITHMS[{name!r}] is not exercised by any "
                    "figure/extension experiment (no experiments module names "
                    "it or references its implementation)"
                ),
            )

    @staticmethod
    def _chain_names(fn: Callable[..., Any]) -> set[str]:
        """``__name__`` of every function along the ``__wrapped__`` chain.

        Registry entries stack wrappers (orientation/variant closure over the
        public ``jag_*``/``hier_*`` function over the ``_main0`` core); a
        reference to any link counts as exercising the implementation.
        """
        out: set[str] = set()
        seen: set[int] = set()
        while id(fn) not in seen:
            seen.add(id(fn))
            name = getattr(fn, "__name__", None)
            if name:
                out.add(name)
            fn = getattr(fn, "__wrapped__", fn)
        return out

    @staticmethod
    def _docstring_ids(tree: ast.AST) -> set[int]:
        """ids of the Constant nodes that are module/class/function docstrings."""
        out: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                body = getattr(node, "body", [])
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    out.add(id(body[0].value))
        return out


def check_budgets(
    probe_path: str = "src/repro/oned/probe.py",
    line: int = 1,
) -> list[Violation]:
    """RPL006 core check, factored out so tests can invoke it directly.

    Re-measures the paper's complexity bounds as *operation budgets* on small
    deterministic instances and reports every overshoot.  Counts come from
    :func:`repro.perf.op_counters` on the instrumented call sites, so unlike
    wall-clock numbers the budgets are architecture-independent and exact:

    * probe (§2.2): at most ``m`` greedy steps per call;
    * exact 1D bisection (§2.2): at most ``ceil(log2(UB - LB + 1)) + 1``
      probe rounds over the opening bracket;
    * JAG-M-HEUR (§3.2.1): total probe steps within ``32 * (n + m log n)``;
    * HIER-RB (§3.3): exactly ``2(m - 1)`` cut searches for power-of-two
      ``m``, and within ``[m - 1, 4(m - 1)]`` for odd ``m``;
    * HIER-RELAXED (§3.3): cut searches within ``[m - 1, 2(m - 1)]``;
    * kernel registry (``repro.perf.kernels``): ``probe_batch`` runs one
      batch call with at most ``m`` lockstep rounds — and exactly one round
      when every candidate resolves immediately (the early-exit contract);
      ``min_parts`` walks exactly ``parts`` greedy steps after one batched
      jump-table search.

    The instances are seeded, the counters deterministic, and both perf
    modes are measured where the budget must hold in both — a budget
    violation is a real complexity regression, never flake.
    """
    import math

    import numpy as np

    from ..core.registry import partition_2d
    from ..oned.bisect import bisect_bottleneck
    from ..oned.probe import probe
    from ..perf import op_counters, use_perf

    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(
            Violation(path=probe_path, line=line, col=1, rule="RPL006", message=message)
        )

    def prefix_of(v: np.ndarray) -> np.ndarray:
        P = np.zeros(len(v) + 1, dtype=np.int64)
        np.cumsum(v, out=P[1:])
        return P

    # probe: at most m greedy steps per call (§2.2)
    P = prefix_of(np.random.default_rng(17).integers(0, 100, 200))
    total = int(P[-1])
    for m in (3, 17):
        for B in (0, total // (2 * m), total // m, total):
            with use_perf(False), op_counters() as ops:
                probe(P, m, B)
            if ops["probe_steps"] > m:
                bad(
                    f"probe(m={m}, B={B}) took {ops['probe_steps']} greedy "
                    f"steps, over the paper budget of m={m} (§2.2)"
                )

    # exact 1D bisection: O(log(UB - LB)) probe rounds (§2.2)
    m = 12
    max_el = int(np.max(np.diff(P)))
    lb = max(-(-total // m), max_el)
    ub = total // m + max_el
    budget = math.ceil(math.log2(ub - lb + 1)) + 1
    with use_perf(False), op_counters() as ops:
        bisect_bottleneck(P, m)
    if ops["probe_calls"] > budget:
        bad(
            f"bisect_bottleneck(m={m}) opened {ops['probe_calls']} probes, "
            f"over the ceil(log2(UB-LB+1))+1 = {budget} budget (§2.2)"
        )

    # JAG-M-HEUR: O(n + m log n) probe work (§3.2.1)
    n, m = 64, 16
    A = np.random.default_rng(n + m).integers(0, 50, (n, n))
    with use_perf(False), op_counters() as ops:
        partition_2d(A, m, "JAG-M-HEUR-HOR")
    budget = 32 * (n + m * math.ceil(math.log2(n + 1)))
    if ops["probe_steps"] > budget:
        bad(
            f"JAG-M-HEUR on {n}x{n}, m={m} took {ops['probe_steps']} probe "
            f"steps, over the 32*(n + m*log2(n)) = {budget} budget (§3.2.1)"
        )

    # hierarchical: cut evaluations per tree node, both perf modes (§3.3)
    A = np.random.default_rng(5).integers(1, 50, (32, 32))
    for perf in (False, True):
        with use_perf(perf), op_counters() as ops:
            partition_2d(A, 16, "HIER-RB")
        if ops["cut_calls"] != 2 * 15:
            bad(
                f"HIER-RB m=16 (perf={perf}) made {ops['cut_calls']} cut "
                f"searches; power-of-two m must make exactly 2(m-1) = 30 (§3.3)"
            )
        with use_perf(perf), op_counters() as ops:
            partition_2d(A, 13, "HIER-RB")
        if not 12 <= ops["cut_calls"] <= 4 * 12:
            bad(
                f"HIER-RB m=13 (perf={perf}) made {ops['cut_calls']} cut "
                f"searches, outside the [m-1, 4(m-1)] = [12, 48] budget (§3.3)"
            )
        with use_perf(perf), op_counters() as ops:
            partition_2d(A, 9, "HIER-RELAXED")
        if not 8 <= ops["cut_calls"] <= 2 * 8:
            bad(
                f"HIER-RELAXED m=9 (perf={perf}) made {ops['cut_calls']} cut "
                f"searches, outside the [m-1, 2(m-1)] = [8, 16] budget (§3.3)"
            )

    # kernel registry (repro.perf.kernels, numpy backend pinned — the round
    # structure below is the *vectorized* contract; other backends trade it
    # for per-candidate walks): the batched probe advances every candidate
    # through one chained searchsorted per lockstep round, so a call costs
    # one probe_batch_calls bump and at most m searchsorted rounds
    from ..perf.config import use_perf_backend
    from ..perf.kernels import min_parts_batch, probe_batch

    P = prefix_of(np.random.default_rng(29).integers(1, 100, 400))
    total = int(P[-1])
    m = 24
    Bs = np.linspace(total // (2 * m), 2 * total // m, 64).astype(np.int64)
    with use_perf_backend("numpy"):
        with op_counters() as ops:
            probe_batch(P, m, Bs)
        if ops["probe_batch_calls"] != 1 or ops["searchsorted_calls"] > m:
            bad(
                f"probe_batch(m={m}, K=64) made {ops['probe_batch_calls']} batch "
                f"call(s) and {ops['searchsorted_calls']} lockstep rounds; the "
                f"budget is 1 call of at most m={m} rounds"
            )
        # early-exit contract: candidates that die or finish in round one must
        # cost exactly one round, however large m is (every cell is positive,
        # so B=0 kills every candidate immediately)
        with op_counters() as ops:
            probe_batch(P, 512, np.zeros(64, dtype=np.int64))
        if ops["searchsorted_calls"] > 1:
            bad(
                f"probe_batch early exit ran {ops['searchsorted_calls']} lockstep "
                f"rounds on all-stuck candidates; must stop after 1"
            )
        # min_parts: one batched jump-table search, then exactly `parts` steps
        B = 8 * total // 400
        with op_counters() as ops:
            parts = min_parts_batch(P, B)
        if ops["searchsorted_calls"] != 1 or ops["probe_steps"] != parts:
            bad(
                f"min_parts_batch walked {ops['probe_steps']} steps over "
                f"{ops['searchsorted_calls']} searchsorted call(s) for {parts} "
                f"parts; the budget is exactly one batched search and parts steps"
            )
    return out


class ComplexityBudgetRule(ProjectRule):
    """RPL006 — the paper's complexity bounds hold as measured op budgets.

    Runs only when the linted tree contains ``oned/probe.py`` (i.e. the
    repro source tree itself, not an arbitrary file set); re-measures the
    probe/bisection/JAG-M-HEUR/hierarchical budgets of :func:`check_budgets`
    on seeded instances and reports each overshoot as a violation anchored
    on the probe module.
    """

    code = "RPL006"
    name = "complexity-budget"
    rationale = (
        "op counts on seeded reference instances must stay within the "
        "paper's complexity budgets (probe <= m steps, bisection O(log "
        "range), JAG-M-HEUR O(n + m log n), hierarchical cut budgets)"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        probe_ctx = next(
            (
                ctx
                for ctx in files
                if ctx.path.as_posix().endswith("repro/oned/probe.py")
            ),
            None,
        )
        if probe_ctx is None:
            return
        yield from check_budgets(probe_ctx.rel)


#: ``O(...)`` complexity claims, one paren nesting level deep — enough for
#: every claim in the tree (``O(m log max(n1, n2))``)
_CLAIM_RE = re.compile(r"O\((?:[^()]|\([^()]*\))*\)")


def _normalize_claim(claim: str) -> str:
    """Canonical form of one ``O(...)`` claim for cross-document comparison.

    Lowercases, drops backticks/whitespace and multiplication dots/stars
    (``O(n·m)`` == ``O(n*m)`` == ``O(nm)``), and rewrites superscripts to
    carets (``m²`` == ``m^2``) — cosmetic typography must not count as a
    mismatch, while any real difference (another variable, another factor)
    still does.
    """
    out = claim.lower().replace("`", "")
    for ch in ("·", "×", "*", " ", "\t", "\n"):
        out = out.replace(ch, "")
    return out.replace("²", "^2").replace("³", "^3")


def check_claims(
    algorithms: dict[str, Callable[..., Any]],
    docs_text: str,
    anchor_path: str = "src/repro/core/registry.py",
    anchor_line: int = 1,
) -> list[Violation]:
    """RPL008 core check, factored out so tests can run it on fake registries.

    Every ``O(...)`` claim in the docstrings reachable from the registry —
    each entry's unwrapped implementation and its defining module — must
    appear (normalized) in ``docs/algorithms.md``.  A claim the catalogue
    does not carry is either stale code documentation or a catalogue gap;
    both drift silently without this check.
    """
    import sys

    doc_claims = {_normalize_claim(c) for c in _CLAIM_RE.findall(docs_text)}
    out: list[Violation] = []
    seen: set[tuple[str, str]] = set()
    for name in sorted(algorithms):
        fn = algorithms[name]
        if not callable(fn):
            continue  # RPL004's finding, not ours
        target = inspect.unwrap(fn)
        module = sys.modules.get(getattr(target, "__module__", ""))
        sources = [
            (getattr(target, "__module__", "?"), inspect.getdoc(module) or ""),
            (
                f"{getattr(target, '__module__', '?')}."
                f"{getattr(target, '__qualname__', '?')}",
                inspect.getdoc(target) or "",
            ),
        ]
        for src, doc in sources:
            for claim in _CLAIM_RE.findall(doc):
                key = (src, _normalize_claim(claim))
                if key in seen:
                    continue
                seen.add(key)
                if key[1] not in doc_claims:
                    out.append(
                        Violation(
                            path=anchor_path,
                            line=anchor_line,
                            col=1,
                            rule="RPL008",
                            message=(
                                f"complexity claim {claim!r} in the docstring "
                                f"of {src} does not appear in "
                                "docs/algorithms.md (normalized "
                                f"{key[1]!r})"
                            ),
                        )
                    )
    return out


class ComplexityClaimRule(ProjectRule):
    """RPL008 — docstring complexity claims stay in sync with the catalogue.

    ``docs/algorithms.md`` is the source of truth for the complexity of
    every algorithm; module and function docstrings repeat those bounds
    next to the code.  This rule walks the registry (unwrapping shims like
    RPL004/RPL007 do), extracts every ``O(...)`` claim from the reachable
    docstrings, and reports claims the catalogue does not carry.  Like the
    other registry rules it runs only when the linted tree contains
    ``core/registry.py`` and skips quietly when ``docs/algorithms.md``
    cannot be located.
    """

    code = "RPL008"
    name = "complexity-claims"
    rationale = (
        "every O(...) claim in a registry-reachable docstring must appear "
        "in docs/algorithms.md, so code comments and the catalogue cannot "
        "drift apart"
    )

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        registry_ctx = next(
            (
                ctx
                for ctx in files
                if ctx.path.as_posix().endswith("repro/core/registry.py")
            ),
            None,
        )
        if registry_ctx is None:
            return
        docs_text = RegistryRule._find_docs(registry_ctx.path)
        if docs_text is None:
            return
        from ..core.registry import ALGORITHMS

        yield from check_claims(ALGORITHMS, docs_text, registry_ctx.rel)


#: per-file rules, in code order
ALL_RULES: list[Rule] = [
    PrefixSumRule(),
    HalfOpenRule(),
    IntegerLoadRule(),
    NoInputMutationRule(),
    DeterminismRule(),
    ResourceLifecycleRule(),
]

#: whole-project rules
ALL_PROJECT_RULES: list[ProjectRule] = [
    RegistryRule(),
    ComplexityBudgetRule(),
    ExperimentsCoverageRule(),
    ComplexityClaimRule(),
    DispatchTwinRule(),
    ConfigRegistryRule(),
]
