"""Output formats for ``repro-lint``: text, JSON, and SARIF 2.1.0.

The SARIF output targets GitHub code scanning: one run, one driver, every
rule (including the RPL100 stale-suppression meta-check) in the rule table,
honoured in-source suppressions carried as ``suppressions`` entries so the
scanning UI shows them as dismissed rather than dropping them.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import STALE_CODE, LintResult, Violation

__all__ = ["text_report", "json_report", "sarif_report"]


def text_report(result: LintResult, *, verbose: bool = False) -> str:
    """The default ``path:line:col: CODE message`` listing plus a summary."""
    lines = [v.render() for v in result.violations]
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed:")
        lines.extend(f"  {v.render()}" for v in result.suppressed)
    lines.extend(f"error: {e}" for e in result.errors)
    n = len(result.violations)
    summary = (
        f"{n} violation{'s' if n != 1 else ''} in "
        f"{result.files_checked} file{'s' if result.files_checked != 1 else ''}"
        f" ({len(result.suppressed)} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """Machine-readable report (one object; violations sorted)."""
    payload = {
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.violations
        ],
        "suppressed": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.suppressed
        ],
        "errors": list(result.errors),
        "files_checked": result.files_checked,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)


_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(v: Violation, *, suppressed: bool) -> dict[str, Any]:
    out: dict[str, Any] = {
        "ruleId": v.rule,
        "level": "error",
        "message": {"text": v.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path, "uriBaseId": "SRCROOT"},
                    "region": {"startLine": v.line, "startColumn": v.col},
                }
            }
        ],
    }
    if suppressed:
        out["suppressions"] = [{"kind": "inSource"}]
    return out


def sarif_report(result: LintResult, *, tool_version: str = "0") -> str:
    """SARIF 2.1.0 report (GitHub code-scanning compatible)."""
    from .rules import ALL_PROJECT_RULES, ALL_RULES

    rules_meta: list[dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in [*ALL_RULES, *ALL_PROJECT_RULES]
    ]
    rules_meta.append(
        {
            "id": STALE_CODE,
            "name": "stale-suppression",
            "shortDescription": {"text": "stale-suppression"},
            "fullDescription": {
                "text": "a # repro-lint: disable comment no longer silences "
                "any finding and should be removed"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    payload: dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/lint.md",
                        "version": tool_version,
                        "rules": rules_meta,
                    }
                },
                "results": [
                    *(_sarif_result(v, suppressed=False) for v in result.violations),
                    *(_sarif_result(v, suppressed=True) for v in result.suppressed),
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)
