"""Output formats for ``repro-lint``: human-readable text and JSON."""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["text_report", "json_report"]


def text_report(result: LintResult, *, verbose: bool = False) -> str:
    """The default ``path:line:col: CODE message`` listing plus a summary."""
    lines = [v.render() for v in result.violations]
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed:")
        lines.extend(f"  {v.render()}" for v in result.suppressed)
    lines.extend(f"error: {e}" for e in result.errors)
    n = len(result.violations)
    summary = (
        f"{n} violation{'s' if n != 1 else ''} in "
        f"{result.files_checked} file{'s' if result.files_checked != 1 else ''}"
        f" ({len(result.suppressed)} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """Machine-readable report (one object; violations sorted)."""
    payload = {
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.violations
        ],
        "suppressed": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.suppressed
        ],
        "errors": list(result.errors),
        "files_checked": result.files_checked,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)
