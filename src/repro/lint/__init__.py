"""repro-lint: repo-specific static analysis for the partitioning codebase.

The paper's correctness-and-speed story rests on conventions that ordinary
linters cannot see:

* rectangle/interval loads are O(1) prefix-sum queries (§2.1, the Γ array),
  never O(n) slice sums;
* every interval is half-open ``[lo, hi)``, mapping directly onto slices;
* loads stay exact ``int64`` so the optimal algorithms (Nicol's parametric
  search, integer bisection) can bisect exactly;
* every accelerated dispatch path (perf kernels, parallel execution, sweep
  warm starts) is **bit-identical** to its reference twin — enforced
  dynamically by the equality tests and statically by the dataflow rules.

This package enforces them with an AST rule engine (:mod:`.engine`), a
per-file ruleset grounded in this codebase (:mod:`.rules`, RPL001–RPL008),
project-wide dataflow rules over the import/call graph (:mod:`.graph`,
:mod:`.dataflow`, :mod:`.flowrules`, RPL009–RPL012), a stale-suppression
meta-check (RPL100), and a CLI (:mod:`.cli`, installed as ``repro-lint`` /
``python -m repro.lint``) with text/JSON/SARIF reporters and a ``--changed``
fast mode.

See ``docs/lint.md`` for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from .engine import LintResult, Violation, lint_paths
from .flowrules import check_dispatch_twins, check_env_reads
from .reporters import json_report, sarif_report, text_report
from .rules import ALL_RULES, check_budgets, check_registry

__all__ = [
    "LintResult",
    "Violation",
    "lint_paths",
    "ALL_RULES",
    "check_budgets",
    "check_registry",
    "check_dispatch_twins",
    "check_env_reads",
    "json_report",
    "sarif_report",
    "text_report",
]
