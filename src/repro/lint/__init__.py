"""repro-lint: repo-specific static analysis for the partitioning codebase.

The paper's correctness-and-speed story rests on three conventions that
ordinary linters cannot see:

* rectangle/interval loads are O(1) prefix-sum queries (§2.1, the Γ array),
  never O(n) slice sums;
* every interval is half-open ``[lo, hi)``, mapping directly onto slices;
* loads stay exact ``int64`` so the optimal algorithms (Nicol's parametric
  search, integer bisection) can bisect exactly.

This package enforces them with an AST rule engine (:mod:`.engine`), a
ruleset grounded in this codebase (:mod:`.rules`, RPL001–RPL007), and a CLI
(:mod:`.cli`, installed as ``repro-lint`` / ``python -m repro.lint``).

See ``docs/lint.md`` for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from .engine import LintResult, Violation, lint_paths
from .rules import ALL_RULES, check_budgets, check_registry

__all__ = [
    "LintResult",
    "Violation",
    "lint_paths",
    "ALL_RULES",
    "check_budgets",
    "check_registry",
]
