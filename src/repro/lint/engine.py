"""AST rule engine for ``repro-lint``.

The engine is deliberately small: a rule is an object with a ``code``, a
``name``, a ``rationale`` and a ``check(ctx)`` generator over
:class:`Violation`; the engine walks the target tree, parses each Python
file once, applies every selected rule whose :meth:`Rule.applies_to` accepts
the file, and filters the result through per-line and per-file suppressions.

Suppression syntax (checked anywhere in a file, conventionally as a trailing
comment on the flagged line / near the top of the file)::

    x = A[r0:r1, c0:c1].sum()   # repro-lint: disable=RPL001  <why it is OK>
    # repro-lint: disable-file=RPL003  <why the whole file is exempt>

``disable=all`` silences every rule for that line.  Suppressions are counted
and reported so they stay visible in CI output.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "FileContext",
    "Suppression",
    "Rule",
    "ProjectRule",
    "LintResult",
    "collect_files",
    "lint_paths",
]

#: code of the stale-suppression meta-check (not a Rule object: it runs over
#: the suppression tables after every other rule has had its chance to match)
STALE_CODE = "RPL100"

#: packages whose modules are "hot path" for the prefix-sum / integer rules
HOT_PACKAGES = frozenset(
    {
        "oned",
        "jagged",
        "rectilinear",
        "hierarchical",
        "spiral",
        "volume",
        "dynamic",
        # the BSP simulator consumes substrates and exact loads on every
        # snapshot of a dynamic run — same integer-arithmetic contracts
        "runtime",
        # "perf" covers the kernel registry (repro.perf.kernels) and its
        # compiled twins — the hottest loops in the tree (pinned by
        # tests/test_kernels_equality.py)
        "perf",
        "parallel",
    }
)
#: packages additionally covered by the interval-convention and mutation rules
CORE_PACKAGES = HOT_PACKAGES | {"core"}

#: individual modules outside the hot packages whose loops are nonetheless
#: hot-path (path suffixes): the sparse substrate lives in ``core`` but its
#: queries sit under every solver, so the hot-package rules cover it too
HOT_MODULES = frozenset({"core/sparse.py"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+?|all)\s*(?:\s[-—#].*)?$"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One ``# repro-lint: disable[-file]=...`` comment, with usage tracking.

    ``used`` collects the codes a suppression actually silenced during a lint
    run; the stale-suppression pass (RPL100) reports codes that never matched.
    """

    line: int  #: comment line (anchor for file-scope suppressions too)
    codes: frozenset[str]  #: upper-cased rule codes, possibly ``{"ALL"}``
    file_scope: bool
    used: set[str] = field(default_factory=set)

    def matches(self, v: Violation) -> bool:
        if not self.file_scope and self.line != v.line:
            return False
        return v.rule in self.codes or "ALL" in self.codes


class FileContext:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=rel)
        self.suppressions: list[Suppression] = []
        self.line_suppressions: dict[int, set[str]] = {}
        self.file_suppressions: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            codes = {c.strip().upper() for c in m.group("codes").split(",") if c.strip()}
            scope = bool(m.group("scope"))
            self.suppressions.append(
                Suppression(line=lineno, codes=frozenset(codes), file_scope=scope)
            )
            if scope:
                self.file_suppressions |= codes
            else:
                self.line_suppressions.setdefault(lineno, set()).update(codes)

    def package_parts(self) -> frozenset[str]:
        """Directory names along the file's path (used for rule applicability)."""
        return frozenset(Path(self.rel).parts[:-1])

    def is_suppressed(self, v: Violation) -> bool:
        hit = False
        for s in self.suppressions:
            if s.matches(v):
                s.used.add(v.rule)
                hit = True
        return hit


class Rule:
    """Base class for per-file AST rules."""

    code: str = "RPL000"
    name: str = "unnamed"
    rationale: str = ""
    #: directory names this rule applies to; ``None`` means every file
    scope: frozenset[str] | None = None

    def applies_to(self, ctx: FileContext) -> bool:
        if self.scope is None or bool(self.scope & ctx.package_parts()):
            return True
        # hot-package rules also cover the designated hot modules, wherever
        # they live in the package tree
        if self.scope & HOT_PACKAGES:
            rel = ctx.rel.replace("\\", "/")
            return any(rel.endswith(m) for m in HOT_MODULES)
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


class ProjectRule:
    """Base class for whole-project rules (run once per lint invocation)."""

    code: str = "RPL000"
    name: str = "unnamed"
    rationale: str = ""

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Violation]:
        raise NotImplementedError


@dataclass
class LintResult:
    """Outcome of a lint run: violations kept, suppressions honoured, errors."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" in f.parts or any(
                    part.startswith(".") for part in f.parts
                ):
                    continue
                out.add(f)
    return sorted(out)


def _relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _selected(code: str, select: set[str] | None, ignore: set[str]) -> bool:
    if code in ignore:
        return False
    return select is None or code in select


def _stale_suppressions(
    contexts: Sequence[FileContext], active_codes: set[str], full_run: bool
) -> Iterator[Violation]:
    """RPL100: suppressions that silenced nothing this run.

    A code is checkable only when its rule actually ran (``active_codes``);
    ``disable=all`` is checkable only on a full run (no ``--select``), since
    a restricted run gives most rules no chance to match.
    """
    for ctx in contexts:
        for s in ctx.suppressions:
            if "ALL" in s.codes:
                stale = frozenset({"ALL"}) if full_run and not s.used else frozenset()
            else:
                stale = frozenset((s.codes & active_codes) - s.used)
            if not stale:
                continue
            scope = "disable-file" if s.file_scope else "disable"
            yield Violation(
                path=ctx.rel,
                line=s.line,
                col=1,
                rule=STALE_CODE,
                message=(
                    f"stale suppression `# repro-lint: {scope}="
                    f"{','.join(sorted(stale))}`: no such finding is raised "
                    "here any more; remove it"
                ),
            )


def lint_paths(
    paths: Sequence[Path | str],
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    rules: Sequence[Rule] | None = None,
    project_rules: Sequence[ProjectRule] | None = None,
    stale_check: bool = True,
) -> LintResult:
    """Lint ``paths`` with the given (default: all registered) rules.

    ``select``/``ignore`` filter by rule code.  Project rules run once over
    the full file set; per-file rules run on each file they apply to.
    ``stale_check=False`` skips the RPL100 stale-suppression pass (used by
    ``--changed`` partial lints, where project rules skip quietly and their
    suppressions would look stale).
    """
    from .rules import ALL_PROJECT_RULES, ALL_RULES

    ignore = {c.upper() for c in (ignore or set())}
    if select is not None:
        select = {c.upper() for c in select}
    active = [r for r in (rules if rules is not None else ALL_RULES)
              if _selected(r.code, select, ignore)]
    active_project = [
        r
        for r in (project_rules if project_rules is not None else ALL_PROJECT_RULES)
        if _selected(r.code, select, ignore)
    ]

    result = LintResult()
    contexts: list[FileContext] = []
    for path in collect_files(Path(p) for p in paths):
        rel = _relative(path)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(path, rel, source)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{rel}: cannot lint: {exc}")
            continue
        contexts.append(ctx)
        result.files_checked += 1
        for rule in active:
            if not rule.applies_to(ctx):
                continue
            for v in rule.check(ctx):
                (result.suppressed if ctx.is_suppressed(v) else result.violations).append(v)

    by_rel = {ctx.rel: ctx for ctx in contexts}
    for prule in active_project:
        for v in prule.check_project(contexts):
            ctx = by_rel.get(v.path)
            if ctx is not None and ctx.is_suppressed(v):
                result.suppressed.append(v)
            else:
                result.violations.append(v)

    if stale_check and _selected(STALE_CODE, select, ignore):
        active_codes = {r.code for r in active} | {r.code for r in active_project}
        for v in _stale_suppressions(contexts, active_codes, full_run=select is None):
            ctx = by_rel.get(v.path)
            # a stale finding is suppressible only by an *explicit* RPL100
            # code — `disable=all` must not swallow its own staleness report
            hit = False
            if ctx is not None:
                for s in ctx.suppressions:
                    if STALE_CODE in s.codes and (s.file_scope or s.line == v.line):
                        s.used.add(STALE_CODE)
                        hit = True
            (result.suppressed if hit else result.violations).append(v)

    result.violations.sort()
    result.suppressed.sort()
    return result
