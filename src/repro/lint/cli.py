"""``repro-lint`` — run the repo-specific static-analysis pass.

Typical invocations::

    repro-lint src/repro                 # lint the source tree (CI gate)
    repro-lint --select RPL003 src/repro # one rule only
    repro-lint --format json src/repro   # machine-readable output
    repro-lint --format sarif src/repro  # code-scanning upload artifact
    repro-lint --changed                 # only files changed vs merge-base
    python -m repro.lint src/repro       # same, without the console script

Exit codes: 0 clean, 1 violations found, 2 usage or internal error — the
same contract CI relies on.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .engine import STALE_CODE, lint_paths
from .reporters import json_report, sarif_report, text_report
from .rules import ALL_PROJECT_RULES, ALL_RULES

__all__ = ["main"]

_KNOWN_CODES = (
    {r.code for r in ALL_RULES} | {r.code for r in ALL_PROJECT_RULES} | {STALE_CODE}
)


def _parse_codes(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
    unknown = codes - _KNOWN_CODES
    if unknown:
        print(
            f"error: unknown rule code(s) {sorted(unknown)}; known: {sorted(_KNOWN_CODES)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return codes


def _list_rules() -> str:
    lines = []
    for rule in [*ALL_RULES, *ALL_PROJECT_RULES]:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.rationale}")
    lines.append(f"{STALE_CODE}  stale-suppression")
    lines.append(
        "       a # repro-lint: disable comment that silences nothing must "
        "be removed (skipped under --changed)"
    )
    return "\n".join(lines)


def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args], check=True, capture_output=True, text=True
    ).stdout


def _changed_files(base: str, roots: list[Path]) -> list[Path] | None:
    """Python files changed vs the merge-base with ``base``, under ``roots``.

    Committed changes, worktree modifications and untracked files all count.
    Returns None (with a message on stderr) when git cannot answer, so the
    caller can fall back to a full lint rather than silently lint nothing.
    """
    try:
        merge_base = _git("merge-base", "HEAD", base).strip()
        names = set(_git("diff", "--name-only", merge_base, "--", "*.py").splitlines())
        names |= set(_git("diff", "--name-only", "--", "*.py").splitlines())
        names |= set(
            _git("ls-files", "--others", "--exclude-standard", "--", "*.py").splitlines()
        )
        top = Path(_git("rev-parse", "--show-toplevel").strip())
    except (subprocess.CalledProcessError, OSError) as exc:
        print(f"warning: --changed unavailable ({exc}); linting everything", file=sys.stderr)
        return None
    resolved_roots = [r.resolve() for r in roots]
    out: list[Path] = []
    for name in sorted(names):
        path = (top / name).resolve()
        if not path.is_file():
            continue  # deleted in the diff
        if any(root == path or root in path.parents for root in resolved_roots):
            out.append(path)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis: prefix-sum, half-open "
        "interval and integer-load invariants (see docs/lint.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro if present, else .)",
    )
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="list honoured suppressions in the text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files changed vs the merge-base "
                        "(skips project rules' full-tree checks and RPL100)")
    parser.add_argument("--base", default="main", metavar="REF",
                        help="base ref for --changed (default: main)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = list(args.paths)
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {[str(p) for p in missing]}", file=sys.stderr)
        return 2

    stale_check = True
    if args.changed:
        changed = _changed_files(args.base, paths)
        if changed is not None:
            if not changed:
                print("0 violations in 0 files (0 suppressed)")
                return 0
            paths = changed
            stale_check = False

    result = lint_paths(
        paths,
        select=_parse_codes(args.select),
        ignore=_parse_codes(args.ignore) or set(),
        stale_check=stale_check,
    )
    if args.format == "json":
        print(json_report(result))
    elif args.format == "sarif":
        print(sarif_report(result))
    else:
        print(text_report(result, verbose=args.show_suppressed))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
