"""``repro-lint`` — run the repo-specific static-analysis pass.

Typical invocations::

    repro-lint src/repro                 # lint the source tree (CI gate)
    repro-lint --select RPL003 src/repro # one rule only
    repro-lint --format json src/repro   # machine-readable output
    python -m repro.lint src/repro       # same, without the console script

Exit codes: 0 clean, 1 violations found, 2 usage or internal error — the
same contract CI relies on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import lint_paths
from .reporters import json_report, text_report
from .rules import ALL_PROJECT_RULES, ALL_RULES

__all__ = ["main"]

_KNOWN_CODES = {r.code for r in ALL_RULES} | {r.code for r in ALL_PROJECT_RULES}


def _parse_codes(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
    unknown = codes - _KNOWN_CODES
    if unknown:
        print(
            f"error: unknown rule code(s) {sorted(unknown)}; known: {sorted(_KNOWN_CODES)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return codes


def _list_rules() -> str:
    lines = []
    for rule in [*ALL_RULES, *ALL_PROJECT_RULES]:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis: prefix-sum, half-open "
        "interval and integer-load invariants (see docs/lint.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro if present, else .)",
    )
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="list honoured suppressions in the text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = list(args.paths)
    if not paths:
        default = Path("src/repro")
        paths = [default if default.is_dir() else Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {[str(p) for p in missing]}", file=sys.stderr)
        return 2

    result = lint_paths(
        paths,
        select=_parse_codes(args.select),
        ignore=_parse_codes(args.ignore) or set(),
    )
    if args.format == "json":
        print(json_report(result))
    else:
        print(text_report(result, verbose=args.show_suppressed))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
