"""JAG-PQ-HEUR: the classical P×Q-way jagged heuristic (paper §3.2.1).

"Use a 1D partitioning algorithm to partition the main dimension and then
partition each interval independently": the load matrix is projected onto
the main dimension (for free, via prefix differences), an optimal 1D
algorithm produces the ``P`` stripes, and each stripe's projection onto the
auxiliary dimension is partitioned optimally into ``Q`` rectangles.

Approximation guarantee (Theorem 1): with no zero in the matrix the result
is within ``(1 + Δ·P/n1)(1 + Δ·Q/n2)`` of optimal, minimized at
``P = √(m·n1/n2)`` (Theorem 2) — tested in ``tests/test_theory.py``.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..oned.api import ONED_METHODS
from ..parallel.backends import parallel_stripe_cuts
from ..sweep.state import current as _sweep_current
from .common import build_jagged_partition, choose_pq, oriented

__all__ = ["jag_pq_heur", "jag_pq_heur_cuts"]


def jag_pq_heur_cuts(
    pref: PrefixSum2D, P: int, Q: int, oned: str = "nicolplus"
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Stripe cuts and per-stripe column cuts of the P×Q-way jagged heuristic.

    Main dimension is dimension 0.  Once the stripe cuts are fixed the per-
    stripe solves are independent (§3.2.1); the parallel layer may fan them
    out (bit-identical to the serial loop kept below as the reference path).
    """
    if P <= 0 or Q <= 0:
        raise ParameterError("P and Q must be positive")
    solve = ONED_METHODS[oned]
    rows = pref.axis_prefix(0)  # projection on the main dimension
    _, stripe_cuts = solve(rows, P)
    col_cuts = parallel_stripe_cuts(pref, stripe_cuts, [Q] * P, oned)
    if col_cuts is None:
        col_cuts = []
        for s in range(P):
            # full-width stripe projection: served by the memoized axis_prefix
            band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]))
            _, cc = solve(band, Q)
            col_cuts.append(cc)
    return stripe_cuts, col_cuts


def _jag_pq_heur_main0(
    pref: PrefixSum2D,
    m: int,
    P: int | None = None,
    Q: int | None = None,
    oned: str = "nicolplus",
) -> Partition:
    """P×Q-way jagged heuristic (§3.2.1) on main dimension 0 (see module docstring)."""
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    stripe_cuts, col_cuts = jag_pq_heur_cuts(pref, P, Q, oned)
    part = build_jagged_partition(
        pref, stripe_cuts, col_cuts, method="JAG-PQ-HEUR"
    )
    state = _sweep_current()
    if state is not None:
        # a P×Q-way feasible witness; also transfers to the m-way class
        # (any P×Q-way jagged partition is a (P·Q)-way jagged partition).
        # Scoped by the non-default 1D solver so a weaker oned's witness
        # never masquerades as the default producer's fact
        scope = {"oned": None if oned == "nicolplus" else oned}
        state.record_grid_ub(pref, P, Q, part.max_load(pref), kw=scope)
    return part


jag_pq_heur = oriented(_jag_pq_heur_main0)
jag_pq_heur.__name__ = "jag_pq_heur"
