"""JAG-M-HEUR: the paper's new m-way jagged heuristic (§3.2.2).

The main dimension is first partitioned into ``P`` stripes by an optimal 1D
algorithm.  Each stripe ``S`` is then allocated

    ``Q_S = ceil( (m - P) · load(S) / total )``

processors — proportional allocation of ``m - P`` processors, rounded up, so
that between 0 and ``P`` processors remain; the leftovers are handed one by
one to the stripe maximizing ``load(S) / Q_S``.  Finally each stripe is
partitioned on the auxiliary dimension with its ``Q_S`` processors by an
optimal 1D algorithm.

The paper proves a ``(m/(m-P))(1 + Δ/n2) + Δ·m/(P·n2)·(1 + Δ·P/n1)``
guarantee (Theorem 3) and derives the ratio-optimal stripe count
(Theorem 4); since the Δ-dependent formula is hard to estimate, the
implementation defaults to the paper's practical choice ``P = √m``
(``num_stripes`` overrides it — Figure 9 sweeps it).
"""

from __future__ import annotations

import heapq
from fractions import Fraction

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..oned.api import ONED_METHODS
from ..parallel.backends import parallel_stripe_cuts
from ..perf import kernels as _kernels
from ..perf.config import perf_enabled
from ..sweep.state import current as _sweep_current
from .common import build_jagged_partition, default_stripe_count, oriented

__all__ = ["jag_m_heur", "allocate_processors"]


def allocate_processors(loads: np.ndarray, m: int) -> np.ndarray:
    """Distribute ``m`` processors over stripes proportionally to their loads.

    Implements the paper's rule: ``Q_S = ceil((m - P)·load_S/total)`` plus
    one-by-one assignment of the remaining processors to the stripe with the
    largest load per processor.  Every stripe with positive load receives at
    least one processor; zero-load stripes receive processors only if the
    matrix is entirely zero (degenerate) — they still receive one each when
    they contain rows, since every cell must be owned.
    """
    loads = np.asarray(loads, dtype=np.int64)
    P = len(loads)
    if m < P:
        raise ParameterError(f"need at least one processor per stripe ({m} < {P})")
    total = int(loads.sum())
    if total == 0:
        q = np.full(P, m // P, dtype=np.int64)
        q[: m - int(q.sum())] += 1
        return q
    q = -((-(m - P) * loads) // total)  # exact ceil((m-P)·load/total)
    np.maximum(q, 1, out=q)
    # ceil-sum can exceed m - P by at most P, and the max(·,1) bump only
    # applies to zero-load stripes; shave overflow from the least loaded
    # per-processor stripes, then distribute what is left.  Tie-breaking
    # compares exact Fractions: float ratios can reorder stripes once loads
    # outgrow 2**53 (RPL003 discipline; P ≈ √m keeps the loops cheap).
    # The perf layer runs the same decisions on cross-multiplied ints via
    # the ``alloc_tail`` registry kernel (bit-identical — asserted in
    # tests/test_perf_equality.py and tests/test_kernels_equality.py).
    if perf_enabled():
        return _kernels.alloc_tail(loads, q, m)
    while int(q.sum()) > m:
        s = min(
            (s for s in range(P) if q[s] > 1),
            key=lambda s: Fraction(int(loads[s]), int(q[s])),
        )
        q[s] -= 1
    remaining = m - int(q.sum())
    if remaining > 0:
        heap = [(Fraction(-int(loads[s]), int(q[s])), s) for s in range(P)]
        heapq.heapify(heap)
        for _ in range(remaining):
            _, s = heapq.heappop(heap)
            q[s] += 1
            heapq.heappush(heap, (Fraction(-int(loads[s]), int(q[s])), s))
    return q


def _stripe_candidates(pref: PrefixSum2D, m: int, spec) -> list[int]:
    """Resolve a stripe-count spec to concrete candidate values.

    ``spec`` may be an int, ``"sqrt"`` (the paper's √m default),
    ``"theorem4"`` (the ratio-optimal P of Theorem 4, using the measured Δ;
    falls back to √m on matrices with zeros), or ``"auto"`` (a small sweep
    around √m plus the Theorem 4 value — addresses the stripe-count weak
    spots of the paper's Figure 13).
    """
    sqrt_p = default_stripe_count(m, pref.n1)
    if isinstance(spec, (int, np.integer)):
        return [int(spec)]
    if spec == "sqrt":
        return [sqrt_p]
    if spec in ("theorem4", "auto"):
        cands = {sqrt_p}
        try:
            from ..theory.bounds import delta_of, theorem4_best_p

            p4 = int(round(theorem4_best_p(delta_of(pref), m, pref.n2)))
            cands.add(max(1, min(p4, pref.n1, m)))
        except Exception:
            pass  # Δ undefined (zeros): keep the √m fallback
        if spec == "theorem4":
            # prefer the Theorem 4 value alone when it was computable
            return [max(cands - {sqrt_p})] if len(cands) > 1 else [sqrt_p]
        for f in (0.5, 0.75, 1.5, 2.0):
            cands.add(max(1, min(int(round(sqrt_p * f)), pref.n1, m)))
        return sorted(cands)
    raise ParameterError(
        f"num_stripes must be an int, 'sqrt', 'theorem4' or 'auto', got {spec!r}"
    )


def _jag_m_heur_main0(
    pref: PrefixSum2D,
    m: int,
    num_stripes: int | str | None = None,
    oned: str = "nicolplus",
) -> Partition:
    """m-way jagged heuristic (§3.2.2) on main dimension 0 (see module docstring)."""
    candidates = _stripe_candidates(pref, m, "sqrt" if num_stripes is None else num_stripes)
    if len(candidates) > 1:
        parts = [
            _jag_m_heur_single(pref, m, P, oned) for P in candidates
        ]
        best = min(parts, key=lambda p: p.max_load(pref))
    else:
        best = _jag_m_heur_single(pref, m, candidates[0], oned)
    state = _sweep_current()
    if state is not None:
        # the achieved max load is an m-way jagged partition of this prefix,
        # i.e. a proven-feasible witness the exact solver can start from.
        # Scoped by the non-default kwargs: a different num_stripes/oned is
        # a different producer, and facts must never cross-contaminate
        # (unconstrained queries still see every scope's witnesses)
        scope = {
            "num_stripes": None if num_stripes in (None, "sqrt") else num_stripes,
            "oned": None if oned == "nicolplus" else oned,
        }
        state.record_mono_ub(pref, "jag_m", m, best.max_load(pref), kw=scope)
    return best


def _jag_m_heur_single(
    pref: PrefixSum2D,
    m: int,
    P: int,
    oned: str = "nicolplus",
) -> Partition:
    if not (1 <= P <= m):
        raise ParameterError(f"stripe count {P} out of range [1, {m}]")
    P = min(P, pref.n1)
    solve = ONED_METHODS[oned]
    rows = pref.axis_prefix(0)
    _, stripe_cuts = solve(rows, P)
    stripe_loads = rows[stripe_cuts[1:]] - rows[stripe_cuts[:-1]]
    q = allocate_processors(stripe_loads, m)
    # per-stripe solves are independent once q is fixed (§3.2.2): the
    # parallel layer may fan them out, bit-identical to the serial reference
    col_cuts = parallel_stripe_cuts(pref, stripe_cuts, [int(x) for x in q], oned)
    if col_cuts is None:
        col_cuts = []
        for s in range(P):
            # full-width stripe projection: served by the memoized axis_prefix
            band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]))
            _, cc = solve(band, int(q[s]))
            col_cuts.append(cc)
    return build_jagged_partition(
        pref, stripe_cuts, col_cuts, method="JAG-M-HEUR", pad_to=m
    )


jag_m_heur = oriented(_jag_m_heur_main0)
jag_m_heur.__name__ = "jag_m_heur"
