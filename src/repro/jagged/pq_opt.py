"""JAG-PQ-OPT: optimal P×Q-way jagged partitions (paper §3.2.1).

The paper cites two polynomial algorithms (Pınar–Aykanat's 1D-driven search
[2] and Manne–Sørevik's dynamic program [15]); both "partition the main
dimension using a 1D partitioning algorithm using an optimal partition of the
auxiliary dimension for the evaluation of the load of an interval".

Loads are integers, so we implement the optimum as an exact bisection over
the bottleneck ``B`` with a *probe-of-probes* feasibility test: stripes are
taken greedily as wide as possible subject to the stripe being Q-partition-
able at ``B`` (an inner 1D probe).  Greedy maximality is safe because stripe
feasibility is monotone — shrinking a stripe only lowers every rectangle
load — and the outer feasibility is monotone in the starting row.  Each
feasibility test costs ``O(P log n1 (n2 + Q log n2))`` and the bisection adds
a ``log(total)`` factor; in practice this is far faster than the DP while
returning the same optimum (cross-checked in tests against exhaustive
search).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..oned.probe import min_parts, probe_cuts
from ..perf.config import perf_enabled
from ..sweep.state import current as _sweep_current
from .common import build_jagged_partition, choose_pq, oriented
from .pq_heur import jag_pq_heur_cuts

__all__ = ["jag_pq_opt", "jag_pq_opt_bottleneck", "jag_pq_opt_dp_bottleneck"]


def _stripe_feasible(pref: PrefixSum2D, r0: int, r1: int, Q: int, B: int) -> bool:
    """Can stripe rows ``[r0, r1)`` be cut into ``<= Q`` rectangles of load ``<= B``?

    The outer binary search re-probes the same stripes at every bisection
    level; with the perf layer on the stripe projection (and its one-time
    list conversion) is served from the prefix cache instead of being
    re-materialized per probe.
    """
    if perf_enabled():
        return min_parts(pref.boundary_list(1, r0, r1, reuse=True), B, cap=Q) <= Q
    band = pref.axis_prefix(1, r0, r1)
    return min_parts(band, B, cap=Q) <= Q


def _max_stripe_end(pref: PrefixSum2D, r0: int, Q: int, B: int) -> int:
    """Largest ``r1 >= r0`` keeping stripe ``[r0, r1)`` Q-feasible at ``B``.

    Returns ``r0`` when even a single row fails (infeasible at any width).
    """
    lo, hi = r0, pref.n1
    # stripe of zero height is trivially feasible; find the last feasible end
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _stripe_feasible(pref, r0, mid, Q, B):
            lo = mid
        else:
            hi = mid - 1
    return lo


def _feasible(pref: PrefixSum2D, P: int, Q: int, B: int) -> np.ndarray | None:
    """Greedy stripe cuts covering all rows with P stripes at bottleneck B."""
    cuts = np.empty(P + 1, dtype=np.int64)
    cuts[0] = 0
    pos = 0
    for s in range(1, P + 1):
        if pos < pref.n1:
            end = _max_stripe_end(pref, pos, Q, B)
            if end <= pos:
                return None
            pos = end
        cuts[s] = pos
    return cuts if pos == pref.n1 else None


def jag_pq_opt_bottleneck(
    pref: PrefixSum2D, P: int, Q: int, *, ub: int | None = None
) -> int:
    """Optimal P×Q-way jagged bottleneck (main dimension 0).

    Under an active :mod:`repro.sweep` context the bisection window is
    tightened by dominance over earlier ``(P', Q')`` results on the same
    prefix (componentwise monotonicity — plain m-monotonicity does not hold
    across factorizations), and the internal heuristic upper bound is
    skipped when a same-``(P, Q)`` witness is already recorded.  Both only
    narrow a valid bracket, so the result is bit-identical to a cold call.
    """
    total = pref.total
    m = P * Q
    state = _sweep_current()
    wlb: int | None = None
    wub: int | None = None
    if state is not None:
        exact, wlb, wub = state.grid_bounds(pref, P, Q)
        if exact is not None:
            return exact
    lb = max(-(-total // m), pref.max_element())
    if wlb is not None and wlb > lb:
        lb = wlb
    if ub is None:
        if state is not None and state.grid_witness(pref, P, Q) is not None:
            ub = wub  # same-(P, Q) witness: the heuristic ub is already known
        else:
            stripe_cuts, col_cuts = jag_pq_heur_cuts(pref, P, Q)
            ub = 0
            for s in range(P):
                band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]))
                cc = col_cuts[s]
                ub = max(ub, int(np.max(band[cc[1:]] - band[cc[:-1]])))
            if state is not None:
                state.record_grid_ub(pref, P, Q, ub)
    assert ub is not None
    ub = max(lb, int(ub))
    if wub is not None and wub < ub:
        ub = max(lb, wub)
    while lb < ub:
        mid = (lb + ub) // 2
        if _feasible(pref, P, Q, mid) is not None:
            ub = mid
        else:
            lb = mid + 1
    if state is not None:
        state.record_grid_opt(pref, P, Q, int(lb))
    return int(lb)


def _jag_pq_opt_main0(
    pref: PrefixSum2D, m: int, P: int | None = None, Q: int | None = None
) -> Partition:
    """Optimal P×Q-way jagged partition (§3.2.1) on main dimension 0."""
    if P is None or Q is None:
        P, Q = choose_pq(m, pref.n1, pref.n2)
    elif P * Q != m:
        raise ParameterError(f"P*Q must equal m ({P}*{Q} != {m})")
    B = jag_pq_opt_bottleneck(pref, P, Q)
    stripe_cuts = _feasible(pref, P, Q, B)
    assert stripe_cuts is not None
    col_cuts = []
    for s in range(P):
        # with the perf layer on this is served from the cache the
        # feasibility probes already populated for this stripe
        band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]))
        cc = probe_cuts(band, Q, B)
        assert cc is not None
        col_cuts.append(cc)
    return build_jagged_partition(pref, stripe_cuts, col_cuts, method="JAG-PQ-OPT")


jag_pq_opt = oriented(_jag_pq_opt_main0)
jag_pq_opt.__name__ = "jag_pq_opt"


def jag_pq_opt_dp_bottleneck(
    pref: PrefixSum2D, P: int, Q: int, *, limit: int = 1 << 22
) -> int:
    """Manne–Sørevik dynamic program for the optimal P×Q-way jagged partition.

    ``L(i, p) = min_k max( L(k, p-1), 1D(k, i, Q) )`` over the last stripe
    start ``k`` — the paper's JAG-PQ-OPT formulation [15], memoized, with
    the inner 1D solved by exact bisection.  Used as the small-instance
    cross-check of the probe-of-probes bisection (they agree on every
    tested instance); guarded by ``limit`` on ``n1²·P``.
    """
    from functools import lru_cache

    from ..oned.bisect import bisect_bottleneck

    n1 = pref.n1
    if n1 * n1 * P > limit:
        raise ParameterError(
            f"instance too large for the paper DP (n1²·P = {n1 * n1 * P} > {limit})"
        )
    @lru_cache(maxsize=None)
    def oneD(k: int, i: int) -> int:
        band = pref.axis_prefix(1, k, i)
        return bisect_bottleneck(band, Q)

    @lru_cache(maxsize=None)
    def L(i: int, p: int) -> int:
        if i == 0:
            return 0
        if p == 1:
            return oneD(0, i)
        best = None
        for k in range(i + 1):
            v = max(L(k, p - 1), oneD(k, i) if k < i else 0)
            if best is None or v < best:
                best = v
        return best

    return int(L(n1, P))
