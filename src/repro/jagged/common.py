"""Shared machinery for jagged partitions (paper §3.2).

A jagged partition distinguishes a *main* dimension, split into ``P``
intervals (stripes); every rectangle spans one stripe exactly, and is free in
the auxiliary dimension.  All algorithms in this package are written for
main dimension 0 (stripes are row intervals); the -VER variants run the same
code on the transposed prefix and transpose the result back, and the -BEST
variants keep the better of the two (§4.1's -HOR/-VER/-BEST convention).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from ..core.rectangle import Rect

__all__ = [
    "build_jagged_partition",
    "choose_pq",
    "default_stripe_count",
    "oriented",
    "jagged_variants",
]


def default_stripe_count(m: int, n_main: int) -> int:
    """The paper's default stripe count: ``√m`` (§3.2.2), clamped to valid range."""
    P = int(round(np.sqrt(m)))
    return max(1, min(P, n_main, m))


def choose_pq(m: int, n1: int, n2: int) -> tuple[int, int]:
    """Factor ``m = P·Q`` with ``P`` the divisor nearest ``√m``.

    The paper evaluates square processor counts with ``P = Q = √m``; for
    general ``m`` the nearest divisor keeps the grid as square as possible.
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    root = int(np.sqrt(m))
    best = 1
    for p in range(1, root + 1):
        if m % p == 0:
            best = p
    P, Q = best, m // best
    # prefer the orientation that fits the matrix
    if P > n1 or Q > n2:
        if Q <= n1 and P <= n2:
            P, Q = Q, P
    return P, Q


def build_jagged_partition(
    pref: PrefixSum2D,
    stripe_cuts: np.ndarray,
    col_cuts: Sequence[np.ndarray],
    *,
    method: str = "",
    pad_to: int | None = None,
) -> Partition:
    """Assemble a :class:`Partition` from stripe cuts and per-stripe column cuts.

    ``stripe_cuts`` has length ``P+1``; ``col_cuts[s]`` delimits the
    rectangles of stripe ``s`` (any per-stripe count).  Processors are
    numbered stripe-major.  ``pad_to`` appends empty rectangles up to a fixed
    processor count (idle processors).
    """
    stripe_cuts = np.asarray(stripe_cuts, dtype=np.int64)
    P = len(stripe_cuts) - 1
    if len(col_cuts) != P:
        raise ParameterError("need one column-cut array per stripe")
    rects: list[Rect] = []
    offsets = np.zeros(P + 1, dtype=np.int64)
    for s in range(P):
        r0, r1 = int(stripe_cuts[s]), int(stripe_cuts[s + 1])
        cc = np.asarray(col_cuts[s], dtype=np.int64)
        offsets[s + 1] = offsets[s] + len(cc) - 1
        for q in range(len(cc) - 1):
            rects.append(Rect(r0, r1, int(cc[q]), int(cc[q + 1])))
    if pad_to is not None:
        if pad_to < len(rects):
            raise ParameterError(f"pad_to={pad_to} below rectangle count {len(rects)}")
        rects.extend(Rect(0, 0, 0, 0) for _ in range(pad_to - len(rects)))
    cuts_list = [np.asarray(c, dtype=np.int64) for c in col_cuts]

    def indexer(i: int, j: int) -> int:
        s = int(np.searchsorted(stripe_cuts, i, side="right")) - 1
        s = min(max(s, 0), P - 1)
        # skip empty stripes sharing the boundary
        while stripe_cuts[s + 1] <= i and s < P - 1:
            s += 1
        q = int(np.searchsorted(cuts_list[s], j, side="right")) - 1
        q = min(max(q, 0), len(cuts_list[s]) - 2)
        while cuts_list[s][q + 1] <= j and q < len(cuts_list[s]) - 2:
            q += 1
        return int(offsets[s]) + q

    return Partition(
        rects,
        pref.shape,
        method=method,
        indexer=indexer,
        meta={"stripe_cuts": stripe_cuts, "col_cuts": cuts_list},
    )


def oriented(
    fn: Callable[..., Partition],
) -> Callable[..., Partition]:
    """Wrap a main-dimension-0 jagged algorithm with HOR/VER/BEST orientation.

    The wrapped function gains an ``orientation`` keyword (``"hor"``,
    ``"ver"``, ``"best"``; default ``"best"`` as selected in §4.2).
    """

    def run(A: MatrixLike, m: int, *args, orientation: str = "best", **kw) -> Partition:
        pref = prefix_2d(A)
        o = orientation.lower()
        if o == "hor":
            part = fn(pref, m, *args, **kw)
            part.meta["orientation"] = "hor"
            return part
        if o == "ver":
            part = fn(pref.transpose(), m, *args, **kw)
            out = part.transpose().with_method(part.method)
            out.meta["orientation"] = "ver"
            return out
        if o == "best":
            hor = fn(pref, m, *args, **kw)
            prefT = pref.transpose()  # hoisted: Γᵀ is a full-matrix copy
            vert = fn(prefT, m, *args, **kw)
            if vert.max_load(prefT) < hor.max_load(pref):
                out = vert.transpose().with_method(vert.method)
                out.meta["orientation"] = "ver"
                return out
            hor.meta["orientation"] = "hor"
            return hor
        raise ParameterError(f"orientation must be hor/ver/best, got {orientation!r}")

    run.__name__ = getattr(fn, "__name__", "jagged")
    run.__doc__ = fn.__doc__
    run.__wrapped__ = fn  # type: ignore[attr-defined]
    return run


def jagged_variants(base: str) -> list[str]:
    """Names of the orientation variants of a jagged algorithm."""
    return [f"{base}-{suffix}" for suffix in ("HOR", "VER", "BEST")]
