"""Jagged partitions: P×Q-way and the paper's new m-way class (§3.2)."""

from .common import build_jagged_partition, choose_pq, default_stripe_count
from .hetero import hetero_makespan_2d, jag_hetero, speed_groups
from .m_heur import allocate_processors, jag_m_heur
from .m_opt import jag_m_opt, jag_m_opt_bottleneck, jag_m_opt_dp_bottleneck
from .pq_heur import jag_pq_heur
from .pq_opt import jag_pq_opt, jag_pq_opt_bottleneck, jag_pq_opt_dp_bottleneck

__all__ = [
    "build_jagged_partition",
    "choose_pq",
    "default_stripe_count",
    "hetero_makespan_2d",
    "jag_hetero",
    "speed_groups",
    "allocate_processors",
    "jag_m_heur",
    "jag_m_opt",
    "jag_m_opt_bottleneck",
    "jag_m_opt_dp_bottleneck",
    "jag_pq_heur",
    "jag_pq_opt",
    "jag_pq_opt_bottleneck",
    "jag_pq_opt_dp_bottleneck",
]
