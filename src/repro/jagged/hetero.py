"""m-way jagged partitioning onto processors with heterogeneous speeds.

Extension of JAG-M-HEUR along the axis opened by the paper's related work
(§1, ref [7]): processors have relative speeds ``s_p`` and the objective is
the makespan ``max_p load_p / s_p``.

The construction mirrors JAG-M-HEUR three levels down:

1. processors are packed into ``P`` *speed groups* of near-equal aggregate
   speed (longest-processing-time greedy);
2. the main dimension is cut into ``P`` stripes by the ordered heterogeneous
   1D algorithm, with each group acting as one super-processor of speed
   ``Σ s``;
3. each stripe's auxiliary dimension is cut for its group's processors by
   the ordered heterogeneous 1D algorithm.

With identical speeds this degenerates to JAG-M-HEUR with an equal split.

Like :mod:`repro.oned.hetero`, speeds are real-valued by definition, so the
speed-normalized objective is inherently fractional — an RPL003 exemption
(rectangle loads themselves remain exact int64 prefix queries).
"""
# repro-lint: disable-file=RPL003 — heterogeneous speeds make times fractional by design

from __future__ import annotations

import heapq

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import MatrixLike, prefix_2d
from ..oned.hetero import hetero_cuts, hetero_makespan
from ..parallel.backends import parallel_hetero_stripe_cuts
from .common import build_jagged_partition, default_stripe_count

__all__ = ["jag_hetero", "speed_groups", "hetero_makespan_2d"]


def speed_groups(speeds: np.ndarray, P: int) -> list[list[int]]:
    """Pack processor indices into ``P`` groups of near-equal total speed.

    Longest-processing-time greedy: descending speeds into the currently
    lightest group — the classical 4/3-approximation for makespan packing.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if P <= 0 or P > len(speeds):
        raise ParameterError(f"need 1 <= P <= m, got P={P}, m={len(speeds)}")
    heap = [(0.0, g) for g in range(P)]
    heapq.heapify(heap)
    groups: list[list[int]] = [[] for _ in range(P)]
    for idx in np.argsort(-speeds):
        total, g = heapq.heappop(heap)
        groups[g].append(int(idx))
        heapq.heappush(heap, (total + float(speeds[idx]), g))
    return [g for g in groups if g]


def jag_hetero(
    A: MatrixLike,
    speeds,
    *,
    num_stripes: int | None = None,
) -> Partition:
    """Heterogeneous m-way jagged partition; rect ``i`` belongs to processor ``i``.

    ``speeds[i]`` is processor ``i``'s relative speed; the partition's
    ``meta["makespan"]`` records ``max_i load_i / speeds_i``.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.ndim != 1 or len(speeds) == 0 or (speeds <= 0).any():
        raise ParameterError("speeds must be a non-empty positive 1D array")
    m = len(speeds)
    pref = prefix_2d(A)
    P = num_stripes if num_stripes is not None else default_stripe_count(m, pref.n1)
    P = max(1, min(P, pref.n1, m))
    groups = speed_groups(speeds, P)
    # speeds are a small per-processor array, not the load matrix: prefix
    # sums do not apply to a fancy-indexed group sum
    group_speed = np.array([float(speeds[g].sum()) for g in groups])  # repro-lint: disable=RPL001
    rows = pref.axis_prefix(0)
    # stripes for the super-processors (ordered by group index)
    T = hetero_makespan(rows, group_speed)
    stripe_cuts = hetero_cuts(rows, group_speed, T * (1 + 1e-12) + 1e-9)
    assert stripe_cuts is not None
    # per-stripe heterogeneous solves are independent once the stripes and
    # groups are fixed: the parallel layer may fan them out, bit-identical to
    # the serial reference loop kept below
    order: list[int] = [i for g in groups for i in g]
    col_cuts = parallel_hetero_stripe_cuts(
        pref, stripe_cuts, [speeds[g] for g in groups]
    )
    if col_cuts is None:
        col_cuts = []
        for s, g in enumerate(groups):
            # full-width stripe projection: served by the memoized axis_prefix
            band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]))
            gs = speeds[g]
            Ts = hetero_makespan(band, gs)
            cc = hetero_cuts(band, gs, Ts * (1 + 1e-12) + 1e-9)
            assert cc is not None
            col_cuts.append(cc)
    part = build_jagged_partition(pref, stripe_cuts, col_cuts, method="JAG-HETERO")
    # reorder rectangles so rect i belongs to processor i: rectangle k (in
    # stripe-major order) was produced for processor order[k]
    position = np.empty(m, dtype=np.int64)
    position[np.array(order, dtype=np.int64)] = np.arange(m)
    rects = [part.rects[int(position[i])] for i in range(m)]
    out = Partition(rects, pref.shape, method="JAG-HETERO", meta=dict(part.meta))
    out.meta["groups"] = groups
    out.meta["makespan"] = hetero_makespan_2d(out, pref, speeds)
    return out


def hetero_makespan_2d(part: Partition, A: MatrixLike, speeds) -> float:
    """Makespan ``max_i load_i / speeds_i`` of any partition."""
    speeds = np.asarray(speeds, dtype=np.float64)
    loads = part.loads(prefix_2d(A)).astype(np.float64)
    if len(loads) != len(speeds):
        raise ParameterError("speeds length must match processor count")
    return float(np.max(loads / speeds))
