"""JAG-M-OPT: optimal m-way jagged partitions (paper §3.2.2).

The paper gives a dynamic program over (last stripe start ``k``, processors
``x`` in that stripe)::

    Lmax(n1, m) = min_{k, x} max( Lmax(k-1, m-x), 1D(k, n1, x) )

accelerated with lazy evaluation, binary searches, bound short-circuiting and
branch-and-bound — and still reports 15 minutes for m = 961 on a 512×512
matrix in C++.  We implement that DP (:func:`jag_m_opt_dp_bottleneck`, used
as a small-instance oracle) *and* an equivalent, much faster exact method
exploiting integer loads (:func:`jag_m_opt_bottleneck`):

bisect the bottleneck ``B`` and test feasibility with a *minimum-processor*
DP: ``f(i) = min_k f(k) + parts(k, i, B)`` where ``parts`` is the greedy
(optimal) number of rectangles covering stripe rows ``[k, i)`` at bottleneck
``B``; the m-way jagged class places no constraint on the stripe count, so
``B`` is feasible iff ``f(n1) <= m``.  Candidate stripe starts are pruned
with the load lower bound ``ceil(load/B)``, visited in ascending bound order
so the scan stops after a handful of exact probes per row.  The two methods
agree on every instance (property-tested).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.errors import ParameterError
from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..oned.bisect import bisect_bottleneck
from ..oned.probe import min_parts, probe_cuts
from ..perf.kernels import min_parts_batch
from ..perf.config import perf_enabled
from ..sweep.state import current as _sweep_current
from .common import build_jagged_partition, oriented
from .m_heur import _jag_m_heur_main0, allocate_processors

__all__ = [
    "jag_m_opt",
    "jag_m_opt_bottleneck",
    "jag_m_opt_dp_bottleneck",
]

_INF = np.iinfo(np.int64).max // 4

#: expected-interval threshold above which the jump-table kernel beats the
#: scalar greedy: the table costs one O(n2) vectorized searchsorted while
#: the scalar path costs one list bisection per interval actually placed
_BATCH_MIN_PARTS = 48


def _stripe_min_parts(
    pref: PrefixSum2D, k: int, i: int, B: int, cap: int, est: int = 1
) -> int:
    """Greedy rectangle count for stripe rows ``[k, i)`` at bottleneck ``B``.

    The feasibility DP revisits the same ``(k, i)`` stripes on every
    bisection iteration; with the perf layer on, the stripe projection is
    served from the prefix cache instead of re-materializing
    ``G[i,:] - G[k,:]`` (and re-converting it to a list) per call.
    ``est`` is the caller's lower bound on the interval count
    (``ceil(load/B)``): the jump-table kernel only pays off when the greedy
    walk is long, which ``est`` predicts and ``cap`` does not.
    """
    if not perf_enabled():
        return min_parts(pref.axis_prefix(1, k, i), B, cap=cap)
    if min(est, cap) >= _BATCH_MIN_PARTS:
        return min_parts_batch(pref.axis_prefix(1, k, i, reuse=True), B, cap=cap)
    return min_parts(pref.boundary_list(1, k, i, reuse=True), B, cap=cap)


#: memo-entry list length that triggers a compaction pass; cross-sweep
#: sharing would otherwise grow the per-stripe fact lists without bound
#: and slow the linear scan in :func:`_memo_bounds`
_MEMO_COMPACT_LEN = 24


def _compact_entries(entries: list) -> None:
    """Drop memo facts that cannot change any :func:`_memo_bounds` answer.

    The lower bound at a query ``B`` is the max count over entries with
    ``B' >= B``: scanning entries by descending ``B'``, only those raising
    the running max matter.  The upper bound is the min count over *exact*
    entries with ``B' <= B``: by ascending ``B'``, only those lowering the
    running min matter.  Keeping the union preserves both staircases, so
    every future bound query answers identically — compaction can drop
    work-saving facts never, only redundant ones.
    """
    keep: dict[tuple[int, int, bool], None] = {}
    best_lo = -1
    for rec in sorted(entries, key=lambda e: (-e[0], -e[1])):
        if rec[1] > best_lo:
            keep[rec] = None
            best_lo = rec[1]
    best_hi: int | None = None
    for rec in sorted(entries, key=lambda e: (e[0], e[1])):
        if rec[2] and (best_hi is None or rec[1] < best_hi):
            keep[rec] = None
            best_hi = rec[1]
    entries[:] = list(keep)


#: reserved memo key for whole-matrix probe facts: ``(B, count, exact)``
#: records of the minimum-processor DP itself (a string, so it can never
#: collide with the ``(k, i)`` stripe keys)
_PROBE_KEY = "f"


def _memo_record(
    memo: dict, key: tuple[int, int] | str, entries: list | None, rec: tuple
) -> None:
    """Append a stripe fact, compacting the list when it grows long."""
    if entries is None:
        memo[key] = [rec]
    else:
        entries.append(rec)
        if len(entries) > _MEMO_COMPACT_LEN:
            _compact_entries(entries)


def _memo_bounds(entries: list, B: int) -> tuple[int, int | None]:
    """Exact bounds on a stripe's part count at bottleneck ``B``.

    ``entries`` holds ``(B', parts', exact')`` triples from earlier
    evaluations of the same stripe during the bisection.  The greedy count
    is non-increasing in the bottleneck, so an evaluation at ``B' >= B``
    lower-bounds the count at ``B`` (capped evaluations are themselves
    lower bounds, which still transfer), while an *exact* evaluation at
    ``B' <= B`` upper-bounds it.  Returns ``(lo, hi)`` with ``hi = None``
    when no upper bound is known; ``lo == hi`` pins the count exactly.
    """
    lo = 0
    hi: int | None = None
    for Bs, p, exact in entries:
        if Bs >= B:
            if p > lo:
                lo = p
            if exact and Bs == B and (hi is None or p < hi):
                hi = p
        elif exact and (hi is None or p < hi):
            hi = p
    return lo, hi


def _min_processors(
    pref: PrefixSum2D, B: int, m_cap: int, memo: dict | None = None
) -> np.ndarray | None:
    """``f`` array of the minimum-processor DP, or None when ``f > m_cap`` everywhere.

    ``f[i]`` = minimum rectangles of load ``<= B`` forming a jagged partition
    of rows ``[0, i)`` (all columns).  Entries above ``m_cap`` are clamped to
    ``_INF`` (they cannot participate in a feasible solution).  ``memo``
    carries ``(k, i) -> [(B', parts', exact')]`` stripe evaluations across
    bisection iterations (see :func:`_memo_bounds`); the bounds either skip
    a candidate outright or pin its count without re-running the greedy.
    """
    n1 = pref.n1
    fast = perf_enabled()
    if fast and memo is None:
        memo = {}
    rowsum = pref.axis_prefix(0, reuse=True)  # length n1+1
    f = np.full(n1 + 1, _INF, dtype=np.int64)
    f[0] = 0
    for i in range(1, n1 + 1):
        ks = np.arange(i)
        fk = f[:i]
        # cheap lower bound on the stripe cost: ceil(load/B), at least 1
        stripe_load = rowsum[i] - rowsum[:i]
        lb = fk + np.maximum(1, -(-stripe_load // B)) if B > 0 else fk + 1
        order = np.argsort(lb, kind="stable")
        best = _INF
        for k in ks[order]:
            if lb[k] >= best or lb[k] > m_cap:
                break
            kk = int(k)
            cap = int(min(best - 1 - f[kk], m_cap - f[kk]))
            if cap < 1:
                continue
            if fast:
                key = (kk, i)
                entries = memo.get(key)  # type: ignore[union-attr]
                lower = int(lb[k] - fk[k])
                hi: int | None = None
                if entries is not None:
                    lo2, hi = _memo_bounds(entries, B)
                    if lo2 > lower:
                        lower = lo2
                if int(f[kk]) + lower >= best:
                    continue  # proven unable to improve: skip the greedy
                if hi is not None and hi == lower:
                    parts = lower  # bounds met: the count is pinned
                else:
                    parts = _stripe_min_parts(pref, kk, i, B, cap, est=lower)
                    rec = (B, parts, parts <= cap)
                    _memo_record(memo, key, entries, rec)  # type: ignore[arg-type]
            else:
                parts = _stripe_min_parts(pref, kk, i, B, cap)
            cost = f[kk] + parts
            if parts <= cap and cost < best:
                best = cost
        f[i] = best
        if fast and best > m_cap:
            # f is non-decreasing in i (truncating a partition of [0, i) to
            # [0, i') never adds rectangles), so one infeasible row decides
            return None
    return f if f[n1] <= m_cap else None


def _shared_memo(pref: PrefixSum2D) -> dict | None:
    """The stripe memo to use: sweep-shared when a sweep is active.

    The memo facts are functions of the stripe and the probed bottleneck
    alone (m never enters), so one memo soundly serves every bisection of
    every sweep step over the same prefix.
    """
    if not perf_enabled():
        return None
    state = _sweep_current()
    if state is not None:
        memo = state.stripe_memo(pref)
        if memo is not None:
            return memo
    return {}


def jag_m_opt_bottleneck(
    pref: PrefixSum2D, m: int, *, ub: int | None = None, memo: dict | None = None
) -> int:
    """Optimal m-way jagged bottleneck (main dimension 0) by exact bisection.

    Under an active :mod:`repro.sweep` context the bisection window is
    tightened from bounds proved by earlier calls on the same prefix
    (monotone in ``m``), the internal heuristic upper bound is skipped when
    a same-``m`` witness is already recorded, and the stripe memo is shared
    across sweep steps.  All of these only narrow a valid bracket or reuse
    proven stripe facts, so the returned optimum is bit-identical to a cold
    call's.
    """
    if m <= 0:
        raise ParameterError("m must be positive")
    state = _sweep_current()
    wlb: int | None = None
    wub: int | None = None
    if state is not None:
        exact, wlb, wub = state.mono_bounds(pref, "jag_m", m)
        if exact is not None:
            return exact
    lb = max(-(-pref.total // m), pref.max_element())
    if wlb is not None and wlb > lb:
        lb = wlb
    if ub is None:
        if state is not None and state.mono_witness(pref, "jag_m", m) is not None:
            # a same-m witness is exactly what the internal heuristic would
            # prove (or tighter); any valid ub leaves the bisection result
            # unchanged, so skip recomputing it
            ub = wub
        else:
            heur = _jag_m_heur_main0(pref, m)
            ub = heur.max_load(pref)
    assert ub is not None
    ub = max(lb, int(ub))
    if wub is not None and wub < ub:
        ub = max(lb, wub)
    if memo is None:
        memo = _shared_memo(pref)
    # F(B) = minimum processors at bottleneck B is one non-increasing
    # staircase shared by every m, so each probe's exact result (or its
    # proven "> m_cap" lower bound) is recorded under _PROBE_KEY and can
    # answer probes of *later* bisections outright.  Within a single
    # bisection the facts never decide — the window is always the still-
    # undecided gap — so a cold call's probe trajectory is unchanged, and
    # a decided probe returns exactly what the DP would have computed,
    # keeping the converged optimum bit-identical.
    while lb < ub:
        mid = (lb + ub) // 2
        feasible: bool | None = None
        entries = memo.get(_PROBE_KEY) if memo is not None else None
        if entries is not None:
            flo, fhi = _memo_bounds(entries, mid)
            if fhi is not None and fhi <= m:
                feasible = True
            elif flo > m:
                feasible = False
        if feasible is None:
            f = _min_processors(pref, mid, m, memo)
            feasible = f is not None
            if memo is not None:
                rec = (mid, int(f[pref.n1]), True) if f is not None else (mid, m + 1, False)
                _memo_record(memo, _PROBE_KEY, entries, rec)
        if feasible:
            ub = mid
        else:
            lb = mid + 1
    if state is not None:
        state.record_mono_opt(pref, "jag_m", m, int(lb))
    return int(lb)


def _backtrack_stripes(
    pref: PrefixSum2D, B: int, m: int, memo: dict | None = None
) -> np.ndarray:
    """Stripe cuts of a minimum-processor solution at bottleneck ``B``."""
    n1 = pref.n1
    fast = perf_enabled()
    if fast and memo is None:
        memo = {}
    rowsum = pref.axis_prefix(0, reuse=True)
    f = np.full(n1 + 1, _INF, dtype=np.int64)
    arg = np.zeros(n1 + 1, dtype=np.int64)
    f[0] = 0
    for i in range(1, n1 + 1):
        stripe_load = rowsum[i] - rowsum[:i]
        lb = f[:i] + np.maximum(1, -(-stripe_load // B)) if B > 0 else f[:i] + 1
        order = np.argsort(lb, kind="stable")
        best, best_k = _INF, 0
        for k in order:
            if lb[k] >= best or lb[k] > m:
                break
            kk = int(k)
            cap = int(min(best - 1 - f[kk], m - f[kk]))
            if cap < 1:
                continue
            if fast:
                # same memo bounds as _min_processors: they only drop
                # candidates proven unable to *strictly* improve (or pin
                # their exact count), so the first-strict-improvement
                # choice of best_k is unchanged
                key = (kk, i)
                entries = memo.get(key)  # type: ignore[union-attr]
                lower = int(lb[k] - f[kk])
                hi: int | None = None
                if entries is not None:
                    lo2, hi = _memo_bounds(entries, B)
                    if lo2 > lower:
                        lower = lo2
                if int(f[kk]) + lower >= best:
                    continue
                if hi is not None and hi == lower:
                    parts = lower
                else:
                    parts = _stripe_min_parts(pref, kk, i, B, cap, est=lower)
                    rec = (B, parts, parts <= cap)
                    _memo_record(memo, key, entries, rec)  # type: ignore[arg-type]
            else:
                parts = _stripe_min_parts(pref, kk, i, B, cap)
            cost = f[kk] + parts
            if parts <= cap and cost < best:
                best, best_k = cost, kk
        f[i] = best
        arg[i] = best_k
    assert f[n1] <= m, "backtrack called with infeasible bottleneck"
    cuts = [n1]
    i = n1
    while i > 0:
        i = int(arg[i])
        cuts.append(i)
    return np.array(cuts[::-1], dtype=np.int64)


def _jag_m_opt_main0(pref: PrefixSum2D, m: int) -> Partition:
    """Optimal m-way jagged partition (§3.2.2) on main dimension 0."""
    memo = _shared_memo(pref)
    B = jag_m_opt_bottleneck(pref, m, memo=memo)
    stripe_cuts = _backtrack_stripes(pref, B, m, memo)
    P = len(stripe_cuts) - 1
    # minimum per-stripe processor counts at bottleneck B
    need = np.empty(P, dtype=np.int64)
    for s in range(P):
        need[s] = _stripe_min_parts(pref, int(stripe_cuts[s]), int(stripe_cuts[s + 1]), B, m)
    spare = m - int(need.sum())
    assert spare >= 0
    if spare > 0:
        # spread idle processors where they help the within-stripe balance
        rowsum = pref.axis_prefix(0, reuse=True)
        loads = rowsum[stripe_cuts[1:]] - rowsum[stripe_cuts[:-1]]
        extra = allocate_processors(loads, spare + P) - 1
        need = need + extra
        while int(need.sum()) > m:  # allocate_processors guarantees == m here
            need[int(np.argmax(need))] -= 1
    col_cuts = []
    for s in range(P):
        band = pref.axis_prefix(1, int(stripe_cuts[s]), int(stripe_cuts[s + 1]), reuse=True)
        q = int(need[s])
        # optimal within the stripe (never worse than the greedy B-cuts)
        b = bisect_bottleneck(band, q)
        cc = probe_cuts(band, q, min(b, B) if b <= B else b)
        if cc is None:
            cc = probe_cuts(band, q, B)
        assert cc is not None
        col_cuts.append(cc)
    return build_jagged_partition(
        pref, stripe_cuts, col_cuts, method="JAG-M-OPT", pad_to=m
    )


jag_m_opt = oriented(_jag_m_opt_main0)
jag_m_opt.__name__ = "jag_m_opt"


# ----------------------------------------------------------------------
# The paper's dynamic program (small-instance oracle)
# ----------------------------------------------------------------------
def jag_m_opt_dp_bottleneck(pref: PrefixSum2D, m: int, *, limit: int = 1 << 22) -> int:
    """The paper's DP formulation, memoized — exact but high complexity.

    ``Lmax(i, q) = min_{k <= i, x <= q} max(Lmax(k, q - x), 1D(k, i, x))``
    with ``1D`` the optimal auxiliary-dimension partition of stripe
    ``[k, i)`` on ``x`` processors.  Guarded by ``limit`` on ``n1²·m`` to
    avoid accidental huge runs; use :func:`jag_m_opt_bottleneck` for real
    instances.
    """
    n1 = pref.n1
    if n1 * n1 * m > limit:
        raise ParameterError(
            f"instance too large for the paper DP (n1²·m = {n1 * n1 * m} > {limit})"
        )
    @lru_cache(maxsize=None)
    def oneD(k: int, i: int, x: int) -> int:
        band = pref.axis_prefix(1, k, i)
        return bisect_bottleneck(band, x)

    @lru_cache(maxsize=None)
    def Lmax(i: int, q: int) -> int:
        if i == 0:
            return 0
        if q == 0:
            return _INF
        best = _INF
        for x in range(1, q + 1):
            for k in range(i):
                v = max(Lmax(k, q - x), oneD(k, i, x))
                if v < best:
                    best = v
        return best

    return int(Lmax(n1, m))
