"""Execution substrate: BSP makespan/communication/migration simulation (§5)."""

from .simulator import (
    BSPSimulator,
    CostModel,
    SimulationReport,
    StepStats,
    hetero_partitioner,
)

__all__ = [
    "BSPSimulator",
    "CostModel",
    "SimulationReport",
    "StepStats",
    "hetero_partitioner",
]
