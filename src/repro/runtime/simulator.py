"""BSP-style execution simulator for partitioned spatial computations.

The paper's motivation (§1) is distributing spatially located computations so
that per-step makespan is minimized, and its future work (§5) asks about
communication and data-migration costs in dynamic applications.  This module
closes that loop: given a sequence of load-matrix snapshots (e.g. the
PIC-MAG dataset) and a partitioning strategy, it simulates a bulk-synchronous
execution:

* **compute** — a step costs the load of the most loaded processor times
  ``alpha`` (perfect overlap inside a step, barrier at the end);
* **communicate** — ghost-cell exchange along rectangle boundaries costs the
  largest per-processor boundary times ``beta``;
* **repartition** — when the strategy produces a new partition, the load
  whose owner changes migrates at ``gamma`` per unit.

The simulator is the "application side" that the partitioning algorithms
serve; the examples drive it with different algorithms to show end-to-end
effects (cf. §5: "integrate the proposed algorithms in a real dynamic
application and study their end-to-end effects").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..core.metrics import max_boundary, migration_volume, neighbor_counts
from ..core.partition import Partition
from ..core.prefix import PrefixSum2D

__all__ = ["CostModel", "StepStats", "SimulationReport", "BSPSimulator"]

Partitioner = Callable[[PrefixSum2D, int], Partition]


@dataclass(frozen=True)
class CostModel:
    """Unit costs of the BSP model.

    ``alpha`` — seconds per unit of computational load;
    ``beta`` — seconds per boundary cell exchanged (per step);
    ``gamma`` — seconds per unit of load migrated at a repartitioning;
    ``latency`` — seconds per halo message: the per-step latency term is
    ``latency`` times the largest per-processor neighbour count.
    """

    alpha: float = 1e-6
    beta: float = 5e-6
    gamma: float = 2e-6
    latency: float = 0.0  #: seconds per halo message (per neighbour, per step)


@dataclass(frozen=True)
class StepStats:
    """Per-snapshot accounting."""

    iteration: int
    max_load: int
    imbalance: float
    compute_time: float
    comm_time: float
    migration_time: float
    repartitioned: bool

    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time + self.migration_time


@dataclass
class SimulationReport:
    """Aggregated result of a simulated run."""

    steps: list[StepStats] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.total_time for s in self.steps)

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.steps)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.steps)

    @property
    def migration_time(self) -> float:
        return sum(s.migration_time for s in self.steps)

    @property
    def mean_imbalance(self) -> float:
        if not self.steps:
            return 0.0
        return float(np.mean([s.imbalance for s in self.steps]))

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"steps={len(self.steps)} total={self.total_time:.3f}s "
            f"(comp={self.compute_time:.3f} comm={self.comm_time:.3f} "
            f"mig={self.migration_time:.3f}) mean_imb={self.mean_imbalance:.3%}"
        )


class BSPSimulator:
    """Simulate a dynamic application over load snapshots.

    Parameters
    ----------
    m:
        Number of processors.
    partitioner:
        ``(PrefixSum2D, m) -> Partition`` — typically a closure over
        :func:`repro.partition_2d`.
    cost:
        The :class:`CostModel`.
    repartition_every:
        Recompute the partition every k snapshots (1 = always; 0 = never
        after the first — a static decomposition).
    """

    def __init__(
        self,
        m: int,
        partitioner: Partitioner,
        *,
        cost: CostModel | None = None,
        repartition_every: int = 1,
    ):
        self.m = m
        self.partitioner = partitioner
        self.cost = cost or CostModel()
        self.repartition_every = repartition_every

    def run(
        self, snapshots: Iterable[tuple[int, np.ndarray]], *, steps_per_snapshot: int = 1
    ) -> SimulationReport:
        """Run over ``(iteration, load_matrix)`` pairs and account the costs.

        ``steps_per_snapshot`` multiplies compute/communication time (the
        application executes that many solver steps between load changes).
        """
        report = SimulationReport()
        part: Partition | None = None
        c = self.cost
        for idx, (iteration, A) in enumerate(snapshots):
            pref = PrefixSum2D(A)
            repartition = part is None or (
                self.repartition_every > 0 and idx % self.repartition_every == 0
            )
            mig_time = 0.0
            if repartition:
                new_part = self.partitioner(pref, self.m)
                if part is not None:
                    mig_time = c.gamma * migration_volume(part, new_part, pref)
                part = new_part
            assert part is not None
            lmax = part.max_load(pref)
            lat = c.latency * int(neighbor_counts(part).max(initial=0)) if c.latency else 0.0
            lavg = pref.total / self.m
            report.steps.append(
                StepStats(
                    iteration=iteration,
                    max_load=lmax,
                    imbalance=(lmax / lavg - 1.0) if lavg else 0.0,
                    compute_time=c.alpha * lmax * steps_per_snapshot,
                    comm_time=(c.beta * max_boundary(part) + lat) * steps_per_snapshot,
                    migration_time=mig_time,
                    repartitioned=repartition,
                )
            )
        return report
