"""BSP-style execution simulator for partitioned spatial computations.

The paper's motivation (§1) is distributing spatially located computations so
that per-step makespan is minimized, and its future work (§5) asks about
communication and data-migration costs in dynamic applications.  This module
closes that loop: given a sequence of load-matrix snapshots (e.g. the
PIC-MAG dataset) and a partitioning strategy, it simulates a bulk-synchronous
execution:

* **compute** — a step costs the load of the most loaded processor times
  ``alpha`` (perfect overlap inside a step, barrier at the end); with
  heterogeneous per-processor ``speeds`` the cost is the makespan
  ``max_p L_p / s_p`` (cf. :mod:`repro.oned.hetero`);
* **communicate** — ghost-cell exchange along rectangle boundaries costs the
  largest per-processor boundary times ``beta``;
* **repartition** — when the policy installs a new partition, the load
  whose owner changes migrates at ``gamma`` per unit.

*When* to repartition is a pluggable
:class:`~repro.dynamic.policies.RepartitionPolicy` (``policy=``); the legacy
``repartition_every=k`` knob maps onto
:class:`~repro.dynamic.policies.EveryK` bit-compatibly.

Exactness: per-step imbalance is the single-rounding rational
``(Lmax·m − total) / total`` — the same contract as
:meth:`repro.core.partition.Partition.imbalance`; the earlier
``lmax / (total / m) − 1`` float form double-rounds past 2^53 (pinned in
``tests/test_runtime.py``).  Snapshots pass through
:func:`~repro.core.prefix.prefix_2d`, so sparse
:class:`~repro.core.sparse.SparsePrefix2D` streams are simulated without
ever densifying (the earlier hardwired ``PrefixSum2D(A)`` allocated the full
dense Γ per snapshot).

The simulator is the "application side" that the partitioning algorithms
serve; the examples drive it with different algorithms to show end-to-end
effects (cf. §5: "integrate the proposed algorithms in a real dynamic
application and study their end-to-end effects").
"""
# repro-lint: disable-file=RPL003 — simulated seconds/speeds are fractional by design

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, Optional

import numpy as np

from ..core.errors import ParameterError
from ..core.metrics import max_boundary, migration_volume, neighbor_counts
from ..core.partition import Partition
from ..core.prefix import LoadView, MatrixLike, prefix_2d
from ..dynamic.policies import EveryK, RepartitionPolicy, StepContext

__all__ = [
    "CostModel",
    "StepStats",
    "SimulationReport",
    "BSPSimulator",
    "hetero_partitioner",
]

Partitioner = Callable[[LoadView, int], Partition]


@dataclass(frozen=True)
class CostModel:
    """Unit costs of the BSP model.

    ``alpha`` — seconds per unit of computational load;
    ``beta`` — seconds per boundary cell exchanged (per step);
    ``gamma`` — seconds per unit of load migrated at a repartitioning;
    ``latency`` — seconds per halo message: the per-step latency term is
    ``latency`` times the largest per-processor neighbour count.
    """

    alpha: float = 1e-6
    beta: float = 5e-6
    gamma: float = 2e-6
    latency: float = 0.0  #: seconds per halo message (per neighbour, per step)


@dataclass(frozen=True)
class StepStats:
    """Per-snapshot accounting.

    ``makespan`` is the speed-normalized bottleneck time driving the
    compute cost: equal to ``max_load`` for homogeneous processors, and
    ``max_p L_p / s_p`` when the simulator was given ``speeds``.
    """

    iteration: int
    max_load: int
    imbalance: float
    compute_time: float
    comm_time: float
    migration_time: float
    repartitioned: bool
    makespan: float = 0.0

    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time + self.migration_time


@dataclass
class SimulationReport:
    """Aggregated result of a simulated run."""

    steps: list[StepStats] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.total_time for s in self.steps)

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.steps)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.steps)

    @property
    def migration_time(self) -> float:
        return sum(s.migration_time for s in self.steps)

    @property
    def repartitions(self) -> int:
        """Number of snapshots at which a new partition was installed."""
        return sum(1 for s in self.steps if s.repartitioned)

    @property
    def mean_imbalance(self) -> float:
        if not self.steps:
            return 0.0
        return float(np.mean([s.imbalance for s in self.steps]))

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"steps={len(self.steps)} total={self.total_time:.3f}s "
            f"(comp={self.compute_time:.3f} comm={self.comm_time:.3f} "
            f"mig={self.migration_time:.3f}) mean_imb={self.mean_imbalance:.3%}"
        )


def hetero_partitioner(speeds, *, num_stripes: int | None = None) -> Partitioner:
    """Partitioner closure over :func:`repro.jagged.hetero.jag_hetero`.

    ``speeds[i]`` is processor ``i``'s relative speed; the returned callable
    has the simulator's ``(pref, m) -> Partition`` shape and checks that the
    simulator's ``m`` matches ``len(speeds)``.
    """
    from ..jagged.hetero import jag_hetero

    speeds = np.asarray(speeds, dtype=np.float64)

    def run(pref: LoadView, m: int) -> Partition:
        if m != len(speeds):
            raise ParameterError(
                f"simulator m={m} != len(speeds)={len(speeds)}"
            )
        return jag_hetero(pref, speeds, num_stripes=num_stripes)

    return run


class BSPSimulator:
    """Simulate a dynamic application over load snapshots.

    Parameters
    ----------
    m:
        Number of processors.
    partitioner:
        ``(LoadView, m) -> Partition`` — typically a closure over
        :func:`repro.partition_2d` (or :func:`hetero_partitioner`).
    cost:
        The :class:`CostModel`.
    repartition_every:
        Legacy knob: recompute the partition every k snapshots (1 = always;
        0 = never after the first — a static decomposition).  Ignored when
        ``policy`` is given.
    policy:
        A :class:`~repro.dynamic.policies.RepartitionPolicy` deciding when
        to repartition (and optionally how to solve).  Defaults to
        :class:`~repro.dynamic.policies.EveryK` over ``repartition_every``.
    speeds:
        Optional per-processor relative speeds (length ``m``, positive).
        When given, the compute cost of a step is ``alpha`` times the
        makespan ``max_p L_p / s_p`` instead of ``alpha · Lmax``.
    """

    def __init__(
        self,
        m: int,
        partitioner: Partitioner,
        *,
        cost: CostModel | None = None,
        repartition_every: int = 1,
        policy: RepartitionPolicy | None = None,
        speeds=None,
    ):
        self.m = m
        self.partitioner = partitioner
        self.cost = cost or CostModel()
        self.repartition_every = repartition_every
        self.policy = policy if policy is not None else EveryK(repartition_every)
        if speeds is not None:
            speeds = np.asarray(speeds, dtype=np.float64)
            if speeds.ndim != 1 or len(speeds) != m:
                raise ParameterError(f"speeds must be a 1D array of length m={m}")
            if (speeds <= 0).any():
                raise ParameterError("speeds must be positive")
        self.speeds: Optional[np.ndarray] = speeds

    def run(
        self,
        snapshots: Iterable[tuple[int, MatrixLike]],
        *,
        steps_per_snapshot: int = 1,
    ) -> SimulationReport:
        """Run over ``(iteration, load)`` pairs and account the costs.

        ``load`` may be a raw matrix or any prebuilt
        :class:`~repro.core.prefix.LoadView` substrate (dense or sparse) —
        substrates pass through undensified.  ``steps_per_snapshot``
        multiplies compute/communication time (the application executes
        that many solver steps between load changes).
        """
        report = SimulationReport()
        part: Partition | None = None
        c = self.cost
        policy = self.policy
        policy.reset()
        with policy.scope():
            for idx, (iteration, A) in enumerate(snapshots):
                pref = prefix_2d(A)
                ctx = StepContext(
                    index=idx,
                    iteration=iteration,
                    pref=pref,
                    part=part,
                    m=self.m,
                    cost=c,
                    steps_per_snapshot=steps_per_snapshot,
                )
                mig_time = 0.0
                repartitioned = False
                if part is None or policy.should_repartition(ctx):
                    new_part = policy.solve(self.partitioner, ctx)
                    # a policy may hand the current partition back unchanged
                    # (MigrationBudgeted deciding "keep"): not a repartition
                    if new_part is not part:
                        if part is not None:
                            mig_time = c.gamma * migration_volume(
                                part, new_part, pref
                            )
                        part = new_part
                        repartitioned = True
                assert part is not None
                lmax = part.max_load(pref)
                total = pref.total
                # exact single-rounding imbalance, as Partition.imbalance:
                # the naive lmax / (total / m) - 1 double-rounds past 2^53
                imbalance = (
                    float(Fraction(lmax * self.m - total, total)) if total else 0.0
                )
                if self.speeds is not None:
                    loads = part.loads(pref).astype(np.float64)
                    makespan = float(np.max(loads / self.speeds))
                else:
                    makespan = float(lmax)
                lat = (
                    c.latency * int(neighbor_counts(part).max(initial=0))
                    if c.latency
                    else 0.0
                )
                report.steps.append(
                    StepStats(
                        iteration=iteration,
                        max_load=lmax,
                        imbalance=imbalance,
                        compute_time=c.alpha * makespan * steps_per_snapshot,
                        comm_time=(c.beta * max_boundary(part) + lat)
                        * steps_per_snapshot,
                        migration_time=mig_time,
                        repartitioned=repartitioned,
                        makespan=makespan,
                    )
                )
        return report
