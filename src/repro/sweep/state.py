"""Cross-call warm-start state for m-sweeps over one load matrix.

Every figure in the paper's evaluation (§4) sweeps the processor count ``m``
over the *same* load matrix; a cold call rediscovers its bottleneck
bisection window from scratch each time.  The optimal bottleneck of the
m-way jagged class is monotone non-increasing in ``m``, and the P×Q-way
class is monotone componentwise in ``(P, Q)``, so every completed bisection
*proves* transferable facts:

* an optimum ``B*(m)`` witnesses *feasibility* at ``B*(m)`` (an upper bound
  for every ``m' >= m``) and *infeasibility* at ``B*(m) - 1`` (a lower
  bound for every ``m' <= m``);
* a heuristic partition witnesses feasibility of its max load for its own
  class at its own ``m`` — an upper-bound fact exact solvers can consume;
* across classes, any P×Q-way jagged partition *is* an (P·Q)-way jagged
  partition, so P×Q facts transfer as upper bounds to the m-way class and
  the m-way optimum at ``m = P·Q`` transfers as a lower bound to (P, Q).

This module holds only the *state* (a context stack plus per-prefix bound
stores); it deliberately imports nothing from the algorithm packages so the
algorithms can import it without cycles.  The engine that drives sweeps
lives in :mod:`repro.sweep.engine`.

Soundness discipline: the stores are written exclusively with *proven*
facts (computed optima and achieved heuristic loads), entries are keyed by
object identity with a strong reference held for the lifetime of the sweep
(so ``id`` reuse after garbage collection cannot alias entries), and every
record is validated against the monotonicity laws above —
:class:`SweepInvariantError` is raised on any contradiction, which makes a
poisoned bound impossible to install through the public API.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SweepInvariantError",
    "SweepState",
    "current",
    "sweep_active",
]


class SweepInvariantError(RuntimeError):
    """A recorded bound contradicts the monotonicity laws of its class."""


#: number of distinct objects (prefixes / 1D prefix arrays) one sweep
#: tracks; beyond this, new objects simply get no warm starts (bounded
#: memory — the strong references pin every tracked object alive)
_MAX_TRACKED = 4096

#: monotone 1D/jagged class tags (optimum non-increasing in m)
_MONO_CLASSES = ("bisect", "jag_m")


class SweepState:
    """Per-sweep warm-start stores, keyed by object identity.

    One instance lives for the duration of a ``use_sweep()`` block.  All
    mutating methods validate monotonicity and raise
    :class:`SweepInvariantError` on contradictions.
    """

    __slots__ = ("_refs", "_mono_opt", "_mono_ub", "_grid_opt", "_grid_ub", "_memos")

    def __init__(self) -> None:
        # id -> strong reference (prevents GC id reuse for tracked objects)
        self._refs: dict[int, Any] = {}
        # (id, class) -> {m: B} proven optima / proven-feasible upper bounds
        self._mono_opt: dict[tuple[int, str], dict[int, int]] = {}
        self._mono_ub: dict[tuple[int, str], dict[int, int]] = {}
        # id -> {(P, Q): B} for the P×Q-way jagged class
        self._grid_opt: dict[int, dict[tuple[int, int], int]] = {}
        self._grid_ub: dict[int, dict[tuple[int, int], int]] = {}
        # id -> shared JAG-M-OPT stripe memo ((k, i) -> [(B, parts, exact)])
        self._memos: dict[int, dict] = {}

    # -- tracking -------------------------------------------------------

    def _track(self, obj: Any) -> int | None:
        """Register ``obj`` and return its identity key (None when full)."""
        key = id(obj)
        if key in self._refs:
            return key
        if len(self._refs) >= _MAX_TRACKED:
            return None
        self._refs[key] = obj
        return key

    # -- monotone-in-m classes (1D bisect, m-way jagged) ----------------

    def mono_bounds(
        self, obj: Any, cls: str, m: int
    ) -> tuple[int | None, int | None, int | None]:
        """``(exact, lb, ub)`` for class ``cls`` at ``m`` from recorded facts.

        ``exact`` is the recorded optimum at ``m`` itself (or None); ``lb``
        comes from optima at ``m' >= m`` (their bisections proved
        infeasibility just below them, which transfers downward in ``m``);
        ``ub`` comes from optima and feasible witnesses at ``m' <= m``
        (feasibility transfers upward in ``m``).
        """
        key = id(obj)
        if key not in self._refs:
            return None, None, None
        opt = self._mono_opt.get((key, cls))
        ubs = self._mono_ub.get((key, cls))
        exact = opt.get(m) if opt else None
        if exact is not None:
            return exact, exact, exact
        lb: int | None = None
        ub: int | None = None
        if opt:
            for mp, B in opt.items():
                if mp >= m and (lb is None or B > lb):
                    lb = B
                if mp <= m and (ub is None or B < ub):
                    ub = B
        if ubs:
            for mp, B in ubs.items():
                if mp <= m and (ub is None or B < ub):
                    ub = B
        if cls == "jag_m":
            # cross-class: any P×Q-way partition with P·Q <= m is an m-way
            # jagged partition, so grid facts are feasible witnesses here
            gub = self._grid_min_ub(key, m)
            if gub is not None and (ub is None or gub < ub):
                ub = gub
        return None, lb, ub

    def record_mono_opt(self, obj: Any, cls: str, m: int, B: int) -> None:
        """Record a proven optimum ``B`` for class ``cls`` at ``m``."""
        if cls not in _MONO_CLASSES:
            raise SweepInvariantError(f"unknown monotone class {cls!r}")
        key = self._track(obj)
        if key is None:
            return
        B = int(B)
        store = self._mono_opt.setdefault((key, cls), {})
        prev = store.get(m)
        if prev is not None and prev != B:
            raise SweepInvariantError(
                f"{cls}: optimum at m={m} recorded twice with different values "
                f"({prev} then {B})"
            )
        for mp, Bp in store.items():
            if (mp <= m and Bp < B) or (mp >= m and Bp > B):
                raise SweepInvariantError(
                    f"{cls}: optimum {B} at m={m} contradicts optimum {Bp} at "
                    f"m={mp} (B* must be non-increasing in m)"
                )
        ubs = self._mono_ub.get((key, cls))
        if ubs:
            for mp, Bp in ubs.items():
                if mp <= m and Bp < B:
                    raise SweepInvariantError(
                        f"{cls}: optimum {B} at m={m} exceeds the feasible "
                        f"witness {Bp} recorded at m={mp}"
                    )
        store[m] = B

    def mono_witness(self, obj: Any, cls: str, m: int) -> int | None:
        """The recorded feasible witness at exactly ``m`` (or None).

        Exact solvers use this to skip recomputing their internal heuristic
        upper bound: a witness at the same ``m`` is precisely what that
        heuristic would have produced (or tighter), and any valid upper
        bound leaves the bisection result unchanged.
        """
        key = id(obj)
        if key not in self._refs:
            return None
        ubs = self._mono_ub.get((key, cls))
        return ubs.get(m) if ubs else None

    def record_mono_ub(self, obj: Any, cls: str, m: int, B: int) -> None:
        """Record a proven-feasible bottleneck ``B`` (a witness) at ``m``."""
        if cls not in _MONO_CLASSES:
            raise SweepInvariantError(f"unknown monotone class {cls!r}")
        key = self._track(obj)
        if key is None:
            return
        B = int(B)
        opt = self._mono_opt.get((key, cls))
        if opt:
            for mp, Bp in opt.items():
                if mp >= m and B < Bp:
                    raise SweepInvariantError(
                        f"{cls}: feasible witness {B} at m={m} undercuts the "
                        f"optimum {Bp} at m={mp}"
                    )
        ubs = self._mono_ub.setdefault((key, cls), {})
        prev = ubs.get(m)
        if prev is None or B < prev:
            ubs[m] = B

    # -- the P×Q-way jagged class (componentwise monotone) --------------

    def grid_bounds(
        self, pref: Any, P: int, Q: int
    ) -> tuple[int | None, int | None, int | None]:
        """``(exact, lb, ub)`` for the P×Q-way class by dominance lookup.

        A recorded grid dominated by ``(P, Q)`` (componentwise ``<=``)
        yields an upper bound; a dominating grid yields a lower bound.
        Plain m-monotonicity does **not** hold across factorizations
        (``B*(1, 7)`` may exceed ``B*(2, 3)``), hence the dominance scan.
        The m-way optimum at ``m = P·Q`` is a valid lower bound (the m-way
        class contains every P×Q-way partition).
        """
        key = id(pref)
        if key not in self._refs:
            return None, None, None
        opt = self._grid_opt.get(key)
        ubs = self._grid_ub.get(key)
        exact = opt.get((P, Q)) if opt else None
        if exact is not None:
            return exact, exact, exact
        lb: int | None = None
        ub: int | None = None
        if opt:
            for (Pp, Qp), B in opt.items():
                if Pp <= P and Qp <= Q and (ub is None or B < ub):
                    ub = B
                if Pp >= P and Qp >= Q and (lb is None or B > lb):
                    lb = B
        if ubs:
            for (Pp, Qp), B in ubs.items():
                if Pp <= P and Qp <= Q and (ub is None or B < ub):
                    ub = B
        mono = self._mono_opt.get((key, "jag_m"))
        if mono is not None:
            B = mono.get(P * Q)
            if B is not None and (lb is None or B > lb):
                lb = B
        return None, lb, ub

    def record_grid_opt(self, pref: Any, P: int, Q: int, B: int) -> None:
        """Record a proven P×Q-way optimum ``B``."""
        key = self._track(pref)
        if key is None:
            return
        B = int(B)
        store = self._grid_opt.setdefault(key, {})
        prev = store.get((P, Q))
        if prev is not None and prev != B:
            raise SweepInvariantError(
                f"jag_pq: optimum at ({P},{Q}) recorded twice with different "
                f"values ({prev} then {B})"
            )
        for (Pp, Qp), Bp in store.items():
            if (Pp <= P and Qp <= Q and Bp < B) or (Pp >= P and Qp >= Q and Bp > B):
                raise SweepInvariantError(
                    f"jag_pq: optimum {B} at ({P},{Q}) contradicts optimum "
                    f"{Bp} at ({Pp},{Qp}) (componentwise monotonicity)"
                )
        store[(P, Q)] = B

    def grid_witness(self, pref: Any, P: int, Q: int) -> int | None:
        """The recorded feasible witness at exactly ``(P, Q)`` (or None)."""
        key = id(pref)
        if key not in self._refs:
            return None
        ubs = self._grid_ub.get(key)
        return ubs.get((P, Q)) if ubs else None

    def record_grid_ub(self, pref: Any, P: int, Q: int, B: int) -> None:
        """Record a proven-feasible P×Q-way bottleneck (a witness)."""
        key = self._track(pref)
        if key is None:
            return
        B = int(B)
        opt = self._grid_opt.get(key)
        if opt:
            for (Pp, Qp), Bp in opt.items():
                if Pp >= P and Qp >= Q and B < Bp:
                    raise SweepInvariantError(
                        f"jag_pq: feasible witness {B} at ({P},{Q}) undercuts "
                        f"the optimum {Bp} at ({Pp},{Qp})"
                    )
        ubs = self._grid_ub.setdefault(key, {})
        prev = ubs.get((P, Q))
        if prev is None or B < prev:
            ubs[(P, Q)] = B

    def _grid_min_ub(self, key: int, m: int) -> int | None:
        """Tightest grid fact with ``P·Q <= m`` (an m-way feasible witness)."""
        out: int | None = None
        for store in (self._grid_opt.get(key), self._grid_ub.get(key)):
            if store:
                for (Pp, Qp), B in store.items():
                    if Pp * Qp <= m and (out is None or B < out):
                        out = B
        return out

    # -- shared JAG-M-OPT stripe memo -----------------------------------

    def stripe_memo(self, pref: Any) -> dict | None:
        """The sweep-shared stripe memo for ``pref`` (None when full).

        Entries are ``(k, i) -> [(B, parts, exact)]`` facts about stripe
        ``[k, i)`` of this prefix; they are m-independent, so one memo
        serves every bisection probe of every sweep step.
        """
        key = self._track(pref)
        if key is None:
            return None
        memo = self._memos.get(key)
        if memo is None:
            memo = {}
            self._memos[key] = memo
        return memo


#: the active sweep contexts (a stack, like the op-counter stack: the
#: innermost context wins; truthiness is the only cost when inactive)
_STACK: list[SweepState] = []


def current() -> SweepState | None:
    """The innermost active sweep state, or None."""
    return _STACK[-1] if _STACK else None


def sweep_active() -> bool:
    """True when a sweep context is open."""
    return bool(_STACK)
