"""Cross-call warm-start state for m-sweeps over one load matrix.

Every figure in the paper's evaluation (§4) sweeps the processor count ``m``
over the *same* load matrix; a cold call rediscovers its bottleneck
bisection window from scratch each time.  The optimal bottleneck of the
m-way jagged class is monotone non-increasing in ``m``, and the P×Q-way
class is monotone componentwise in ``(P, Q)``, so every completed bisection
*proves* transferable facts:

* an optimum ``B*(m)`` witnesses *feasibility* at ``B*(m)`` (an upper bound
  for every ``m' >= m``) and *infeasibility* at ``B*(m) - 1`` (a lower
  bound for every ``m' <= m``);
* a heuristic partition witnesses feasibility of its max load for its own
  class at its own ``m`` — an upper-bound fact exact solvers can consume;
* across classes, any P×Q-way jagged partition *is* an (P·Q)-way jagged
  partition, so P×Q facts transfer as upper bounds to the m-way class and
  the m-way optimum at ``m = P·Q`` transfers as a lower bound to (P, Q).

Facts are additionally keyed by a canonicalized **kwargs scope**: solver
kwargs that constrain the solution space (e.g. ``num_stripes``) change what
"the optimum" means, so facts recorded under different kwargs must never
share a ``(class, m)`` slot — the same keying the disk store
(:mod:`repro.sweep.store`) uses.  Two sound transfers cross the scope
boundary, both derived from "a constrained partition is still a partition
of the class":

* a feasible witness (or optimum) recorded under *any* scope is an upper
  bound for the **unconstrained** (empty) scope at the same or larger
  ``m``;
* an **unconstrained** optimum is a lower bound for every constrained
  scope (a constraint can only worsen the optimum).

This module holds only the *state* (a context stack plus per-prefix bound
stores); it deliberately imports nothing from the algorithm packages so the
algorithms can import it without cycles.  The engine that drives sweeps
lives in :mod:`repro.sweep.engine`; disk persistence lives in
:mod:`repro.sweep.store` and is attached per state via the ``store``
constructor argument (the state calls back into it through duck typing, so
no import edge exists here either).

Soundness discipline: the stores are written exclusively with *proven*
facts (computed optima and achieved heuristic loads), entries are keyed by
object identity with a strong reference held for the lifetime of the sweep
(so ``id`` reuse after garbage collection cannot alias entries), and every
record is validated against the monotonicity laws above —
:class:`SweepInvariantError` is raised on any contradiction, which makes a
poisoned bound impossible to install through the public API.
"""

from __future__ import annotations

import numbers
from typing import Any, Mapping

__all__ = [
    "SweepInvariantError",
    "SweepState",
    "canonical_scope",
    "current",
    "sweep_active",
]


class SweepInvariantError(RuntimeError):
    """A recorded bound contradicts the monotonicity laws of its class."""


#: number of distinct objects (prefixes / 1D prefix arrays) one sweep
#: tracks; beyond this, new objects simply get no warm starts (bounded
#: memory — the strong references pin every tracked object alive)
_MAX_TRACKED = 4096

#: monotone class tags (optimum non-increasing in m).  ``bisect`` and
#: ``jag_m`` are consumed by the exact solvers; ``hier_rb`` and
#: ``hier_relaxed`` hold the hierarchical heuristics' achieved loads as
#: class-feasibility witnesses (persisted and scale-transferred by the
#: disk store — the hierarchical *decisions* themselves are warm-started
#: through the node memos, see :meth:`SweepState.hier_memo`).
_MONO_CLASSES = ("bisect", "jag_m", "hier_rb", "hier_relaxed")

#: a kwargs scope: canonicalized, hashable, JSON-round-trippable
Scope = tuple[tuple[str, str], ...]

#: the unconstrained scope (no result-affecting kwargs)
NO_SCOPE: Scope = ()


def _canon_value(v: Any) -> str:
    """Canonical string form of one kwargs value (type-tagged)."""
    if isinstance(v, bool):
        return f"bool:{v}"
    if isinstance(v, numbers.Integral):
        return f"int:{int(v)}"
    if isinstance(v, str):
        return f"str:{v}"
    if isinstance(v, float):
        return f"float:{v!r}"
    return f"repr:{v!r}"


def canonical_scope(kw: Mapping[str, Any] | None) -> Scope:
    """Canonicalize solver kwargs into a fact-store scope key.

    ``None`` and ``{}`` are the unconstrained scope; ``None``-valued
    entries are dropped (an explicit default); remaining items are sorted
    by name and values are reduced to type-tagged strings so the scope is
    hashable, order-independent and survives a JSON round trip unchanged.
    """
    if not kw:
        return NO_SCOPE
    if isinstance(kw, tuple):
        # already a canonical scope (a store replaying persisted facts)
        return kw
    items = [(str(k), _canon_value(v)) for k, v in kw.items() if v is not None]
    items.sort()
    return tuple(items)


class SweepState:
    """Per-sweep warm-start stores, keyed by object identity and scope.

    One instance lives for the duration of a ``use_sweep()`` block.  All
    mutating methods validate monotonicity and raise
    :class:`SweepInvariantError` on contradictions.  ``store`` optionally
    attaches a disk-backed fact store (:mod:`repro.sweep.store`): tracked
    2D prefixes are then seeded from disk on first touch and harvested
    back on :meth:`flush_to_store`.
    """

    __slots__ = (
        "_refs",
        "_mono_opt",
        "_mono_ub",
        "_grid_opt",
        "_grid_ub",
        "_memos",
        "_store",
        "_digests",
    )

    def __init__(self, store: Any = None) -> None:
        # id -> strong reference (prevents GC id reuse for tracked objects)
        self._refs: dict[int, Any] = {}
        # (id, class, scope) -> {m: B} proven optima / feasible upper bounds
        self._mono_opt: dict[tuple[int, str, Scope], dict[int, int]] = {}
        self._mono_ub: dict[tuple[int, str, Scope], dict[int, int]] = {}
        # (id, scope) -> {(P, Q): B} for the P×Q-way jagged class
        self._grid_opt: dict[tuple[int, Scope], dict[tuple[int, int], int]] = {}
        self._grid_ub: dict[tuple[int, Scope], dict[tuple[int, int], int]] = {}
        # (id, tag) -> shared memo; tags: "stripe" (JAG-M-OPT stripe facts),
        # "rb" / "relaxed" (hierarchical node decisions)
        self._memos: dict[tuple[int, str], dict] = {}
        # the attached disk store (duck-typed; see repro.sweep.store)
        self._store = store
        # id -> (digest, scale) cache maintained by the store
        self._digests: dict[int, tuple[str, int]] = {}

    # -- tracking -------------------------------------------------------

    def _track(self, obj: Any) -> int | None:
        """Register ``obj`` and return its identity key (None when full)."""
        key = id(obj)
        if key in self._refs:
            return key
        if len(self._refs) >= _MAX_TRACKED:
            return None
        self._refs[key] = obj
        if self._store is not None:
            # install this instance's persisted facts before any are read;
            # record_* re-entry is safe because the id is registered above
            self._store.seed_state(self, obj)
        return key  # repro-lint: disable=RPL010 — in-process handle; cross-run reuse goes through content digests

    def _query_key(self, obj: Any) -> int | None:
        """Identity key for a *read*; seeds from the disk store on first touch.

        Without a store, reads never track (exactly the pre-store
        behavior: an object nobody recorded facts for has no warmth).
        With a store attached, the first read of a content-addressable
        instance loads its persisted facts.
        """
        key = id(obj)
        if key in self._refs:
            return key  # repro-lint: disable=RPL010 — in-process handle; cross-run reuse goes through content digests
        if self._store is not None and self._store.is_instance(obj):
            return self._track(obj)
        return None

    # -- monotone-in-m classes ------------------------------------------

    def mono_bounds(
        self, obj: Any, cls: str, m: int, *, kw: Mapping[str, Any] | None = None
    ) -> tuple[int | None, int | None, int | None]:
        """``(exact, lb, ub)`` for class ``cls`` at ``m`` from recorded facts.

        ``exact`` is the recorded optimum at ``m`` itself (or None); ``lb``
        comes from optima at ``m' >= m`` (their bisections proved
        infeasibility just below them, which transfers downward in ``m``);
        ``ub`` comes from optima and feasible witnesses at ``m' <= m``
        (feasibility transfers upward in ``m``).  Facts live in the scope
        of ``kw``; the unconstrained scope additionally sees every scope's
        feasibility facts, and constrained scopes additionally see
        unconstrained optima as lower bounds (module docstring).
        """
        key = id(obj)
        if key not in self._refs:
            key = self._query_key(obj)  # type: ignore[assignment]
            if key is None:
                return None, None, None
        scope = canonical_scope(kw)
        opt = self._mono_opt.get((key, cls, scope))
        exact = opt.get(m) if opt else None
        if exact is not None:
            return exact, exact, exact
        lb: int | None = None
        ub: int | None = None
        if opt:
            for mp, B in opt.items():
                if mp >= m and (lb is None or B > lb):
                    lb = B
                if mp <= m and (ub is None or B < ub):
                    ub = B
        ubs = self._mono_ub.get((key, cls, scope))
        if ubs:
            for mp, B in ubs.items():
                if mp <= m and (ub is None or B < ub):
                    ub = B
        if scope == NO_SCOPE:
            # constrained feasibility transfers to the unconstrained class
            for (k2, c2, s2), table in self._mono_ub.items():  # repro-lint: disable=RPL010 — order-independent min-reduction
                if k2 == key and c2 == cls and s2 != NO_SCOPE:
                    for mp, B in table.items():
                        if mp <= m and (ub is None or B < ub):
                            ub = B
            for (k2, c2, s2), table in self._mono_opt.items():  # repro-lint: disable=RPL010 — order-independent min-reduction
                if k2 == key and c2 == cls and s2 != NO_SCOPE:
                    for mp, B in table.items():
                        if mp <= m and (ub is None or B < ub):
                            ub = B
        else:
            # the unconstrained optimum lower-bounds every constrained one
            base = self._mono_opt.get((key, cls, NO_SCOPE))
            if base:
                for mp, B in base.items():
                    if mp >= m and (lb is None or B > lb):
                        lb = B
        if cls == "jag_m" and scope == NO_SCOPE:
            # cross-class: any P×Q-way partition with P·Q <= m is an m-way
            # jagged partition, so grid facts are feasible witnesses here
            gub = self._grid_min_ub(key, m)
            if gub is not None and (ub is None or gub < ub):
                ub = gub
        return None, lb, ub  # repro-lint: disable=RPL010 — lb/ub are bottleneck values, not identity keys

    def record_mono_opt(
        self, obj: Any, cls: str, m: int, B: int, *, kw: Mapping[str, Any] | None = None
    ) -> None:
        """Record a proven optimum ``B`` for class ``cls`` at ``m``."""
        if cls not in _MONO_CLASSES:
            raise SweepInvariantError(f"unknown monotone class {cls!r}")
        key = self._track(obj)
        if key is None:
            return
        scope = canonical_scope(kw)
        B = int(B)
        store = self._mono_opt.setdefault((key, cls, scope), {})
        prev = store.get(m)
        if prev is not None and prev != B:
            raise SweepInvariantError(
                f"{cls}: optimum at m={m} recorded twice with different values "
                f"({prev} then {B})"
            )
        for mp, Bp in store.items():
            if (mp <= m and Bp < B) or (mp >= m and Bp > B):
                raise SweepInvariantError(
                    f"{cls}: optimum {B} at m={m} contradicts optimum {Bp} at "
                    f"m={mp} (B* must be non-increasing in m)"
                )
        ubs = self._mono_ub.get((key, cls, scope))
        if ubs:
            for mp, Bp in ubs.items():
                if mp <= m and Bp < B:
                    raise SweepInvariantError(
                        f"{cls}: optimum {B} at m={m} exceeds the feasible "
                        f"witness {Bp} recorded at m={mp}"
                    )
        if scope == NO_SCOPE:
            # every scope's feasibility facts cap the unconstrained optimum
            for (k2, c2, s2), table in list(self._mono_ub.items()) + list(
                self._mono_opt.items()
            ):
                if k2 != key or c2 != cls or s2 == NO_SCOPE:
                    continue
                for mp, Bp in table.items():
                    if mp <= m and Bp < B:
                        raise SweepInvariantError(
                            f"{cls}: unconstrained optimum {B} at m={m} exceeds "
                            f"the feasible witness {Bp} at m={mp} "
                            f"(scope {dict(s2)!r})"
                        )
        else:
            base = self._mono_opt.get((key, cls, NO_SCOPE))
            if base:
                for mp, Bp in base.items():
                    if mp >= m and B < Bp:
                        raise SweepInvariantError(
                            f"{cls}: constrained optimum {B} at m={m} "
                            f"(scope {dict(scope)!r}) undercuts the "
                            f"unconstrained optimum {Bp} at m={mp}"
                        )
        store[m] = B

    def mono_witness(
        self, obj: Any, cls: str, m: int, *, kw: Mapping[str, Any] | None = None
    ) -> int | None:
        """The recorded feasible witness at exactly ``m`` (or None).

        Exact solvers use this to skip recomputing their internal heuristic
        upper bound: a witness at the same ``m`` is feasible for the class,
        and any valid upper bound leaves the bisection result unchanged.
        The unconstrained scope sees every scope's witnesses (a constrained
        partition is still a partition of the class).
        """
        key = id(obj)
        if key not in self._refs:
            key = self._query_key(obj)  # type: ignore[assignment]
            if key is None:
                return None
        scope = canonical_scope(kw)
        ubs = self._mono_ub.get((key, cls, scope))
        out = ubs.get(m) if ubs else None
        if scope == NO_SCOPE:
            # constrained optima are feasible witnesses for the class too
            for source in (self._mono_ub, self._mono_opt):
                for (k2, c2, s2), table in source.items():
                    if k2 == key and c2 == cls and s2 != NO_SCOPE:
                        B = table.get(m)
                        if B is not None and (out is None or B < out):
                            out = B
        return out

    def record_mono_ub(
        self, obj: Any, cls: str, m: int, B: int, *, kw: Mapping[str, Any] | None = None
    ) -> None:
        """Record a proven-feasible bottleneck ``B`` (a witness) at ``m``."""
        if cls not in _MONO_CLASSES:
            raise SweepInvariantError(f"unknown monotone class {cls!r}")
        key = self._track(obj)
        if key is None:
            return
        scope = canonical_scope(kw)
        B = int(B)
        for check_scope in {scope, NO_SCOPE}:
            # a witness transfers to the unconstrained class, so it must not
            # undercut the unconstrained optima either
            opt = self._mono_opt.get((key, cls, check_scope))
            if opt:
                for mp, Bp in opt.items():
                    if mp >= m and B < Bp:
                        raise SweepInvariantError(
                            f"{cls}: feasible witness {B} at m={m} undercuts "
                            f"the optimum {Bp} at m={mp}"
                        )
        ubs = self._mono_ub.setdefault((key, cls, scope), {})
        prev = ubs.get(m)
        if prev is None or B < prev:
            ubs[m] = B

    # -- the P×Q-way jagged class (componentwise monotone) --------------

    def grid_bounds(
        self, pref: Any, P: int, Q: int, *, kw: Mapping[str, Any] | None = None
    ) -> tuple[int | None, int | None, int | None]:
        """``(exact, lb, ub)`` for the P×Q-way class by dominance lookup.

        A recorded grid dominated by ``(P, Q)`` (componentwise ``<=``)
        yields an upper bound; a dominating grid yields a lower bound.
        Plain m-monotonicity does **not** hold across factorizations
        (``B*(1, 7)`` may exceed ``B*(2, 3)``), hence the dominance scan.
        The m-way optimum at ``m = P·Q`` is a valid lower bound (the m-way
        class contains every P×Q-way partition).  Scope rules mirror
        :meth:`mono_bounds`.
        """
        key = id(pref)
        if key not in self._refs:
            key = self._query_key(pref)  # type: ignore[assignment]
            if key is None:
                return None, None, None
        scope = canonical_scope(kw)
        opt = self._grid_opt.get((key, scope))
        exact = opt.get((P, Q)) if opt else None
        if exact is not None:
            return exact, exact, exact
        lb: int | None = None
        ub: int | None = None
        if opt:
            for (Pp, Qp), B in opt.items():
                if Pp <= P and Qp <= Q and (ub is None or B < ub):
                    ub = B
                if Pp >= P and Qp >= Q and (lb is None or B > lb):
                    lb = B
        ubs = self._grid_ub.get((key, scope))
        if ubs:
            for (Pp, Qp), B in ubs.items():
                if Pp <= P and Qp <= Q and (ub is None or B < ub):
                    ub = B
        if scope == NO_SCOPE:
            for (k2, s2), table in list(self._grid_ub.items()) + list(
                self._grid_opt.items()
            ):
                if k2 != key or s2 == NO_SCOPE:
                    continue
                for (Pp, Qp), B in table.items():
                    if Pp <= P and Qp <= Q and (ub is None or B < ub):
                        ub = B
        else:
            base = self._grid_opt.get((key, NO_SCOPE))
            if base:
                for (Pp, Qp), B in base.items():
                    if Pp >= P and Qp >= Q and (lb is None or B > lb):
                        lb = B
        mono = self._mono_opt.get((key, "jag_m", NO_SCOPE))
        if mono is not None:
            B = mono.get(P * Q)
            if B is not None and (lb is None or B > lb):
                lb = B
        return None, lb, ub

    def record_grid_opt(
        self, pref: Any, P: int, Q: int, B: int, *, kw: Mapping[str, Any] | None = None
    ) -> None:
        """Record a proven P×Q-way optimum ``B``."""
        key = self._track(pref)
        if key is None:
            return
        scope = canonical_scope(kw)
        B = int(B)
        store = self._grid_opt.setdefault((key, scope), {})
        prev = store.get((P, Q))
        if prev is not None and prev != B:
            raise SweepInvariantError(
                f"jag_pq: optimum at ({P},{Q}) recorded twice with different "
                f"values ({prev} then {B})"
            )
        for (Pp, Qp), Bp in store.items():
            if (Pp <= P and Qp <= Q and Bp < B) or (Pp >= P and Qp >= Q and Bp > B):
                raise SweepInvariantError(
                    f"jag_pq: optimum {B} at ({P},{Q}) contradicts optimum "
                    f"{Bp} at ({Pp},{Qp}) (componentwise monotonicity)"
                )
        ubs = self._grid_ub.get((key, scope))
        if ubs:
            for (Pp, Qp), Bp in ubs.items():
                if Pp <= P and Qp <= Q and Bp < B:
                    raise SweepInvariantError(
                        f"jag_pq: optimum {B} at ({P},{Q}) exceeds the "
                        f"feasible witness {Bp} at ({Pp},{Qp})"
                    )
        if scope == NO_SCOPE:
            for (k2, s2), table in list(self._grid_ub.items()) + list(
                self._grid_opt.items()
            ):
                if k2 != key or s2 == NO_SCOPE:
                    continue
                for (Pp, Qp), Bp in table.items():
                    if Pp <= P and Qp <= Q and Bp < B:
                        raise SweepInvariantError(
                            f"jag_pq: unconstrained optimum {B} at ({P},{Q}) "
                            f"exceeds the feasible witness {Bp} at "
                            f"({Pp},{Qp}) (scope {dict(s2)!r})"
                        )
        else:
            base = self._grid_opt.get((key, NO_SCOPE))
            if base:
                for (Pp, Qp), Bp in base.items():
                    if Pp >= P and Qp >= Q and B < Bp:
                        raise SweepInvariantError(
                            f"jag_pq: constrained optimum {B} at ({P},{Q}) "
                            f"(scope {dict(scope)!r}) undercuts the "
                            f"unconstrained optimum {Bp} at ({Pp},{Qp})"
                        )
        store[(P, Q)] = B

    def grid_witness(
        self, pref: Any, P: int, Q: int, *, kw: Mapping[str, Any] | None = None
    ) -> int | None:
        """The recorded feasible witness at exactly ``(P, Q)`` (or None)."""
        key = id(pref)
        if key not in self._refs:
            key = self._query_key(pref)  # type: ignore[assignment]
            if key is None:
                return None
        scope = canonical_scope(kw)
        ubs = self._grid_ub.get((key, scope))
        out = ubs.get((P, Q)) if ubs else None
        if scope == NO_SCOPE:
            for (k2, s2), table in self._grid_ub.items():  # repro-lint: disable=RPL010 — order-independent min-reduction
                if k2 == key and s2 != NO_SCOPE:
                    B = table.get((P, Q))
                    if B is not None and (out is None or B < out):
                        out = B
        return out

    def record_grid_ub(
        self, pref: Any, P: int, Q: int, B: int, *, kw: Mapping[str, Any] | None = None
    ) -> None:
        """Record a proven-feasible P×Q-way bottleneck (a witness)."""
        key = self._track(pref)
        if key is None:
            return
        scope = canonical_scope(kw)
        B = int(B)
        for check_scope in {scope, NO_SCOPE}:
            opt = self._grid_opt.get((key, check_scope))
            if opt:
                for (Pp, Qp), Bp in opt.items():
                    if Pp >= P and Qp >= Q and B < Bp:
                        raise SweepInvariantError(
                            f"jag_pq: feasible witness {B} at ({P},{Q}) "
                            f"undercuts the optimum {Bp} at ({Pp},{Qp})"
                        )
        ubs = self._grid_ub.setdefault((key, scope), {})
        prev = ubs.get((P, Q))
        if prev is None or B < prev:
            ubs[(P, Q)] = B

    def _grid_min_ub(self, key: int, m: int) -> int | None:
        """Tightest grid fact with ``P·Q <= m`` (an m-way feasible witness).

        Scans every scope: any feasible P×Q-way partition — however its
        producer was parameterized — is an m-way jagged partition.
        """
        out: int | None = None
        for table_map in (self._grid_opt, self._grid_ub):
            for (k2, _s2), store in table_map.items():
                if k2 != key:
                    continue
                for (Pp, Qp), B in store.items():
                    if Pp * Qp <= m and (out is None or B < out):
                        out = B
        return out

    # -- shared memos (stripe facts, hierarchical node decisions) -------

    def stripe_memo(self, pref: Any) -> dict | None:
        """The sweep-shared JAG-M-OPT stripe memo for ``pref`` (None when full).

        Entries are ``(k, i) -> [(B, parts, exact)]`` facts about stripe
        ``[k, i)`` of this prefix; they are m-independent, so one memo
        serves every bisection probe of every sweep step.
        """
        return self._memo(pref, "stripe")

    def hier_memo(self, pref: Any, family: str) -> dict | None:
        """The sweep-shared hierarchical node-decision memo (None when full).

        ``family`` is ``"rb"`` or ``"relaxed"``.  Entries map a node key —
        the sub-rectangle, the candidate cut dimension and (for RB) the
        gcd-reduced processor-split ratio, or (for RELAXED) the node's
        processor count — to the windowed cut kernel's result.  The keys
        capture *everything* the decision depends on, so a memo hit
        returns exactly what the kernel would recompute: decisions (and
        partitions) stay bit-identical while the cut searches disappear
        from the op counters.  RB keys are invariant under scaling of the
        processor split, which is what lets facts transfer across the
        ``m`` sweep (every even bisection shares its ratio ``1:1``).
        """
        return self._memo(pref, family)

    def _memo(self, obj: Any, tag: str) -> dict | None:
        key = self._track(obj)
        if key is None:
            return None
        memo = self._memos.get((key, tag))
        if memo is None:
            memo = {}
            self._memos[(key, tag)] = memo
        return memo

    # -- disk-store lifecycle -------------------------------------------

    def flush_to_store(self) -> None:
        """Harvest every tracked instance's facts into the attached store.

        A no-op without a store.  Called by ``use_sweep`` on scope exit;
        the store itself performs the atomic read-merge-write.
        """
        if self._store is None:
            return
        for obj in list(self._refs.values()):
            if self._store.is_instance(obj):
                self._store.harvest_state(self, obj)
        self._store.flush()


#: the active sweep contexts (a stack, like the op-counter stack: the
#: innermost context wins; truthiness is the only cost when inactive)
_STACK: list[SweepState] = []


def current() -> SweepState | None:
    """The innermost active sweep state, or None."""
    return _STACK[-1] if _STACK else None


def sweep_active() -> bool:
    """True when a sweep context is open."""
    return bool(_STACK)
