"""Disk-backed, content-addressed persistence for sweep facts.

Facts proved inside one ``use_sweep()`` scope (monotone bottleneck bounds,
grid dominance facts, heuristic witnesses, stripe facts, hierarchical node
decisions) die with the process; this module persists them so a later
process — rerunning a figure, or partitioning the *same* physical instance
again — starts warm.  Mirroring how production partitioners amortize
repartitioning cost across timesteps, the store is keyed by *content*:

* the instance digest is ``SHA-256`` over the load matrix's dtype tag,
  shape, and the bytes of its **primitive** form ``A' = A // g`` where
  ``g = gcd(A)`` — so instances that differ only by a positive integer
  scale factor share one entry;
* facts are stored at primitive scale and rescaled on the way in and out:
  ``Lmax(c·A) = c·Lmax(A)`` for every fixed rectangle set, so optima and
  feasible witnesses multiply by the live scale exactly.  Stripe-count
  facts transfer through ``parts(c·A', B) = parts(A', B // c)`` (integer
  loads: ``c·l <= B  ⟺  l <= ⌊B/c⌋``).  RB node decisions are invariant
  under load scaling (integer cut targets use ``(s·a) // (s·b) = a // b``
  and scores scale uniformly), so they are stored scale-free; RELAXED node
  decisions involve float rounding and an absolute tie epsilon, so they
  are stored *per scale* and reused only at a matching scale;
* within one entry, facts carry their canonicalized solver-kwargs scope
  (:func:`repro.sweep.state.canonical_scope`) — the same keying the
  in-memory state uses.

File format: one JSON document ``{"format", "version", "payload",
"sha256"}`` where ``sha256`` covers the canonical (sorted, compact)
serialization of ``payload``.  A file that fails to parse, fails the
checksum, or carries another version is **ignored, never trusted** — and
every seeded fact still passes the in-memory validators, so even a
checksum-valid but semantically poisoned store cannot install a
contradiction (seeding stops at the first rejected fact).

Flushing is a read-merge-write: the current file is re-read, the session's
harvest is merged in (upper bounds keep the minimum, conflicting optima
are dropped entirely), and the result is written to a temp file in the
same directory and ``os.replace``-d over the target — atomic on POSIX, so
concurrent flushes end last-writer-wins and never corrupt the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any

import numpy as np

from ..core.prefix import PrefixSum2D
from .state import Scope, SweepInvariantError, SweepState

__all__ = ["SweepStore", "instance_digest", "matrix_digest"]

_FORMAT = "repro-sweep-store"
_VERSION = 1

#: reserved stripe-memo key for whole-matrix probe facts — must match
#: ``repro.jagged.m_opt._PROBE_KEY`` (a deliberate string constant, not an
#: import: the store stays independent of the algorithm packages)
_PROBE_KEY = "f"

#: per-instance caps: entries beyond these are dropped at harvest time
#: (deterministically, keeping the first ones) so one pathological run
#: cannot grow the store without bound
_MAX_TABLE = 512
_MAX_FACTS = 4096


def matrix_digest(A: np.ndarray) -> tuple[str, int]:
    """``(digest, scale)`` of an integer load array (any dimensionality).

    ``scale`` is the gcd of all loads (1 for the zero array); the digest
    hashes dtype, shape, and the primitive array ``A // scale``, so any
    positive-integer multiple of the same primitive maps to the same
    entry.  Shape is part of the hashed material: arrays with identical
    bytes but different shapes get different digests.
    """
    A = np.asarray(A, dtype=np.int64)
    scale = int(np.gcd.reduce(A, axis=None)) if A.size else 1
    if scale <= 0:
        scale = 1
    prim = A // scale
    h = hashlib.sha256()
    h.update(b"int64|")
    h.update(repr(tuple(prim.shape)).encode())
    h.update(b"|")
    h.update(np.ascontiguousarray(prim, dtype=np.int64).tobytes())
    return h.hexdigest(), scale


def instance_digest(pref: PrefixSum2D) -> tuple[str, int]:
    """``(digest, scale)`` of a prefix's underlying load matrix.

    Recovers the load matrix from the inclusive prefix grid and hashes its
    primitive form via :func:`matrix_digest`.  A sparse substrate digests
    itself (streamed dense row blocks, never the full array) to the *same*
    value — warm facts transfer across substrates for one logical matrix.
    """
    digest = getattr(pref, "matrix_digest", None)
    if digest is not None:
        return digest()
    return matrix_digest(np.diff(np.diff(pref.G, axis=0), axis=1))


def _scope_to_json(scope: Scope) -> list:
    return [list(item) for item in scope]


def _scope_from_json(raw: Any) -> Scope:
    return tuple((str(k), str(v)) for k, v in raw)


class SweepStore:
    """One store file: load once, seed/harvest instances, flush atomically.

    The public lifecycle is driven by :func:`repro.sweep.engine.use_sweep`:
    ``load()`` on scope entry, ``seed_state`` as instances are first
    touched, ``harvest_state`` + ``flush()`` on scope exit.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._data: dict[str, dict] = {}
        self._harvest: dict[str, dict] = {}
        #: why the on-disk file was ignored at load time (None = trusted)
        self.ignored_reason: str | None = None
        #: instances seeded from this store (cumulative across scopes) —
        #: a cheap warm-start observability hook for benchmarks
        self.seeded = 0

    # -- file I/O -------------------------------------------------------

    @staticmethod
    def _checksum(payload: dict) -> str:
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def _read_file(self) -> tuple[dict[str, dict], str | None]:
        """Parse the on-disk file; ``(instances, reason-ignored)``."""
        try:
            with open(self.path, "rb") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return {}, None
        except (OSError, ValueError) as exc:
            return {}, f"unreadable: {exc}"
        if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
            return {}, "not a sweep store"
        if doc.get("version") != _VERSION:
            return {}, f"version {doc.get('version')!r} != {_VERSION}"
        payload = doc.get("payload")
        if not isinstance(payload, dict) or not isinstance(
            payload.get("instances"), dict
        ):
            return {}, "malformed payload"
        if doc.get("sha256") != self._checksum(payload):
            return {}, "checksum mismatch"
        return payload["instances"], None

    def load(self) -> None:
        """Read the file into memory; a bad file is ignored, never trusted."""
        self._data, self.ignored_reason = self._read_file()

    def get(self, digest: str) -> dict | None:
        """The loaded entry for ``digest`` (primitive-scale facts), or None."""
        return self._data.get(digest)

    def flush(self) -> None:
        """Merge this session's harvest into the file, atomically.

        Re-reads the file first so concurrent flushers merge instead of
        clobbering each other's facts; the final ``os.replace`` makes the
        outcome last-writer-wins and the file never torn.
        """
        if not self._harvest:
            return
        on_disk, _ = self._read_file()
        for digest, inst in self._harvest.items():
            prev = on_disk.get(digest)
            on_disk[digest] = _merge_instance(prev, inst) if prev else inst
        payload = {"instances": on_disk}
        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "payload": payload,
            "sha256": self._checksum(payload),
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(prefix=".sweep-store-", dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._data = on_disk

    # -- state integration (called by SweepState) -----------------------

    def is_instance(self, obj: Any) -> bool:
        """True for objects the store can content-address (2D prefixes)."""
        return isinstance(obj, PrefixSum2D)

    def _digest_of(self, state: SweepState, pref: PrefixSum2D) -> tuple[str, int]:
        cached = state._digests.get(id(pref))
        if cached is None:
            cached = instance_digest(pref)
            state._digests[id(pref)] = cached
        return cached

    def seed_state(self, state: SweepState, obj: Any) -> None:
        """Install the stored facts for ``obj`` into a live state.

        Every fact goes through the state's validated ``record_*`` API (or
        the memo dicts, whose facts the consumers re-verify by
        construction), rescaled from primitive to the live scale.  A fact
        the validators reject stops the seeding of this instance — facts
        already installed each passed validation individually, so they
        stay.
        """
        if not isinstance(obj, PrefixSum2D):
            return
        digest, c = self._digest_of(state, obj)
        inst = self._data.get(digest)
        if inst is None:
            return
        self.seeded += 1
        try:
            if list(inst.get("shape", ())) != [obj.n1, obj.n2]:
                return
            for cls, raw_scope, opt, ub in inst.get("mono", ()):
                scope = _scope_from_json(raw_scope)
                for ms, B in opt.items():
                    state.record_mono_opt(obj, cls, int(ms), int(B) * c, kw=scope)
                for ms, B in ub.items():
                    state.record_mono_ub(obj, cls, int(ms), int(B) * c, kw=scope)
            for raw_scope, opt, ub in inst.get("grid", ()):
                scope = _scope_from_json(raw_scope)
                for P, Q, B in opt:
                    state.record_grid_opt(obj, int(P), int(Q), int(B) * c, kw=scope)
                for P, Q, B in ub:
                    state.record_grid_ub(obj, int(P), int(Q), int(B) * c, kw=scope)
            self._seed_stripe(state, obj, inst.get("stripe"), c)
            self._seed_rb(state, obj, inst.get("rb"), c)
            self._seed_relaxed(state, obj, inst.get("relaxed"), c)
        except (SweepInvariantError, KeyError, TypeError, ValueError, AttributeError):
            # semantically bad content behind a valid checksum: stop here
            return

    def _seed_stripe(
        self, state: SweepState, pref: PrefixSum2D, raw: Any, c: int
    ) -> None:
        if not raw:
            return
        memo = state.stripe_memo(pref)
        if memo is None:
            return
        probe = [(int(B) * c, int(p), bool(e)) for B, p, e in raw.get("probe", ())]
        if probe:
            memo[_PROBE_KEY] = probe
        for k, i, entries in raw.get("facts", ()):
            memo[(int(k), int(i))] = [
                (int(B) * c, int(p), bool(e)) for B, p, e in entries
            ]

    def _seed_rb(self, state: SweepState, pref: PrefixSum2D, raw: Any, c: int) -> None:
        if not raw:
            return
        memo = state.hier_memo(pref, "rb")
        if memo is None:
            return
        for key, entry in raw:
            r0, r1, c0, c1, dim, g1, g2 = (int(x) for x in key)
            memo[(r0, r1, c0, c1, dim, g1, g2)] = (
                None
                if entry is None
                else (int(entry[0]), int(entry[1]) * c, int(entry[2]))
            )

    def _seed_relaxed(
        self, state: SweepState, pref: PrefixSum2D, raw: Any, c: int
    ) -> None:
        if not raw:
            return
        facts = raw.get(str(c))
        if not facts:
            return  # float decisions only transfer at a matching scale
        memo = state.hier_memo(pref, "relaxed")
        if memo is None:
            return
        for key, entry in facts:
            r0, r1, c0, c1, dim, m = (int(x) for x in key)
            memo[(r0, r1, c0, c1, dim, m)] = (
                None
                if entry is None
                else (int(entry[0]), int(entry[1]), float(entry[2]))
            )

    def harvest_state(self, state: SweepState, obj: Any) -> None:
        """Collect ``obj``'s live facts (rescaled to primitive) for flush."""
        if not isinstance(obj, PrefixSum2D):
            return
        digest, c = self._digest_of(state, obj)
        key = id(obj)
        inst: dict[str, Any] = {"shape": [obj.n1, obj.n2]}

        mono = []
        for (k2, cls, scope), table in state._mono_opt.items():
            if k2 != key:
                continue
            mono.append([cls, scope, dict(table), {}])
        for (k2, cls, scope), table in state._mono_ub.items():
            if k2 != key:
                continue
            for row in mono:
                if row[0] == cls and row[1] == scope:
                    row[3] = dict(table)
                    break
            else:
                mono.append([cls, scope, {}, dict(table)])
        inst["mono"] = [
            [
                cls,
                _scope_to_json(scope),
                {str(m): B // c for m, B in opt.items() if B % c == 0},
                {str(m): B // c for m, B in ub.items() if B % c == 0},
            ]
            for cls, scope, opt, ub in mono[:_MAX_TABLE]
        ]

        grid = {}
        for (k2, scope), table in state._grid_opt.items():
            if k2 == key:
                grid[scope] = [dict(table), {}]
        for (k2, scope), table in state._grid_ub.items():
            if k2 == key:
                grid.setdefault(scope, [{}, {}])[1] = dict(table)
        inst["grid"] = [
            [
                _scope_to_json(scope),
                [[P, Q, B // c] for (P, Q), B in opt.items() if B % c == 0][
                    :_MAX_TABLE
                ],
                [[P, Q, B // c] for (P, Q), B in ub.items() if B % c == 0][
                    :_MAX_TABLE
                ],
            ]
            for scope, (opt, ub) in grid.items()
        ]

        stripe = state._memos.get((key, "stripe"))
        if stripe:
            # parts(c·A', B) = parts(A', ⌊B/c⌋): the floor mapping is exact
            # for integer loads, so the primitive fact carries the same
            # count and exactness as the live one
            probe = stripe.get(_PROBE_KEY) or []
            facts = []
            total = 0
            for mk, entries in stripe.items():
                if mk == _PROBE_KEY:
                    continue
                mapped = _dedupe([[int(B) // c, int(p), bool(e)] for B, p, e in entries])
                total += len(mapped)
                if total > _MAX_FACTS:
                    break
                facts.append([mk[0], mk[1], mapped])
            inst["stripe"] = {
                "probe": _dedupe([[int(B) // c, int(p), bool(e)] for B, p, e in probe]),
                "facts": facts,
            }

        rb = state._memos.get((key, "rb"))
        if rb:
            out = []
            for mk, entry in rb.items():
                if entry is not None and entry[1] % c != 0:
                    continue  # defensive: scores of a scaled matrix divide by c
                out.append(
                    [
                        list(mk),
                        None
                        if entry is None
                        else [int(entry[0]), int(entry[1]) // c, int(entry[2])],
                    ]
                )
                if len(out) >= _MAX_FACTS:
                    break
            inst["rb"] = out

        relaxed = state._memos.get((key, "relaxed"))
        if relaxed:
            out = []
            for mk, entry in relaxed.items():
                out.append(
                    [
                        list(mk),
                        None
                        if entry is None
                        else [int(entry[0]), int(entry[1]), float(entry[2])],
                    ]
                )
                if len(out) >= _MAX_FACTS:
                    break
            inst["relaxed"] = {str(c): out}

        prev = self._harvest.get(digest)
        self._harvest[digest] = _merge_instance(prev, inst) if prev else inst


def _dedupe(entries: list) -> list:
    """Drop duplicate fact triples, preserving first-seen order."""
    seen: dict[tuple, None] = {}
    for e in entries:
        seen.setdefault(tuple(e), None)
    return [list(e) for e in seen][:_MAX_FACTS]


def _merge_instance(base: dict | None, new: dict) -> dict:
    """Merge two primitive-scale instance entries (same digest).

    Upper bounds keep the minimum; optima recorded on both sides with
    different values are *dropped* (one side is wrong — trust neither);
    memo fact lists union with the base side winning duplicates.
    """
    if base is None:
        return new
    if list(base.get("shape", ())) != list(new.get("shape", ())):
        return base
    out: dict[str, Any] = {"shape": base["shape"]}

    mono: dict[tuple, list] = {}
    for src in (base, new):
        for cls, scope, opt, ub in src.get("mono", ()):
            k = (cls, json.dumps(scope))
            row = mono.setdefault(k, [cls, scope, {}, {}])
            for m, B in opt.items():
                prev = row[2].get(m)
                if prev is None:
                    row[2][m] = B
                elif prev != B:
                    row[2][m] = None  # conflict marker
            for m, B in ub.items():
                prev = row[3].get(m)
                row[3][m] = B if prev is None else min(prev, B)
    out["mono"] = [
        [cls, scope, {m: B for m, B in opt.items() if B is not None}, ub]
        for cls, scope, opt, ub in mono.values()
    ]

    grid: dict[str, list] = {}
    for src in (base, new):
        for scope, opt, ub in src.get("grid", ()):
            k = json.dumps(scope)
            row = grid.setdefault(k, [scope, {}, {}])
            for P, Q, B in opt:
                prev = row[1].get((P, Q))
                if prev is None:
                    row[1][(P, Q)] = B
                elif prev != B:
                    row[1][(P, Q)] = None
            for P, Q, B in ub:
                prev = row[2].get((P, Q))
                row[2][(P, Q)] = B if prev is None else min(prev, B)
    out["grid"] = [
        [
            scope,
            [[P, Q, B] for (P, Q), B in opt.items() if B is not None],
            [[P, Q, B] for (P, Q), B in ub.items()],
        ]
        for scope, opt, ub in grid.values()
    ]

    sb, sn = base.get("stripe"), new.get("stripe")
    if sb or sn:
        sb, sn = sb or {}, sn or {}
        facts: dict[tuple[int, int], list] = {}
        for src in (sb, sn):
            for k, i, entries in src.get("facts", ()):
                cur = facts.setdefault((int(k), int(i)), [])
                cur.extend(entries)
        out["stripe"] = {
            "probe": _dedupe(list(sb.get("probe", ())) + list(sn.get("probe", ()))),
            "facts": [
                [k, i, _dedupe(entries)] for (k, i), entries in facts.items()
            ][:_MAX_FACTS],
        }

    for fam in ("rb",):
        fb, fn = base.get(fam), new.get(fam)
        if fb or fn:
            merged: dict[tuple, Any] = {}
            for src in (fn or (), fb or ()):  # base last: base wins
                for mk, entry in src:
                    merged[tuple(mk)] = entry
            out[fam] = [[list(mk), entry] for mk, entry in merged.items()][:_MAX_FACTS]

    rb_, rn = base.get("relaxed"), new.get("relaxed")
    if rb_ or rn:
        scales: dict[str, dict] = {}
        for src in (rn or {}, rb_ or {}):  # base last: base wins
            for scale, factlist in src.items():
                merged = scales.setdefault(scale, {})
                for mk, entry in factlist:
                    merged[tuple(mk)] = entry
        out["relaxed"] = {
            scale: [[list(mk), entry] for mk, entry in merged.items()][:_MAX_FACTS]
            for scale, merged in scales.items()
        }
    return out
