"""Cross-call warm-start engine for m-sweeps (``repro.sweep``).

Public surface:

* :func:`~repro.sweep.engine.sweep` — run ``algorithms × m_values`` over
  one matrix with warm starts, bit-identical to cold calls;
* :func:`~repro.sweep.engine.use_sweep` — the scoped context the engine
  (and the experiment suite's figure loops) run inside; takes an optional
  disk-backed store;
* :class:`~repro.sweep.store.SweepStore` — content-addressed persistence
  of sweep facts across processes (``REPRO_SWEEP_STORE`` /
  ``repro-experiments --sweep-store``);
* :class:`~repro.sweep.state.SweepState` / ``SweepInvariantError`` — the
  validated per-sweep bound store, facts keyed by canonicalized solver
  kwargs (:func:`~repro.sweep.state.canonical_scope`).

The engine imports the algorithm registry, and the algorithm modules import
:mod:`repro.sweep.state`; the engine symbols are therefore exported lazily
(PEP 562) so importing an algorithm module never cycles through the engine.
"""

from __future__ import annotations

from .state import (
    SweepInvariantError,
    SweepState,
    canonical_scope,
    current,
    sweep_active,
)

__all__ = [
    "SweepInvariantError",
    "SweepState",
    "SweepResult",
    "SweepStore",
    "canonical_scope",
    "current",
    "instance_digest",
    "set_default_store",
    "sweep",
    "sweep_active",
    "use_sweep",
]

_ENGINE_EXPORTS = {"sweep", "use_sweep", "SweepResult", "set_default_store"}
_STORE_EXPORTS = {"SweepStore", "instance_digest"}


def __getattr__(name: str):  # PEP 562: lazy engine import (cycle avoidance)
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    if name in _STORE_EXPORTS:
        from . import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
