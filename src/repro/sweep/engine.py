"""The sweep engine: run many ``(algorithm, m)`` cells over one matrix.

``sweep(A, algorithms, m_values)`` is the public entry point the experiment
suite routes its per-figure m-loops through.  It opens a
:class:`~repro.sweep.state.SweepState` context, builds the prefix once, and
evaluates every cell with warm starts flowing between calls:

* exact solvers consume and produce monotone bottleneck bounds
  (:mod:`repro.sweep.state`), and share the JAG-M-OPT stripe memo;
* heuristics deposit their achieved max loads as feasible witnesses;
* the single shared :class:`~repro.core.prefix.PrefixSum2D` keeps its
  projection cache and cached transpose hot across every cell.

The contract is the repo's established one: **bit-identity**.  For every
algorithm and every sweep order, the partition returned for a cell equals
the partition a cold call (fresh prefix, no sweep context) returns —
enforced by ``tests/test_sweep.py`` and by ``benchmarks/perf_regress.py
--sweep``.  Internally the engine may therefore execute cells in any order
it likes; it visits ``m`` values in descending order, which maximizes
lower-bound transfer (an optimum at a large ``m`` proves infeasibility
just below it for every smaller ``m``) without affecting any result.

Composition with the parallel layer: the sweep context lives in the parent
process only.  Worker processes of :mod:`repro.parallel` never consult it —
they execute per-stripe solves whose inputs are already fixed — so
``use_sweep`` composes with ``use_parallel`` / ``--jobs`` unchanged.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.partition import Partition
from ..core.prefix import MatrixLike, PrefixSum2D, prefix_2d
from .state import _STACK, SweepState
from .store import SweepStore

__all__ = ["SweepResult", "set_default_store", "sweep", "use_sweep"]

#: module-level default store path (set by ``--sweep-store``); the
#: ``REPRO_SWEEP_STORE`` env var is the fallback, read at scope entry so
#: spawned worker processes inherit it through the environment
_DEFAULT_STORE: str | None = None


def set_default_store(path: str | None) -> None:
    """Set the process-wide default store path (None restores the env var)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = path


def _resolve_store(store: SweepStore | str | os.PathLike | None) -> SweepStore | None:
    if store is None:
        path = _DEFAULT_STORE or os.environ.get("REPRO_SWEEP_STORE") or None
        return SweepStore(path) if path else None
    if isinstance(store, SweepStore):
        return store
    return SweepStore(store)


@contextmanager
def use_sweep(
    store: SweepStore | str | os.PathLike | None = None,
) -> Iterator[SweepState]:
    """Open a warm-start scope: calls inside share proven bounds.

    Results stay bit-identical to cold calls; only the work to reach them
    shrinks.  Contexts nest — the innermost state wins — and the state
    (with every strong reference it holds) is dropped when the block exits.

    ``store`` optionally attaches a disk-backed fact store
    (:class:`~repro.sweep.store.SweepStore`, or a path): persisted facts
    for instances touched inside the scope are loaded on first touch and
    the scope's proven facts are flushed back on exit.  With no explicit
    argument, :func:`set_default_store` and then the ``REPRO_SWEEP_STORE``
    env var are consulted.  A flush failure (e.g. an unwritable path) is
    reported as a :class:`RuntimeWarning`, never an exception — the
    in-memory results are already correct without the store.
    """
    resolved = _resolve_store(store)
    if resolved is not None:
        resolved.load()
    state = SweepState(store=resolved)
    _STACK.append(state)
    try:
        yield state
    finally:
        _STACK.remove(state)
        try:
            state.flush_to_store()
        except (OSError, ValueError) as exc:
            warnings.warn(f"sweep store flush failed: {exc}", RuntimeWarning)


@dataclass
class SweepResult:
    """Results of one :func:`sweep` call.

    ``parts[(name, m)]`` is the partition of algorithm ``name`` at ``m``;
    ``pref`` is the shared prefix every cell ran against.
    """

    pref: PrefixSum2D
    algorithms: tuple[str, ...]
    m_values: tuple[int, ...]
    parts: dict[tuple[str, int], Partition] = field(default_factory=dict)

    def __getitem__(self, key: tuple[str, int]) -> Partition:
        name, m = key
        return self.parts[(name.upper(), int(m))]

    def bottlenecks(self) -> dict[tuple[str, int], int]:
        """Max load of every cell, against the shared prefix."""
        return {k: p.max_load(self.pref) for k, p in self.parts.items()}

    def __iter__(self) -> Iterator[tuple[tuple[str, int], Partition]]:
        return iter(self.parts.items())

    def __len__(self) -> int:
        return len(self.parts)


def sweep(
    A: MatrixLike,
    algorithms: Sequence[str] | str,
    m_values: Sequence[int],
    *,
    store: SweepStore | str | os.PathLike | None = None,
    **kw: object,
) -> SweepResult:
    """Partition ``A`` with every algorithm at every ``m``, warm-started.

    Parameters
    ----------
    A:
        Load matrix or prebuilt :class:`~repro.core.prefix.PrefixSum2D`.
    algorithms:
        Registry names (see :data:`repro.core.registry.ALGORITHMS`), in the
        order warm facts should flow — heuristics before exact solvers lets
        the solvers start from the heuristic witnesses, mirroring Figure 7.
    m_values:
        Processor counts to sweep.
    store:
        Optional disk-backed fact store (or a path) — see
        :func:`use_sweep`.
    **kw:
        Forwarded to every algorithm call (e.g. ``num_stripes``).  Facts
        recorded by kwargs-sensitive producers are scoped by those kwargs
        (:func:`repro.sweep.state.canonical_scope`), so cells run with
        different kwargs never share a ``(class, m)`` bound unsoundly.

    Returns
    -------
    SweepResult
        Every cell's partition, bit-identical to per-``m`` cold calls.
    """
    from ..core.registry import partition_2d

    if isinstance(algorithms, str):
        algorithms = (algorithms,)
    names = tuple(a.upper() for a in algorithms)
    ms = tuple(int(m) for m in m_values)
    pref = prefix_2d(A)
    result = SweepResult(pref=pref, algorithms=names, m_values=ms)
    with use_sweep(store=store):
        for name in names:
            # descending m: large-m optima prove lower bounds for every
            # smaller m (see module docstring); results are order-invariant
            for m in sorted(set(ms), reverse=True):
                result.parts[(name, m)] = partition_2d(pref, m, name, **kw)
    return result
