"""Extension experiments beyond the paper's figures (its §5 future work).

* :func:`ext1_comm_volume` — "investigate the effect of these different
  partitioning schemes in communication cost": communication volume (grid
  edges crossing owners) of every heuristic vs m on the PIC-MAG snapshot.
* :func:`ext2_migration_tradeoff` — "taking into account data migration
  costs in dynamic applications": imbalance vs migrated load for full
  repartitioning vs :class:`repro.dynamic.IncrementalJagged` at several
  thresholds, over the PIC-MAG run.
* :func:`ext3_stripe_autotuning` — the Theorem 4 / auto stripe count of
  JAG-M-HEUR against the paper's √m default (the Figure 13 weak spots).
* :func:`ext4_volume_3d` — the 2D algorithms' 3D lifts on a 3D PIC-like
  load volume.
* :func:`ext5_registry_coverage` — every registry entry the paper's figures
  leave out (exact methods, orientation variants, §3.4 spiral schemes) on a
  tiny common instance, so the RPL007 lint gate holds: no registered
  algorithm goes unmeasured.
* :func:`ext6_spmv_sparse` — the intro's spmv use case ([1]–[3]) at the
  profile's histogram resolution; at the ``large`` profile the instance
  builds on the sparse CSR substrate straight from the edge stream (4096²,
  never densified) — the substrate the tentpole exists for.
* :func:`ext7_policy_comparison` — "integrate the proposed algorithms in a
  real dynamic application and study their end-to-end effects": cumulative
  simulated BSP time (compute + communication + migration) of the
  repartitioning policies of :mod:`repro.dynamic.policies` over the PIC-MAG
  run.

All return :class:`~repro.experiments.harness.FigureResult` like the paper
figures and are exercised by ``benchmarks/bench_ext_experiments.py``.
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import communication_volume, migration_volume
from ..core.prefix import PrefixSum2D
from ..core.registry import ALGORITHMS
from ..dynamic import (
    EveryK,
    ImbalanceTriggered,
    IncrementalJagged,
    MigrationBudgeted,
)
from ..instances import peak
from ..jagged.m_heur import jag_m_heur
from ..runtime import BSPSimulator
from ..volume import PrefixSum3D, vol_hier_rb, vol_jag_m_heur, vol_uniform
from .figures import HEURISTICS, _imb_cell, _pic_dataset
from .harness import FigureResult
from .rawstore import cell as raw_cell
from .rawstore import combine_digests, digest_matrix, digest_prefix
from .scale import get_scale

__all__ = [
    "ext1_comm_volume",
    "ext2_migration_tradeoff",
    "ext3_stripe_autotuning",
    "ext4_volume_3d",
    "ext5_registry_coverage",
    "ext6_spmv_sparse",
    "ext7_policy_comparison",
    "ALL_EXTENSIONS",
]


def ext1_comm_volume(scale=None) -> FigureResult:
    """Communication volume of every heuristic vs m (PIC-MAG snapshot)."""
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    A = ds.snapshot(sc.pic_fig13_iteration)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "ext1",
        f"Communication volume on PIC-MAG iter={sc.pic_fig13_iteration}",
        "m",
        "crossing edges",
        notes=f"scale={sc.name}; §5 extension (not a paper figure)",
    )
    dig = digest_prefix(pref)
    for m in sc.m_values:
        for name in HEURISTICS:
            v = raw_cell(
                sc.name,
                dig,
                name,
                m,
                lambda name=name, m=m: int(
                    communication_volume(ALGORITHMS[name](pref, m))
                ),
                metric="comm_volume",
            )
            res.add(name, m, v)
    return res


def ext2_migration_tradeoff(scale=None) -> FigureResult:
    """Imbalance/migration trade-off of incremental repartitioning."""
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    m = sc.m_fig8
    res = FigureResult(
        "ext2",
        f"Migration vs imbalance over the PIC-MAG run, m={m}",
        "threshold",
        "value",
        notes=f"scale={sc.name}; series: total migrated load (fraction of "
        "total work moved per step) and mean imbalance",
    )
    snaps = [PrefixSum2D(A) for _, A in ds.snapshots()]
    # one cell per threshold: the value is a function of the whole snapshot
    # stream, so the instance coordinate is the combined stream digest
    sig = combine_digests(digest_prefix(p) for p in snaps)

    def _series(thr: float) -> list:
        inc = IncrementalJagged(m, threshold=thr)
        prev = None
        migration = 0
        imbs = []
        for pref in snaps:
            part = inc.step(pref)
            if prev is not None:
                migration += migration_volume(prev, part, pref)
            prev = part
            imbs.append(part.imbalance(pref))
        total_work = sum(p.total for p in snaps)
        return [
            float(migration / total_work),
            float(np.mean(imbs)),
            int(inc.full_repartitions),
        ]

    for thr in (0.0, 0.05, 0.1, 0.2, 0.4):
        migrated, mean_imb, full = raw_cell(
            sc.name,
            sig,
            "INC-JAGGED",
            m,
            lambda thr=thr: _series(thr),
            metric="migration_series",
            threshold=thr,
        )
        res.add("migrated fraction", thr, migrated)
        res.add("mean imbalance", thr, mean_imb)
        res.add("full repartitions", thr, full)
    return res


def ext3_stripe_autotuning(scale=None) -> FigureResult:
    """JAG-M-HEUR stripe-count policies: √m vs Theorem 4 vs auto sweep."""
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    A = ds.snapshot(sc.pic_fig13_iteration)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "ext3",
        f"JAG-M-HEUR stripe policies on PIC-MAG iter={sc.pic_fig13_iteration}",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; Theorem 4 uses the measured delta",
    )
    dig = digest_prefix(pref)
    for m in sc.m_values:
        for policy in ("sqrt", "theorem4", "auto"):
            v = raw_cell(
                sc.name,
                dig,
                "JAG-M-HEUR",
                m,
                lambda policy=policy, m=m: float(
                    jag_m_heur(pref, m, num_stripes=policy).imbalance(pref)
                ),
                num_stripes=policy,
            )
            res.add(policy, m, v)
    return res


def ext4_volume_3d(scale=None) -> FigureResult:
    """3D lifts (VOL-UNIFORM / VOL-JAG-M-HEUR / VOL-HIER-RB) on a 3D blob."""
    sc = get_scale(scale)
    n = max(16, sc.pic.grid // 4)
    i, j, k = np.meshgrid(*[np.arange(n)] * 3, indexing="ij")
    A = (
        1000
        + 5000
        * np.exp(
            -(
                ((i - 0.3 * n) ** 2 + (j - 0.6 * n) ** 2 + (k - 0.5 * n) ** 2)
                / (2 * (0.15 * n) ** 2)
            )
        )
    ).astype(np.int64)
    pref = PrefixSum3D(A)
    res = FigureResult(
        "ext4",
        f"3D partitioning of a {n}^3 load volume",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; rectangular volumes (paper §1)",
    )
    dig = digest_matrix(A)
    for m in sc.m_values:
        for name, fn in (
            ("VOL-UNIFORM", vol_uniform),
            ("VOL-JAG-M-HEUR", vol_jag_m_heur),
            ("VOL-HIER-RB", vol_hier_rb),
        ):
            v = raw_cell(
                sc.name,
                dig,
                name,
                m,
                lambda fn=fn, m=m: float(fn(pref, m).imbalance(pref)),
            )
            res.add(name, m, v)
    return res


#: registry entries no paper figure reaches (RPL007): the exact methods the
#: paper caps or omits, the §3.4 spiral schemes, and the explicit orientation
#: variants of the jagged algorithms (§4.1; the figures use the -BEST default)
_UNCOVERED_ENTRIES = (
    "HIER-OPT",
    "SPIRAL-RELAXED",
    "SPIRAL-OPT",
    "JAG-PQ-HEUR-HOR",
    "JAG-PQ-HEUR-VER",
    "JAG-PQ-HEUR-BEST",
    "JAG-PQ-OPT-HOR",
    "JAG-PQ-OPT-VER",
    "JAG-PQ-OPT-BEST",
    "JAG-M-HEUR-HOR",
    "JAG-M-HEUR-VER",
    "JAG-M-HEUR-BEST",
    "JAG-M-OPT-HOR",
    "JAG-M-OPT-VER",
    "JAG-M-OPT-BEST",
)


def ext5_registry_coverage(scale=None) -> FigureResult:
    """Imbalance of every otherwise-unexercised registry entry vs m.

    Closes the registry↔experiments coverage gap RPL007 guards: the exact
    methods (HIER-OPT and the jagged -OPT variants are exponential-ish in
    cost, so the figures cap or skip them), the §3.4 spiral schemes, and the
    explicit -HOR/-VER/-BEST orientations all run on one tiny Peak instance.
    Doubles as a sanity check: every exact method must beat or match its
    heuristic on the common instance (asserted in ``tests/test_experiments.py``).
    """
    sc = get_scale(scale)
    n = min(sc.n_peak, 20)  # exact DPs: keep the common instance tiny
    pref = PrefixSum2D(peak(n, seed=0))
    res = FigureResult(
        "ext5",
        f"Registry coverage sweep on {n}x{n} Peak",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; entries no paper figure exercises (RPL007)",
    )
    dig = digest_prefix(pref)
    for m in (2, 4, 6):
        for name in _UNCOVERED_ENTRIES:
            res.add(name, m, _imb_cell(sc.name, dig, name, m, pref))
    return res


def ext6_spmv_sparse(scale=None) -> FigureResult:
    """All heuristics on the R-MAT spmv nonzero histogram vs m.

    The intro's first application class (2D-decomposed sparse linear
    algebra, refs [1]–[3]) at the profile's ``n_spmv`` blocking resolution.
    At the ``large`` profile the 4096² histogram is built straight from the
    edge stream onto the sparse CSR substrate
    (:func:`repro.instances.spmv.spmv_sparse` — O(nnz) memory, digest-equal
    to the densified instance, so raw-store cells transfer across
    substrates); the other profiles densify as before.
    """
    sc = get_scale(scale)
    if sc.name == "large":
        from ..instances.spmv import spmv_sparse

        pref = spmv_sparse(sc.n_spmv, model="rmat", seed=0)
    else:
        from ..instances.spmv import spmv_instance

        pref = PrefixSum2D(spmv_instance(sc.n_spmv, model="rmat", seed=0))
    res = FigureResult(
        "ext6",
        f"All heuristics on R-MAT spmv {sc.n_spmv}x{sc.n_spmv}",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; §1 spmv use case (not a paper figure)",
    )
    dig = digest_prefix(pref)
    for m in sc.m_values:
        for name in HEURISTICS:
            res.add(name, m, _imb_cell(sc.name, dig, name, m, pref))
    return res


def ext7_policy_comparison(scale=None) -> FigureResult:
    """End-to-end simulated BSP cost of the repartitioning policies (§5).

    Each policy drives :class:`repro.runtime.BSPSimulator` over the whole
    PIC-MAG snapshot stream with the JAG-M-HEUR solver at ``m_fig11``
    processors; the figure plots cumulative simulated time (compute +
    communication + migration, default :class:`~repro.runtime.CostModel`)
    against iteration.  One raw-store cell per policy, keyed by the combined
    stream digest — the per-step series is cached, the cumulative sum is
    recomputed at plot time.
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    m = sc.m_fig11
    snaps = [(it, PrefixSum2D(A)) for it, A in ds.snapshots()]
    sig = combine_digests(digest_prefix(p) for _, p in snaps)
    res = FigureResult(
        "ext7",
        f"Repartitioning policies over the PIC-MAG run, m={m}",
        "iteration",
        "cumulative simulated time (s)",
        notes=f"scale={sc.name}; JAG-M-HEUR solver, default cost model, "
        f"steps_per_snapshot={sc.pic_period}; §5 extension (not a paper "
        "figure)",
    )
    solver = ALGORITHMS["JAG-M-HEUR"]
    policies = {
        "every-1": lambda: EveryK(1),
        "static": lambda: EveryK(0),
        "imbalance-0.1": lambda: ImbalanceTriggered(0.1),
        "budgeted-h5": lambda: MigrationBudgeted(),
        "incremental-0.1": lambda: IncrementalJagged(m, threshold=0.1),
    }

    def _series(make) -> list:
        rep = BSPSimulator(m, solver, policy=make()).run(
            snaps, steps_per_snapshot=sc.pic_period
        )
        return [
            [float(s.total_time) for s in rep.steps],
            [int(s.repartitioned) for s in rep.steps],
        ]

    for pname, make in policies.items():
        times, _reparts = raw_cell(
            sc.name,
            sig,
            "JAG-M-HEUR",
            m,
            lambda make=make: _series(make),
            metric="policy_sim",
            policy=pname,
        )
        cum = 0.0
        for (it, _), t in zip(snaps, times):
            cum += t
            res.add(pname, it, cum)
    return res


#: extension id -> callable
ALL_EXTENSIONS = {
    "ext1": ext1_comm_volume,
    "ext2": ext2_migration_tradeoff,
    "ext3": ext3_stripe_autotuning,
    "ext4": ext4_volume_3d,
    "ext5": ext5_registry_coverage,
    "ext6": ext6_spmv_sparse,
    "ext7": ext7_policy_comparison,
}
