"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Regenerates any subset of the paper's figures as text tables and CSV files::

    repro-experiments --figures fig07 fig12 --scale small --out results/
    repro-experiments --all --scale paper
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from pathlib import Path

from ..parallel.config import use_parallel
from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .rawstore import current_raw_store, set_default_raw_store
from .scale import get_scale

ALL_RUNNABLE = {**ALL_FIGURES, **ALL_EXTENSIONS}

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of 'Partitioning Spatially "
        "Located Computations using Rectangles' (IPDPS 2011).",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        metavar="FIG",
        choices=sorted(ALL_RUNNABLE),
        help=f"figures to run ({', '.join(sorted(ALL_RUNNABLE))})",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale",
        default=None,
        choices=("tiny", "small", "paper"),
        help="parameter profile (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write one CSV per figure into DIR",
    )
    parser.add_argument(
        "--gallery",
        type=Path,
        default=None,
        metavar="DIR",
        help="write the Figure 1/Figure 2 image gallery (PPM) into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for figure cells and per-algorithm dispatch "
        "(default 1 = serial; outputs are byte-identical for any N)",
    )
    parser.add_argument(
        "--sweep-store",
        type=Path,
        default=None,
        metavar="PATH",
        help="persist sweep facts to PATH across runs (content-addressed; "
        "results stay byte-identical, repeat runs start warm; equivalent "
        "to setting $REPRO_SWEEP_STORE)",
    )
    parser.add_argument(
        "--raw-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="raw-result store: completed figure cells are flushed to DIR "
        "atomically and reused on the next run (incremental, resumable; "
        "equivalent to setting $REPRO_RAW_STORE)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every raw cell cold (fresh results still refresh "
        "the raw store)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.raw_dir is not None:
        set_default_raw_store(args.raw_dir, force=args.force)
    elif args.force:
        store = current_raw_store()
        if store is None:
            parser.error("--force needs a raw store (--raw-dir or $REPRO_RAW_STORE)")
        store.force = True
    if args.sweep_store is not None:
        import os

        from ..sweep import set_default_store

        # set the env var too (not just the module default) so spawned
        # pool workers inherit the store path with the environment
        store_path = os.fspath(args.sweep_store)
        os.environ["REPRO_SWEEP_STORE"] = store_path
        set_default_store(store_path)
    figs = sorted(ALL_RUNNABLE) if args.all else (args.figures or [])
    if not figs and args.gallery is None:
        parser.error("choose figures with --figures, run --all, or use --gallery")
    if args.gallery is not None:
        from .gallery import make_gallery

        for path in make_gallery(args.gallery, get_scale(args.scale)):
            print(f"# wrote {path}", file=sys.stderr)
    scale = get_scale(args.scale)
    print(f"# scale profile: {scale.name}", file=sys.stderr)
    # every figure is deterministic and pmap preserves item order, so the
    # tables and CSVs below are byte-identical for any --jobs value
    ctx = use_parallel(True, workers=args.jobs) if args.jobs > 1 else nullcontext()
    with ctx:
        for fig in figs:
            store = current_raw_store()
            before = store.counters() if store is not None else {}
            t0 = time.perf_counter()
            result = ALL_RUNNABLE[fig](scale)
            dt = time.perf_counter() - t0
            print(result.to_table())
            if store is not None:
                delta = {
                    k: v - before[k] for k, v in store.counters().items()
                }
                print(
                    f"# raw-store {fig}: "
                    + " ".join(f"{k}={delta[k]}" for k in ("hits", "misses", "invalid")),
                    file=sys.stderr,
                )
            print(f"# generated in {dt:.1f}s\n", file=sys.stderr)
            if args.out is not None:
                path = result.to_csv(args.out / f"{fig}.csv")
                print(f"# wrote {path}", file=sys.stderr)
    if args.jobs > 1:
        from ..parallel.pool import shutdown_pool

        shutdown_pool()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
