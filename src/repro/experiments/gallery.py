"""Image gallery: regenerate the paper's illustration figures as PPM files.

* **Figure 1** — one partition image per solution class (rectilinear,
  P×Q-way jagged, m-way jagged, hierarchical, spiral) on a Peak instance;
* **Figure 2** — one load-matrix image per instance class (PIC-MAG, SLAC,
  diagonal, peak, multi-peak, uniform), "the whiter the more computation".

Pure-NumPy PPM output (:mod:`repro.core.render`); no plotting dependency.
"""

from __future__ import annotations

from pathlib import Path

from ..core.partition import Partition
from ..core.prefix import PrefixSum2D
from ..core.rectangle import Rect
from ..core.registry import ALGORITHMS
from ..core.render import save_ppm
from ..instances import diagonal, multi_peak, peak, slac_instance, uniform
from ..instances.pic import PICConfig, PICMagDataset
from .scale import get_scale

__all__ = ["make_gallery"]

#: Figure 1's partition classes, reproduced with the implemented algorithms
FIG1_CLASSES = (
    ("rectilinear", "RECT-NICOL"),
    ("pq_jagged", "JAG-PQ-HEUR"),
    ("m_jagged", "JAG-M-HEUR"),
    ("hierarchical", "HIER-RB"),
    ("spiral", "SPIRAL-RELAXED"),
)


def make_gallery(out_dir: str | Path, scale=None, *, n: int = 96, m: int = 20) -> list[Path]:
    """Write the Figure 1 / Figure 2 galleries; returns the created paths."""
    sc = get_scale(scale)
    out = Path(out_dir)
    paths: list[Path] = []

    # Figure 1: partition structures on one Peak instance
    A = peak(n, seed=7)
    for label, algo in FIG1_CLASSES:
        part = ALGORITHMS[algo](A, m)
        paths.append(save_ppm(part, out / f"fig1_{label}.ppm", A=A, scale=2))

    # Figure 2: the instance classes (single-rectangle partition = pure
    # load shading, the paper's grayscale style)
    instances = {
        "uniform": uniform(n, 1.2, seed=0),
        "diagonal": diagonal(n, seed=0),
        "peak": peak(n, seed=0),
        "multi_peak": multi_peak(n, seed=0),
        "slac": slac_instance(max(n, 64)),
    }
    pic = PICMagDataset(
        PICConfig(grid=max(n, 64), particles=20_000, seed=5),
        period=2_000,
        max_iteration=2_000,
        cache=False,
    )
    instances["pic_mag"] = pic.snapshot(2_000)
    for label, mat in instances.items():
        pref = PrefixSum2D(mat)
        whole = Partition([Rect(0, pref.n1, 0, pref.n2)], pref.shape)
        paths.append(save_ppm(whole, out / f"fig2_{label}.ppm", A=pref, scale=2))
    return paths
