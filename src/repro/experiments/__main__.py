"""``python -m repro.experiments`` — see :mod:`repro.experiments.cli`."""

from .cli import main

raise SystemExit(main())
