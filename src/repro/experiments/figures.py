"""Reproduction of every evaluation figure of the paper (Figures 3–14).

Each ``figNN_*`` function regenerates the series of the corresponding figure
(workload, parameter sweep, baselines) and returns a
:class:`~repro.experiments.harness.FigureResult`.  Figures 1–2 of the paper
are illustrations, not results, and the paper contains no numbered result
tables — Figures 3–14 are the complete evaluation.

All functions accept ``scale`` (``"small"`` default, ``"paper"`` for the
paper's sizes — see :mod:`repro.experiments.scale`) and are deterministic.
"""

from __future__ import annotations


from ..core.prefix import PrefixSum2D
from ..core.registry import ALGORITHMS
from ..instances import diagonal, multi_peak, peak, slac_instance, uniform
from ..instances.pic import PICMagDataset
from ..jagged.m_heur import jag_m_heur
from ..parallel.pool import pmap, pmap_batched
from ..sweep import use_sweep
from ..sweep.state import canonical_scope
from ..theory.bounds import theorem3_ratio
from .harness import FigureResult, timed
from .rawstore import (
    MISS,
    RawStore,
    cell as raw_cell,
    current_raw_store,
    digest_matrix,
    digest_prefix,
)
from .scale import Scale, get_scale

__all__ = [
    "fig03_hier_rb_variants",
    "fig04_hier_relaxed_variants",
    "fig05_hier_relaxed_diagonal",
    "fig06_runtime",
    "fig07_jagged_vs_m",
    "fig08_jagged_vs_iteration",
    "fig09_stripe_count",
    "fig10_hier_diagonal",
    "fig11_hier_vs_iteration",
    "fig12_all_vs_iteration",
    "fig13_all_vs_m",
    "fig14_slac",
    "ALL_FIGURES",
]

#: the heuristic set of Figures 12–14
HEURISTICS = (
    "RECT-UNIFORM",
    "RECT-NICOL",
    "JAG-PQ-HEUR",
    "JAG-M-HEUR",
    "HIER-RB",
    "HIER-RELAXED",
)


def _pic_dataset(sc: Scale) -> PICMagDataset:
    return PICMagDataset(
        sc.pic, period=sc.pic_period, max_iteration=sc.pic_max_iteration
    )


#: instance families the averaged synthetic figures draw from, named by a
#: picklable ``(family, n)`` spec so the per-seed cells can run in pool workers
_INSTANCE_FAMILIES = {
    "peak": peak,
    "multi_peak": multi_peak,
}


def _imbalance_cell(payload) -> tuple[int, float]:
    """One seeded (instance, algorithm, m) cell: ``(Lmax, Lavg)``.

    Top-level and driven by a picklable payload so ``repro-experiments
    --jobs N`` can fan the cells of a figure out over the worker pool.
    """
    family, n, seed, algo, m, kw = payload
    A = _INSTANCE_FAMILIES[family](n, seed=seed)
    pref = PrefixSum2D(A)
    part = ALGORITHMS[algo](pref, m, **kw)
    return part.max_load(pref), pref.total / m


def _avg_imbalance(
    spec: tuple[str, int], seeds: int, algo: str, m: int, **kw
) -> float:
    """Paper's synthetic-dataset metric: ``sum_I Lmax(I) / sum_I Lavg(I) - 1``.

    ``spec`` names the instance family and size, e.g. ``("peak", 1024)``.
    The cells are independent; :func:`~repro.parallel.pool.pmap` preserves
    seed order, so the float reduction is bit-identical for any worker count.
    """
    cells = pmap(_imbalance_cell, [(spec[0], spec[1], s, algo, m, kw) for s in range(seeds)])
    lmax_sum = sum(lmax for lmax, _ in cells)
    lavg_sum = 0.0
    for _, lavg in cells:
        lavg_sum += lavg
    return lmax_sum / lavg_sum - 1.0


def _avg_imbalance_grid(
    spec: tuple[str, int],
    seeds: int,
    grid: list[tuple[str, int, dict]],
    profile: str | None = None,
) -> list[float]:
    """Whole-sweep twin of :func:`_avg_imbalance`: every ``(algo, m)`` at once.

    Per-cell pool dispatch pays a round trip per *seed*; a figure sweep has
    ``len(grid) × seeds`` sub-millisecond cells, so the round trips dominate.
    Shipping the full grid through one :func:`~repro.parallel.pool.pmap_batched`
    call amortizes dispatch over whole chunks while the reduction below runs
    per cell in seed order — bit-identical to calling
    :func:`_avg_imbalance` cell by cell, for any worker count.

    With an ambient raw store (and a ``profile`` name to key under), the
    parent resolves every per-seed cell against the store first, ships only
    the misses — in chunks, flushing each chunk's results before the next
    dispatch, so an interrupted run resumes from the flushed cells — and
    reassembles in payload order, keeping the reduction bit-identical.
    """
    payloads = [
        (spec[0], spec[1], s, algo, m, kw)
        for algo, m, kw in grid
        for s in range(seeds)
    ]
    store = current_raw_store()
    if store is None or profile is None:
        cells = pmap_batched(_imbalance_cell, payloads)
    else:
        family, n = spec
        digests = [
            digest_matrix(_INSTANCE_FAMILIES[family](n, seed=s)) for s in range(seeds)
        ]
        keys = [
            RawStore.make_key(
                profile=profile,
                digest=digests[s],
                algo=algo,
                m=m,
                scope=canonical_scope(kw),
                metric="lmax_lavg",
            )
            for _, _, s, algo, m, kw in payloads
        ]
        cells = [store.load(k) for k in keys]
        miss_idx = [i for i, v in enumerate(cells) if v is MISS]
        chunk = max(8, seeds * 2)
        for start in range(0, len(miss_idx), chunk):
            idxs = miss_idx[start : start + chunk]
            fresh = pmap_batched(_imbalance_cell, [payloads[i] for i in idxs])
            for i, (lmax, lavg) in zip(idxs, fresh):
                val = [int(lmax), float(lavg)]
                store.store(keys[i], val)
                cells[i] = val
    out = []
    for c in range(len(grid)):
        block = cells[c * seeds : (c + 1) * seeds]
        lmax_sum = sum(lmax for lmax, _ in block)
        lavg_sum = 0.0
        for _, lavg in block:
            lavg_sum += lavg
        out.append(lmax_sum / lavg_sum - 1.0)
    return out


def _imb_cell(profile: str, dig: str, algo: str, m: int, pref) -> float:
    """One raw-store-resolved imbalance cell of a registry algorithm."""
    return raw_cell(
        profile,
        dig,
        algo,
        m,
        lambda: float(ALGORITHMS[algo](pref, m).imbalance(pref)),
    )


# ----------------------------------------------------------------------
# Figure 3 — HIER-RB variants on Peak
# ----------------------------------------------------------------------
def fig03_hier_rb_variants(scale=None) -> FigureResult:
    """HIER-RB LOAD/DIST/HOR/VER on a Peak instance, imbalance vs m (Fig 3).

    Paper: 1024×1024 Peak; load imbalance grows with m and the -LOAD variant
    achieves the overall best balance.
    """
    sc = get_scale(scale)
    res = FigureResult(
        "fig03",
        f"HIER-RB variants on {sc.n_peak}x{sc.n_peak} Peak",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; paper: 1024x1024, m up to 10,000",
    )
    # the whole (m × variant) grid ships to the pool in one batched call;
    # the per-cell reduction order matches the serial loops exactly
    grid = [
        (f"HIER-RB-{variant}", m, {})
        for m in sc.m_values
        for variant in ("LOAD", "DIST", "HOR", "VER")
    ]
    vals = _avg_imbalance_grid(("peak", sc.n_peak), sc.seeds, grid, sc.name)
    for (algo, m, _), v in zip(grid, vals):
        res.add(algo, m, v)
    return res


# ----------------------------------------------------------------------
# Figure 4 — HIER-RELAXED variants on Multi-peak
# ----------------------------------------------------------------------
def fig04_hier_relaxed_variants(scale=None) -> FigureResult:
    """HIER-RELAXED LOAD/DIST/HOR/VER on Multi-peak, imbalance vs m (Fig 4).

    Paper: 512×512 multi-peak (3 peaks), 10 instances; -LOAD is best overall;
    -HOR/-VER improve past ~2,000 processors and converge towards -LOAD.
    """
    sc = get_scale(scale)
    res = FigureResult(
        "fig04",
        f"HIER-RELAXED variants on {sc.n_multipeak}x{sc.n_multipeak} Multi-peak",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; paper: 512x512, 10 instances",
    )
    grid = [
        (f"HIER-RELAXED-{variant}", m, {})
        for m in sc.m_values
        for variant in ("LOAD", "DIST", "HOR", "VER")
    ]
    vals = _avg_imbalance_grid(("multi_peak", sc.n_multipeak), sc.seeds, grid, sc.name)
    for (algo, m, _), v in zip(grid, vals):
        res.add(algo, m, v)
    return res


# ----------------------------------------------------------------------
# Figure 5 — HIER-RELAXED variants on Diagonal (convergence of HOR/VER)
# ----------------------------------------------------------------------
def fig05_hier_relaxed_diagonal(scale=None) -> FigureResult:
    """HIER-RELAXED variants on Diagonal, imbalance vs m (Fig 5).

    Paper: 4096×4096 diagonal; shows where the -VER/-HOR variants start
    improving and converge to -LOAD.
    """
    sc = get_scale(scale)
    A = diagonal(sc.n_diagonal, seed=0)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "fig05",
        f"HIER-RELAXED variants on {sc.n_diagonal}x{sc.n_diagonal} Diagonal",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; paper: 4096x4096",
    )
    dig = digest_prefix(pref)
    with use_sweep():  # warm starts across the m sweep (bit-identical)
        for m in sc.m_values:
            for variant in ("LOAD", "DIST", "HOR", "VER"):
                algo = f"HIER-RELAXED-{variant}"
                res.add(algo, m, _imb_cell(sc.name, dig, algo, m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 6 — execution time of every algorithm on Uniform
# ----------------------------------------------------------------------
def fig06_runtime(scale=None) -> FigureResult:
    """Runtime of the algorithms on Uniform Δ=1.2, seconds vs m (Fig 6).

    Paper: 512×512, Δ = 1.2.  Expected ordering: RECT-UNIFORM fastest, then
    HIER-RB, the jagged heuristics, RECT-NICOL, HIER-RELAXED, with
    JAG-PQ-OPT much slower and JAG-M-OPT off the chart (15 minutes at 961
    processors in the paper's C++).
    """
    sc = get_scale(scale)
    A = uniform(sc.n_uniform, 1.2, seed=0)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "fig06",
        f"Runtime on {sc.n_uniform}x{sc.n_uniform} Uniform (delta=1.2)",
        "m",
        "seconds",
        notes=f"scale={sc.name}; paper: 512x512 C++ timings — compare ordering, not values",
    )
    # deliberately NOT routed through use_sweep(): this figure *times* the
    # algorithms, and warm starts would measure the sweep engine instead of
    # the per-call costs the paper reports.  Timings are raw *measurements*:
    # once a cell is in the raw store it is replayed verbatim (like any
    # recorded experiment), keyed by the measurement protocol (repeats)
    def _timing(algo: str, m: int, repeats: int) -> float:
        return raw_cell(
            sc.name,
            dig,
            algo,
            m,
            lambda: float(timed(ALGORITHMS[algo], pref, m, repeats=repeats)[0]),
            metric="runtime_s",
            repeats=repeats,
        )

    dig = digest_prefix(pref)
    for m in sc.m_values:
        for name in HEURISTICS:
            # best of 3: one-shot wall clocks of millisecond heuristics are
            # noisy under concurrent load
            res.add(name, m, _timing(name, m, 3))
        if m <= sc.m_cap_pq_opt:
            res.add("JAG-PQ-OPT", m, _timing("JAG-PQ-OPT", m, 1))
        if m <= sc.m_cap_m_opt:
            res.add("JAG-M-OPT", m, _timing("JAG-M-OPT", m, 1))
    return res


# ----------------------------------------------------------------------
# Figure 7 — jagged methods on PIC-MAG, iteration 30,000
# ----------------------------------------------------------------------
def fig07_jagged_vs_m(scale=None) -> FigureResult:
    """Jagged partitioning on the PIC-MAG snapshot at iter 30,000 (Fig 7).

    Expected: JAG-PQ-HEUR ≈ JAG-PQ-OPT ("almost no room for improvement for
    the P×Q heuristic"); JAG-M-HEUR always at least as good; JAG-M-OPT (run
    while affordable) far better still — ~1% vs ~6% at 1,000 processors.
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    A = ds.snapshot(sc.pic_fig7_iteration)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "fig07",
        f"Jagged methods on PIC-MAG iter={sc.pic_fig7_iteration}",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; JAG-M-OPT capped at m={sc.m_cap_m_opt} "
        "(paper caps at 1,000: 'runtime becomes prohibitive')",
    )
    dig = digest_prefix(pref)
    with use_sweep():  # heuristic witnesses seed the exact solvers per m,
        # and exact bounds transfer across the m sweep (bit-identical)
        for m in sc.m_values:
            for name in ("JAG-PQ-HEUR", "JAG-M-HEUR"):
                res.add(name, m, _imb_cell(sc.name, dig, name, m, pref))
            if m <= sc.m_cap_pq_opt:
                res.add("JAG-PQ-OPT", m, _imb_cell(sc.name, dig, "JAG-PQ-OPT", m, pref))
            if m <= sc.m_cap_m_opt:
                res.add("JAG-M-OPT", m, _imb_cell(sc.name, dig, "JAG-M-OPT", m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 8 — jagged methods across PIC-MAG iterations
# ----------------------------------------------------------------------
def fig08_jagged_vs_iteration(scale=None) -> FigureResult:
    """Jagged methods over the PIC-MAG run at fixed m (Fig 8).

    Paper: m = 6,400; P×Q methods sit at a flat ~18% while the m-way
    heuristic varies between ~2.5% and ~16% — always below.
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    m = sc.m_fig8
    res = FigureResult(
        "fig08",
        f"Jagged methods on PIC-MAG, m={m}",
        "iteration",
        "load imbalance",
        notes=f"scale={sc.name}; paper: m=6,400, snapshots every 500 iterations",
    )
    for it, A in ds.snapshots():
        pref = PrefixSum2D(A)
        dig = digest_prefix(pref)
        with use_sweep():  # per snapshot: the heuristic witness seeds the
            # exact solver's upper bound at this m (bit-identical)
            for name in ("JAG-PQ-HEUR", "JAG-PQ-OPT", "JAG-M-HEUR"):
                if name == "JAG-PQ-OPT" and m > sc.m_cap_pq_opt:
                    continue
                res.add(name, it, _imb_cell(sc.name, dig, name, m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 9 — stripe-count sweep for JAG-M-HEUR vs Theorem 3
# ----------------------------------------------------------------------
def fig09_stripe_count(scale=None) -> FigureResult:
    """Impact of the number of stripes P in JAG-M-HEUR (Fig 9).

    Paper: 514×514 Uniform Δ=1.2, m=800; the measured imbalance follows the
    shape of the Theorem 3 worst-case guarantee, with steps synchronized with
    integral n1/P values.
    """
    sc = get_scale(scale)
    A = uniform(sc.n_fig9, 1.2, seed=0)
    pref = PrefixSum2D(A)
    m = sc.m_fig9
    delta = 1.2
    res = FigureResult(
        "fig09",
        f"JAG-M-HEUR stripe count on {sc.n_fig9}x{sc.n_fig9} Uniform (delta=1.2), m={m}",
        "P",
        "load imbalance",
        notes=f"scale={sc.name}; paper: 514x514, m=800, P in [2, 300]",
    )
    dig = digest_prefix(pref)
    for P in sc.fig9_stripes:
        if P >= m or P >= pref.n1:
            continue
        v = raw_cell(
            sc.name,
            dig,
            "JAG-M-HEUR",
            m,
            lambda P=P: float(
                jag_m_heur(pref, m, num_stripes=P, orientation="hor").imbalance(pref)
            ),
            num_stripes=P,
            orientation="hor",
        )
        res.add("JAG-M-HEUR variable P", P, v)
        res.add(
            "m-way jagged guarantee (Thm 3)",
            P,
            theorem3_ratio(delta, P, m, pref.n1, pref.n2) - 1.0,
        )
    return res


# ----------------------------------------------------------------------
# Figure 10 — hierarchical methods on Diagonal
# ----------------------------------------------------------------------
def fig10_hier_diagonal(scale=None) -> FigureResult:
    """HIER-RB vs HIER-RELAXED on Diagonal, imbalance vs m (Fig 10).

    Paper: 4096×4096 diagonal; HIER-RELAXED clearly better than HIER-RB.
    """
    sc = get_scale(scale)
    A = diagonal(sc.n_diagonal, seed=0)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "fig10",
        f"Hierarchical methods on {sc.n_diagonal}x{sc.n_diagonal} Diagonal",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; paper: 4096x4096",
    )
    dig = digest_prefix(pref)
    with use_sweep():  # warm starts across the m sweep (bit-identical)
        for m in sc.m_values:
            res.add("HIER-RB", m, _imb_cell(sc.name, dig, "HIER-RB", m, pref))
            res.add(
                "HIER-RELAXED", m, _imb_cell(sc.name, dig, "HIER-RELAXED", m, pref)
            )
    return res


# ----------------------------------------------------------------------
# Figure 11 — hierarchical methods across PIC-MAG iterations
# ----------------------------------------------------------------------
def fig11_hier_vs_iteration(scale=None) -> FigureResult:
    """Hierarchical methods over the PIC-MAG run at fixed m (Fig 11).

    Paper: m = 400; HIER-RELAXED is "highly unstable" across iterations
    while HIER-RB stays comparatively flat.
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    m = sc.m_fig11
    res = FigureResult(
        "fig11",
        f"Hierarchical methods on PIC-MAG, m={m}",
        "iteration",
        "load imbalance",
        notes=f"scale={sc.name}; paper: m=400",
    )
    for it, A in ds.snapshots():
        pref = PrefixSum2D(A)
        dig = digest_prefix(pref)
        res.add("HIER-RB", it, _imb_cell(sc.name, dig, "HIER-RB", m, pref))
        res.add("HIER-RELAXED", it, _imb_cell(sc.name, dig, "HIER-RELAXED", m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 12 — all heuristics across PIC-MAG iterations
# ----------------------------------------------------------------------
def fig12_all_vs_iteration(scale=None) -> FigureResult:
    """All heuristics over the PIC-MAG run at large fixed m (Fig 12).

    Paper: m = 9,216; RECT-UNIFORM 30–45%, RECT-NICOL ≈ JAG-PQ-HEUR ≈ 28%,
    HIER-RB 20–30%, HIER-RELAXED mostly 8–9%, JAG-M-HEUR best (5–8%) in all
    but two iterations.
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    m = sc.m_fig12
    res = FigureResult(
        "fig12",
        f"All heuristics on PIC-MAG, m={m}",
        "iteration",
        "load imbalance",
        notes=f"scale={sc.name}; paper: m=9,216",
    )
    for it, A in ds.snapshots():
        pref = PrefixSum2D(A)
        dig = digest_prefix(pref)
        for name in HEURISTICS:
            res.add(name, it, _imb_cell(sc.name, dig, name, m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 13 — all heuristics vs m at PIC-MAG iteration 20,000
# ----------------------------------------------------------------------
def fig13_all_vs_m(scale=None) -> FigureResult:
    """All heuristics on the PIC-MAG snapshot at iter 20,000 vs m (Fig 13).

    Paper: HIER-RELAXED generally best here, JAG-M-HEUR close (its weak spots
    stem from the √m stripe-count choice).
    """
    sc = get_scale(scale)
    ds = _pic_dataset(sc)
    A = ds.snapshot(sc.pic_fig13_iteration)
    pref = PrefixSum2D(A)
    res = FigureResult(
        "fig13",
        f"All heuristics on PIC-MAG iter={sc.pic_fig13_iteration}",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}",
    )
    dig = digest_prefix(pref)
    with use_sweep():  # warm starts across the m sweep (bit-identical)
        for m in sc.m_values:
            for name in HEURISTICS:
                res.add(name, m, _imb_cell(sc.name, dig, name, m, pref))
    return res


# ----------------------------------------------------------------------
# Figure 14 — all heuristics on the sparse SLAC mesh
# ----------------------------------------------------------------------
def fig14_slac(scale=None) -> FigureResult:
    """All heuristics on the SLAC instance vs m (Fig 14).

    Paper: 512×512 projected mesh with many zeros; "most algorithms get a
    high load imbalance.  Only the hierarchical partitioning algorithms
    manage to keep the imbalance low and HIER-RELAXED gets a lower imbalance
    than HIER-RB."

    At the ``large`` profile the instance (4096²) is built straight from the
    projected-vertex triplet stream onto the sparse CSR substrate — same
    digest, bit-identical cells, never a dense O(n²) allocation.
    """
    sc = get_scale(scale)
    if sc.name == "large":
        from ..instances.mesh.project import slac_sparse

        pref = slac_sparse(sc.n_slac)
    else:
        A = slac_instance(sc.n_slac)
        pref = PrefixSum2D(A)
    res = FigureResult(
        "fig14",
        f"All heuristics on SLAC {sc.n_slac}x{sc.n_slac}",
        "m",
        "load imbalance",
        notes=f"scale={sc.name}; sparse instance (zeros), delta undefined",
    )
    dig = digest_prefix(pref)
    with use_sweep():  # warm starts across the m sweep (bit-identical)
        for m in sc.m_values:
            for name in HEURISTICS:
                res.add(name, m, _imb_cell(sc.name, dig, name, m, pref))
    return res


#: figure id -> callable, in paper order
ALL_FIGURES = {
    "fig03": fig03_hier_rb_variants,
    "fig04": fig04_hier_relaxed_variants,
    "fig05": fig05_hier_relaxed_diagonal,
    "fig06": fig06_runtime,
    "fig07": fig07_jagged_vs_m,
    "fig08": fig08_jagged_vs_iteration,
    "fig09": fig09_stripe_count,
    "fig10": fig10_hier_diagonal,
    "fig11": fig11_hier_vs_iteration,
    "fig12": fig12_all_vs_iteration,
    "fig13": fig13_all_vs_m,
    "fig14": fig14_slac,
}
