"""Result container and reporting utilities for the figure reproductions.

Each figure function returns a :class:`FigureResult`: named series of (x, y)
points plus labels — exactly the rows/series the paper plots.  The harness
renders them as an aligned text table (what the benchmark suite prints) and
as CSV (what EXPERIMENTS.md is generated from).
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["FigureResult", "timed"]


@dataclass
class FigureResult:
    """Named series reproducing one figure of the paper."""

    fig: str  #: e.g. "fig07"
    title: str
    xlabel: str
    ylabel: str
    #: series name -> list of (x, y)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add(self, name: str, x: float, y: float) -> None:
        """Append one point to a series (created on first use)."""
        self.series.setdefault(name, []).append((float(x), float(y)))

    # ------------------------------------------------------------------
    def xs(self) -> list[float]:
        """Sorted union of x values across series."""
        vals = {x for pts in self.series.values() for x, _ in pts}
        return sorted(vals)

    def to_table(self) -> str:
        """Aligned text table: one row per x, one column per series."""
        names = list(self.series)
        lookup = {name: dict(pts) for name, pts in self.series.items()}
        widths = [max(len(n), 10) for n in names]
        xw = max(len(self.xlabel), 8)
        out = io.StringIO()
        out.write(f"# {self.fig}: {self.title}\n")
        if self.notes:
            out.write(f"# {self.notes}\n")
        out.write(self.xlabel.rjust(xw))
        for n, w in zip(names, widths):
            out.write("  " + n.rjust(w))
        out.write("\n")
        for x in self.xs():
            xs = f"{int(x)}" if float(x).is_integer() else f"{x:.4g}"
            out.write(xs.rjust(xw))
            for n, w in zip(names, widths):
                v = lookup[n].get(x)
                out.write("  " + (f"{v:.4f}".rjust(w) if v is not None else "-".rjust(w)))
            out.write("\n")
        return out.getvalue()

    def to_csv(self, path: str | Path) -> Path:
        """Write the table as CSV (x column + one column per series)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        names = list(self.series)
        lookup = {name: dict(pts) for name, pts in self.series.items()}
        with path.open("w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow([self.xlabel] + names)
            for x in self.xs():
                w.writerow([x] + [lookup[n].get(x, "") for n in names])
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()


def timed(fn: Callable, *args, **kw) -> tuple[float, object]:
    """Wall-clock a call; returns ``(seconds, result)``."""
    t0 = time.perf_counter()
    out = fn(*args, **kw)
    return time.perf_counter() - t0, out
