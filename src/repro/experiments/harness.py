"""Result container and reporting utilities for the figure reproductions.

Each figure function returns a :class:`FigureResult`: named series of (x, y)
points plus labels — exactly the rows/series the paper plots.  The harness
renders them as an aligned text table (what the benchmark suite prints) and
as CSV (what EXPERIMENTS.md is generated from); :meth:`FigureResult.from_csv`
reads the CSV back, so the two formats round-trip.  Missing cells (a series
with no point at some x, e.g. a capped optimal algorithm) are rendered with
the single :data:`MISSING` sentinel in both formats.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["FigureResult", "timed", "MISSING"]

#: rendering of a missing cell — a series with no point at some x — in both
#: the text table and the CSV (one sentinel, so the formats agree and
#: :meth:`FigureResult.from_csv` can distinguish "absent" from any value)
MISSING = "-"


@dataclass
class FigureResult:
    """Named series reproducing one figure of the paper."""

    fig: str  #: e.g. "fig07"
    title: str
    xlabel: str
    ylabel: str
    #: series name -> list of (x, y)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add(self, name: str, x: float, y: float) -> None:
        """Append one point to a series (created on first use)."""
        self.series.setdefault(name, []).append((float(x), float(y)))

    # ------------------------------------------------------------------
    def xs(self) -> list[float]:
        """Sorted union of x values across series."""
        vals = {x for pts in self.series.values() for x, _ in pts}
        return sorted(vals)

    def to_table(self) -> str:
        """Aligned text table: one row per x, one column per series."""
        names = list(self.series)
        lookup = {name: dict(pts) for name, pts in self.series.items()}
        widths = [max(len(n), 10) for n in names]
        xw = max(len(self.xlabel), 8)
        out = io.StringIO()
        out.write(f"# {self.fig}: {self.title}\n")
        if self.notes:
            out.write(f"# {self.notes}\n")
        out.write(self.xlabel.rjust(xw))
        for n, w in zip(names, widths):
            out.write("  " + n.rjust(w))
        out.write("\n")
        for x in self.xs():
            xs = f"{int(x)}" if float(x).is_integer() else f"{x:.4g}"
            out.write(xs.rjust(xw))
            for n, w in zip(names, widths):
                v = lookup[n].get(x)
                out.write("  " + (f"{v:.4f}" if v is not None else MISSING).rjust(w))
            out.write("\n")
        return out.getvalue()

    def csv_bytes(self) -> bytes:
        """The CSV rendering as bytes (x column + one column per series).

        ``repr`` of a float round-trips exactly in Python 3, so
        :meth:`from_csv` recovers the series bit-identically; the byte
        form is what the figure-farm identity gates compare.
        """
        buf = io.StringIO()
        names = list(self.series)
        lookup = {name: dict(pts) for name, pts in self.series.items()}
        w = csv.writer(buf)
        w.writerow([self.xlabel] + names)
        for x in self.xs():
            w.writerow([repr(x)] + [
                repr(v) if (v := lookup[n].get(x)) is not None else MISSING
                for n in names
            ])
        return buf.getvalue().encode()

    def to_csv(self, path: str | Path) -> Path:
        """Write :meth:`csv_bytes` to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.csv_bytes())
        return path

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        fig: str = "",
        title: str = "",
        ylabel: str = "",
        notes: str = "",
    ) -> "FigureResult":
        """Read a :meth:`to_csv` file back into a result.

        The CSV stores only the x label and the series; the other labels are
        not part of the format and default to empty unless passed in.
        :data:`MISSING` cells are restored as absent points.
        """
        path = Path(path)
        with path.open(newline="") as fh:
            rows = list(csv.reader(fh))
        if not rows or not rows[0]:
            raise ValueError(f"{path}: not a FigureResult CSV (empty or no header)")
        xlabel, names = rows[0][0], rows[0][1:]
        res = cls(fig, title, xlabel, ylabel, notes=notes)
        for row in rows[1:]:
            x = float(row[0])
            for name, cell in zip(names, row[1:]):
                if cell != MISSING:
                    res.add(name, x, float(cell))
        return res

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()


def timed(fn: Callable, *args, repeats: int = 1, **kw) -> tuple[float, object]:
    """Wall-clock a call; returns ``(seconds, result)``.

    With ``repeats > 1`` the call is repeated and the *best* wall-clock time
    is reported (the standard way to time millisecond-scale deterministic
    code under concurrent load: the minimum is the run with the least
    interference).  The result of the first call is returned — the
    algorithms are deterministic, so every repeat computes the same value.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    t0 = time.perf_counter()
    out = fn(*args, **kw)
    best = time.perf_counter() - t0
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        fn(*args, **kw)
        best = min(best, time.perf_counter() - t0)
    return best, out
