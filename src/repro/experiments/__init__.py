"""Experiment harness: per-figure reproductions, scaling profiles, CLI."""

from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .harness import FigureResult, timed
from .scale import PAPER, SMALL, Scale, current_scale, get_scale

__all__ = [
    "ALL_EXTENSIONS",
    "ALL_FIGURES",
    "FigureResult",
    "timed",
    "PAPER",
    "SMALL",
    "Scale",
    "current_scale",
    "get_scale",
]
