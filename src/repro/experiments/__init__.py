"""Experiment harness: per-figure reproductions, scaling profiles, CLI."""

from .extensions import ALL_EXTENSIONS
from .figures import ALL_FIGURES
from .harness import FigureResult, timed
from .rawstore import RawStore, current_raw_store, set_default_raw_store, use_raw_store
from .scale import PAPER, SMALL, TINY, Scale, current_scale, get_scale

__all__ = [
    "ALL_EXTENSIONS",
    "ALL_FIGURES",
    "FigureResult",
    "timed",
    "RawStore",
    "current_raw_store",
    "set_default_raw_store",
    "use_raw_store",
    "PAPER",
    "SMALL",
    "TINY",
    "Scale",
    "current_scale",
    "get_scale",
]
