"""Disk-backed, content-addressed raw-result cache for the figure farm.

Every figure/extension series is a set of *cells* — one solved value per
``(instance, algorithm, solver kwargs, m)`` point.  This module persists
each completed cell as one small JSON file so that ``repro-experiments``
is

* **incremental** — a cell whose key already exists on disk is a cache
  hit and never recomputed (``make figures`` only solves what changed);
* **interruptible/resumable** — cells are flushed atomically the moment
  they complete (``tempfile.mkstemp`` + ``os.replace``, the sweep store's
  pattern), so a killed ``--jobs N`` run resumes where it left off and
  the final CSVs are byte-identical to an uninterrupted run;
* **safe** — a file that is truncated, tampered with, version-skewed, or
  keyed differently than its name promises is ignored and recomputed
  cold; a corrupt store can cost time, never poison a figure.

Keying follows the sweep store (PR 5): the instance coordinate is the
SHA-256 of the gcd-primitive load array (:func:`repro.sweep.store.matrix_digest`)
suffixed with the live scale, and solver kwargs are canonicalized with
:func:`repro.sweep.state.canonical_scope`.  The full cell key is
``(schema version, profile, instance digest, algorithm, scope, m, metric)``
— ``metric`` names the value schema (``imbalance``, ``lmax_lavg``,
``runtime_s``, ``comm_volume``, ``migration_series``), and ``profile``
keeps differently-scaled runs of the same figure apart even where their
instances coincide.

Workers never touch the store: the parent resolves hits, dispatches only
the misses, and flushes results as they arrive — the same parent-only
discipline the sweep store uses, so concurrent figure runs on one store
directory end last-writer-wins with identical content.

The store is selected with ``repro-experiments --raw-dir`` or the
``$REPRO_RAW_STORE`` knob (declared in :data:`repro.config.ENV_VARS`),
or scoped with :func:`use_raw_store`.  Without a store every cell is
simply computed — the figure functions are unchanged semantically and
bit-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from ..config import env_str
from ..sweep.state import Scope, canonical_scope
from ..sweep.store import instance_digest, matrix_digest

__all__ = [
    "RawStore",
    "MISS",
    "InterruptingRawStore",
    "SimulatedInterrupt",
    "use_raw_store",
    "current_raw_store",
    "set_default_raw_store",
    "digest_prefix",
    "digest_matrix",
    "combine_digests",
]

_FORMAT = "repro-raw-cell"
_VERSION = 1

#: result-schema version — part of every key; bump when the meaning or
#: shape of any cached metric value changes, so stale stores miss cleanly
SCHEMA = 1

MISS = object()


# ----------------------------------------------------------------------
# instance digests
# ----------------------------------------------------------------------
def digest_prefix(pref) -> str:
    """Content digest of a prefix's load matrix, scale included.

    The sweep store shares facts across positive-integer scale multiples;
    raw cells store *values* (loads, runtimes), which scale, so the live
    scale is part of the coordinate.
    """
    dig, scale = instance_digest(pref)
    return f"{dig}:{scale}"


def digest_matrix(A) -> str:
    """Content digest of a raw load array (any dimensionality)."""
    dig, scale = matrix_digest(A)
    return f"{dig}:{scale}"


def combine_digests(parts: Iterable[str]) -> str:
    """One digest for a *series* of instances (e.g. a snapshot stream)."""
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode())
        h.update(b"|")
    return h.hexdigest()


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class RawStore:
    """One raw-result directory: per-cell JSON files, atomic flush.

    ``force=True`` skips every lookup (all cells recompute cold) but still
    writes the fresh results back — ``repro-experiments --force``.
    """

    def __init__(self, root: str | os.PathLike, *, force: bool = False) -> None:
        self.root = os.fspath(root)
        self.force = force
        self.hits = 0
        self.misses = 0
        self.invalid = 0

    # -- keys and paths -------------------------------------------------

    @staticmethod
    def make_key(
        *,
        profile: str,
        digest: str,
        algo: str,
        m: int,
        scope: Scope = (),
        metric: str = "imbalance",
    ) -> dict:
        """The canonical cell key (a plain sorted-serializable dict)."""
        return {
            "schema": SCHEMA,
            "profile": profile,
            "digest": digest,
            "algo": algo,
            "m": int(m),
            "scope": [list(item) for item in scope],
            "metric": metric,
        }

    def _path(self, key: dict) -> str:
        blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
        tag = hashlib.sha256(blob.encode()).hexdigest()[:24]
        name = f"{key['algo']}-m{key['m']}-{key['metric']}-{tag}.json"
        return os.path.join(self.root, key["profile"], name)

    @staticmethod
    def _checksum(key: dict, value: Any) -> str:
        blob = json.dumps(
            {"key": key, "value": value}, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- cell I/O -------------------------------------------------------

    def load(self, key: dict) -> Any:
        """The cached value for ``key``, or the :data:`MISS` sentinel.

        Counts a hit or a miss; any integrity failure (unreadable file,
        wrong format/version, checksum mismatch, key mismatch under a
        colliding name) counts ``invalid`` *and* a miss — the caller
        recomputes cold and the next :meth:`store` heals the file.
        """
        if self.force:
            self.misses += 1
            return MISS
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, ValueError):
            self.invalid += 1
            self.misses += 1
            return MISS
        if (
            not isinstance(doc, dict)
            or doc.get("format") != _FORMAT
            or doc.get("version") != _VERSION
            or "value" not in doc
            or doc.get("key") != key
            or doc.get("sha256") != self._checksum(key, doc["value"])
        ):
            self.invalid += 1
            self.misses += 1
            return MISS
        self.hits += 1
        return doc["value"]

    def store(self, key: dict, value: Any) -> None:
        """Atomically write one completed cell (mkstemp + ``os.replace``)."""
        path = self._path(key)
        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "key": key,
            "value": value,
            "sha256": self._checksum(key, value),
        }
        d = os.path.dirname(path)
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def resolve(self, key: dict, compute: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing (and flushing) on a miss."""
        value = self.load(key)
        if value is not MISS:
            return value
        value = compute()
        self.store(key, value)
        return value

    # -- reporting ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "invalid": self.invalid}


class SimulatedInterrupt(RuntimeError):
    """Raised by :class:`InterruptingRawStore` when its write budget runs out."""


class InterruptingRawStore(RawStore):
    """Kill-and-resume harness: dies after ``abort_after`` cell writes.

    Used by ``tests/test_rawstore.py`` and ``benchmarks/perf_regress.py
    --figures`` to emulate a run killed mid-figure: every write up to the
    budget lands atomically on disk, then :class:`SimulatedInterrupt`
    fires; a fresh run over the same directory must resume from the
    flushed cells and produce byte-identical CSVs.
    """

    def __init__(self, root, *, abort_after: int, force: bool = False) -> None:
        super().__init__(root, force=force)
        self.abort_after = abort_after
        self.writes = 0

    def store(self, key: dict, value: Any) -> None:
        if self.writes >= self.abort_after:
            raise SimulatedInterrupt(f"aborting after {self.abort_after} cell writes")
        super().store(key, value)
        self.writes += 1


# ----------------------------------------------------------------------
# ambient store selection
# ----------------------------------------------------------------------
_STACK: list[RawStore | None] = []
_DEFAULT: RawStore | None = None
_ENV_LOADED = False


def set_default_raw_store(root: str | os.PathLike | None, *, force: bool = False) -> None:
    """Set (or clear, with ``None``) the process-default raw store."""
    global _DEFAULT, _ENV_LOADED
    _DEFAULT = None if root is None else RawStore(root, force=force)
    _ENV_LOADED = True  # an explicit choice overrides the env default


def current_raw_store() -> RawStore | None:
    """The innermost :func:`use_raw_store` scope, else the process default.

    The process default is initialized lazily from ``$REPRO_RAW_STORE``
    (empty = no store: every cell computes).
    """
    if _STACK:
        return _STACK[-1]
    global _DEFAULT, _ENV_LOADED
    if not _ENV_LOADED:
        _ENV_LOADED = True
        path = env_str("REPRO_RAW_STORE")
        if path:
            _DEFAULT = RawStore(path)
    return _DEFAULT


@contextmanager
def use_raw_store(
    root: str | os.PathLike | None, *, force: bool = False, store: RawStore | None = None
) -> Iterator[RawStore | None]:
    """Scope a raw store (or ``None`` to disable caching inside the scope).

    Pass ``store=`` to scope a pre-built store object (e.g. an
    :class:`InterruptingRawStore`); otherwise one is built from ``root``.
    """
    if store is None and root is not None:
        store = RawStore(root, force=force)
    _STACK.append(store)
    try:
        yield store
    finally:
        _STACK.pop()


# ----------------------------------------------------------------------
# the figure-side helper
# ----------------------------------------------------------------------
def cell(
    profile: str,
    digest: str,
    algo: str,
    m: int,
    compute: Callable[[], Any],
    *,
    metric: str = "imbalance",
    **kw: Any,
) -> Any:
    """Resolve one figure cell through the ambient store (compute if none).

    ``kw`` is the solver-kwargs scope, canonicalized exactly like the sweep
    state does, so cells keyed here and facts keyed there agree on what
    "same solver configuration" means.
    """
    store = current_raw_store()
    if store is None:
        return compute()
    key = RawStore.make_key(
        profile=profile,
        digest=digest,
        algo=algo,
        m=m,
        scope=canonical_scope(kw),
        metric=metric,
    )
    return store.resolve(key, compute)
