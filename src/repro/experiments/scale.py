"""Experiment scaling profiles.

The paper's evaluation runs 512–8192-wide matrices up to 10 000 processors on
a C++ implementation; re-running every figure at that scale in Python is
possible but slow, so each experiment reads its parameters from a *scale
profile*:

* ``tiny`` — micro grids for smoke runs: every figure in seconds (the test
  suite and the CI ``figures-smoke`` job run here).
* ``small`` (default) — laptop-scale grids that preserve every qualitative
  phenomenon (who wins, crossovers, waves); minutes for the full suite.
* ``paper`` — the paper's matrix sizes, processor counts and snapshot
  cadence; hours for the full suite.
* ``large`` — beyond-paper instance sizes (≥4096² spmv/mesh histograms)
  reachable only through the sparse CSR substrate
  (:mod:`repro.core.sparse`); the generators build from triplets and never
  densify, so memory stays O(nnz).

Select with the environment variable ``REPRO_SCALE=paper`` or explicitly via
the ``scale=`` argument of the figure functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import env_str
from ..instances.pic import PICConfig

__all__ = ["Scale", "TINY", "SMALL", "PAPER", "LARGE", "current_scale", "get_scale"]


def _squares(lo: int, hi: int, count: int) -> list[int]:
    """Roughly geometric progression of perfect squares in [lo, hi]."""
    import numpy as np

    roots = np.unique(
        np.round(np.geomspace(np.sqrt(lo), np.sqrt(hi), count)).astype(int)
    )
    return [int(r * r) for r in roots]


@dataclass(frozen=True)
class Scale:
    """All size knobs of the experiment suite."""

    name: str
    #: processor counts ("most square numbers between 16 and 10,000", §4.1)
    m_values: tuple[int, ...]
    #: processor cap for JAG-PQ-OPT series (paper runs it everywhere but
    #: reports tens of seconds; we cap it for the small profile)
    m_cap_pq_opt: int
    #: processor cap for JAG-M-OPT series ("on more than 1,000 processors,
    #: the runtime of the algorithm becomes prohibitive", §4.4)
    m_cap_m_opt: int
    #: synthetic matrix sizes per figure
    n_peak: int  # Fig 3
    n_multipeak: int  # Fig 4
    n_diagonal: int  # Figs 5, 10
    n_uniform: int  # Fig 6
    n_fig9: int  # Fig 9 (paper: 514)
    m_fig9: int  # Fig 9 (paper: 800)
    fig9_stripes: tuple[int, ...]  # stripe counts swept in Fig 9
    n_slac: int  # Fig 14
    n_spmv: int  # spmv histogram resolution (extension figures)
    #: number of random instances averaged for synthetic classes (paper: 10)
    seeds: int
    #: PIC-MAG dataset
    pic: PICConfig
    pic_period: int
    pic_max_iteration: int
    pic_fig7_iteration: int  # Fig 7 (paper: 30,000)
    pic_fig13_iteration: int  # Fig 13 (paper: 20,000)
    m_fig8: int  # Fig 8 (paper: 6,400)
    m_fig11: int  # Fig 11 (paper: 400)
    m_fig12: int  # Fig 12 (paper: 9,216)


TINY = Scale(
    name="tiny",
    m_values=(4, 9, 16),
    m_cap_pq_opt=16,
    m_cap_m_opt=9,
    n_peak=24,
    n_multipeak=24,
    n_diagonal=32,
    n_uniform=24,
    n_fig9=34,
    m_fig9=12,
    fig9_stripes=(2, 3, 5, 8),
    n_slac=32,
    n_spmv=48,
    seeds=2,
    pic=PICConfig(grid=24, particles=1200, seed=3),
    pic_period=100,
    pic_max_iteration=300,
    pic_fig7_iteration=300,
    pic_fig13_iteration=200,
    m_fig8=9,
    m_fig11=6,
    m_fig12=12,
)

SMALL = Scale(
    name="small",
    m_values=(16, 36, 64, 144, 256, 400),
    m_cap_pq_opt=400,
    m_cap_m_opt=144,
    n_peak=256,
    n_multipeak=128,
    n_diagonal=512,
    n_uniform=256,
    n_fig9=258,
    m_fig9=200,
    fig9_stripes=tuple(range(2, 72, 4)),
    n_slac=256,
    n_spmv=256,
    seeds=3,
    pic=PICConfig(grid=128, particles=30_000),
    pic_period=2_500,
    pic_max_iteration=30_000,
    pic_fig7_iteration=30_000,
    pic_fig13_iteration=20_000,
    m_fig8=400,
    m_fig11=100,
    m_fig12=576,
)

PAPER = Scale(
    name="paper",
    m_values=(16, 36, 100, 256, 529, 1024, 2025, 4096, 6400, 9216),
    m_cap_pq_opt=10_000,
    m_cap_m_opt=529,
    n_peak=1024,
    n_multipeak=512,
    n_diagonal=4096,
    n_uniform=512,
    n_fig9=514,
    m_fig9=800,
    fig9_stripes=tuple(range(2, 302, 8)),
    n_slac=512,
    n_spmv=512,
    seeds=10,
    pic=PICConfig(grid=512, particles=150_000, smooth=5, particle_load=22),
    pic_period=500,
    pic_max_iteration=33_500,
    pic_fig7_iteration=30_000,
    pic_fig13_iteration=20_000,
    m_fig8=6400,
    m_fig11=400,
    m_fig12=9216,
)

LARGE = Scale(
    name="large",
    m_values=(16, 64, 256),
    m_cap_pq_opt=256,
    m_cap_m_opt=64,
    n_peak=1024,
    n_multipeak=512,
    n_diagonal=4096,
    n_uniform=512,
    n_fig9=514,
    m_fig9=800,
    fig9_stripes=tuple(range(2, 302, 8)),
    n_slac=4096,
    n_spmv=4096,
    seeds=3,
    pic=PICConfig(grid=512, particles=150_000, smooth=5, particle_load=22),
    pic_period=500,
    pic_max_iteration=33_500,
    pic_fig7_iteration=30_000,
    pic_fig13_iteration=20_000,
    m_fig8=6400,
    m_fig11=400,
    m_fig12=9216,
)

_PROFILES = {"tiny": TINY, "small": SMALL, "paper": PAPER, "large": LARGE}


def current_scale() -> Scale:
    """Profile selected by ``$REPRO_SCALE`` (default ``small``)."""
    return get_scale(env_str("REPRO_SCALE"))


def get_scale(name: str | Scale | None) -> Scale:
    """Resolve a profile by name, pass through Scale objects, None → env."""
    if name is None:
        return current_scale()
    if isinstance(name, Scale):
        return name
    key = name.lower()
    if key not in _PROFILES:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_PROFILES)}")
    return _PROFILES[key]
