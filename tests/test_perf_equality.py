"""Property tests: optimized kernels are bit-identical to the reference paths.

The perf layer's contract (docs/performance.md) is *exact* equality, not
approximate: every optimized kernel dispatches on ``perf_enabled()`` and
must produce the same integers — same probe decisions, same cut positions,
same rectangles — as the straight-line reference implementation it
replaces.  These tests drive both paths on randomized instances and compare
the raw outputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefix import PrefixSum2D
from repro.core.registry import partition_2d
from repro.hierarchical.cuts import (
    best_relaxed_split,
    best_relaxed_split_win,
    best_weighted_cut,
    best_weighted_cut_num,
    best_weighted_cut_win,
)
from repro.oned.bisect import bisect_bottleneck, feasible_bottlenecks
from repro.oned.probe import min_parts, probe
from repro.perf import min_parts_batch, probe_batch, use_perf

from .conftest import load_arrays, prefix_of

# ---------------------------------------------------------------------------
# batched probe kernels vs scalar references


@settings(max_examples=60, deadline=None)
@given(values=load_arrays, m=st.integers(1, 8), data=st.data())
def test_probe_batch_matches_scalar_probe(values, m, data):
    P = prefix_of(values)
    total = int(P[-1])
    Bs = data.draw(
        st.lists(st.integers(-2, total + 2), min_size=1, max_size=12),
        label="bottleneck candidates",
    )
    got = probe_batch(P, m, np.array(Bs, dtype=np.int64))
    want = np.array([probe(P, m, B) for B in Bs])
    np.testing.assert_array_equal(got, want)


@settings(max_examples=60, deadline=None)
@given(values=load_arrays, data=st.data())
def test_probe_batch_matches_on_windows(values, data):
    m = 3
    P = prefix_of(values)
    n = len(P) - 1
    lo = data.draw(st.integers(0, n), label="lo")
    hi = data.draw(st.integers(lo, n), label="hi")
    Bs = np.array([0, 1, int(P[-1]) // 2 + 1, int(P[-1])], dtype=np.int64)
    got = probe_batch(P, m, Bs, lo, hi)
    want = np.array([probe(P, m, int(B), lo, hi) for B in Bs])
    np.testing.assert_array_equal(got, want)


@settings(max_examples=80, deadline=None)
@given(values=load_arrays, data=st.data())
def test_min_parts_batch_matches_scalar(values, data):
    P = prefix_of(values)
    total = int(P[-1])
    B = data.draw(st.integers(0, total + 1), label="B")
    cap = data.draw(st.one_of(st.none(), st.integers(0, len(P) + 1)), label="cap")
    try:
        want = min_parts(P, B, cap=cap)
    except ValueError:
        with pytest.raises(ValueError):
            min_parts_batch(P, B, cap=cap)
        return
    assert min_parts_batch(P, B, cap=cap) == want


def test_min_parts_batch_windowed():
    rng = np.random.default_rng(3)
    P = prefix_of(rng.integers(0, 40, 60))
    for lo, hi in ((0, 60), (5, 55), (20, 21), (30, 30)):
        for B in (0, 37, 120, 999):
            for cap in (None, 2, 7):
                try:
                    want = min_parts(P, B, lo, hi, cap=cap)
                except ValueError:
                    continue
                assert min_parts_batch(P, B, lo, hi, cap=cap) == want


# ---------------------------------------------------------------------------
# cut kernels vs the Fraction / vectorized references


@settings(max_examples=80, deadline=None)
@given(values=load_arrays, w1=st.integers(1, 9), w2=st.integers(1, 9))
def test_weighted_cut_num_orders_like_fractions(values, w1, w2):
    bp = prefix_of(values)
    ref = best_weighted_cut(bp, w1, w2)
    num = best_weighted_cut_num(bp, w1, w2)
    if ref is None:
        assert num is None
        return
    assert num[0] == ref[0]
    assert num[1] == ref[1] * w1 * w2  # same score, scaled by the denominator


@settings(max_examples=80, deadline=None)
@given(values=load_arrays, m=st.integers(2, 9), data=st.data())
def test_windowed_cut_kernels_match_rebased(values, m, data):
    p = prefix_of(values)
    n = len(p) - 1
    j0 = data.draw(st.integers(0, n), label="j0")
    j1 = data.draw(st.integers(j0, n), label="j1")
    bp = p[j0 : j1 + 1] - p[j0]

    m1, m2 = m // 2, m - m // 2
    orients = ((m1, m2),) if m1 == m2 else ((m1, m2), (m2, m1))
    win = best_weighted_cut_win(p, j0, j1, orients)
    # reference: sequential first-occurrence minimum over the orientations
    seq = None
    for w1, w2 in orients:
        f = best_weighted_cut_num(bp, w1, w2)
        if f is not None and (seq is None or f[1] < seq[1]):
            seq = (f[0], f[1], w1, w2)
    assert win == seq

    with use_perf(False):
        ref_split = best_relaxed_split(bp, m)
    split = best_relaxed_split_win(p, j0, j1, m)
    assert split == ref_split


# ---------------------------------------------------------------------------
# whole-algorithm bit identity: perf on vs perf off


def _rects(A, m, method):
    return partition_2d(A, m, method).rects


EQUALITY_METHODS = [
    "RECT-UNIFORM",
    "RECT-NICOL",
    "JAG-PQ-HEUR",
    "JAG-M-HEUR",
    "JAG-PQ-HEUR-HOR",
    "JAG-M-HEUR-VER",
    "JAG-M-OPT",
    "JAG-PQ-OPT",
    "HIER-RB",
    "HIER-RB-DIST",
    "HIER-RELAXED",
    "HIER-RELAXED-HOR",
]


@pytest.mark.parametrize("method", EQUALITY_METHODS)
def test_partitions_bit_identical_across_modes(method):
    for seed, m in ((0, 5), (1, 9), (2, 16)):
        rng = np.random.default_rng(seed)
        A = rng.integers(0, 60, (21, 17))
        with use_perf(False):
            ref = _rects(A, m, method)
        with use_perf(True):
            opt = _rects(A, m, method)
        assert ref == opt, f"{method} diverged (seed={seed}, m={m})"


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_allocate_processors_identical_across_modes(data):
    # the perf path replaces Fraction-keyed ratio comparisons with exact
    # cross-multiplied ints; the allocation must match entry for entry,
    # ties included (first minimal stripe wins in both)
    from repro.jagged.m_heur import allocate_processors

    P = data.draw(st.integers(1, 20))
    m = data.draw(st.integers(P, 12 * P))
    # zeros force the max(q, 1) bump + overflow shave; huge loads would
    # break any float shortcut (2**60 > 2**53)
    loads = np.array(
        data.draw(
            st.lists(
                st.one_of(st.integers(0, 50), st.integers(2**60, 2**62)),
                min_size=P,
                max_size=P,
            )
        ),
        dtype=object,
    )
    with use_perf(False):
        ref = allocate_processors(loads.astype(np.int64, copy=False), m)
    with use_perf(True):
        opt = allocate_processors(loads.astype(np.int64, copy=False), m)
    assert ref.tolist() == opt.tolist()


def test_partitions_bit_identical_with_zeros_and_spikes():
    # sparse + spiky loads exercise the clamping/tie-break corners
    rng = np.random.default_rng(7)
    A = rng.integers(0, 4, (24, 24))
    A[rng.random((24, 24)) < 0.5] = 0
    A[3, 5] = 10_000
    for method in ("JAG-M-HEUR", "JAG-M-OPT", "HIER-RB", "HIER-RELAXED"):
        for m in (2, 7, 12):
            with use_perf(False):
                ref = _rects(A, m, method)
            with use_perf(True):
                opt = _rects(A, m, method)
            assert ref == opt, (method, m)


def test_bisect_bottleneck_identical_on_nd_probe_path():
    # n >= 512*m: the perf path probes the ndarray directly, skipping the
    # list conversion — the bottleneck must not move by a single unit
    rng = np.random.default_rng(13)
    values = rng.integers(0, 1_000_000, 8_000)
    P = prefix_of(values)
    for m in (3, 7, 15):
        with use_perf(False):
            ref = bisect_bottleneck(P, m)
        with use_perf(True):
            opt = bisect_bottleneck(P, m)
        assert ref == opt


@settings(max_examples=60, deadline=None)
@given(values=load_arrays, m=st.integers(1, 8), data=st.data())
def test_feasible_bottlenecks_identical_across_modes(values, m, data):
    P = prefix_of(values)
    total = int(P[-1])
    Bs = data.draw(
        st.lists(st.integers(-2, total + 2), min_size=1, max_size=10),
        label="bottleneck candidates",
    )
    with use_perf(False):
        ref = feasible_bottlenecks(P, m, Bs)
    with use_perf(True):
        opt = feasible_bottlenecks(P, m, Bs)
    np.testing.assert_array_equal(ref, opt)
    np.testing.assert_array_equal(ref, [probe(P, m, int(B)) for B in Bs])


def test_shared_prefix_instance_is_safe_across_methods():
    # one PrefixSum2D reused by many algorithms: the shared projection cache
    # must never leak state between them
    rng = np.random.default_rng(42)
    A = rng.integers(0, 60, (20, 20))
    with use_perf(True):
        pref = PrefixSum2D(A)
        shared = [partition_2d(pref, 6, mth).rects for mth in EQUALITY_METHODS]
    fresh = []
    for mth in EQUALITY_METHODS:
        with use_perf(False):
            fresh.append(partition_2d(PrefixSum2D(A), 6, mth).rects)
    assert shared == fresh
