"""The disk-backed sweep-fact store: bit-identity, scale transfer, robustness.

The contract extends the sweep engine's: a sweep warm-started *from disk*
(fresh process, fresh prefix — only the store file survives) returns
partitions bit-identical to cold calls, for the original instance and for
any positive-integer multiple of it.  A corrupt, truncated or
version-mismatched store is ignored, never trusted; concurrent flushes
merge last-writer-wins and never corrupt the file.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import warnings

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D, prefix_2d
from repro.core.registry import partition_2d
from repro.perf.counters import op_counters
from repro.sweep import SweepStore, instance_digest, use_sweep
from repro.sweep.engine import sweep

ALGOS = ["JAG-PQ-HEUR", "JAG-M-HEUR", "JAG-PQ-OPT", "JAG-M-OPT", "RECT-NICOL"]
M_VALUES = [4, 6, 12, 20]
HIER = ["HIER-RB", "HIER-RELAXED", "HIER-RB-DIST"]


def _rects(part):
    return [(r.r0, r.r1, r.c0, r.c1) for r in part.rects]


def _matrix(seed: int = 3, n: int = 36) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 60, size=(n, n)).astype(np.int64)


def _cold(A, name, m):
    return _rects(partition_2d(prefix_2d(A), m, name))


@pytest.fixture()
def store_path(tmp_path):
    return os.fspath(tmp_path / "facts.json")


def _populate(A, path, algos=ALGOS, ms=M_VALUES):
    with use_sweep(store=path):
        pref = prefix_2d(A)
        for name in algos:
            for m in sorted(ms, reverse=True):
                partition_2d(pref, m, name)


class TestWarmFromDisk:
    def test_bit_identical_to_cold(self, store_path):
        """Facts persisted by one scope leave a later scope's results unchanged."""
        A = _matrix()
        cold = {(n, m): _cold(A, n, m) for n in ALGOS for m in M_VALUES}
        _populate(A, store_path)
        assert os.path.getsize(store_path) > 0
        with use_sweep(store=store_path):
            pref = prefix_2d(A)  # fresh prefix: only the file carries facts
            for name in ALGOS:
                for m in M_VALUES:
                    assert _rects(partition_2d(pref, m, name)) == cold[(name, m)]

    def test_warm_run_hits_exact_bounds(self, store_path):
        """The second scope really consumes the file (exact-hit, no recompute)."""
        from repro.jagged.m_opt import jag_m_opt_bottleneck

        A = _matrix()
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[6])
        with use_sweep(store=store_path) as st:
            pref = prefix_2d(A)
            exact, lb, ub = st.mono_bounds(pref, "jag_m", 6)
            assert exact is not None
            # the fact is the main-dimension-0 class optimum (the registry
            # entry returns the better of both orientations)
            assert exact == jag_m_opt_bottleneck(prefix_2d(A), 6)

    def test_sweep_entry_point_takes_store(self, store_path):
        A = _matrix(5, 24)
        r1 = sweep(A, ["JAG-M-OPT"], [4, 6], store=store_path)
        r2 = sweep(A, ["JAG-M-OPT"], [4, 6], store=store_path)
        for key, part in r1:
            assert _rects(r2[key]) == _rects(part)

    def test_env_var_attaches_store(self, store_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_STORE", store_path)
        A = _matrix(9, 20)
        with use_sweep():
            partition_2d(prefix_2d(A), 6, "JAG-M-OPT")
        assert os.path.exists(store_path)
        s = SweepStore(store_path)
        s.load()
        assert s.ignored_reason is None
        dig, _ = instance_digest(prefix_2d(A))
        assert s.get(dig) is not None

    def test_flush_failure_warns_not_raises(self, tmp_path):
        bad = os.fspath(tmp_path / "no" / "such" / "dir" / "facts.json")
        A = _matrix(2, 16)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with use_sweep(store=bad):
                partition_2d(prefix_2d(A), 4, "JAG-M-OPT")
        assert any("flush failed" in str(w.message) for w in caught)


class TestScaleTransfer:
    def test_scaled_instance_shares_digest(self):
        A = _matrix(4, 18)
        d1, s1 = instance_digest(prefix_2d(A))
        d2, s2 = instance_digest(prefix_2d(A * 5))
        assert d1 == d2
        assert (s1, s2) == (int(np.gcd.reduce(A, axis=None)), 5 * s1)

    def test_scaled_warm_bit_identical(self, store_path):
        """Facts from A warm a c·A sweep; results equal c·A cold calls."""
        A = _matrix(6, 30)
        _populate(A, store_path)
        C = A * 7
        cold = {(n, m): _cold(C, n, m) for n in ALGOS for m in M_VALUES}
        with use_sweep(store=store_path) as st:
            pref = prefix_2d(C)
            # the store really transfers: bounds exist before any call here
            exact, _, ub = st.mono_bounds(pref, "jag_m", max(M_VALUES))
            assert exact is not None or ub is not None
            for name in ALGOS:
                for m in M_VALUES:
                    assert _rects(partition_2d(pref, m, name)) == cold[(name, m)]

    def test_scaled_bounds_scale_exactly(self, store_path):
        from repro.jagged.m_opt import jag_m_opt_bottleneck

        A = _matrix(8, 24)
        opt = jag_m_opt_bottleneck(prefix_2d(A), 6)
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[6])
        with use_sweep(store=store_path) as st:
            pref = prefix_2d(A * 3)
            exact, _, _ = st.mono_bounds(pref, "jag_m", 6)
            assert exact == 3 * opt


class TestHierWitnesses:
    def test_hier_warm_from_disk_drops_cut_calls(self, store_path):
        """HIER node decisions replay from disk: fewer cut kernel calls."""
        A = _matrix(7, 40)
        cold = {}
        cold_ops = {}
        for name in HIER:
            pref = prefix_2d(A)
            with op_counters() as ops:
                cold[name] = _rects(partition_2d(pref, 16, name))
            cold_ops[name] = ops.get("cut_calls", 0)
        _populate(A, store_path, algos=HIER, ms=[16])
        with use_sweep(store=store_path):
            pref = prefix_2d(A)
            for name in HIER:
                with op_counters() as ops:
                    warm = _rects(partition_2d(pref, 16, name))
                assert warm == cold[name]
                assert ops.get("cut_calls", 0) < cold_ops[name]

    def test_hier_witnesses_persisted(self, store_path):
        A = _matrix(3, 24)
        _populate(A, store_path, algos=["HIER-RB", "HIER-RELAXED"], ms=[8])
        with use_sweep(store=store_path) as st:
            pref = prefix_2d(A)
            for cls in ("hier_rb", "hier_relaxed"):
                # the achieved load is a class witness, visible unscoped
                assert st.mono_witness(pref, cls, 8) is not None

    def test_rb_scale_free_relaxed_scale_gated(self, store_path):
        """RB node facts transfer to a scaled instance; RELAXED ones do not."""
        A = _matrix(11, 36)
        _populate(A, store_path, algos=["HIER-RB", "HIER-RELAXED"], ms=[16])
        C = A * 2
        cold_rb = _cold(C, "HIER-RB", 16)
        cold_rel = _cold(C, "HIER-RELAXED", 16)
        with use_sweep(store=store_path):
            pref = prefix_2d(C)
            with op_counters() as ops:
                assert _rects(partition_2d(pref, 16, "HIER-RB")) == cold_rb
            assert ops.get("cut_calls", 0) == 0  # fully replayed across scales
            assert _rects(partition_2d(pref, 16, "HIER-RELAXED")) == cold_rel


class TestRobustness:
    def _ignored(self, path):
        s = SweepStore(path)
        s.load()
        return s.ignored_reason

    def test_truncated_file_ignored(self, store_path):
        A = _matrix(5, 20)
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[4])
        raw = open(store_path, "rb").read()
        with open(store_path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        assert self._ignored(store_path) is not None
        cold = _cold(A, "JAG-M-OPT", 4)
        with use_sweep(store=store_path):
            assert _rects(partition_2d(prefix_2d(A), 4, "JAG-M-OPT")) == cold

    def test_wrong_version_ignored(self, store_path):
        A = _matrix(5, 20)
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[4])
        doc = json.load(open(store_path))
        doc["version"] = 999
        json.dump(doc, open(store_path, "w"))
        assert "version" in (self._ignored(store_path) or "")
        with use_sweep(store=store_path) as st:
            assert st.mono_bounds(prefix_2d(A), "jag_m", 4) == (None, None, None)

    def test_checksum_mismatch_ignored(self, store_path):
        A = _matrix(5, 20)
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[4])
        doc = json.load(open(store_path))
        inst = next(iter(doc["payload"]["instances"].values()))
        for row in inst.get("mono", []):
            for key in row[2]:
                row[2][key] += 1  # tamper with an optimum, keep old checksum
        json.dump(doc, open(store_path, "w"))
        assert self._ignored(store_path) == "checksum mismatch"
        cold = _cold(A, "JAG-M-OPT", 4)
        with use_sweep(store=store_path):
            assert _rects(partition_2d(prefix_2d(A), 4, "JAG-M-OPT")) == cold

    def test_not_json_ignored(self, store_path):
        with open(store_path, "w") as fh:
            fh.write("not a store at all {{{")
        assert self._ignored(store_path) is not None

    def test_identical_bytes_different_shape_distinct(self, store_path):
        """Shape is hashed: a reshaped twin never borrows the other's facts."""
        A = _matrix(13, 24)[:4, :9].copy()
        B = A.reshape(9, 4).copy()
        assert A.tobytes() == B.tobytes()
        da, _ = instance_digest(prefix_2d(A))
        db, _ = instance_digest(prefix_2d(B))
        assert da != db
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[4])
        with use_sweep(store=store_path) as st:
            assert st.mono_bounds(prefix_2d(B), "jag_m", 4) == (None, None, None)

    def test_seeding_validates_semantics(self, store_path):
        """A checksum-valid store with contradictory facts cannot poison."""
        A = _matrix(5, 20)
        _populate(A, store_path, algos=["JAG-M-OPT"], ms=[4, 6])
        doc = json.load(open(store_path))
        inst = next(iter(doc["payload"]["instances"].values()))
        for row in inst.get("mono", []):
            if row[0] == "jag_m" and "4" in row[2]:
                row[2]["4"] = 1  # impossible optimum, violates monotonicity
        payload = doc["payload"]
        doc["sha256"] = SweepStore._checksum(payload)  # re-sign the tampering
        json.dump(doc, open(store_path, "w"))
        assert self._ignored(store_path) is None  # checksum accepts it...
        cold = _cold(A, "JAG-M-OPT", 6)
        with use_sweep(store=store_path):
            # ...but the validators reject the contradiction during seeding
            # and the sweep still returns cold-identical results
            assert _rects(partition_2d(prefix_2d(A), 6, "JAG-M-OPT")) == cold

    def test_concurrent_flush_never_corrupts(self, store_path):
        """Two processes flushing the same file: valid store, facts survive."""
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_flush_worker, args=(store_path, seed))
            for seed in (101, 202)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0
        s = SweepStore(store_path)
        s.load()
        assert s.ignored_reason is None
        assert len(s._data) >= 1  # last-writer-wins at minimum, never torn


def _flush_worker(path: str, seed: int) -> None:
    A = _matrix(seed, 16)
    for _ in range(4):
        with use_sweep(store=path):
            partition_2d(prefix_2d(A), 4, "JAG-M-OPT")


class TestStoreFormat:
    def test_round_trip_preserves_big_ints(self, tmp_path):
        """json carries python ints losslessly — no 2^53 truncation."""
        path = os.fspath(tmp_path / "big.json")
        big = (1 << 62) + 7
        A = np.array([[big, 1], [1, big]], dtype=np.int64)
        pref = prefix_2d(A)
        with use_sweep(store=path) as st:
            st.record_mono_opt(pref, "jag_m", 4, big)
        with use_sweep(store=path) as st:
            exact, _, _ = st.mono_bounds(prefix_2d(A), "jag_m", 4)
            assert exact == big

    def test_merge_drops_conflicting_optima(self, tmp_path):
        from repro.sweep.store import _merge_instance

        a = {"shape": [2, 2], "mono": [["jag_m", [], {"4": 10}, {}]]}
        b = {"shape": [2, 2], "mono": [["jag_m", [], {"4": 11, "6": 5}, {}]]}
        merged = _merge_instance(a, b)
        table = merged["mono"][0][2]
        assert "4" not in table  # trust neither side of a conflict
        assert table["6"] == 5

    def test_merge_keeps_min_ubs(self, tmp_path):
        from repro.sweep.store import _merge_instance

        a = {"shape": [2, 2], "mono": [["jag_m", [], {}, {"4": 10}]]}
        b = {"shape": [2, 2], "mono": [["jag_m", [], {}, {"4": 8}]]}
        assert _merge_instance(a, b)["mono"][0][3]["4"] == 8


class TestParallelComposition:
    def test_csvs_identical_jobs_1_vs_4_with_store(self, tmp_path, monkeypatch):
        """Figure CSVs are byte-identical for any --jobs inside sweep scopes,
        cold and warm-from-disk alike."""
        from repro.experiments import ALL_FIGURES
        from repro.experiments.cli import main
        from tests.test_experiments import TINY

        monkeypatch.setenv("REPRO_PARALLEL_MIN_CELLS", "0")
        monkeypatch.setattr(
            "repro.experiments.cli.ALL_RUNNABLE",
            {"fig05": lambda sc: ALL_FIGURES["fig05"](TINY)},
        )
        store = os.fspath(tmp_path / "facts.json")
        outs = {}
        for tag, jobs in (("serial", "1"), ("par", "4"), ("warm", "4")):
            out = tmp_path / tag
            rc = main(
                [
                    "--figures",
                    "fig05",
                    "--out",
                    os.fspath(out),
                    "--jobs",
                    jobs,
                    "--sweep-store",
                    store,
                ]
            )
            assert rc == 0
            outs[tag] = (out / "fig05.csv").read_bytes()
        assert outs["serial"] == outs["par"] == outs["warm"]
