"""Tests for migration-aware incremental repartitioning (§5 extension)."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.metrics import migration_volume
from repro.core.prefix import PrefixSum2D
from repro.dynamic import IncrementalJagged, refine_jagged
from repro.jagged import jag_m_heur
from repro.rectilinear import rect_uniform


def blob_snapshots(n=64, steps=8, speed=1.5, seed=0):
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    out = []
    for k in range(steps):
        cx, cy = 12 + speed * k, 12 + speed * 1.3 * k
        A = 100 + (
            900 * np.exp(-(((ii - cx) ** 2 + (jj - cy) ** 2) / (2 * 8.0**2)))
        ).astype(np.int64)
        out.append(A.astype(np.int64))
    return out


class TestRefine:
    def test_refined_is_valid_and_jagged(self, rng):
        A = rng.integers(1, 50, (24, 24))
        p = jag_m_heur(A, 9)
        B = rng.integers(1, 50, (24, 24))
        r = refine_jagged(p, B)
        r.validate()
        assert r.m == p.m
        np.testing.assert_array_equal(
            r.meta["stripe_cuts"], p.meta["stripe_cuts"]
        )

    def test_refine_improves_on_stale_partition(self, rng):
        snaps = blob_snapshots()
        p = jag_m_heur(snaps[0], 16)
        stale = p.max_load(snaps[-1])
        refined = refine_jagged(p, snaps[-1]).max_load(snaps[-1])
        assert refined <= stale

    def test_refine_preserves_orientation(self, rng):
        A = rng.integers(1, 50, (16, 40))
        p = jag_m_heur(A, 9, orientation="ver")
        p.meta["transposed"] = True
        r = refine_jagged(p, A)
        r.validate()
        assert r.shape == p.shape

    def test_rejects_non_jagged(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 4)
        p.meta.pop("stripe_cuts", None)
        with pytest.raises(ParameterError):
            refine_jagged(p, A)

    def test_rejects_shape_mismatch(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = jag_m_heur(A, 4, orientation="hor")
        with pytest.raises(ParameterError):
            refine_jagged(p, rng.integers(1, 9, (10, 8)))


class TestIncrementalJagged:
    def test_first_step_is_full(self):
        inc = IncrementalJagged(8)
        p = inc.step(blob_snapshots(steps=1)[0])
        p.validate()
        assert inc.full_repartitions == 1 and inc.refinements == 0

    def test_migration_tradeoff(self):
        """Higher threshold -> fewer full repartitions and less migration."""
        snaps = blob_snapshots(steps=10)
        results = {}
        for thr in (0.0, 0.3):
            inc = IncrementalJagged(16, threshold=thr)
            prev = None
            migration = 0
            for A in snaps:
                pref = PrefixSum2D(A)
                p = inc.step(pref)
                p.validate()
                if prev is not None:
                    migration += migration_volume(prev, p, pref)
                prev = p
            results[thr] = (migration, inc.full_repartitions)
        assert results[0.3][1] < results[0.0][1]  # fewer full repartitions
        assert results[0.3][0] <= results[0.0][0]  # no more migration

    def test_balance_stays_bounded(self):
        snaps = blob_snapshots(steps=10)
        inc = IncrementalJagged(16, threshold=0.2)
        for A in snaps:
            pref = PrefixSum2D(A)
            p = inc.step(pref)
            fresh = jag_m_heur(pref, 16)
            assert p.max_load(pref) <= 1.2 * fresh.max_load(pref) + 1e-9

    def test_partitioner_adapter(self):
        from repro.runtime import BSPSimulator

        inc = IncrementalJagged(8, threshold=0.2)
        sim = BSPSimulator(8, inc.partitioner(), repartition_every=1)
        rep = sim.run((500 * k, A) for k, A in enumerate(blob_snapshots(steps=4)))
        assert len(rep.steps) == 4
        assert inc.full_repartitions + inc.refinements == 4

    def test_partitioner_m_mismatch(self):
        inc = IncrementalJagged(8)
        run = inc.partitioner()
        with pytest.raises(ParameterError):
            run(PrefixSum2D(np.ones((4, 4), dtype=np.int64)), 9)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            IncrementalJagged(0)
        with pytest.raises(ParameterError):
            IncrementalJagged(4, threshold=-0.1)

    def test_full_vs_refine_decision_exact_past_float_precision(self, monkeypatch):
        """Big-int regression: the drift decision must not round through float.

        With refined/fresh max loads near 2^62 sitting just past the exact
        ``(1 + threshold)`` boundary, the old expression
        ``refined > (1.0 + threshold) * fresh`` rounds the product and keeps
        the drifted refinement; the exact rational comparison rebuilds.
        """
        import repro.dynamic.incremental as mod

        refined_lmax = 2536428244843917064  # > 1.1 * fresh exactly ...
        fresh_lmax = 2305843858949015501  # ... but not in float arithmetic
        assert not refined_lmax > (1.0 + 0.1) * fresh_lmax  # float says keep

        class FakePart:
            def __init__(self, lmax):
                self._lmax = lmax
                self.meta = {}

            def max_load(self, pref):
                return self._lmax

        fresh_parts = iter([FakePart(10), FakePart(fresh_lmax)])
        monkeypatch.setattr(mod, "jag_m_heur", lambda pref, m, oned: next(fresh_parts))
        monkeypatch.setattr(
            mod, "refine_jagged", lambda prev, pref, oned: FakePart(refined_lmax)
        )

        inc = IncrementalJagged(4, threshold=0.1)
        A = np.ones((2, 2), dtype=np.int64)
        inc.step(A)  # install the first (fake) full partition
        chosen = inc.step(A)
        # exact arithmetic: the refinement drifted past the threshold, so
        # the fresh partition must win
        assert chosen.max_load(None) == fresh_lmax
        assert inc.full_repartitions == 2 and inc.refinements == 0
