"""Tests for hierarchical bipartitions: HIER-RB, HIER-RELAXED, HIER-OPT (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import ParameterError
from repro.hierarchical import (
    HIER_VARIANTS,
    HierNode,
    hier_opt,
    hier_opt_bottleneck,
    hier_rb,
    hier_relaxed,
)
from repro.hierarchical.cuts import best_relaxed_split, best_weighted_cut

from .conftest import load_matrices, prefix_of

tiny_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    elements=st.integers(0, 30),
)


class TestCutHelpers:
    def test_weighted_cut_balances(self):
        bp = prefix_of([4, 4, 4, 4])
        cut, val = best_weighted_cut(bp, 1, 1)
        assert cut == 2 and val == 8

    def test_weighted_cut_respects_weights(self):
        bp = prefix_of([3, 3, 3, 3])
        cut, val = best_weighted_cut(bp, 3, 1)
        assert cut == 3  # 9 load for 3 procs vs 3 for 1

    def test_weighted_cut_too_short(self):
        assert best_weighted_cut(prefix_of([5]), 1, 1) is None

    def test_relaxed_split_uniformish(self):
        bp = prefix_of([2] * 16)
        cut, j, val = best_relaxed_split(bp, 4)
        assert 1 <= cut <= 15 and 1 <= j <= 3
        assert val == pytest.approx(8.0)

    def test_relaxed_split_too_small(self):
        assert best_relaxed_split(prefix_of([5]), 4) is None
        assert best_relaxed_split(prefix_of([5, 5]), 1) is None


@pytest.mark.parametrize("algo", [hier_rb, hier_relaxed])
class TestHierCommon:
    @given(A=load_matrices, m=st.integers(1, 9), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_valid_all_variants(self, algo, A, m, data):
        variant = data.draw(st.sampled_from(HIER_VARIANTS))
        p = algo(A, m, variant)
        assert p.m == m
        p.validate()

    def test_indexer_matches_owner_map(self, algo, rng):
        A = rng.integers(0, 9, (12, 10))
        p = algo(A, 7)
        owner = p.owner_map()
        for i in range(12):
            for j in range(10):
                assert p.owner_of(i, j) == owner[i, j]

    def test_unknown_variant(self, algo, rng):
        with pytest.raises(ParameterError):
            algo(rng.integers(1, 5, (4, 4)), 2, "sideways")

    def test_nonpositive_m(self, algo, rng):
        with pytest.raises(ParameterError):
            algo(rng.integers(1, 5, (4, 4)), 0)

    def test_tiny_matrix_idle_processors(self, algo):
        A = np.array([[5]])
        p = algo(A, 4)
        assert p.m == 4
        p.validate()
        assert p.max_load(A) == 5

    def test_deep_tree_no_recursion_error(self, algo):
        # a 1-cell-wide matrix forces a chain of cuts along one dimension
        A = np.ones((2048, 1), dtype=np.int64)
        p = algo(A, 512)
        p.validate()


class TestAgainstOptOracle:
    @given(tiny_matrices, st.integers(1, 5), st.sampled_from(HIER_VARIANTS))
    @settings(max_examples=40, deadline=None)
    def test_heuristics_never_beat_opt(self, A, m, variant):
        opt = hier_opt_bottleneck(A, m)
        assert hier_rb(A, m, variant).max_load(A) >= opt
        assert hier_relaxed(A, m, variant).max_load(A) >= opt

    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_opt_partition_achieves_dp_value(self, A, m):
        p = hier_opt(A, m)
        p.validate()
        assert p.max_load(A) == hier_opt_bottleneck(A, m)

    def test_opt_single_processor(self, rng):
        A = rng.integers(1, 9, (4, 4))
        assert hier_opt_bottleneck(A, 1) == A.sum()

    def test_opt_size_guard(self, rng):
        A = rng.integers(1, 5, (64, 64))
        with pytest.raises(ParameterError):
            hier_opt_bottleneck(A, 64, limit=1000)


class TestTreeStructure:
    def test_meta_contains_tree(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = hier_rb(A, 4)
        root = p.meta["tree"]
        assert isinstance(root, HierNode)
        assert root.procs == 4
        leaves = list(root.leaves())
        assert [leaf.proc for leaf in leaves] == list(range(len(leaves)))

    def test_power_of_two_balanced_depth(self, rng):
        A = rng.integers(1, 9, (32, 32))
        p = hier_rb(A, 16)
        assert p.meta["tree"].depth() == 4

    def test_variants_differ_on_skewed_instance(self):
        # a wide flat matrix: DIST always cuts columns, HOR starts with rows
        A = np.arange(1, 5 * 64 + 1, dtype=np.int64).reshape(5, 64)
        rb_dist = hier_rb(A, 8, "dist")
        first_dims = {rb_dist.meta["tree"].dim}
        assert first_dims == {1}
        rb_hor = hier_rb(A, 8, "hor")
        assert rb_hor.meta["tree"].dim == 0
