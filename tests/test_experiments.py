"""Tests for the experiment harness, scale profiles, figure functions, CLI."""

import numpy as np
import pytest

from repro.experiments import ALL_FIGURES, FigureResult, get_scale
from repro.experiments.cli import main
from repro.experiments.scale import PAPER, SMALL, TINY, Scale


class TestScale:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale(None).name == "small"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale(None).name == "paper"

    def test_by_name(self):
        assert get_scale("small") is SMALL
        assert get_scale("paper") is PAPER
        assert get_scale(TINY) is TINY
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_paper_profile_matches_paper_numbers(self):
        assert PAPER.n_uniform == 512
        assert PAPER.n_diagonal == 4096
        assert PAPER.n_fig9 == 514 and PAPER.m_fig9 == 800
        assert PAPER.m_fig8 == 6400 and PAPER.m_fig12 == 9216
        assert PAPER.pic_period == 500 and PAPER.pic_max_iteration == 33_500
        assert PAPER.m_cap_m_opt <= 1024  # "prohibitive" beyond 1,000 (§4.4)


class TestFigureResult:
    def test_add_and_table(self):
        r = FigureResult("figX", "demo", "m", "imbalance")
        r.add("A", 4, 0.5)
        r.add("A", 9, 0.25)
        r.add("B", 4, 0.75)
        table = r.to_table()
        assert "figX" in table and "A" in table and "B" in table
        assert "0.5000" in table and "-" in table  # missing B@9 rendered as -

    def test_csv_roundtrip(self, tmp_path):
        r = FigureResult("figY", "demo", "m", "y")
        r.add("s", 1, 0.125)
        path = r.to_csv(tmp_path / "figY.csv")
        text = path.read_text()
        assert text.splitlines()[0] == "m,s"
        assert "0.125" in text

    def test_csv_roundtrip_bitexact_with_missing(self, tmp_path):
        from repro.experiments.harness import MISSING

        r = FigureResult("figZ", "demo", "m", "y")
        r.add("A", 4, 1 / 3)  # non-terminating binary fraction: repr must round-trip
        r.add("A", 9, 0.0073615436187954)
        r.add("B", 4, 2.5)  # B has no point at x=9 -> MISSING cell
        path = r.to_csv(tmp_path / "figZ.csv")
        assert MISSING in path.read_text().splitlines()[2].split(",")
        back = FigureResult.from_csv(path, fig="figZ")
        assert back.series == r.series  # bit-identical floats, absent cell absent
        assert back.xlabel == "m"

    def test_missing_sentinel_shared_by_table_and_csv(self, tmp_path):
        from repro.experiments.harness import MISSING

        r = FigureResult("figW", "demo", "m", "y")
        r.add("A", 1, 0.5)
        r.add("B", 2, 0.5)
        # same sentinel renders the A@2 / B@1 holes in both formats
        assert MISSING in r.to_table()
        cells = {
            c
            for line in r.to_csv(tmp_path / "w.csv").read_text().splitlines()[1:]
            for c in line.split(",")
        }
        assert MISSING in cells

    def test_from_csv_rejects_empty(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError):
            FigureResult.from_csv(p)

    def test_xs_sorted_union(self):
        r = FigureResult("f", "t", "x", "y")
        r.add("a", 5, 1)
        r.add("b", 2, 1)
        r.add("a", 2, 1)
        assert r.xs() == [2.0, 5.0]


@pytest.mark.parametrize("fig", sorted(ALL_FIGURES))
def test_every_figure_runs_tiny(fig):
    result = ALL_FIGURES[fig](TINY)
    assert isinstance(result, FigureResult)
    assert result.fig == fig
    assert result.series, f"{fig} produced no series"
    for name, pts in result.series.items():
        assert pts, f"{fig}/{name} is empty"
        for _, y in pts:
            assert np.isfinite(y)
    # imbalance figures are non-negative; runtime figure is positive
    if fig != "fig06":
        assert all(y >= -1e-9 for pts in result.series.values() for _, y in pts)


class TestFigureSemantics:
    def test_fig07_mopt_capped(self):
        r = ALL_FIGURES["fig07"](TINY)
        xs_mopt = [x for x, _ in r.series["JAG-M-OPT"]]
        assert max(xs_mopt) <= TINY.m_cap_m_opt
        assert "JAG-PQ-HEUR" in r.series and "JAG-M-HEUR" in r.series

    def test_fig08_iterations_axis(self):
        r = ALL_FIGURES["fig08"](TINY)
        xs = [x for x, _ in r.series["JAG-M-HEUR"]]
        assert xs == [0, 100, 200, 300]

    def test_fig09_has_guarantee_series(self):
        r = ALL_FIGURES["fig09"](TINY)
        assert any("guarantee" in k for k in r.series)
        meas = dict(r.series["JAG-M-HEUR variable P"])
        guar = dict(r.series["m-way jagged guarantee (Thm 3)"])
        for P, v in meas.items():
            assert v <= guar[P] + 1e-9  # measured within the worst-case bound

    def test_fig12_contains_all_heuristics(self):
        r = ALL_FIGURES["fig12"](TINY)
        assert set(r.series) == {
            "RECT-UNIFORM",
            "RECT-NICOL",
            "JAG-PQ-HEUR",
            "JAG-M-HEUR",
            "HIER-RB",
            "HIER-RELAXED",
        }


class TestCli:
    def test_requires_figures(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_figure(self, capsys, monkeypatch, tmp_path):
        # run the smallest real profile figure through the CLI
        monkeypatch.setattr(
            "repro.experiments.cli.ALL_RUNNABLE", {"fig05": lambda sc: _tiny_fig()}
        )
        rc = main(["--figures", "fig05", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert (tmp_path / "fig05.csv").exists()


def _tiny_fig():
    r = FigureResult("fig05", "demo", "m", "y")
    r.add("s", 1, 0.5)
    return r


class TestDeterminism:
    def test_figures_deterministic(self):
        """Re-running an experiment yields bit-identical series."""
        a = ALL_FIGURES["fig05"](TINY)
        b = ALL_FIGURES["fig05"](TINY)
        assert a.series == b.series

    def test_timed_helper(self):
        from repro.experiments.harness import timed

        dt, out = timed(sum, range(1000))
        assert out == sum(range(1000))
        assert dt >= 0.0

    def test_timed_repeats(self):
        from repro.experiments.harness import timed

        calls = []
        dt, out = timed(lambda: calls.append(1) or len(calls), repeats=3)
        assert len(calls) == 3
        assert out == 1  # result of the *first* call
        assert dt >= 0.0
        with pytest.raises(ValueError):
            timed(sum, range(10), repeats=0)


class TestExtensions:
    def test_ext5_covers_registry_gaps(self):
        """ext5 runs every otherwise-unexercised registry entry (RPL007)."""
        from repro.experiments.extensions import _UNCOVERED_ENTRIES, ext5_registry_coverage

        r = ext5_registry_coverage(TINY)
        assert set(r.series) == set(_UNCOVERED_ENTRIES)
        for pts in r.series.values():
            assert [x for x, _ in pts] == [2.0, 4.0, 6.0]

    def test_ext5_exact_beats_heuristic(self):
        """Each exact method ≤ its heuristic on ext5's common instance."""
        from repro.core.prefix import PrefixSum2D
        from repro.core.registry import ALGORITHMS
        from repro.experiments.extensions import ext5_registry_coverage
        from repro.instances import peak

        r = ext5_registry_coverage(TINY)
        s = {name: dict(pts) for name, pts in r.series.items()}
        pref = PrefixSum2D(peak(min(TINY.n_peak, 20), seed=0))
        for m in (2, 4, 6):
            for o in ("HOR", "VER", "BEST"):
                assert s[f"JAG-PQ-OPT-{o}"][m] <= s[f"JAG-PQ-HEUR-{o}"][m] + 1e-12
                assert s[f"JAG-M-OPT-{o}"][m] <= s[f"JAG-M-HEUR-{o}"][m] + 1e-12
            assert s["SPIRAL-OPT"][m] <= s["SPIRAL-RELAXED"][m] + 1e-12
            hier_rb = ALGORITHMS["HIER-RB"](pref, m).imbalance(pref)
            assert s["HIER-OPT"][m] <= hier_rb + 1e-12


class TestGallery:
    def test_make_gallery(self, tmp_path):
        from repro.experiments.gallery import make_gallery

        paths = make_gallery(tmp_path, TINY, n=24, m=5)
        assert len(paths) == 11  # 5 partition classes + 6 instance classes
        for p in paths:
            data = p.read_bytes()
            assert data.startswith(b"P6")
        names = {p.name for p in paths}
        assert "fig1_m_jagged.ppm" in names and "fig2_pic_mag.ppm" in names

    def test_gallery_via_cli(self, tmp_path):
        from repro.experiments.cli import main as cli_main

        rc = cli_main(["--gallery", str(tmp_path / "g")])
        assert rc == 0
        assert len(list((tmp_path / "g").glob("*.ppm"))) == 11
