"""Tests for the raw-result figure cache (``repro.experiments.rawstore``).

Covers the three pillars the module promises:

* incremental — a second run over a populated store is all cache hits and
  byte-identical;
* interruptible/resumable — a run killed mid-figure (simulated with
  :class:`InterruptingRawStore`) resumes from the flushed cells, for
  ``--jobs 1`` and ``--jobs 4`` alike;
* safe — truncated / tampered / version-skewed / mis-keyed files are
  ignored, recomputed cold, and healed on the next flush.
"""

import dataclasses
import json
import os

import pytest

from repro.experiments import ALL_FIGURES, TINY, use_raw_store
from repro.experiments.rawstore import (
    MISS,
    InterruptingRawStore,
    RawStore,
    SimulatedInterrupt,
    cell,
    combine_digests,
    current_raw_store,
    digest_matrix,
    set_default_raw_store,
)
from repro.parallel.config import use_parallel


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    """Keep each test's store explicit: clear env + process default."""
    monkeypatch.delenv("REPRO_RAW_STORE", raising=False)
    set_default_raw_store(None)
    yield
    set_default_raw_store(None)


def _key(store, **over):
    kw = dict(profile="tiny", digest="abc:1", algo="JAG-M-HEUR", m=4)
    kw.update(over)
    return store.make_key(**kw)


class TestStoreBasics:
    def test_roundtrip(self, tmp_path):
        store = RawStore(tmp_path)
        key = _key(store)
        assert store.load(key) is MISS
        store.store(key, 0.125)
        assert store.load(key) == 0.125
        assert store.counters() == {"hits": 1, "misses": 1, "invalid": 0}

    def test_resolve_computes_once(self, tmp_path):
        store = RawStore(tmp_path)
        key = _key(store)
        calls = []
        for _ in range(3):
            v = store.resolve(key, lambda: calls.append(1) or 0.5)
        assert v == 0.5 and len(calls) == 1
        assert store.hits == 2 and store.misses == 1

    def test_distinct_keys_distinct_files(self, tmp_path):
        store = RawStore(tmp_path)
        variants = [
            _key(store),
            _key(store, m=9),
            _key(store, algo="HIER-RB"),
            _key(store, digest="abc:2"),
            _key(store, metric="runtime_s"),
            _key(store, scope=(("threshold", ("float", "0x1p-1")),)),
            _key(store, profile="small"),
        ]
        paths = {store._path(k) for k in variants}
        assert len(paths) == len(variants)

    def test_profile_keying_isolation(self, tmp_path):
        """Same instance + algorithm under another profile must not hit."""
        store = RawStore(tmp_path)
        store.store(_key(store), 1.0)
        assert store.load(_key(store, profile="tiny2")) is MISS

    def test_force_recomputes_but_still_writes(self, tmp_path):
        store = RawStore(tmp_path)
        key = _key(store)
        store.store(key, 1.0)
        forced = RawStore(tmp_path, force=True)
        assert forced.load(key) is MISS  # no lookup under --force
        forced.store(key, 2.0)
        assert RawStore(tmp_path).load(key) == 2.0  # fresh value refreshed

    def test_value_types_roundtrip(self, tmp_path):
        store = RawStore(tmp_path)
        for metric, value in [
            ("imbalance", 0.07386363636363637),
            ("lmax_lavg", [1234, 1101.5625]),
            ("runtime_s", 0.0031155890008929607),
            ("comm_volume", 4812),
            ("migration_series", [0.25, 0.125, 3]),
        ]:
            key = _key(store, metric=metric)
            store.store(key, value)
            assert RawStore(tmp_path).load(key) == value


class TestIntegrity:
    """Every corruption mode degrades to a cold recompute, never an error."""

    def _stored(self, tmp_path):
        store = RawStore(tmp_path)
        key = _key(store)
        store.store(key, 0.25)
        return store, key, store._path(key)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: open(p, "w").close(),  # truncated to empty
            lambda p: open(p, "a").write("garbage"),  # trailing junk
            lambda p: open(p, "w").write("not json at all"),
            lambda p: _rewrite(p, "value", 99.0),  # tampered value
            lambda p: _rewrite(p, "version", 999),  # version skew
            lambda p: _rewrite(p, "format", "other"),
            lambda p: _drop(p, "sha256"),
            lambda p: _drop(p, "value"),
            lambda p: open(p, "w").write(json.dumps([1, 2, 3])),  # non-dict
        ],
    )
    def test_corruption_recomputes_cold_and_heals(self, tmp_path, corrupt):
        _, key, path = self._stored(tmp_path)
        corrupt(path)
        store = RawStore(tmp_path)
        assert store.resolve(key, lambda: 0.25) == 0.25
        assert store.invalid == 1 and store.misses == 1 and store.hits == 0
        # the recompute healed the file: next reader hits clean
        healed = RawStore(tmp_path)
        assert healed.load(key) == 0.25
        assert healed.counters() == {"hits": 1, "misses": 0, "invalid": 0}

    def test_key_mismatch_under_colliding_name(self, tmp_path):
        """A file whose embedded key disagrees with its name is rejected."""
        store, key, path = self._stored(tmp_path)
        other = _key(store, digest="zzz:1")
        doc = {
            "format": "repro-raw-cell",
            "version": 1,
            "key": other,
            "value": 9.0,
            "sha256": store._checksum(other, 9.0),
        }
        with open(path, "w") as fh:  # checksum valid, key wrong for this path
            json.dump(doc, fh)
        fresh = RawStore(tmp_path)
        assert fresh.load(key) is MISS
        assert fresh.invalid == 1

    def test_schema_bump_misses_cleanly(self, tmp_path, monkeypatch):
        store, key, _ = self._stored(tmp_path)
        monkeypatch.setattr("repro.experiments.rawstore.SCHEMA", 2)
        bumped = RawStore(tmp_path)
        assert bumped.load(_key(bumped)) is MISS  # new key -> new path


class TestAmbientSelection:
    def test_no_store_computes(self):
        assert current_raw_store() is None
        assert cell("tiny", "d:1", "A", 2, lambda: 0.5) == 0.5

    def test_use_raw_store_scopes(self, tmp_path):
        with use_raw_store(tmp_path) as store:
            assert current_raw_store() is store
            assert cell("tiny", "d:1", "A", 2, lambda: 0.5) == 0.5
            assert store.misses == 1
            with use_raw_store(None):  # inner scope disables caching
                assert current_raw_store() is None
        assert current_raw_store() is None

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RAW_STORE", str(tmp_path))
        set_default_raw_store(None)
        monkeypatch.setattr("repro.experiments.rawstore._ENV_LOADED", False)
        store = current_raw_store()
        assert store is not None and store.root == str(tmp_path)

    def test_kwargs_scope_keys_cells_apart(self, tmp_path):
        with use_raw_store(tmp_path) as store:
            a = cell("tiny", "d:1", "A", 2, lambda: 1.0, num_stripes="sqrt")
            b = cell("tiny", "d:1", "A", 2, lambda: 2.0, num_stripes="auto")
        assert (a, b) == (1.0, 2.0)
        assert store.misses == 2

    def test_combine_digests_order_sensitive(self):
        assert combine_digests(["a:1", "b:1"]) != combine_digests(["b:1", "a:1"])
        assert combine_digests(["a:1"]) != combine_digests(["a:11"])

    def test_digest_matrix_includes_scale(self):
        import numpy as np

        A = np.array([[2, 4], [6, 8]], dtype=np.int64)
        assert digest_matrix(A) != digest_matrix(A // 2)
        assert digest_matrix(A).split(":")[0] == digest_matrix(A // 2).split(":")[0]


def _figures_under(store, figs=("fig05", "fig13")):
    out = {}
    with use_raw_store(None, store=store):
        for fig in figs:
            out[fig] = ALL_FIGURES[fig](TINY).csv_bytes()
    return out


class TestFigureFarm:
    def test_second_run_all_hits_byte_identical(self, tmp_path):
        cold = _figures_under(RawStore(tmp_path))
        warm_store = RawStore(tmp_path)
        warm = _figures_under(warm_store)
        assert warm == cold
        assert warm_store.misses == 0 and warm_store.invalid == 0
        assert warm_store.hits > 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_kill_and_resume_byte_identical(self, tmp_path, jobs):
        baseline = _figures_under(RawStore(tmp_path / "baseline"))

        killed = InterruptingRawStore(tmp_path / "resumed", abort_after=7)
        ctx = use_parallel(True, workers=jobs, force=True)
        with ctx:
            with pytest.raises(SimulatedInterrupt):
                _figures_under(killed)
            flushed = sum(
                len(files) for _, _, files in os.walk(tmp_path / "resumed")
            )
            assert flushed == 7  # every write up to the kill landed atomically

            resumer = RawStore(tmp_path / "resumed")
            resumed = _figures_under(resumer)
        assert resumed == baseline
        assert resumer.hits >= 7  # the flushed cells were reused, not redone

    def test_tampered_store_still_correct(self, tmp_path):
        root = tmp_path / "raw"  # conftest parks $REPRO_CACHE in tmp_path
        baseline = _figures_under(RawStore(root))
        files = sorted(
            os.path.join(dirpath, f)
            for dirpath, _, names in os.walk(root)
            for f in names
        )
        for path in files[::2]:  # tamper every other cell
            _rewrite(path, "value", 1e9)
        store = RawStore(root)
        assert _figures_under(store) == baseline
        assert store.invalid == len(files[::2])

    def test_profiles_do_not_cross_hit(self, tmp_path):
        _figures_under(RawStore(tmp_path), figs=("fig05",))
        other = dataclasses.replace(TINY, name="tiny2")
        store = RawStore(tmp_path)
        with use_raw_store(None, store=store):
            ALL_FIGURES["fig05"](other)
        assert store.hits == 0 and store.misses > 0


def _rewrite(path, field, value):
    with open(path) as fh:
        doc = json.load(fh)
    doc[field] = value
    with open(path, "w") as fh:
        json.dump(doc, fh)


def _drop(path, field):
    with open(path) as fh:
        doc = json.load(fh)
    del doc[field]
    with open(path, "w") as fh:
        json.dump(doc, fh)
