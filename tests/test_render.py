"""Tests for the partition renderers (ASCII, PPM)."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.render import ascii_render, save_ppm
from repro.rectilinear import rect_uniform


class TestAsciiRender:
    def test_structure_visible(self, rng):
        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 4)  # 2x2 grid
        art = ascii_render(p)
        lines = art.splitlines()
        assert len(lines) == 8 and all(len(l) == 8 for l in lines)
        # four distinct quadrant glyphs
        assert lines[0][0] != lines[0][-1]
        assert lines[0][0] != lines[-1][0]

    def test_downsampling(self, rng):
        A = rng.integers(1, 9, (200, 300))
        p = rect_uniform(A, 6)
        art = ascii_render(p, max_width=30, max_height=10)
        lines = art.splitlines()
        assert len(lines) == 10 and all(len(l) == 30 for l in lines)

    def test_validation(self, rng):
        p = rect_uniform(rng.integers(1, 9, (4, 4)), 2)
        with pytest.raises(ParameterError):
            ascii_render(p, max_width=0)


class TestPpm:
    def test_writes_valid_header_and_size(self, tmp_path, rng):
        A = rng.integers(1, 9, (16, 24))
        p = rect_uniform(A, 6)
        path = save_ppm(p, tmp_path / "part.ppm", A=A, scale=2)
        data = path.read_bytes()
        assert data.startswith(b"P6 48 32 255\n")
        assert len(data) == len(b"P6 48 32 255\n") + 48 * 32 * 3

    def test_without_load_shading(self, tmp_path, rng):
        A = rng.integers(1, 9, (8, 8))
        p = rect_uniform(A, 4)
        path = save_ppm(p, tmp_path / "plain.ppm")
        assert path.exists()

    def test_scale_validation(self, tmp_path, rng):
        p = rect_uniform(rng.integers(1, 9, (4, 4)), 2)
        with pytest.raises(ParameterError):
            save_ppm(p, tmp_path / "x.ppm", scale=0)

    def test_uniform_load_shading(self, tmp_path):
        A = np.full((8, 8), 7, dtype=np.int64)
        p = rect_uniform(A, 4)
        save_ppm(p, tmp_path / "flat.ppm", A=A)  # hi == lo branch
