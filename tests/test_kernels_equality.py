"""Adversarial bit-identity suite for the kernel registry (repro.perf.kernels).

Every registered backend of every kernel is compared against the scalar
reference implementation bit for bit, on inputs chosen to break vectorized
shortcuts: all-zero arrays and zero runs, single-cell arrays, empty windows,
loads near ``2**62`` (where an unclamped ``P[pos] + B`` overflows int64),
and ``m > n`` (more processors than cells).

The ``numba`` backend degrades per kernel to numpy when the compiled module
is absent, so requesting it is always safe — on a box without the ``[perf]``
extra these tests exercise the degradation path; with it installed they
compare the compiled twins.

The tail of the module pins the dispatch sites themselves (RPL009: the
``perf_enabled()`` guards in ``oned.probe``, ``oned.multicost`` and
``jagged.m_heur`` must agree with their reference twins) and the registry's
lint coverage (``perf`` stays in ``HOT_PACKAGES``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.config import (
    _parse_backend,
    perf_backend,
    set_perf_backend,
    use_perf,
    use_perf_backend,
)
from repro.perf.kernels import KERNELS, kernel, numba_available

#: non-reference backends; "numba" resolves to numpy when the extra is absent
BACKENDS = ("numpy", "numba")

_HUGE = 2**62


def _prefix(values) -> np.ndarray:
    P = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(np.asarray(values, dtype=np.int64), out=P[1:])
    return P


#: adversarial 1D prefix arrays (name -> prefix)
PREFIXES = {
    "zeros": _prefix([0, 0, 0, 0, 0]),
    "zero_runs": _prefix([0, 5, 0, 0, 3, 0, 0, 0, 9, 0]),
    "single_cell": _prefix([7]),
    "empty": _prefix([]),
    "plain": _prefix([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9]),
    # two ~2**62 cells: any unclamped target P[pos] + B with B near the
    # total overflows int64; the sum stays below 2**63 - 1
    "huge": _prefix([_HUGE - 7, 13, 2**61, 999]),
}


def _candidate_Bs(P: np.ndarray) -> list[int]:
    total = int(P[-1])
    cells = np.diff(P)
    mx = int(cells.max()) if len(cells) else 0
    return sorted({-1, 0, 1, mx - 1, mx, total // 3, total, total + 5})


# ----------------------------------------------------------------------
# probe_batch / min_parts / probe_cuts — the windowed greedy kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pname", sorted(PREFIXES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_probe_batch_matches_reference(pname, backend):
    P = PREFIXES[pname]
    n = len(P) - 1
    Bs = np.array(_candidate_Bs(P), dtype=np.int64)
    windows = [(0, None)]
    if n >= 3:
        windows += [(1, n - 1), (2, 2)]  # interior window and an empty one
    for m in (1, 2, 3, n + 5):  # n + 5 > n: more processors than cells
        for lo, hi in windows:
            ref = kernel("probe_batch", "reference")(P, m, Bs, lo, hi)
            got = kernel("probe_batch", backend)(P, m, Bs, lo, hi)
            assert np.array_equal(ref, got), (pname, backend, m, lo, hi)


@pytest.mark.parametrize("pname", sorted(PREFIXES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_min_parts_matches_reference(pname, backend):
    P = PREFIXES[pname]
    n = len(P) - 1
    for B in _candidate_Bs(P):
        for cap in (None, 0, 1, 3, n + 7):
            try:
                ref = kernel("min_parts", "reference")(P, B, 0, None, cap)
            except ValueError:
                with pytest.raises(ValueError):
                    kernel("min_parts", backend)(P, B, 0, None, cap)
                continue
            got = kernel("min_parts", backend)(P, B, 0, None, cap)
            assert ref == got, (pname, backend, B, cap)


@pytest.mark.parametrize("pname", sorted(PREFIXES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_probe_cuts_matches_reference(pname, backend):
    P = PREFIXES[pname]
    n = len(P) - 1
    windows = [(0, None)] + ([(1, n - 1)] if n >= 3 else [])
    for m in (1, 2, 3, n + 5):
        for B in _candidate_Bs(P):
            for lo, hi in windows:
                ref = kernel("probe_cuts", "reference")(P, m, B, lo, hi)
                got = kernel("probe_cuts", backend)(P, m, B, lo, hi)
                if ref is None:
                    assert got is None, (pname, backend, m, B, lo, hi)
                else:
                    assert got is not None and np.array_equal(ref, got), (
                        pname,
                        backend,
                        m,
                        B,
                        lo,
                        hi,
                    )


def test_probe_cuts_accepts_boundary_lists():
    """Callers (oned.nicol, jagged.m_opt) pass plain Python lists."""
    Pl = [0, 3, 4, 8, 9, 14]
    for backend in ("reference",) + BACKENDS:
        out = kernel("probe_cuts", backend)(Pl, 3, 6, 0, None)
        assert out is not None and out.tolist()[0] == 0 and out.tolist()[-1] == 5


# ----------------------------------------------------------------------
# weighted_cut / relaxed_split — the windowed scoring kernels
# ----------------------------------------------------------------------
_ORIENTS = ((1, 1),), ((3, 5), (5, 3)), ((2, 7), (7, 2), (4, 4))


@pytest.mark.parametrize("pname", sorted(PREFIXES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_weighted_cut_matches_reference(pname, backend):
    P = PREFIXES[pname]
    n = len(P) - 1
    windows = [(0, n), (0, min(1, n))] + ([(1, n - 1)] if n >= 3 else [])
    for j0, j1 in windows:
        for orients in _ORIENTS:
            ref = kernel("weighted_cut", "reference")(P, j0, j1, orients)
            got = kernel("weighted_cut", backend)(P, j0, j1, orients)
            assert ref == got, (pname, backend, j0, j1, orients)


@pytest.mark.parametrize("pname", sorted(PREFIXES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_relaxed_split_matches_reference(pname, backend):
    P = PREFIXES[pname]
    n = len(P) - 1
    windows = [(0, n)] + ([(1, n - 1)] if n >= 3 else [])
    # m = 1 (None), 2 (scalar fast path), 5 (scalar), 40 (vectorized — and
    # on the "huge" prefix the total·j intermediate overflows without the
    # Python-int target fallback)
    for m in (1, 2, 5, 40):
        for j0, j1 in windows:
            ref = kernel("relaxed_split", "reference")(P, j0, j1, m)
            got = kernel("relaxed_split", backend)(P, j0, j1, m)
            assert ref == got, (pname, backend, m, j0, j1)


# ----------------------------------------------------------------------
# alloc_tail — the JAG-M-HEUR allocation tail
# ----------------------------------------------------------------------
_ALLOC_CASES = [
    ([5, 0, 9, 0, 3], 11),  # zero-load stripes in the mix
    ([1, 1, 1, 1], 4),  # m == P: the shave loop must run to q == 1
    ([1000, 1, 1, 1], 16),
    ([_HUGE - 7, 13, 2**61], 9),  # cross-multiplied comparisons past 2**53
    ([2, 3], 64),  # far more processors than stripes
]


@pytest.mark.parametrize("case", range(len(_ALLOC_CASES)))
@pytest.mark.parametrize("backend", BACKENDS)
def test_alloc_tail_matches_reference(case, backend):
    loads_l, m = _ALLOC_CASES[case]
    loads = np.asarray(loads_l, dtype=np.int64)
    P = len(loads)
    total = int(loads.sum())
    q = -((-(m - P) * loads) // total)  # the caller's exact ceil allocation
    np.maximum(q, 1, out=q)
    ref = kernel("alloc_tail", "reference")(loads, q, m)
    got = kernel("alloc_tail", backend)(loads, q, m)
    assert ref.tolist() == got.tolist(), (case, backend)
    assert int(got.sum()) == m and int(got.min()) >= 1


# ----------------------------------------------------------------------
# probe_multi — striped interval costs
# ----------------------------------------------------------------------
def _stack(*rows) -> np.ndarray:
    return np.stack([_prefix(r) for r in rows])


_MULTI_CASES = [
    _stack([0, 0, 0, 0], [0, 0, 0, 0]),  # all-zero rows
    _stack([5, 3, 9, 1]),  # single-row matrix == plain probe
    _stack([5, 0, 9, 0], [0, 7, 0, 2]),  # zero columns per stripe
    _stack([_HUGE - 7, 13, 2**61], [5, _HUGE - 1, 7]),  # near-overflow loads
    _stack([1, 2], [3, 4], [5, 6], [7, 8]),  # m > n for small m sweeps
    np.zeros((0, 5), dtype=np.int64),  # no stripes at all
]


@pytest.mark.parametrize("case", range(len(_MULTI_CASES)))
@pytest.mark.parametrize("backend", BACKENDS)
def test_probe_multi_matches_reference(case, backend):
    M = _MULTI_CASES[case]
    total = int(M[:, -1].max()) if M.shape[0] else 0
    Bs = sorted({-1, 0, 1, total // 3, total // 2, total, total + 9})
    for m in (1, 2, 3, M.shape[1] + 4):
        for B in Bs:
            ref = kernel("probe_multi", "reference")(M, m, B)
            got = kernel("probe_multi", backend)(M, m, B)
            assert ref == got, (case, backend, m, B)


# ----------------------------------------------------------------------
# backend selection and degradation
# ----------------------------------------------------------------------
def test_registry_names_are_stable():
    assert set(KERNELS) == {
        "probe_batch",
        "min_parts",
        "probe_cuts",
        "weighted_cut",
        "relaxed_split",
        "alloc_tail",
        "probe_multi",
    }
    for k in KERNELS.values():
        assert callable(k.reference) and callable(k.numpy)


def test_invalid_env_value_degrades_to_numpy():
    """A typo in REPRO_PERF_BACKEND must not break imports: parse -> numpy."""
    assert _parse_backend("bogus") == "numpy"
    assert _parse_backend("") == "numpy"
    assert _parse_backend(" REFERENCE ") == "reference"
    assert _parse_backend("Numba") == "numba"


def test_set_perf_backend_rejects_unknown_names():
    with pytest.raises(ValueError):
        set_perf_backend("cuda")
    # the failed set must not have clobbered the active backend
    assert perf_backend() in ("reference", "numpy", "numba")


def test_use_perf_backend_scopes_and_restores():
    before = perf_backend()
    with use_perf_backend("reference"):
        assert perf_backend() == "reference"
        with use_perf_backend("numba"):
            assert perf_backend() == "numba"
        assert perf_backend() == "reference"
    assert perf_backend() == before


def test_numba_backend_degrades_gracefully():
    """Selecting 'numba' without the extra resolves to numpy per kernel."""
    for name, k in KERNELS.items():
        impl = kernel(name, "numba")
        if not numba_available() or k.numba_attr is None:
            assert impl is k.numpy
        else:
            assert impl is not k.reference
    # scoring kernels never compile: exactness needs unbounded ints
    assert KERNELS["weighted_cut"].numba_attr is None
    assert KERNELS["relaxed_split"].numba_attr is None
    assert KERNELS["alloc_tail"].numba_attr is None


# ----------------------------------------------------------------------
# dispatch sites: the perf_enabled() guards agree with their twins (RPL009)
# ----------------------------------------------------------------------
def test_oned_probe_cuts_dispatch_matches_reference():
    from repro.oned.probe import probe_cuts

    P = PREFIXES["plain"]
    n = len(P) - 1
    for m in (1, 3, 7):
        for B in _candidate_Bs(P):
            with use_perf(False):
                ref = probe_cuts(P, m, B)
            with use_perf(True):
                got = probe_cuts(P, m, B)
            if ref is None:
                assert got is None
            else:
                assert got is not None and np.array_equal(ref, got)


def test_multicost_dispatch_matches_reference():
    from repro.oned.multicost import multi_bottleneck, probe_multi

    M = _stack([5, 3, 9, 1, 7, 2], [2, 8, 1, 6, 3, 4])
    total = int(M[:, -1].max())
    for m in (1, 2, 4, 9):
        for B in (0, total // 3, total):
            with use_perf(False):
                ref = probe_multi(M, m, B)
            with use_perf(True):
                got = probe_multi(M, m, B)
            assert ref == got
        with use_perf(False):
            ref_B = multi_bottleneck(M, m)
        with use_perf(True):
            got_B = multi_bottleneck(M, m)
        assert ref_B == got_B


def test_allocate_processors_dispatch_matches_reference():
    from repro.jagged.m_heur import allocate_processors

    loads = np.array([5, 0, 9, 0, 3, 1000, 1], dtype=np.int64)
    for m in (7, 12, 40):
        with use_perf(False):
            ref = allocate_processors(loads, m)
        for backend in BACKENDS:
            with use_perf(True), use_perf_backend(backend):
                got = allocate_processors(loads, m)
            assert ref.tolist() == got.tolist(), (m, backend)


def test_hier_cut_dispatchers_match_unwindowed_references():
    from repro.hierarchical.cuts import (
        best_relaxed_split,
        best_weighted_cut_num,
        best_weighted_cut_win,
        best_relaxed_split_win,
    )

    P = PREFIXES["plain"]
    n = len(P) - 1
    for j0, j1 in ((0, n), (2, n - 1)):
        band = (P[j0 : j1 + 1] - P[j0]).astype(np.int64)
        for w1, w2 in ((1, 1), (3, 5)):
            ref = best_weighted_cut_num(band, w1, w2)
            got = best_weighted_cut_win(P, j0, j1, ((w1, w2),))
            if ref is None:
                assert got is None
            else:
                assert got == (ref[0], ref[1], w1, w2)
        for m in (2, 5, 40):
            with use_perf(False):
                ref_s = best_relaxed_split(band, m)
            got_s = best_relaxed_split_win(P, j0, j1, m)
            assert ref_s == got_s, (j0, j1, m)


def test_perf_package_stays_lint_hot():
    """Satellite pin: the registry's package is covered by the hot-path rules."""
    from repro.lint.engine import HOT_PACKAGES

    assert "perf" in HOT_PACKAGES
