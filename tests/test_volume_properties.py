"""Hypothesis property tests for the 3D volume layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.volume import Box, PrefixSum3D, vol_hier_rb, vol_jag_m_heur, vol_uniform

volumes = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
    elements=st.integers(0, 25),
)

boxes = st.builds(
    lambda a0, ea, b0, eb, c0, ec: Box(a0, a0 + ea, b0, b0 + eb, c0, c0 + ec),
    st.integers(0, 6),
    st.integers(0, 5),
    st.integers(0, 6),
    st.integers(0, 5),
    st.integers(0, 6),
    st.integers(0, 5),
)


class TestPrefix3DProperties:
    @given(volumes, st.data())
    @settings(max_examples=50)
    def test_box_load_matches_slice(self, A, data):
        pf = PrefixSum3D(A)
        n0, n1, n2 = A.shape
        a0 = data.draw(st.integers(0, n0))
        a1 = data.draw(st.integers(a0, n0))
        b0 = data.draw(st.integers(0, n1))
        b1 = data.draw(st.integers(b0, n1))
        c0 = data.draw(st.integers(0, n2))
        c1 = data.draw(st.integers(c0, n2))
        assert pf.load(a0, a1, b0, b1, c0, c1) == A[a0:a1, b0:b1, c0:c1].sum()

    @given(volumes)
    @settings(max_examples=30)
    def test_total_and_max(self, A):
        pf = PrefixSum3D(A)
        assert pf.total == A.sum()
        assert pf.max_element() == A.max()


class TestBoxProperties:
    @given(boxes, boxes)
    @settings(max_examples=60)
    def test_intersection_symmetric_and_consistent(self, a, b):
        assert a.intersect(b) == b.intersect(a)
        inter = a.intersect(b)
        if inter is not None:
            assert inter.volume > 0
            assert a.overlaps(b)
            # the intersection is inside both
            assert a.intersect(inter) == inter
            assert b.intersect(inter) == inter
        else:
            assert not a.overlaps(b) or a.is_empty or b.is_empty

    @given(boxes)
    @settings(max_examples=30)
    def test_surface_area_full_in_interior(self, box):
        # shifted strictly inside a huge grid, the full surface counts
        interior = Box(
            box.a0 + 1, box.a1 + 1, box.b0 + 1, box.b1 + 1, box.c0 + 1, box.c1 + 1
        )
        full = interior.surface_area(1000, 1000, 1000)
        ea, eb, ec = interior.extents
        expected = 2 * (ea * eb + eb * ec + ea * ec) if not interior.is_empty else 0
        assert full == expected


@pytest.mark.parametrize("algo", [vol_uniform, vol_jag_m_heur, vol_hier_rb])
class TestVolumeAlgorithmProperties:
    @given(A=volumes, m=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_loads_sum_to_total(self, algo, A, m):
        pf = PrefixSum3D(A)
        part = algo(pf, m)
        part.validate()
        assert int(part.loads(pf).sum()) == pf.total
