"""Unit + property tests for the Rect geometry type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rectangle import Rect

rects = st.builds(
    lambda r0, h, c0, w: Rect(r0, r0 + h, c0, c0 + w),
    st.integers(0, 10),
    st.integers(0, 8),
    st.integers(0, 10),
    st.integers(0, 8),
)


class TestRectBasics:
    def test_dimensions(self):
        r = Rect(1, 4, 2, 7)
        assert r.height == 3
        assert r.width == 5
        assert r.area == 15
        assert not r.is_empty

    def test_empty(self):
        assert Rect(2, 2, 0, 5).is_empty
        assert Rect(0, 5, 3, 3).is_empty
        assert Rect(0, 0, 0, 0).area == 0

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(3, 1, 0, 2)
        with pytest.raises(ValueError):
            Rect(0, 1, 5, 2)

    def test_contains(self):
        r = Rect(1, 3, 1, 3)
        assert r.contains(1, 1)
        assert r.contains(2, 2)
        assert not r.contains(3, 1)  # half-open
        assert not r.contains(0, 1)

    def test_inclusive_conversion(self):
        assert Rect(1, 4, 2, 7).to_inclusive() == (1, 3, 2, 6)
        with pytest.raises(ValueError):
            Rect(1, 1, 0, 2).to_inclusive()

    def test_transpose(self):
        assert Rect(1, 2, 3, 4).transpose() == Rect(3, 4, 1, 2)

    def test_shift(self):
        assert Rect(0, 2, 0, 3).shift(1, 2) == Rect(1, 3, 2, 5)

    def test_cells(self):
        cells = list(Rect(0, 2, 1, 3).cells())
        assert cells == [(0, 1), (0, 2), (1, 1), (1, 2)]


class TestIntersection:
    def test_overlap(self):
        a = Rect(0, 4, 0, 4)
        b = Rect(2, 6, 2, 6)
        assert a.overlaps(b)
        assert a.intersect(b) == Rect(2, 4, 2, 4)

    def test_disjoint(self):
        a = Rect(0, 2, 0, 2)
        b = Rect(2, 4, 0, 2)  # touching edge, half-open: disjoint
        assert not a.overlaps(b)
        assert a.intersect(b) is None

    @given(rects, rects)
    @settings(max_examples=60)
    def test_intersect_symmetric(self, a, b):
        assert a.intersect(b) == b.intersect(a)
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects, rects)
    @settings(max_examples=60)
    def test_intersect_matches_cells(self, a, b):
        inter = a.intersect(b)
        shared = set(a.cells()) & set(b.cells())
        if inter is None:
            assert not shared
        else:
            assert set(inter.cells()) == shared

    @given(rects)
    @settings(max_examples=30)
    def test_self_intersection(self, r):
        if r.is_empty:
            assert r.intersect(r) is None
        else:
            assert r.intersect(r) == r


class TestBoundary:
    def test_interior_rect(self):
        # 2x3 rectangle fully interior of a 10x10 grid: full perimeter
        assert Rect(4, 6, 4, 7).boundary_length(10, 10) == 2 * 3 + 2 * 2

    def test_corner_rect(self):
        # top-left corner: only right and bottom sides count
        assert Rect(0, 2, 0, 3).boundary_length(10, 10) == 3 + 2

    def test_full_grid(self):
        assert Rect(0, 10, 0, 10).boundary_length(10, 10) == 0

    def test_empty(self):
        assert Rect(3, 3, 0, 5).boundary_length(10, 10) == 0
