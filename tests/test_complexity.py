"""Operation-count checks against the paper's complexity bounds.

ROADMAP item RPL006 wants the stated asymptotic bounds *enforced*, not just
quoted.  The op-counter layer (:mod:`repro.perf.counters`) counts the
operations that dominate each bound — probe steps, cut evaluations,
rectangle-load queries — and these tests pin them against the paper's
formulas on deterministic seeded instances:

* Probe is ``O(m log n)``: at most ``m`` greedy steps per call (§2.2).
* Exact 1D bisection opens ``O(log(UB - LB))`` probes (§2.2).
* JAG-M-HEUR is ``O(n + m log n)`` (§3.2.1): total probe steps stay within
  a fixed constant of ``n + m·log₂(n)``.
* HIER-RB evaluates at most 2 cut searches per tree node with even splits,
  and at most 4 with odd ones (§3.3).

Counts are architecture-independent, so unlike wall-clock benchmarks these
assertions are exact and CI-stable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.prefix import PrefixSum2D
from repro.core.registry import partition_2d
from repro.oned.bisect import bisect_bottleneck, feasible_bottlenecks
from repro.oned.probe import min_parts, probe
from repro.perf import min_parts_batch, op_counters, use_perf
from repro.perf.counters import OpCounters

from .conftest import prefix_of


@pytest.fixture()
def P():
    rng = np.random.default_rng(17)
    return prefix_of(rng.integers(0, 100, 500))


# ---------------------------------------------------------------------------
# counter mechanics


def test_counters_are_inert_without_context(P):
    # no open context: instrumented call sites must not record anywhere
    probe(P, 5, int(P[-1]))
    with op_counters() as ops:
        pass
    assert ops == {}


def test_nested_contexts_both_count(P):
    with op_counters() as outer:
        probe(P, 5, int(P[-1]))
        with op_counters() as inner:
            probe(P, 5, int(P[-1]))
    assert inner["probe_calls"] == 1
    assert outer["probe_calls"] == 2  # outer context saw both events


def test_nested_equal_contexts_unwind_by_identity(P):
    # contexts opened back-to-back hold ==-equal dicts the whole time; the
    # unwind must pop each context by identity, not by value, or an inner
    # exit evicts the outer dict and leaves a closed one on the stack
    with op_counters() as outer:
        with op_counters():
            with op_counters() as inner:
                probe(P, 3, int(P[-1]))
        probe(P, 3, int(P[-1]))  # after inner contexts closed
    assert outer["probe_calls"] == 2
    assert inner["probe_calls"] == 1  # closed contexts stopped counting


def test_opcounters_missing_and_total():
    ops = OpCounters({"probe_calls": 2, "probe_steps": 10})
    assert ops["never_bumped"] == 0
    assert ops.total("probe") == 12


def test_registry_attaches_op_counts():
    A = np.arange(36).reshape(6, 6)
    with op_counters() as ops:
        part = partition_2d(A, 4, "JAG-M-HEUR")
    attached = part.meta["op_counts"]
    assert isinstance(attached, OpCounters)
    assert attached["probe_calls"] >= 1
    # the outer context saw at least everything the attached snapshot saw
    assert all(ops[k] >= v for k, v in attached.items())


# ---------------------------------------------------------------------------
# Probe: at most m greedy steps per call (§2.2)


def test_probe_steps_bounded_by_m(P):
    total = int(P[-1])
    for m in (1, 3, 17, 100):
        for B in (0, total // (2 * m) if m else 0, total // max(m, 1), total):
            with op_counters() as ops:
                probe(P, m, B)
            assert ops["probe_calls"] == 1
            assert ops["probe_steps"] <= m


def test_min_parts_batch_counts_match_parts(P):
    B = int(P[-1]) // 7
    with op_counters() as ops:
        parts = min_parts_batch(P, B)
    assert parts == min_parts(P, B)
    assert ops["probe_steps"] == parts  # one jump-table hop per interval
    assert ops["searchsorted_calls"] == 1  # the whole table from one call


# ---------------------------------------------------------------------------
# exact 1D bisection: O(log(UB - LB)) probe rounds (§2.2)


def test_bisect_probe_count_logarithmic(P):
    m = 12
    total = int(P[-1])
    max_el = int(np.max(np.diff(P)))
    lb = max(-(-total // m), max_el)
    ub = total // m + max_el
    with use_perf(False), op_counters() as ops:
        bisect_bottleneck(P, m)
    assert ops["probe_calls"] <= math.ceil(math.log2(ub - lb + 1)) + 1


def test_bisect_nd_probe_path_same_probe_count():
    # large prefix: the perf path skips the list conversion but runs the
    # *same* adaptive bisection — identical answer, identical probe count
    rng = np.random.default_rng(23)
    P = prefix_of(rng.integers(0, 1_000_000, 8_000))
    m = 11
    with use_perf(False), op_counters() as ref:
        want = bisect_bottleneck(P, m)
    with use_perf(True), op_counters() as opt:
        got = bisect_bottleneck(P, m)
    assert got == want
    assert opt["probe_calls"] == ref["probe_calls"]
    assert opt["probe_steps"] == ref["probe_steps"]


def test_feasibility_curve_batches_into_one_kernel_call():
    # K independent candidates: the scalar path pays K probe calls, the
    # batch path exactly one probe_batch invocation with m rounds at most
    rng = np.random.default_rng(29)
    P = prefix_of(rng.integers(0, 1_000, 600))
    m = 9
    total = int(P[-1])
    Bs = list(range(total // (2 * m), 2 * total // m, max(total // (20 * m), 1)))
    with use_perf(False), op_counters() as ref:
        want = feasible_bottlenecks(P, m, Bs)
    with use_perf(True), op_counters() as opt:
        got = feasible_bottlenecks(P, m, Bs)
    np.testing.assert_array_equal(got, want)
    assert ref["probe_calls"] == len(Bs)
    assert opt["probe_calls"] == 0
    assert opt["probe_batch_calls"] == 1
    assert opt["searchsorted_calls"] <= m  # one chained round per greedy step


# ---------------------------------------------------------------------------
# JAG-M-HEUR: O(n + m log n) probe work (§3.2.1)


@pytest.mark.parametrize("n,m", [(64, 16), (128, 36), (256, 100)])
def test_jag_m_heur_probe_steps_within_paper_bound(n, m):
    rng = np.random.default_rng(n + m)
    A = rng.integers(0, 50, (n, n))
    with use_perf(False), op_counters() as ops:
        partition_2d(A, m, "JAG-M-HEUR-HOR")
    bound = n + m * math.ceil(math.log2(n + 1))
    # fixed constant covering the stripe-count search and the per-stripe
    # 1D refinements; the *growth* must stay O(n + m log n)
    assert ops["probe_steps"] <= 32 * bound


# ---------------------------------------------------------------------------
# hierarchical: cut evaluations per tree node (§3.3)


def test_hier_rb_cut_calls_even_splits():
    rng = np.random.default_rng(5)
    A = rng.integers(1, 50, (32, 32))
    m = 16  # powers of two split evenly at every node: one orientation each
    for perf in (False, True):
        with use_perf(perf), op_counters() as ops:
            partition_2d(A, m, "HIER-RB")
        assert ops["cut_calls"] == 2 * (m - 1), f"perf={perf}"


def test_hier_rb_cut_calls_odd_splits_at_most_4_per_node():
    rng = np.random.default_rng(6)
    A = rng.integers(1, 50, (32, 32))
    for m in (7, 13, 23):
        for perf in (False, True):
            with use_perf(perf), op_counters() as ops:
                partition_2d(A, m, "HIER-RB")
            assert m - 1 <= ops["cut_calls"] <= 4 * (m - 1), f"m={m} perf={perf}"


def test_hier_relaxed_cut_calls_bounded_by_tree():
    rng = np.random.default_rng(8)
    A = rng.integers(1, 50, (32, 32))
    for m in (4, 9, 16):
        for perf in (False, True):
            with use_perf(perf), op_counters() as ops:
                partition_2d(A, m, "HIER-RELAXED")
            assert m - 1 <= ops["cut_calls"] <= 2 * (m - 1), f"m={m} perf={perf}"


# ---------------------------------------------------------------------------
# cache effectiveness: the JAG-M-OPT DP re-reads stripe projections


def test_jag_m_opt_projection_cache_hits():
    rng = np.random.default_rng(9)
    A = rng.integers(0, 60, (48, 48))
    with use_perf(True), op_counters() as ops:
        pref = PrefixSum2D(A)
        partition_2d(pref, 12, "JAG-M-OPT-HOR")
    assert ops["proj_hits"] > 0
    assert ops["proj_hits"] <= ops["proj_queries"]
    stats = pref.projection_cache().stats()
    assert stats["hits"] == ops["proj_hits"]
