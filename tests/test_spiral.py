"""Tests for spiral partitions (the §3.4 general recursive scheme)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import ParameterError
from repro.spiral import spiral_opt, spiral_opt_bottleneck, spiral_relaxed

tiny_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    elements=st.integers(0, 30),
)


class TestSpiralRelaxed:
    @given(tiny_matrices, st.integers(1, 9))
    @settings(max_examples=50, deadline=None)
    def test_valid(self, A, m):
        p = spiral_relaxed(A, m)
        assert p.m == m
        p.validate()
        assert p.method == "SPIRAL-RELAXED"

    def test_spiral_structure(self, rng):
        """Strips are peeled from rotating sides: first strips touch the
        top, right, bottom and left borders in order."""
        A = rng.integers(1, 9, (16, 16))
        p = spiral_relaxed(A, 6)
        r0, r1, r2, r3 = p.rects[:4]
        assert r0.r0 == 0  # top strip
        assert r1.c1 == 16  # right strip
        assert r2.r1 == 16  # bottom strip
        assert r3.c0 == 0  # left strip

    def test_start_side(self, rng):
        A = rng.integers(1, 9, (12, 12))
        p = spiral_relaxed(A, 4, start_side="left")
        assert p.rects[0].c0 == 0 and p.rects[0].r0 == 0 and p.rects[0].r1 == 12
        with pytest.raises(ParameterError):
            spiral_relaxed(A, 4, start_side="around")

    def test_single_processor(self, rng):
        A = rng.integers(1, 9, (5, 5))
        p = spiral_relaxed(A, 1)
        assert p.max_load(A) == A.sum()

    def test_more_processors_than_cells(self):
        A = np.ones((2, 2), dtype=np.int64)
        p = spiral_relaxed(A, 7)
        p.validate()
        assert p.m == 7

    def test_reasonable_balance_on_uniform(self):
        A = np.full((64, 64), 10, dtype=np.int64)
        p = spiral_relaxed(A, 8)
        assert p.imbalance(A) < 0.25

    def test_nonpositive_m(self, rng):
        with pytest.raises(ParameterError):
            spiral_relaxed(rng.integers(1, 5, (4, 4)), 0)


class TestSpiralOpt:
    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_partition_achieves_dp_value(self, A, m):
        p = spiral_opt(A, m)
        p.validate()
        assert p.max_load(A) == spiral_opt_bottleneck(A, m)

    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_opt_never_worse_than_relaxed(self, A, m):
        assert spiral_opt_bottleneck(A, m) <= spiral_relaxed(A, m).max_load(A)

    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_respects_lower_bound(self, A, m):
        from repro.core.metrics import lower_bound

        assert spiral_opt_bottleneck(A, m) >= lower_bound(A, m) or A.sum() == 0

    def test_dp_may_skip_degenerate_sides(self):
        # regression: spiral_relaxed rotates past a side whose extent is <= 1,
        # so the DP must search that skip too or the "optimum" can exceed the
        # heuristic (this instance: 7 vs 6 before the fix)
        A = np.array([[2, 2], [2, 2], [5, 2], [2, 2]])
        assert spiral_opt_bottleneck(A, 5) == 6
        p = spiral_opt(A, 5)
        p.validate()
        assert p.max_load(A) == 6

    def test_size_guard(self, rng):
        A = rng.integers(1, 5, (64, 64))
        with pytest.raises(ParameterError):
            spiral_opt_bottleneck(A, 16, limit=1000)

    def test_single_processor_exact(self, rng):
        A = rng.integers(1, 9, (4, 4))
        assert spiral_opt_bottleneck(A, 1) == A.sum()
