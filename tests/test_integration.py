"""Integration tests: full pipelines across modules.

Each test drives a realistic end-to-end flow the library supports:
instance generation → partitioning → metrics → rendering/serialization →
execution simulation, mixing modules the unit tests cover in isolation.
"""

import pytest

from repro import (
    ALGORITHMS,
    algorithm_names,
    communication_volume,
    load_imbalance,
    lower_bound,
    partition_2d,
)
from repro.core.prefix import PrefixSum2D
from repro.core.render import ascii_render, save_ppm
from repro.core.serialize import load_partition, save_partition
from repro.dynamic import IncrementalJagged
from repro.instances import PICConfig, PICMagDataset, peak, slac_instance
from repro.runtime import BSPSimulator, CostModel


class TestStaticPipeline:
    def test_peak_to_report(self, tmp_path, rng):
        """Generate → partition with every heuristic → metrics → artifacts."""
        A = peak(64, seed=3)
        pref = PrefixSum2D(A)
        report = {}
        for name in algorithm_names(heuristics_only=True):
            part = ALGORITHMS[name](pref, 12)
            part.validate()
            report[name] = {
                "imbalance": load_imbalance(pref, part),
                "comm": communication_volume(part),
            }
            assert part.max_load(pref) >= lower_bound(pref, 12)
        # artifacts for the winning method
        best = min(report, key=lambda k: report[k]["imbalance"])
        part = ALGORITHMS[best](pref, 12)
        art = ascii_render(part, max_width=32, max_height=16)
        assert len(art.splitlines()) == 16
        img = save_ppm(part, tmp_path / "best.ppm", A=A)
        assert img.stat().st_size > 0
        loaded = load_partition(save_partition(part, tmp_path / "best.json"))
        assert loaded.max_load(pref) == part.max_load(pref)

    def test_sparse_mesh_pipeline(self):
        """SLAC flow: mesh → projection → comparison of the families."""
        A = slac_instance(96)
        pref = PrefixSum2D(A)
        imb = {
            name: ALGORITHMS[name](pref, 25).imbalance(pref)
            for name in ("RECT-UNIFORM", "JAG-M-HEUR", "HIER-RELAXED")
        }
        # load-aware methods must beat the area-balancing baseline on a
        # sparse instance by a wide margin
        assert imb["JAG-M-HEUR"] < 0.5 * imb["RECT-UNIFORM"]
        assert imb["HIER-RELAXED"] < 0.5 * imb["RECT-UNIFORM"]


class TestDynamicPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return PICMagDataset(
            PICConfig(grid=48, particles=4000, seed=21, particle_load=400, smooth=2),
            period=200,
            max_iteration=1200,
            cache=False,
        )

    def test_bsp_with_incremental_strategy(self, dataset):
        """PIC snapshots → incremental repartitioning → BSP accounting."""
        inc = IncrementalJagged(9, threshold=0.15)
        sim = BSPSimulator(
            9,
            inc.partitioner(),
            cost=CostModel(alpha=1e-6, beta=2e-6, gamma=1e-6),
            repartition_every=1,
        )
        rep = sim.run(dataset.snapshots(), steps_per_snapshot=200)
        assert len(rep.steps) == 7
        assert rep.total_time > 0
        assert inc.full_repartitions >= 1
        assert inc.full_repartitions + inc.refinements == 7
        # balance stays sane throughout the run
        assert rep.mean_imbalance < 1.0

    def test_strategy_comparison_is_consistent(self, dataset):
        """Dynamic repartitioning never increases compute time vs static."""
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=0.0)

        def jag(pref, m):
            return partition_2d(pref, m, "JAG-M-HEUR")

        static = BSPSimulator(9, jag, cost=cost, repartition_every=0).run(
            dataset.snapshots()
        )
        dynamic = BSPSimulator(9, jag, cost=cost, repartition_every=1).run(
            dataset.snapshots()
        )
        assert dynamic.compute_time <= static.compute_time * (1 + 1e-9)


class TestExactVersusHeuristicPipeline:
    def test_optimality_chain_on_real_instance(self):
        """On a PIC-like snapshot: LB <= M-OPT <= {PQ-OPT, M-HEUR} <= PQ-HEUR."""
        ds = PICMagDataset(
            PICConfig(grid=32, particles=2500, seed=5),
            period=100,
            max_iteration=200,
            cache=False,
        )
        A = ds.snapshot(200)
        pref = PrefixSum2D(A)
        m = 10
        lb = lower_bound(pref, m)
        mo = partition_2d(pref, m, "JAG-M-OPT").max_load(pref)
        po = partition_2d(pref, m, "JAG-PQ-OPT").max_load(pref)
        mh = partition_2d(pref, m, "JAG-M-HEUR").max_load(pref)
        ph = partition_2d(pref, m, "JAG-PQ-HEUR").max_load(pref)
        assert lb <= mo <= po <= ph
        assert mo <= mh
