"""Tests for the partition analysis report."""

import numpy as np
import pytest

from repro import partition_2d
from repro.core.analysis import analyze
from repro.instances import peak


class TestAnalyze:
    @pytest.fixture()
    def case(self, rng):
        A = peak(48, seed=2)
        part = partition_2d(A, 12, "JAG-M-HEUR")
        return A, part, analyze(A, part)

    def test_identity_fields(self, case):
        A, part, rep = case
        assert rep.method == part.method
        assert rep.shape == (48, 48)
        assert rep.m == 12
        assert rep.total_load == A.sum()
        assert rep.max_load == part.max_load(A)

    def test_consistency(self, case):
        A, part, rep = case
        assert rep.min_load <= rep.mean_load <= rep.max_load
        assert rep.lower_bound <= rep.max_load
        assert rep.optimality_gap >= 0
        assert rep.imbalance == pytest.approx(part.imbalance(A))
        assert rep.worst_aspect >= 1.0
        assert rep.active <= rep.m

    def test_percentiles_ordered(self, case):
        _, _, rep = case
        ps = [rep.load_percentiles[p] for p in (10, 50, 90, 99)]
        assert ps == sorted(ps)

    def test_text_rendering(self, case):
        _, _, rep = case
        text = rep.to_text()
        assert "imbalance" in text and "comm volume" in text
        assert "JAG-M-HEUR" in text

    def test_optimal_partition_zero_gap(self):
        # uniform 4x4 matrix, 4 procs: the uniform grid is provably optimal
        A = np.full((4, 4), 5, dtype=np.int64)
        part = partition_2d(A, 4, "RECT-UNIFORM")
        rep = analyze(A, part)
        assert rep.optimality_gap == 0.0

    def test_idle_processors_counted(self):
        A = np.full((2, 2), 3, dtype=np.int64)
        part = partition_2d(A, 9, "HIER-RB")
        rep = analyze(A, part)
        assert rep.active <= 4
        assert rep.m == 9
