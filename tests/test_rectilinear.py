"""Tests for RECT-UNIFORM and RECT-NICOL (§3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.instances import peak, uniform
from repro.rectilinear import grid_bottleneck, rect_nicol, rect_uniform, uniform_cuts

from .conftest import load_matrices


class TestUniformCuts:
    def test_even_split(self):
        np.testing.assert_array_equal(uniform_cuts(8, 4), [0, 2, 4, 6, 8])

    def test_uneven_split(self):
        cuts = uniform_cuts(10, 3)
        assert cuts[0] == 0 and cuts[-1] == 10
        assert (np.diff(cuts) >= 3).all()

    def test_more_parts_than_cells(self):
        cuts = uniform_cuts(2, 5)
        assert cuts[0] == 0 and cuts[-1] == 2
        assert (np.diff(cuts) >= 0).all()


class TestRectUniform:
    @given(load_matrices, st.integers(1, 9))
    @settings(max_examples=40)
    def test_valid(self, A, m):
        p = rect_uniform(A, m)
        assert p.m == m
        p.validate()

    def test_balances_area_not_load(self, rng):
        # all the load in one corner: RECT-UNIFORM ignores it
        A = np.ones((8, 8), dtype=np.int64)
        A[:4, :4] = 100
        p = rect_uniform(A, 4)
        areas = {r.area for r in p.rects}
        assert areas == {16}
        assert p.imbalance(A) > 1.0

    def test_explicit_pq(self, rng):
        A = rng.integers(1, 9, (6, 6))
        p = rect_uniform(A, 6, P=2, Q=3)
        p.validate()
        with pytest.raises(ParameterError):
            rect_uniform(A, 6, P=2, Q=2)

    def test_grid_bottleneck_matches_loads(self, rng):
        A = rng.integers(0, 9, (7, 9))
        pf = PrefixSum2D(A)
        p = rect_uniform(pf, 6, P=2, Q=3)
        rc, cc = p.meta["row_cuts"], p.meta["col_cuts"]
        assert grid_bottleneck(pf, rc, cc) == p.max_load(pf)


class TestRectNicol:
    @given(load_matrices, st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_valid(self, A, m):
        p = rect_nicol(A, m)
        assert p.m == m
        p.validate()

    def test_never_worse_than_uniform(self, rng):
        for seed in range(5):
            A = peak(48, seed=seed)
            for m in (4, 16, 36):
                assert rect_nicol(A, m).max_load(A) <= rect_uniform(A, m).max_load(A)

    def test_converges_quickly_on_uniformish(self):
        A = uniform(64, 1.2, seed=0)
        p = rect_nicol(A, 16)
        assert p.meta["iterations"] <= 10  # paper: 3-10 iterations in practice

    def test_explicit_pq_mismatch(self, rng):
        with pytest.raises(ParameterError):
            rect_nicol(rng.integers(1, 5, (4, 4)), 4, P=3, Q=2)

    def test_single_processor(self, rng):
        A = rng.integers(1, 5, (4, 4))
        p = rect_nicol(A, 1)
        assert p.max_load(A) == A.sum()

    def test_indexer_matches_owner_map(self, rng):
        A = rng.integers(0, 9, (10, 12))
        p = rect_nicol(A, 6)
        owner = p.owner_map()
        for i in range(10):
            for j in range(12):
                assert p.owner_of(i, j) == owner[i, j]
