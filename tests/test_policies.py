"""Tests for the repartitioning-policy framework (dynamic loop, §5)."""

from fractions import Fraction

import numpy as np
import pytest

from repro import partition_2d
from repro.core.errors import ParameterError
from repro.dynamic import (
    EveryK,
    ImbalanceTriggered,
    IncrementalJagged,
    MigrationBudgeted,
    WarmStarted,
    drift_exceeds,
)
from repro.runtime import BSPSimulator, CostModel
from repro.sweep import SweepStore


def blob_snapshots(n=24, steps=5, speed=2.0):
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    out = []
    for k in range(steps):
        cx, cy = 6 + speed * k, 6 + speed * 1.3 * k
        A = 10 + (
            400 * np.exp(-(((ii - cx) ** 2 + (jj - cy) ** 2) / (2 * 4.0**2)))
        ).astype(np.int64)
        out.append((k * 500, A.astype(np.int64)))
    return out


def jag(pref, m):
    return partition_2d(pref, m, "JAG-M-HEUR")


class TestDriftExceeds:
    def test_basic_semantics(self):
        assert drift_exceeds(111, 100, 0.10)
        assert not drift_exceeds(110, 100, 0.10)  # boundary is not exceeded
        assert not drift_exceeds(100, 100, 0.0)
        assert drift_exceeds(101, 100, 0.0)

    def test_degenerate_baseline(self):
        assert drift_exceeds(1, 0, 0.10)
        assert not drift_exceeds(0, 0, 0.10)
        assert not drift_exceeds(-1, 0, 0.10)

    @pytest.mark.parametrize(
        "value,baseline,threshold",
        [
            # triples where the naive float form flips the decision:
            # value > (1.0 + t) * baseline rounds baseline to 53 bits and
            # the product once more; the exact rational answer differs
            (2536428244843917064, 2305843858949015501, 0.1),
            (2421135251765350138, 2305843096919381077, 0.05),
            (2308149920638053043, 2305844076561491554, 0.001),
        ],
    )
    def test_big_int_flip_pins(self, value, baseline, threshold):
        exact = Fraction(value - baseline, baseline) > Fraction(threshold)
        naive = value > (1.0 + threshold) * baseline
        assert naive != exact  # the float form really does flip here
        assert drift_exceeds(value, baseline, threshold) == exact

    def test_scale_invariance(self):
        # the decision is relative: scaling both loads cannot change it
        for v, b in [(111, 100), (110, 100), (2**31 + 1, 2**31)]:
            base = drift_exceeds(v, b, 0.07)
            for c in (3, 1 << 30, (1 << 40) + 7):
                assert drift_exceeds(c * v, c * b, 0.07) == base


class TestEveryK:
    def test_matches_legacy_knob(self):
        snaps = blob_snapshots()
        for k in (0, 1, 2, 3):
            legacy = BSPSimulator(4, jag, repartition_every=k).run(snaps)
            policy = BSPSimulator(4, jag, policy=EveryK(k)).run(snaps)
            assert legacy.steps == policy.steps  # bit-identical accounting

    def test_pattern(self):
        rep = BSPSimulator(4, jag, policy=EveryK(2)).run(blob_snapshots(steps=5))
        assert [s.repartitioned for s in rep.steps] == [
            True,
            False,
            True,
            False,
            True,
        ]

    def test_validation(self):
        with pytest.raises(ParameterError):
            EveryK(-1)


class TestImbalanceTriggered:
    def test_constant_stream_never_retriggers(self):
        # perfectly balanceable load: imbalance stays below any threshold
        A = np.ones((8, 8), dtype=np.int64)
        snaps = [(k, A) for k in range(5)]
        rep = BSPSimulator(4, jag, policy=ImbalanceTriggered(0.10)).run(snaps)
        assert rep.repartitions == 1  # only the mandatory first solve
        assert rep.migration_time == 0.0

    def test_drifting_stream_retriggers(self):
        rep = BSPSimulator(
            8, jag, policy=ImbalanceTriggered(0.0)
        ).run(blob_snapshots(steps=6, speed=3.0))
        assert rep.repartitions > 1

    def test_fewer_solves_than_every_step(self):
        snaps = blob_snapshots(steps=6)
        solves = 0

        def counting(pref, m):
            nonlocal solves
            solves += 1
            return jag(pref, m)

        rep = BSPSimulator(4, counting, policy=ImbalanceTriggered(1.0)).run(snaps)
        # deciding costs no solve: solves happen only on triggered steps
        assert solves == rep.repartitions < len(snaps)

    def test_zero_total_snapshot(self):
        Z = np.zeros((4, 4), dtype=np.int64)
        A = np.ones((4, 4), dtype=np.int64)
        rep = BSPSimulator(2, jag, policy=ImbalanceTriggered(0.1)).run(
            [(0, A), (1, Z), (2, A)]
        )
        assert len(rep.steps) == 3  # empty snapshot neither triggers nor breaks

    def test_validation(self):
        with pytest.raises(ParameterError):
            ImbalanceTriggered(-0.1)


class TestMigrationBudgeted:
    def test_prohibitive_gamma_keeps_partition(self):
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=1e3)
        pol = MigrationBudgeted()
        rep = BSPSimulator(8, jag, cost=cost, policy=pol).run(
            blob_snapshots(steps=5, speed=3.0)
        )
        assert rep.repartitions == 1  # migration never amortizes
        assert rep.migration_time == 0.0
        assert pol.candidate_solves == 4  # but every step paid a candidate

    def test_free_migration_tracks_improvement(self):
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=0.0)
        snaps = blob_snapshots(steps=5, speed=3.0)
        rep = BSPSimulator(8, jag, cost=cost, policy=MigrationBudgeted()).run(snaps)
        assert rep.repartitions > 1  # any strict improvement is installed

    def test_cooldown_skips_candidate_solves(self):
        snaps = blob_snapshots(steps=6)
        pol = MigrationBudgeted(cooldown=2)
        BSPSimulator(8, jag, policy=pol).run(snaps)
        ref = MigrationBudgeted(cooldown=0)
        BSPSimulator(8, jag, policy=ref).run(snaps)
        assert pol.candidate_solves < ref.candidate_solves

    def test_hysteresis_demands_margin(self):
        snaps = blob_snapshots(steps=6, speed=3.0)
        cost = CostModel(alpha=1e-6, beta=0.0, gamma=1e-6)
        eager = BSPSimulator(
            8, jag, cost=cost, policy=MigrationBudgeted(hysteresis=0.0)
        ).run(snaps)
        strict = BSPSimulator(
            8, jag, cost=cost, policy=MigrationBudgeted(hysteresis=1e6)
        ).run(snaps)
        assert strict.repartitions <= eager.repartitions

    def test_validation(self):
        with pytest.raises(ParameterError):
            MigrationBudgeted(horizon=0)
        with pytest.raises(ParameterError):
            MigrationBudgeted(hysteresis=-1.0)
        with pytest.raises(ParameterError):
            MigrationBudgeted(cooldown=-1)


class TestWarmStarted:
    def opt(self, pref, m):
        return partition_2d(pref, m, "JAG-M-OPT")

    def test_bit_identical_to_cold_and_seeds_on_rerun(self, tmp_path):
        snaps = blob_snapshots(n=12, steps=3)
        store = SweepStore(tmp_path / "store.json")

        def recording(partitioner):
            rects = []

            def run(pref, m):
                part = partitioner(pref, m)
                rects.append(part.coords().tolist())
                return part

            return run, rects

        cold_run, cold_rects = recording(self.opt)
        cold = BSPSimulator(4, cold_run).run(snaps)

        warm_run1, rects1 = recording(self.opt)
        r1 = BSPSimulator(4, warm_run1, policy=WarmStarted(store=store)).run(snaps)
        assert store.seeded == 0  # nothing on disk yet

        warm_run2, rects2 = recording(self.opt)
        r2 = BSPSimulator(4, warm_run2, policy=WarmStarted(store=store)).run(snaps)
        assert store.seeded > 0  # second pass starts from persisted facts

        # warm results are bit-identical to cold — the sweep contract
        assert rects1 == cold_rects == rects2
        assert r1.steps == cold.steps == r2.steps

    def test_delegates_decision_to_inner(self):
        snaps = blob_snapshots(steps=4)
        inner = EveryK(2)
        rep = BSPSimulator(4, jag, policy=WarmStarted(inner)).run(snaps)
        plain = BSPSimulator(4, jag, policy=EveryK(2)).run(snaps)
        assert [s.repartitioned for s in rep.steps] == [
            s.repartitioned for s in plain.steps
        ]

    def test_name_composition(self):
        assert WarmStarted(EveryK(3)).name == "warm-every-3"
        assert WarmStarted().name == "warm-every-1"


class TestDeterminism:
    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda: EveryK(2),
            lambda: ImbalanceTriggered(0.05),
            lambda: MigrationBudgeted(cooldown=1),
            lambda: IncrementalJagged(8, threshold=0.2),
        ],
        ids=["every-2", "imbalance", "budgeted", "incremental"],
    )
    def test_same_stream_same_report(self, make_policy):
        snaps = blob_snapshots(steps=4)
        reps = [
            BSPSimulator(8, jag, policy=make_policy()).run(snaps) for _ in range(2)
        ]
        assert reps[0].steps == reps[1].steps  # frozen dataclass equality

    def test_policy_instance_is_reusable(self):
        # reset() must make one instance reusable across runs
        snaps = blob_snapshots(steps=4)
        pol = MigrationBudgeted(cooldown=1)
        sim = BSPSimulator(8, jag, policy=pol)
        assert sim.run(snaps).steps == sim.run(snaps).steps


class TestIncrementalAsPolicy:
    def test_runs_via_policy_route(self):
        inc = IncrementalJagged(8, threshold=0.2)
        rep = BSPSimulator(8, jag, policy=inc).run(blob_snapshots(steps=4))
        assert len(rep.steps) == 4
        assert inc.full_repartitions + inc.refinements == 4

    def test_m_mismatch(self):
        inc = IncrementalJagged(8)
        with pytest.raises(ParameterError):
            BSPSimulator(9, jag, policy=inc).run(blob_snapshots(steps=1))
