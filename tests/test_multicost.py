"""Tests for the striped-cost 1D solver used by RECT-NICOL."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.oned.multicost import multi_bottleneck, multi_cuts, partition_multi, probe_multi

stripe_loads = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 3), st.integers(1, 8)),
    elements=st.integers(0, 30),
)


def stack_prefix(A):
    M = np.zeros((A.shape[0], A.shape[1] + 1), dtype=np.int64)
    M[:, 1:] = np.cumsum(A, axis=1)
    return M


def brute(M, m):
    n = M.shape[1] - 1
    best = None
    for cuts in itertools.combinations(range(1, n), min(m - 1, n - 1)):
        cc = [0, *cuts, n]
        v = max(
            max(int(M[s][b] - M[s][a]) for s in range(M.shape[0]))
            for a, b in zip(cc, cc[1:])
        )
        best = v if best is None else min(best, v)
    return best if best is not None else int(M[:, -1].max())


class TestMultiBottleneck:
    @given(stripe_loads, st.integers(1, 5))
    @settings(max_examples=80)
    def test_matches_bruteforce(self, A, m):
        M = stack_prefix(A)
        assert multi_bottleneck(M, m) == brute(M, m)

    @given(stripe_loads, st.integers(1, 5))
    @settings(max_examples=40)
    def test_cuts_realize_value(self, A, m):
        M = stack_prefix(A)
        B, cuts = partition_multi(M, m)
        assert cuts[0] == 0 and cuts[-1] == A.shape[1]
        worst = 0
        for a, b in zip(cuts, cuts[1:]):
            worst = max(worst, int((M[:, b] - M[:, a]).max()))
        assert worst == B

    def test_single_stripe_equals_plain_1d(self, rng):
        from repro.oned.bisect import bisect_bottleneck

        vals = rng.integers(0, 40, 30)
        M = stack_prefix(vals[None, :])
        for m in (1, 3, 8):
            assert multi_bottleneck(M, m) == bisect_bottleneck(M[0], m)

    def test_probe_multi_monotone_in_b(self, rng):
        A = rng.integers(0, 20, (3, 12))
        M = stack_prefix(A)
        feas = [probe_multi(M, 3, B) for B in range(0, int(A.sum()) + 1, 5)]
        # once feasible, stays feasible
        assert feas == sorted(feas)

    def test_multi_cuts_infeasible(self):
        M = stack_prefix(np.array([[9, 9]]))
        assert multi_cuts(M, 2, 5) is None

    def test_degenerate_empty(self):
        M = np.zeros((2, 1), dtype=np.int64)
        assert multi_bottleneck(M, 3) == 0
