"""Tests for the perf-layer cache: LRU bounds, projection memos, identity.

The optimized kernels only help if the cached arrays are (a) exactly the
arrays the reference path would have built, (b) impossible to corrupt
through the shared references, and (c) bounded in memory.  Each property is
tested directly here; the end-to-end bit-identity of whole partitions lives
in ``tests/test_perf_equality.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prefix import PrefixSum1D, PrefixSum2D
from repro.perf import LRUCache, use_perf
from repro.perf.cache import sizeof_entry
from repro.perf.config import cache_budget_bytes, cache_min_cells


@pytest.fixture()
def pref():
    rng = np.random.default_rng(5)
    return PrefixSum2D(rng.integers(0, 50, (17, 23)))


# ---------------------------------------------------------------------------
# LRUCache mechanics


def test_lru_get_put_and_stats():
    c = LRUCache(max_bytes=10_000)
    assert c.get(("a",)) is None
    c.put(("a",), [1, 2, 3])
    assert c.get(("a",)) == [1, 2, 3]
    s = c.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1
    assert s["nbytes"] == sizeof_entry([1, 2, 3])


def test_lru_evicts_least_recently_used():
    a = np.zeros(100, dtype=np.int64)
    per = sizeof_entry(a)
    c = LRUCache(max_bytes=3 * per)
    c.put(("a",), a)
    c.put(("b",), a.copy())
    c.put(("c",), a.copy())
    assert c.get(("a",)) is not None  # refresh "a": now "b" is the LRU entry
    c.put(("d",), a.copy())
    assert ("b",) not in c and ("a",) in c and ("c",) in c and ("d",) in c
    assert c.evictions == 1
    assert c.nbytes <= c.max_bytes


def test_lru_rejects_oversized_entry():
    c = LRUCache(max_bytes=64)
    c.put(("big",), np.zeros(1000, dtype=np.int64))
    assert len(c) == 0 and c.nbytes == 0


def test_lru_byte_bound_holds_under_churn():
    c = LRUCache(max_bytes=4096)
    rng = np.random.default_rng(0)
    for k in range(200):
        c.put(("k", k), np.zeros(rng.integers(1, 80), dtype=np.int64))
        assert c.nbytes <= c.max_bytes
    assert c.evictions > 0


def test_lru_clear_keeps_statistics():
    c = LRUCache(max_bytes=10_000)
    c.put(("a",), [1])
    c.get(("a",))
    c.clear()
    assert len(c) == 0 and c.nbytes == 0
    assert c.stats()["hits"] == 1


def test_cache_budget_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_CACHE_MB", "3")
    assert cache_budget_bytes() == 3 * 1024 * 1024
    monkeypatch.setenv("REPRO_PERF_CACHE_MB", "not-a-number")
    assert cache_budget_bytes() == 64 * 1024 * 1024  # falls back to default
    monkeypatch.setenv("REPRO_PERF_CACHE_MB", "0")
    assert cache_budget_bytes() == 1024 * 1024  # floored at 1 MB


# ---------------------------------------------------------------------------
# Projection memoization on PrefixSum2D


def test_axis_prefix_memoized_and_frozen(pref):
    with use_perf(True):
        p1 = pref.axis_prefix(1, 3, 9, reuse=True)
        p2 = pref.axis_prefix(1, 3, 9, reuse=True)
        assert p1 is p2  # served from the memo, not recomputed
        assert not p1.flags.writeable
        with pytest.raises(ValueError):
            p1[0] = 99


def test_axis_prefix_matches_reference(pref):
    for axis in (0, 1):
        n = pref.n2 if axis == 0 else pref.n1
        for lo, hi in ((0, n), (2, n - 1), (5, 6)):
            with use_perf(False):
                ref = pref.axis_prefix(axis, lo, hi)
            with use_perf(True):
                opt = pref.axis_prefix(axis, lo, hi)
            np.testing.assert_array_equal(ref, opt)


def test_axis_prefix_bypasses_cache_when_disabled(pref):
    with use_perf(False):
        p1 = pref.axis_prefix(1, 3, 9)
        p2 = pref.axis_prefix(1, 3, 9)
    assert p1 is not p2
    assert p1.flags.writeable  # reference path hands out private arrays


def test_boundary_list_memoized_and_exact(pref):
    with use_perf(True):
        bl1 = pref.boundary_list(1, 2, 11, reuse=True)
        bl2 = pref.boundary_list(1, 2, 11, reuse=True)
        assert bl1 is bl2
        assert bl1 == pref.axis_prefix(1, 2, 11).tolist()
    with use_perf(False):
        assert pref.boundary_list(1, 2, 11) == bl1


def test_band_prefix_equals_reference(pref):
    for axis, j_end in ((0, pref.n1), (1, pref.n2)):
        for j0, j1 in ((0, j_end), (0, j_end - 2), (3, j_end - 1)):
            with use_perf(False):
                ref = pref.band_prefix(axis, 1, 7, j0, j1)
            with use_perf(True):
                opt = pref.band_prefix(axis, 1, 7, j0, j1)
            np.testing.assert_array_equal(ref, opt)
            assert ref[0] == 0 == opt[0]


def test_transpose_is_involutive_under_perf():
    # at/above the size threshold the transposed prefix is pinned: built
    # once, and the back-link makes the pair involutive
    big = PrefixSum2D(np.ones((260, 260), dtype=np.int64))
    assert big.n1 * big.n2 >= cache_min_cells()
    with use_perf(True):
        T = big.transpose()
        assert T.transpose() is big
        assert big.transpose() is T  # built once
    with use_perf(False):
        assert big.transpose() is not big.transpose()
    np.testing.assert_array_equal(T.G, big.G.T)


def test_transpose_cache_is_adaptive(pref):
    # below the threshold the copy is cheaper than pinning the pair into a
    # reference cycle: every call returns a fresh prefix...
    assert pref.n1 * pref.n2 < cache_min_cells()
    with use_perf(True):
        assert pref.transpose() is not pref.transpose()
        # ...except during a sweep, where warm-start facts are keyed by
        # object identity and the -VER variants need a stable transpose
        from repro.sweep.engine import use_sweep

        with use_sweep():
            T = pref.transpose()
            assert pref.transpose() is T
            assert T.transpose() is pref
        # the pin installed by the sweep persists for the instance lifetime
        assert pref.transpose() is T
    np.testing.assert_array_equal(T.G, pref.G.T)


def test_max_element_cached_and_correct():
    rng = np.random.default_rng(11)
    A = rng.integers(0, 1000, (31, 13))
    pref = PrefixSum2D(A)
    assert pref.max_element() == int(A.max())
    assert pref._max_el == int(A.max())  # second call hits the slot
    assert pref.max_element() == int(A.max())

    v = rng.integers(0, 1000, 40)
    p1 = PrefixSum1D(v)
    assert p1.max_element() == int(v.max())
    assert p1.max_element() == int(v.max())


def test_projection_cache_is_per_instance(pref):
    other = PrefixSum2D(np.ones((4, 4), dtype=np.int64))
    with use_perf(True):
        pref.axis_prefix(1, 0, 2, reuse=True)
        assert other._cache is None or len(other.projection_cache()) == 0


# ---------------------------------------------------------------------------
# Adaptive memoization dispatch (size-defaulted `reuse`)


def test_small_instance_skips_memo_by_default(pref):
    # 17×23 is far below the default threshold: size-defaulted queries take
    # the straight-line path (fresh writable arrays, nothing cached) so the
    # small-instance heuristics do not pay cache bookkeeping
    assert pref.n1 * pref.n2 < cache_min_cells()
    with use_perf(True):
        p1 = pref.axis_prefix(1, 3, 9)
        p2 = pref.axis_prefix(1, 3, 9)
        assert p1 is not p2
        assert p1.flags.writeable
        bl = pref.boundary_list(1, 3, 9)
        assert bl == p1.tolist()
    assert pref._cache is None or len(pref._cache) == 0


def test_explicit_reuse_overrides_size_default(pref):
    with use_perf(True):
        p1 = pref.axis_prefix(0, 1, 5, reuse=True)
        assert pref.axis_prefix(0, 1, 5, reuse=True) is p1
        # reuse=False forces the straight-line path even after a cached hit
        p3 = pref.axis_prefix(0, 1, 5, reuse=False)
        assert p3 is not p1
        np.testing.assert_array_equal(p3, p1)


def test_cache_min_cells_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_CACHE_MIN_CELLS", "100")
    assert cache_min_cells() == 100
    monkeypatch.setenv("REPRO_PERF_CACHE_MIN_CELLS", "not-a-number")
    assert cache_min_cells() == 65536  # falls back to the default
    monkeypatch.setenv("REPRO_PERF_CACHE_MIN_CELLS", "-5")
    assert cache_min_cells() == 0  # floored: memoize always


def test_zero_threshold_restores_always_memoize(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_CACHE_MIN_CELLS", "0")
    rng = np.random.default_rng(5)
    small = PrefixSum2D(rng.integers(0, 50, (17, 23)))  # fresh: default unresolved
    with use_perf(True):
        assert small.axis_prefix(1, 3, 9) is small.axis_prefix(1, 3, 9)


def test_size_default_resolved_once_per_instance(monkeypatch, pref):
    with use_perf(True):
        pref.axis_prefix(1, 3, 9)  # resolves the default (below threshold)
    monkeypatch.setenv("REPRO_PERF_CACHE_MIN_CELLS", "0")
    with use_perf(True):
        # the instance keeps its resolved default; only fresh prefixes see
        # the new threshold (documented process-level-knob behavior)
        assert pref.axis_prefix(1, 3, 9) is not pref.axis_prefix(1, 3, 9)
