"""Adversarial / failure-injection tests.

Degenerate load shapes (all mass in one cell, single rows/columns, extreme
values, checkerboards of zeros) and corrupted inputs, across every fast
algorithm.  These are the inputs most likely to break cut-search invariants
(empty stripes, zero-load bands, saturated processor counts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lower_bound, partition_2d
from repro.core.errors import InvalidPartitionError, ParameterError
from repro.core.partition import Partition
from repro.core.rectangle import Rect

FAST = [
    "RECT-UNIFORM",
    "RECT-NICOL",
    "JAG-PQ-HEUR",
    "JAG-M-HEUR",
    "HIER-RB",
    "HIER-RELAXED",
    "SPIRAL-RELAXED",
]


def adversarial_instances():
    rng = np.random.default_rng(0)
    single_hot = np.zeros((16, 16), dtype=np.int64)
    single_hot[7, 9] = 10**12  # near-int64-scale single cell
    row_only = np.zeros((16, 16), dtype=np.int64)
    row_only[3, :] = 1000
    col_only = np.zeros((16, 16), dtype=np.int64)
    col_only[:, 12] = 1000
    checker = np.zeros((16, 16), dtype=np.int64)
    checker[::2, ::2] = 7
    diag = np.zeros((16, 16), dtype=np.int64)
    np.fill_diagonal(diag, 10**9)
    thin_tall = rng.integers(1, 100, (256, 1))
    thin_wide = rng.integers(1, 100, (1, 256))
    tiny = np.array([[5]], dtype=np.int64)
    huge_uniform = np.full((8, 8), (1 << 50), dtype=np.int64)
    return {
        "single_hot": single_hot,
        "row_only": row_only,
        "col_only": col_only,
        "checker": checker,
        "diag": diag,
        "thin_tall": thin_tall,
        "thin_wide": thin_wide,
        "tiny": tiny,
        "huge_uniform": huge_uniform,
    }


@pytest.mark.parametrize("name", FAST)
@pytest.mark.parametrize("inst", sorted(adversarial_instances()))
@pytest.mark.parametrize("m", [1, 3, 7, 16])
def test_degenerate_instances(name, inst, m):
    A = adversarial_instances()[inst]
    part = partition_2d(A, m, name)
    assert part.m == m
    part.validate()
    assert part.max_load(A) >= lower_bound(A, m)


@pytest.mark.parametrize("name", ["JAG-M-OPT", "JAG-PQ-OPT"])
@pytest.mark.parametrize("inst", ["single_hot", "checker", "diag", "tiny"])
def test_exact_algorithms_on_degenerate(name, inst):
    A = adversarial_instances()[inst]
    part = partition_2d(A, 4, name)
    part.validate()
    assert part.max_load(A) >= lower_bound(A, 4)


class TestSaturatedProcessorCounts:
    """m close to or above the number of cells."""

    @pytest.mark.parametrize("name", FAST)
    def test_m_equals_cells(self, name):
        A = np.arange(1, 17, dtype=np.int64).reshape(4, 4)
        part = partition_2d(A, 16, name)
        part.validate()
        # a perfect split exists only if every cell is its own rectangle;
        # no algorithm may do worse than the whole matrix in one part
        assert part.max_load(A) <= A.sum()

    @pytest.mark.parametrize("name", ["JAG-M-HEUR", "HIER-RB", "HIER-RELAXED"])
    def test_m_above_cells(self, name):
        A = np.ones((3, 3), dtype=np.int64)
        part = partition_2d(A, 20, name)
        part.validate()
        assert part.m == 20
        assert part.max_load(A) >= 1


class TestCorruptedInputs:
    def test_negative_loads_rejected(self):
        A = np.array([[1, -2], [3, 4]])
        with pytest.raises(ParameterError):
            partition_2d(A, 2, "JAG-M-HEUR")

    def test_nan_loads_rejected(self):
        A = np.array([[1.0, np.nan], [3.0, 4.0]])
        with pytest.raises(ParameterError):
            partition_2d(A, 2, "HIER-RB")

    def test_nonpositive_m_rejected(self):
        A = np.ones((4, 4), dtype=np.int64)
        for name in FAST:
            with pytest.raises((ParameterError, ValueError)):
                partition_2d(A, 0, name)

    def test_tampered_partition_detected(self, rng):
        A = rng.integers(1, 9, (8, 8))
        part = partition_2d(A, 4, "HIER-RB")
        rects = list(part.rects)
        # shrink one rectangle: coverage hole
        r = next(r for r in rects if r.area > 1)
        rects[rects.index(r)] = Rect(r.r0, r.r1 - 1, r.c0, r.c1)
        with pytest.raises(InvalidPartitionError):
            Partition(rects, part.shape).validate()

    def test_duplicated_rectangle_detected(self, rng):
        A = rng.integers(1, 9, (8, 8))
        part = partition_2d(A, 4, "RECT-UNIFORM")
        rects = list(part.rects)
        rects[1] = rects[0]
        with pytest.raises(InvalidPartitionError):
            Partition(rects, part.shape).validate()


@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(1, 10),
    st.sampled_from(FAST),
)
@settings(max_examples=60, deadline=None)
def test_all_zero_matrices(n1, n2, m, name):
    """All-zero loads: any cover is optimal, nothing may crash."""
    A = np.zeros((n1, n2), dtype=np.int64)
    part = partition_2d(A, m, name)
    part.validate()
    assert part.max_load(A) == 0


@given(st.integers(2, 20), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_two_hot_cells_opposite_corners(n, m):
    """Two far-apart heavy cells: with m >= 2 the optimum separates them."""
    A = np.ones((n, n), dtype=np.int64)
    A[0, 0] = A[-1, -1] = 10**6
    part = partition_2d(A, m, "JAG-M-OPT")
    part.validate()
    if m >= 2:
        assert part.max_load(A) < 2 * 10**6
