"""Tests for the 1D heuristics: DirectCut, refined DC, recursive bisection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oned.heuristics import direct_cut, direct_cut_refined, recursive_bisection
from repro.oned.api import interval_loads

from .conftest import load_arrays, positive_arrays, prefix_of

ALL_HEURISTICS = [direct_cut, direct_cut_refined, recursive_bisection]


@pytest.mark.parametrize("heur", ALL_HEURISTICS)
class TestCutShape:
    @given(vals=load_arrays, m=st.integers(1, 9))
    @settings(max_examples=40)
    def test_cuts_wellformed(self, heur, vals, m):
        P = prefix_of(vals)
        cuts = heur(P, m)
        assert len(cuts) == m + 1
        assert cuts[0] == 0 and cuts[-1] == len(vals)
        assert (np.diff(cuts) >= 0).all()

    def test_single_processor(self, heur):
        P = prefix_of([5, 3, 2])
        cuts = heur(P, 1)
        np.testing.assert_array_equal(cuts, [0, 3])

    def test_more_processors_than_cells(self, heur):
        P = prefix_of([4, 4])
        cuts = heur(P, 5)
        loads = interval_loads(P, cuts)
        assert loads.max() == 4  # one cell per interval is achievable


class TestGuarantees:
    @given(vals=load_arrays, m=st.integers(1, 9))
    @settings(max_examples=50)
    def test_dc_bound(self, vals, m):
        """Lmax(DC) <= sum/m + max (§2.2)."""
        P = prefix_of(vals)
        loads = interval_loads(P, direct_cut(P, m))
        assert loads.max(initial=0) <= vals.sum() / m + vals.max(initial=0) + 1e-9

    @given(vals=load_arrays, m=st.integers(1, 9))
    @settings(max_examples=50)
    def test_rb_bound(self, vals, m):
        """Lmax(RB) <= sum/m + max (§2.2)."""
        P = prefix_of(vals)
        loads = interval_loads(P, recursive_bisection(P, m))
        assert loads.max(initial=0) <= vals.sum() / m + vals.max(initial=0) + 1e-9

    @given(vals=positive_arrays, m=st.integers(1, 9))
    @settings(max_examples=50)
    def test_lemma1_bound(self, vals, m):
        """Lemma 1: Lmax(DC) <= (sum/m)(1 + Δ m/n) on zero-free arrays."""
        from repro.theory.bounds import lemma1_dc_bound

        P = prefix_of(vals)
        delta = vals.max() / vals.min()
        loads = interval_loads(P, direct_cut(P, m))
        assert loads.max() <= lemma1_dc_bound(int(vals.sum()), m, len(vals), delta) + 1e-9

    @given(vals=load_arrays, m=st.integers(1, 9))
    @settings(max_examples=50)
    def test_refined_no_worse_than_2x(self, vals, m):
        P = prefix_of(vals)
        loads = interval_loads(P, direct_cut_refined(P, m))
        assert loads.max(initial=0) <= vals.sum() / m + vals.max(initial=0) + 1e-9


class TestRefinedImprovement:
    def test_often_beats_plain_dc(self, rng):
        """Statistically, snapping to the nearest boundary helps."""
        wins = ties = losses = 0
        for seed in range(50):
            vals = np.random.default_rng(seed).integers(1, 100, 200)
            P = prefix_of(vals)
            b1 = interval_loads(P, direct_cut(P, 16)).max()
            b2 = interval_loads(P, direct_cut_refined(P, 16)).max()
            if b2 < b1:
                wins += 1
            elif b2 == b1:
                ties += 1
            else:
                losses += 1
        assert wins > losses


class TestRecursiveBisectionOddSplit:
    def test_odd_m_uses_both_orientations(self):
        # Load concentrated at the front: the heavier side should receive
        # the extra processor.
        vals = np.array([10, 10, 10, 1, 1, 1])
        P = prefix_of(vals)
        cuts = recursive_bisection(P, 3)
        loads = interval_loads(P, cuts)
        assert loads.max() <= 20  # a (2,1)-orientation split achieves this
