"""Tests for the optimal jagged algorithms JAG-PQ-OPT and JAG-M-OPT (§3.2)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.prefix import PrefixSum2D
from repro.jagged import (
    jag_m_heur,
    jag_m_opt,
    jag_m_opt_bottleneck,
    jag_m_opt_dp_bottleneck,
    jag_pq_heur,
    jag_pq_opt,
    jag_pq_opt_bottleneck,
)
from repro.oned.bisect import bisect_bottleneck

tiny_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    elements=st.integers(0, 30),
)


def brute_pq(A, P, Q):
    """Exhaustive optimal P×Q-way jagged bottleneck (main dim 0)."""
    n1, n2 = A.shape
    G = np.zeros((n1 + 1, n2 + 1), dtype=np.int64)
    G[1:, 1:] = A.cumsum(0).cumsum(1)
    best = None
    k = min(P, n1) - 1
    for bounds in itertools.combinations(range(1, n1), k):
        bb = [0, *bounds, n1]
        worst = 0
        for a, b in zip(bb, bb[1:]):
            band = G[b, :] - G[a, :]
            worst = max(worst, bisect_bottleneck(band, Q))
        best = worst if best is None else min(best, worst)
    return best


def brute_mway(A, m):
    """Exhaustive optimal m-way jagged bottleneck (main dim 0)."""
    n1, n2 = A.shape
    G = np.zeros((n1 + 1, n2 + 1), dtype=np.int64)
    G[1:, 1:] = A.cumsum(0).cumsum(1)
    INF = 1 << 60
    best = None
    for nstripes in range(1, min(n1, m) + 1):
        for bounds in itertools.combinations(range(1, n1), nstripes - 1):
            bb = [0, *bounds, n1]
            f = [INF] * (m + 1)
            f[0] = 0
            for a, b in zip(bb, bb[1:]):
                band = G[b, :] - G[a, :]
                g = [INF] * (m + 1)
                for used in range(m + 1):
                    if f[used] == INF:
                        continue
                    for q in range(1, m - used + 1):
                        v = max(f[used], bisect_bottleneck(band, q))
                        if v < g[used + q]:
                            g[used + q] = v
                f = g
            v = min(f[1:])
            best = v if best is None else min(best, v)
    return best


class TestJagPQOpt:
    @given(tiny_matrices, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce(self, A, P, Q):
        pref = PrefixSum2D(A)
        assert jag_pq_opt_bottleneck(pref, P, Q) == brute_pq(A, P, Q)

    @given(tiny_matrices, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_not_worse_than_heuristic(self, A, m):
        opt = jag_pq_opt(A, m).max_load(A)
        heur = jag_pq_heur(A, m).max_load(A)
        assert opt <= heur

    @given(tiny_matrices, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_partition_achieves_bottleneck(self, A, m):
        p = jag_pq_opt(A, m, orientation="hor")
        p.validate()
        from repro.jagged.common import choose_pq

        P, Q = choose_pq(m, A.shape[0], A.shape[1])
        assert p.max_load(A) == jag_pq_opt_bottleneck(PrefixSum2D(A), P, Q)

    def test_medium_instance(self, rng):
        A = rng.integers(1, 100, (40, 40))
        p = jag_pq_opt(A, 16)
        p.validate()
        assert p.max_load(A) <= jag_pq_heur(A, 16).max_load(A)


class TestJagMOpt:
    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, A, m):
        pref = PrefixSum2D(A)
        assert jag_m_opt_bottleneck(pref, m) == brute_mway(A, m)

    @given(tiny_matrices, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_matches_paper_dp(self, A, m):
        pref = PrefixSum2D(A)
        assert jag_m_opt_bottleneck(pref, m) == jag_m_opt_dp_bottleneck(pref, m)

    @given(tiny_matrices, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_dominance_chain(self, A, m):
        """OPT(m-way) <= OPT(P×Q-way) <= HEUR(P×Q); OPT(m-way) <= HEUR(m-way)."""
        mo = jag_m_opt(A, m).max_load(A)
        assert mo <= jag_pq_opt(A, m).max_load(A)
        assert mo <= jag_m_heur(A, m).max_load(A)

    @given(tiny_matrices, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_partition_achieves_bottleneck(self, A, m):
        pref = PrefixSum2D(A)
        p = jag_m_opt(pref, m, orientation="hor")
        p.validate()
        assert p.max_load(pref) == jag_m_opt_bottleneck(pref, m)

    def test_medium_instance_beats_heuristic(self, rng):
        A = rng.integers(1, 100, (32, 32))
        m = 25
        opt = jag_m_opt(A, m)
        opt.validate()
        assert opt.max_load(A) <= jag_m_heur(A, m).max_load(A)

    def test_dp_size_guard(self, rng):
        from repro.core.errors import ParameterError

        A = rng.integers(1, 5, (100, 100))
        with pytest.raises(ParameterError):
            jag_m_opt_dp_bottleneck(PrefixSum2D(A), 1000)
