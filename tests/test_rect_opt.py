"""Tests for the exact rectilinear oracle and the Figure 1 class hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.jagged import jag_pq_opt_bottleneck
from repro.rectilinear import rect_nicol, rect_opt, rect_opt_bottleneck, rect_uniform

tiny = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 7), st.integers(2, 7)),
    elements=st.integers(0, 30),
)


class TestRectOpt:
    @given(tiny, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_partition_achieves_value(self, A, P, Q):
        pref = PrefixSum2D(A)
        part = rect_opt(pref, P * Q, P=P, Q=Q)
        part.validate()
        assert part.max_load(pref) == rect_opt_bottleneck(pref, P, Q)

    @given(tiny, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_heuristics_never_beat_oracle(self, A, P, Q):
        pref = PrefixSum2D(A)
        b = rect_opt_bottleneck(pref, P, Q)
        assert rect_nicol(pref, P * Q, P=P, Q=Q).max_load(pref) >= b
        assert rect_uniform(pref, P * Q, P=P, Q=Q).max_load(pref) >= b

    @given(tiny, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_class_hierarchy_vs_jagged(self, A, P, Q):
        """Figure 1: rectilinear ⊂ P×Q jagged ⇒ OPT_rect >= OPT_jagged."""
        pref = PrefixSum2D(A)
        assert rect_opt_bottleneck(pref, P, Q) >= jag_pq_opt_bottleneck(pref, P, Q)

    def test_size_guard(self, rng):
        A = rng.integers(1, 5, (64, 64))
        with pytest.raises(ParameterError):
            rect_opt_bottleneck(A, 8, 8, limit=100)

    def test_rect_nicol_quality_vs_oracle(self, rng):
        """RECT-NICOL's local refinement lands close to the true optimum."""
        ratios = []
        for seed in range(8):
            A = np.random.default_rng(seed).integers(1, 100, (12, 12))
            pref = PrefixSum2D(A)
            opt = rect_opt_bottleneck(pref, 3, 3)
            heur = rect_nicol(pref, 9, P=3, Q=3).max_load(pref)
            ratios.append(heur / opt)
        assert np.mean(ratios) < 1.25  # within 25% of optimal on average

    def test_pq_mismatch(self, rng):
        with pytest.raises(ParameterError):
            rect_opt(rng.integers(1, 5, (4, 4)), 4, P=3, Q=2)
