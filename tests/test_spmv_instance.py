"""Tests for the SpMV (sparse-matrix) workload generator."""

import tracemalloc

import numpy as np
import pytest

from repro import partition_2d
from repro.core.errors import ParameterError
from repro.core.sparse import SparsePrefix2D
from repro.instances import rmat_edges, spmv_instance
from repro.instances.mesh.project import slac_sparse
from repro.instances.spmv import spmv_sparse


class TestRmatEdges:
    def test_shape_and_range(self):
        edges = rmat_edges(10, 4, seed=0)
        assert edges.shape == (4 * 1024, 2)
        assert edges.min() >= 0 and edges.max() < 1024

    def test_deterministic(self):
        np.testing.assert_array_equal(rmat_edges(8, seed=3), rmat_edges(8, seed=3))

    def test_skew(self):
        """R-MAT concentrates edges in the low-index quadrant."""
        edges = rmat_edges(12, 8, seed=1)
        size = 1 << 12
        low = ((edges[:, 0] < size // 2) & (edges[:, 1] < size // 2)).mean()
        assert low > 0.4  # a=0.57 recursion => far above the uniform 0.25

    def test_validation(self):
        with pytest.raises(ParameterError):
            rmat_edges(0)
        with pytest.raises(ParameterError):
            rmat_edges(4, probs=(0.5, 0.5, 0.5, 0.5))


class TestSpmvInstance:
    def test_rmat_totals(self):
        A = spmv_instance(64, model="rmat", scale=12, edge_factor=4, seed=0)
        assert A.shape == (64, 64)
        assert A.sum() == 4 * (1 << 12)  # every edge lands in one block

    def test_mesh_structure(self):
        A = spmv_instance(32, model="mesh", mesh_size=64)
        # 5-point stencil: nnz = size + 4*size - boundary corrections
        size = 64 * 64
        assert A.sum() == size + 4 * size - 4 * 64
        # banded: mass on/near the block diagonal
        diag_mass = sum(int(A[i, i]) for i in range(32))
        assert diag_mass > 0.5 * int(A.sum())

    def test_unknown_model(self):
        with pytest.raises(ParameterError):
            spmv_instance(16, model="csr")

    def test_bad_resolution(self):
        with pytest.raises(ParameterError):
            spmv_instance(0)

    def test_partitioning_pipeline(self):
        """The intro's use case: balance nonzeros across a 2D decomposition."""
        A = spmv_instance(96, model="rmat", scale=13, seed=2)
        uni = partition_2d(A, 36, "RECT-UNIFORM").imbalance(A)
        jag = partition_2d(A, 36, "JAG-M-HEUR").imbalance(A)
        assert jag < 0.5 * uni  # load-aware tiling pays off on power-law nnz
        partition_2d(A, 36, "JAG-M-HEUR").validate()


class TestSparseGenerators:
    """`large`-profile generator twins: build CSR substrates, never densify."""

    def test_spmv_sparse_rmat_never_densifies(self):
        n = 4096  # the `large` profile's n_spmv; dense Γ would be 128+ MiB
        dense_bytes = 8 * n * n
        tracemalloc.start()
        try:
            sub = spmv_sparse(n, model="rmat", scale=14, edge_factor=8, seed=0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert isinstance(sub, SparsePrefix2D)
        assert sub.shape == (n, n)
        assert sub.total == 8 * (1 << 14)  # every edge lands in one block
        assert peak < dense_bytes / 10
        assert sub.nbytes < dense_bytes / 10

    def test_spmv_sparse_mesh_peak_independent_of_resolution(self):
        """The mesh twin's peak is O(stencil points), not O(n²): growing the
        histogram resolution 4× (16× the cell count) must leave the build's
        peak allocation essentially flat — a densifying build would 16× it."""

        def peak_at(n):
            tracemalloc.start()
            try:
                sub = spmv_sparse(n, model="mesh", mesh_size=512)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert isinstance(sub, SparsePrefix2D)
            size = 512 * 512
            assert sub.total == size + 4 * size - 4 * 512
            return peak

        small, large = peak_at(1024), peak_at(4096)
        assert large < 1.5 * small
        assert large < 8 * 4096 * 4096  # and strictly below one dense Γ

    def test_slac_sparse_peak_independent_of_resolution(self):
        """SLAC's sparse twin peaks at O(vertices): resolution growth from
        2048² to 4096² (4× the cells; 4096 is the `large` profile's n_slac)
        leaves the build's peak allocation flat instead of scaling with the
        grid.  (1024² is below the density threshold's profit point, so the
        dispatcher correctly densifies there — it is not part of this check.)
        """

        def peak_at(n):
            tracemalloc.start()
            try:
                sub = slac_sparse(n)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert isinstance(sub, SparsePrefix2D)
            assert sub.shape == (n, n)
            assert sub.total > 0
            return peak

        small, large = peak_at(2048), peak_at(4096)
        assert large < 1.5 * small
        assert large < 8 * 4096 * 4096  # and strictly below one dense Γ

    def test_sparse_twin_partitions_like_dense(self):
        """End-to-end: a solver run on the triplet-built substrate matches
        the densified instance exactly."""
        A = spmv_instance(64, model="rmat", scale=12, edge_factor=4, seed=0)
        sub = spmv_sparse(64, model="rmat", scale=12, edge_factor=4, seed=0)
        pd = partition_2d(A, 16, "JAG-M-HEUR")
        ps = partition_2d(sub, 16, "JAG-M-HEUR")
        np.testing.assert_array_equal(pd.coords(), ps.coords())
