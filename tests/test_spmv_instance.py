"""Tests for the SpMV (sparse-matrix) workload generator."""

import numpy as np
import pytest

from repro import partition_2d
from repro.core.errors import ParameterError
from repro.instances import rmat_edges, spmv_instance


class TestRmatEdges:
    def test_shape_and_range(self):
        edges = rmat_edges(10, 4, seed=0)
        assert edges.shape == (4 * 1024, 2)
        assert edges.min() >= 0 and edges.max() < 1024

    def test_deterministic(self):
        np.testing.assert_array_equal(rmat_edges(8, seed=3), rmat_edges(8, seed=3))

    def test_skew(self):
        """R-MAT concentrates edges in the low-index quadrant."""
        edges = rmat_edges(12, 8, seed=1)
        size = 1 << 12
        low = ((edges[:, 0] < size // 2) & (edges[:, 1] < size // 2)).mean()
        assert low > 0.4  # a=0.57 recursion => far above the uniform 0.25

    def test_validation(self):
        with pytest.raises(ParameterError):
            rmat_edges(0)
        with pytest.raises(ParameterError):
            rmat_edges(4, probs=(0.5, 0.5, 0.5, 0.5))


class TestSpmvInstance:
    def test_rmat_totals(self):
        A = spmv_instance(64, model="rmat", scale=12, edge_factor=4, seed=0)
        assert A.shape == (64, 64)
        assert A.sum() == 4 * (1 << 12)  # every edge lands in one block

    def test_mesh_structure(self):
        A = spmv_instance(32, model="mesh", mesh_size=64)
        # 5-point stencil: nnz = size + 4*size - boundary corrections
        size = 64 * 64
        assert A.sum() == size + 4 * size - 4 * 64
        # banded: mass on/near the block diagonal
        diag_mass = sum(int(A[i, i]) for i in range(32))
        assert diag_mass > 0.5 * int(A.sum())

    def test_unknown_model(self):
        with pytest.raises(ParameterError):
            spmv_instance(16, model="csr")

    def test_bad_resolution(self):
        with pytest.raises(ParameterError):
            spmv_instance(0)

    def test_partitioning_pipeline(self):
        """The intro's use case: balance nonzeros across a 2D decomposition."""
        A = spmv_instance(96, model="rmat", scale=13, seed=2)
        uni = partition_2d(A, 36, "RECT-UNIFORM").imbalance(A)
        jag = partition_2d(A, 36, "JAG-M-HEUR").imbalance(A)
        assert jag < 0.5 * uni  # load-aware tiling pays off on power-law nnz
        partition_2d(A, 36, "JAG-M-HEUR").validate()
