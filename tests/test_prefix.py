"""Unit + property tests for the prefix-sum substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParameterError
from repro.core.prefix import (
    PrefixSum1D,
    PrefixSum2D,
    as_load_matrix,
    prefix_1d,
    prefix_2d,
)

from .conftest import load_arrays, load_matrices


class TestAsLoadMatrix:
    def test_accepts_int_matrix(self):
        A = as_load_matrix([[1, 2], [3, 4]])
        assert A.dtype == np.int64
        assert A.flags.c_contiguous

    def test_accepts_integral_floats(self):
        A = as_load_matrix(np.array([[1.0, 2.0]]))
        assert A.dtype == np.int64

    def test_rejects_fractional_floats(self):
        with pytest.raises(ParameterError):
            as_load_matrix(np.array([[1.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            as_load_matrix(np.array([[-1, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(ParameterError):
            as_load_matrix(np.array([1, 2, 3]))

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            as_load_matrix(np.zeros((0, 3), dtype=np.int64))

    def test_rejects_strings(self):
        with pytest.raises(ParameterError):
            as_load_matrix(np.array([["a", "b"]]))


class TestPrefix1D:
    def test_basic(self):
        p = PrefixSum1D(np.array([3, 1, 4]))
        assert p.total == 8
        assert p.load(0, 3) == 8
        assert p.load(1, 2) == 1
        assert p.load(2, 2) == 0
        assert p.max_element() == 4
        assert len(p) == 3

    def test_from_prefix(self):
        p = PrefixSum1D(np.array([0, 3, 4, 8]), is_prefix=True)
        assert p.total == 8

    def test_rejects_bad_prefix(self):
        with pytest.raises(ParameterError):
            PrefixSum1D(np.array([1, 3]), is_prefix=True)

    def test_rejects_2d_input(self):
        with pytest.raises(ParameterError):
            prefix_1d(np.zeros((2, 2)))

    def test_empty_array(self):
        p = PrefixSum1D(np.array([], dtype=np.int64))
        assert p.total == 0
        assert p.max_element() == 0

    @given(load_arrays)
    @settings(max_examples=40)
    def test_interval_loads_match_slices(self, vals):
        p = PrefixSum1D(vals)
        n = len(vals)
        for lo, hi in [(0, n), (0, 0), (n // 2, n), (1 if n > 1 else 0, n)]:
            assert p.load(lo, hi) == vals[lo:hi].sum()


class TestPrefix2D:
    def test_rect_loads(self, rng):
        A = rng.integers(0, 50, (6, 8))
        pf = PrefixSum2D(A)
        assert pf.shape == (6, 8)
        assert pf.total == A.sum()
        for _ in range(20):
            r0, r1 = sorted(rng.integers(0, 7, 2))
            c0, c1 = sorted(rng.integers(0, 9, 2))
            assert pf.load(r0, r1, c0, c1) == A[r0:r1, c0:c1].sum()

    def test_axis_prefix(self, rng):
        A = rng.integers(0, 50, (5, 7))
        pf = PrefixSum2D(A)
        rows = pf.axis_prefix(0)
        assert rows.shape == (6,)
        np.testing.assert_array_equal(np.diff(rows), A.sum(axis=1))
        cols = pf.axis_prefix(1, 1, 4)  # rows [1, 4)
        np.testing.assert_array_equal(np.diff(cols), A[1:4].sum(axis=0))

    def test_axis_prefix_bad_axis(self, rng):
        pf = PrefixSum2D(rng.integers(0, 5, (3, 3)))
        with pytest.raises(ParameterError):
            pf.axis_prefix(2)

    def test_band_prefix_rebased(self, rng):
        A = rng.integers(0, 50, (6, 6))
        pf = PrefixSum2D(A)
        bp = pf.band_prefix(0, 2, 5, 1, 4)  # rows [1,4) of columns [2,5)
        assert bp[0] == 0
        np.testing.assert_array_equal(np.diff(bp), A[1:4, 2:5].sum(axis=1))

    def test_max_element(self, rng):
        A = rng.integers(0, 50, (5, 5))
        assert PrefixSum2D(A).max_element() == A.max()

    def test_transpose(self, rng):
        A = rng.integers(0, 50, (4, 7))
        pf = PrefixSum2D(A)
        pt = pf.transpose()
        assert pt.shape == (7, 4)
        assert pt.load(1, 5, 0, 3) == A[0:3, 1:5].sum()

    def test_from_prefix_roundtrip(self, rng):
        A = rng.integers(0, 50, (4, 4))
        pf = PrefixSum2D(A)
        pf2 = PrefixSum2D(pf.G, is_prefix=True)
        assert pf2.total == pf.total

    def test_rejects_bad_prefix(self):
        with pytest.raises(ParameterError):
            PrefixSum2D(np.ones((3, 3)), is_prefix=True)

    def test_prefix_2d_passthrough(self, rng):
        pf = PrefixSum2D(rng.integers(0, 5, (3, 3)))
        assert prefix_2d(pf) is pf

    @given(load_matrices, st.data())
    @settings(max_examples=40)
    def test_random_rect_load(self, A, data):
        pf = PrefixSum2D(A)
        n1, n2 = A.shape
        r0 = data.draw(st.integers(0, n1))
        r1 = data.draw(st.integers(r0, n1))
        c0 = data.draw(st.integers(0, n2))
        c1 = data.draw(st.integers(c0, n2))
        assert pf.load(r0, r1, c0, c1) == A[r0:r1, c0:c1].sum()
