"""Tests for the heterogeneous-processor extension (1D + jagged 2D)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParameterError
from repro.core.prefix import PrefixSum2D
from repro.jagged import hetero_makespan_2d, jag_hetero, speed_groups
from repro.oned.bisect import bisect_bottleneck
from repro.oned.hetero import (
    hetero_cuts,
    hetero_makespan,
    partition_hetero,
    probe_hetero,
)

from .conftest import prefix_of


def brute_hetero(vals, speeds):
    """Reference optimal ordered-hetero makespan via exhaustive cuts.

    Cuts may repeat (empty intervals are legal — e.g. skip a slow processor
    so a later fast one takes the load).
    """
    n, m = len(vals), len(speeds)
    best = None
    for cuts in itertools.combinations_with_replacement(range(n + 1), m - 1):
        cc = [0, *cuts, n]
        t = max(vals[a:b].sum() / s for (a, b), s in zip(zip(cc, cc[1:]), speeds))
        best = t if best is None else min(best, t)
    return best if best is not None else float(vals.sum()) / speeds[0]


class TestHetero1D:
    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=8).map(np.array),
        st.lists(st.floats(0.5, 4.0), min_size=1, max_size=4),
    )
    @settings(max_examples=80)
    def test_matches_bruteforce(self, vals, speeds):
        speeds = np.array(speeds)
        T, cuts = partition_hetero(vals, speeds)
        bf = brute_hetero(vals, speeds)
        assert T == pytest.approx(bf, rel=1e-6, abs=1e-6)
        assert cuts[0] == 0 and cuts[-1] == len(vals)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=25).map(np.array),
        st.integers(1, 8),
    )
    @settings(max_examples=50)
    def test_equal_speeds_match_homogeneous(self, vals, m):
        P = prefix_of(vals)
        T, _ = partition_hetero(vals, np.ones(m))
        assert T == pytest.approx(bisect_bottleneck(P, m), rel=1e-9, abs=1e-6)

    def test_probe_monotone_in_t(self, rng):
        vals = rng.integers(1, 50, 30)
        P = prefix_of(vals)
        speeds = rng.uniform(0.5, 3.0, 5)
        feas = [probe_hetero(P, speeds, T) for T in np.linspace(0, vals.sum(), 25)]
        assert feas == sorted(feas)

    def test_fast_processor_takes_more(self):
        vals = np.full(100, 10, dtype=np.int64)
        T, cuts = partition_hetero(vals, np.array([3.0, 1.0]))
        widths = np.diff(cuts)
        assert widths[0] == pytest.approx(75, abs=1)

    def test_negative_time_infeasible(self):
        P = prefix_of(np.array([1]))
        assert not probe_hetero(P, np.array([1.0]), -1.0)
        assert hetero_cuts(P, np.array([1.0]), 0.5) is None

    def test_zero_load(self):
        assert hetero_makespan(prefix_of(np.zeros(4, dtype=np.int64)), np.ones(3)) == 0.0

    def test_speed_validation(self):
        with pytest.raises(ParameterError):
            partition_hetero(np.array([1, 2]), np.array([1.0, -1.0]))
        with pytest.raises(ParameterError):
            partition_hetero(np.array([1, 2]), np.zeros(0))


class TestSpeedGroups:
    def test_partition_of_indices(self, rng):
        speeds = rng.uniform(0.5, 5.0, 13)
        groups = speed_groups(speeds, 4)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(13))

    def test_balanced_totals(self, rng):
        speeds = rng.uniform(1.0, 2.0, 40)
        groups = speed_groups(speeds, 4)
        totals = [speeds[g].sum() for g in groups]
        assert max(totals) / min(totals) < 1.3

    def test_validation(self):
        with pytest.raises(ParameterError):
            speed_groups(np.ones(3), 4)
        with pytest.raises(ParameterError):
            speed_groups(np.ones(3), 0)


class TestJagHetero:
    def test_valid_and_indexed_by_processor(self, rng):
        A = rng.integers(1, 50, (30, 30))
        speeds = rng.uniform(0.5, 4.0, 10)
        p = jag_hetero(A, speeds)
        p.validate()
        assert p.m == 10
        assert p.meta["makespan"] == pytest.approx(
            hetero_makespan_2d(p, A, speeds)
        )

    def test_fast_processors_carry_more(self, rng):
        A = rng.integers(1, 50, (40, 40))
        speeds = np.array([4.0] + [1.0] * 8)
        p = jag_hetero(A, speeds)
        loads = p.loads(PrefixSum2D(A)).astype(float)
        assert loads[0] > 2.0 * loads[1:].mean()

    def test_makespan_near_ideal_on_uniform(self):
        A = np.full((64, 64), 100, dtype=np.int64)
        speeds = np.array([1.0, 2.0, 3.0, 2.0, 1.0, 3.0, 2.0, 1.0, 1.0])
        p = jag_hetero(A, speeds)
        ideal = A.sum() / speeds.sum()
        assert p.meta["makespan"] <= 1.25 * ideal

    def test_equal_speeds_reasonable(self, rng):
        from repro.jagged import jag_m_heur

        A = rng.integers(1, 50, (32, 32))
        p = jag_hetero(A, np.ones(9))
        hom = jag_m_heur(A, 9)
        assert p.meta["makespan"] <= 1.3 * hom.max_load(A)

    def test_lower_bound(self, rng):
        A = rng.integers(1, 20, (16, 16))
        speeds = rng.uniform(0.5, 2.0, 5)
        p = jag_hetero(A, speeds)
        assert p.meta["makespan"] >= A.sum() / speeds.sum() - 1e-9

    def test_speed_validation(self, rng):
        with pytest.raises(ParameterError):
            jag_hetero(rng.integers(1, 5, (4, 4)), np.array([]))
        with pytest.raises(ParameterError):
            hetero_makespan_2d(
                jag_hetero(rng.integers(1, 5, (4, 4)), np.ones(2)),
                rng.integers(1, 5, (4, 4)),
                np.ones(3),
            )
