"""Bit-identity gate: the sparse CSR substrate vs the dense reference Γ.

Every query the :class:`~repro.core.prefix.LoadView` surface exposes, every
registry algorithm, the sweep/raw-store digests and the shared-memory
transport must answer **bit-identically** on the two substrates — the sparse
path is a performance substrate, never a semantic fork.  This file is the
reachability root the RPL009 dispatch contract requires for
:func:`~repro.core.sparse.auto_substrate` and
:func:`~repro.core.sparse.substrate_from_triplets`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.partition import Partition
from repro.core.prefix import LoadView, PrefixSum2D, as_load_matrix, prefix_2d
from repro.core.registry import ALGORITHMS, partition_2d
from repro.core.sparse import (
    SparsePrefix2D,
    auto_substrate,
    sparse_enabled,
    sparse_threshold,
    substrate_from_triplets,
)
from repro.core.errors import ParameterError
from repro.instances import slac_instance
from repro.instances.spmv import hist2d_triplets, spmv_instance, spmv_sparse
from repro.instances.mesh.project import slac_sparse
from repro.parallel.shm import attach_prefix, export_prefix, live_segments, release_all
from repro.perf.counters import op_counters
from repro.sweep.store import instance_digest, matrix_digest

# sparse-ish matrices: mostly zeros, a band of structured mass, a few spikes
sparse_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.sampled_from([0, 0, 0, 0, 0, 1, 2, 7, 40]),
)


def _random_sparse(rng, n1=24, n2=20, density=0.12, hi=50) -> np.ndarray:
    A = np.zeros((n1, n2), dtype=np.int64)
    k = max(1, int(density * n1 * n2))
    idx = rng.choice(n1 * n2, size=k, replace=False)
    A.ravel()[idx] = rng.integers(1, hi, size=k)
    return A


def _pair(A) -> tuple[PrefixSum2D, SparsePrefix2D]:
    return PrefixSum2D(A), SparsePrefix2D(A)


# ----------------------------------------------------------------------
# query surface equivalence
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(sparse_matrices, st.integers(0, 2**32 - 1))
def test_load_queries_match_dense(A, seed):
    dense, sparse = _pair(A)
    n1, n2 = A.shape
    rng = np.random.default_rng(seed)
    for _ in range(12):
        r = np.sort(rng.integers(0, n1 + 1, size=2))
        c = np.sort(rng.integers(0, n2 + 1, size=2))
        assert sparse.load(r[0], r[1], c[0], c[1]) == dense.load(
            r[0], r[1], c[0], c[1]
        )
    # degenerate and full-extent rectangles
    assert sparse.load(0, n1, 0, n2) == dense.load(0, n1, 0, n2) == sparse.total
    assert sparse.load(0, 0, 0, 0) == 0
    assert sparse.load(0, n1, 0, 0) == 0


@settings(max_examples=40, deadline=None)
@given(sparse_matrices, st.integers(0, 2**32 - 1))
def test_rect_loads_match_dense(A, seed):
    dense, sparse = _pair(A)
    n1, n2 = A.shape
    rng = np.random.default_rng(seed)
    rr = np.sort(rng.integers(0, n1 + 1, size=(16, 2)), axis=1)
    cc = np.sort(rng.integers(0, n2 + 1, size=(16, 2)), axis=1)
    coords = np.column_stack([rr, cc])
    np.testing.assert_array_equal(sparse.rect_loads(coords), dense.rect_loads(coords))


@settings(max_examples=40, deadline=None)
@given(sparse_matrices)
def test_projections_match_dense(A):
    dense, sparse = _pair(A)
    n1, n2 = A.shape
    for axis, extent in ((0, n2), (1, n1)):
        for lo, hi in ((0, extent), (0, extent // 2), (extent // 3, extent)):
            np.testing.assert_array_equal(
                sparse.axis_prefix(axis, lo, hi), dense.axis_prefix(axis, lo, hi)
            )
            assert sparse.boundary_list(axis, lo, hi) == dense.boundary_list(
                axis, lo, hi
            )
    # band_prefix windows
    if n1 >= 2 and n2 >= 2:
        np.testing.assert_array_equal(
            sparse.band_prefix(1, 0, n1 // 2, 1, n2),
            dense.band_prefix(1, 0, n1 // 2, 1, n2),
        )


@settings(max_examples=40, deadline=None)
@given(sparse_matrices)
def test_scalars_and_transpose_match_dense(A):
    dense, sparse = _pair(A)
    assert sparse.shape == dense.shape
    assert sparse.total == dense.total
    assert sparse.max_element() == dense.max_element()
    assert sparse.min_element() == dense.min_element()
    np.testing.assert_array_equal(sparse.cells_dense(), A)
    sT, dT = sparse.transpose(), dense.transpose()
    np.testing.assert_array_equal(sT.cells_dense(), dT.cells_dense())
    assert sT.total == dense.total
    assert isinstance(sparse, LoadView) and isinstance(dense, LoadView)


def test_projection_memo_does_not_leak_substrate_arrays(rng):
    """Full-band projections return copies: freezing the memo must not
    freeze (or alias) the substrate's own marginal arrays."""
    sparse = SparsePrefix2D(_random_sparse(rng))
    band = sparse.axis_prefix(0)
    assert band.base is not sparse.row_pref and not np.shares_memory(
        band, sparse.row_pref
    )
    band2 = sparse.axis_prefix(1)
    assert not np.shares_memory(band2, sparse.col_pref)


# ----------------------------------------------------------------------
# every registry algorithm, both substrates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_registry_bit_identity(algo, rng):
    A = _random_sparse(rng, 18, 15, density=0.15)
    dense, sparse = _pair(A)
    m = 6
    pd = partition_2d(dense, m, algo)
    ps = partition_2d(sparse, m, algo)
    np.testing.assert_array_equal(pd.coords(), ps.coords())
    assert pd.max_load(dense) == ps.max_load(sparse)


@pytest.mark.parametrize(
    "maker",
    [
        lambda: spmv_instance(32, model="mesh", mesh_size=48),
        lambda: spmv_instance(32, model="rmat", scale=10, edge_factor=4, seed=5),
        lambda: slac_instance(32),
    ],
    ids=["mesh", "rmat", "slac"],
)
@pytest.mark.parametrize("algo", ["JAG-M-HEUR", "HIER-RELAXED", "RECT-NICOL"])
def test_instance_families_bit_identity(maker, algo):
    A = maker()
    dense, sparse = _pair(A)
    pd = partition_2d(dense, 9, algo)
    ps = partition_2d(sparse, 9, algo)
    np.testing.assert_array_equal(pd.coords(), ps.coords())
    assert pd.max_load(dense) == ps.max_load(sparse)


def test_partition_loads_accepts_sparse(rng):
    A = _random_sparse(rng)
    dense, sparse = _pair(A)
    part = partition_2d(dense, 4, "HIER-RB")
    np.testing.assert_array_equal(part.loads(sparse), part.loads(dense))


# ----------------------------------------------------------------------
# dispatchers (RPL009 reachability roots)
# ----------------------------------------------------------------------
def test_auto_substrate_dispatches_on_density(rng, monkeypatch):
    A_sparse = _random_sparse(rng, density=0.05)
    A_dense = rng.integers(1, 9, size=(16, 16)).astype(np.int64)
    assert isinstance(auto_substrate(A_sparse), SparsePrefix2D)
    assert isinstance(auto_substrate(A_dense), PrefixSum2D)
    # the two dispatch outcomes agree on every query
    s, d = auto_substrate(A_sparse), PrefixSum2D(A_sparse)
    assert s.load(1, 7, 2, 9) == d.load(1, 7, 2, 9)
    # threshold 0 disables the sparse path entirely
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "0")
    assert not sparse_enabled()
    assert isinstance(auto_substrate(A_sparse), PrefixSum2D)
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "1.0")
    assert sparse_threshold() == 1.0
    assert isinstance(auto_substrate(A_dense), SparsePrefix2D)


def test_substrate_from_triplets_matches_dense_assembly(rng, monkeypatch):
    n1, n2 = 21, 17
    k = 60
    rows = rng.integers(0, n1, size=k)
    cols = rng.integers(0, n2, size=k)
    vals = rng.integers(0, 7, size=k)  # duplicates and explicit zeros
    A = np.zeros((n1, n2), dtype=np.int64)
    np.add.at(A, (rows, cols), vals)
    sub = substrate_from_triplets(rows, cols, vals, (n1, n2))
    np.testing.assert_array_equal(sub.cells_dense(), A)
    assert instance_digest(sub) == matrix_digest(A)
    # disabled dispatcher → dense substrate, same logical matrix
    monkeypatch.setenv("REPRO_SPARSE_THRESHOLD", "0")
    dense_sub = substrate_from_triplets(rows, cols, vals, (n1, n2))
    assert isinstance(dense_sub, PrefixSum2D)
    np.testing.assert_array_equal(dense_sub.cells_dense(), A)


def test_from_triplets_validation():
    with pytest.raises(ParameterError):
        SparsePrefix2D.from_triplets([0], [0], [1], (0, 4))
    with pytest.raises(ParameterError):
        SparsePrefix2D.from_triplets([5], [0], [1], (4, 4))
    with pytest.raises(ParameterError):
        SparsePrefix2D.from_triplets([0], [0], [-1], (4, 4))
    with pytest.raises(ParameterError):
        SparsePrefix2D.from_triplets([0, 1], [0], [1, 1], (4, 4))
    with pytest.raises(ParameterError):
        SparsePrefix2D.from_triplets([0], [0], [np.nan], (4, 4))


def test_prefix_2d_passes_sparse_through(rng):
    sparse = SparsePrefix2D(_random_sparse(rng))
    assert prefix_2d(sparse) is sparse


# ----------------------------------------------------------------------
# digests: warm facts transfer across substrates
# ----------------------------------------------------------------------
def test_digest_equality_across_substrates(rng):
    for A in (
        _random_sparse(rng),
        np.zeros((5, 7), dtype=np.int64),
        6 * _random_sparse(rng, 9, 9, density=0.2),  # gcd scale > 1
    ):
        dense, sparse = _pair(A)
        assert sparse.matrix_digest() == matrix_digest(A)
        assert instance_digest(sparse) == instance_digest(dense)


def test_generator_twins_are_digest_equal():
    for dense_A, sparse_sub in (
        (spmv_instance(24, model="mesh", mesh_size=40), spmv_sparse(24, model="mesh", mesh_size=40)),
        (spmv_instance(24, model="rmat", scale=9, edge_factor=2, seed=7), spmv_sparse(24, model="rmat", scale=9, edge_factor=2, seed=7)),
        (slac_instance(24), slac_sparse(24)),
    ):
        assert instance_digest(prefix_2d(dense_A)) == instance_digest(
            prefix_2d(sparse_sub)
        )


def test_hist2d_triplets_matches_histogram2d(rng):
    x = rng.uniform(-3.0, 11.0, size=400)
    y = rng.uniform(-2.0, 8.0, size=400)
    vrange = ((-1.0, 9.5), (0.0, 7.0))
    # include points exactly on the rightmost edge (histogramdd folds them in)
    x[:5] = vrange[0][1]
    y[:5] = vrange[1][1]
    for bins in (13, (9, 16)):
        H, _, _ = np.histogram2d(x, y, bins=bins, range=vrange)
        rows, cols, counts = hist2d_triplets(x, y, bins, vrange)
        shape = (bins, bins) if isinstance(bins, int) else bins
        R = np.zeros(shape, dtype=np.int64)
        R[rows, cols] = counts
        np.testing.assert_array_equal(R, H.astype(np.int64))


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------
def test_shm_roundtrip_sparse(rng):
    sparse = SparsePrefix2D(_random_sparse(rng))
    try:
        handle = export_prefix(sparse)
        assert len(handle.names) == 3 and handle.nnz == sparse.nnz
        assert export_prefix(sparse) is handle  # cached re-export
        attached = attach_prefix(handle)
        assert isinstance(attached, SparsePrefix2D)
        np.testing.assert_array_equal(attached.cells_dense(), sparse.cells_dense())
        assert attached.load(2, 9, 1, 8) == sparse.load(2, 9, 1, 8)
    finally:
        release_all()
    assert live_segments() == []


def test_shm_roundtrip_empty_sparse():
    sparse = SparsePrefix2D(np.zeros((4, 6), dtype=np.int64))
    try:
        handle = export_prefix(sparse)
        attached = attach_prefix(handle)
        assert attached.total == 0 and attached.shape == (4, 6)
    finally:
        release_all()


# ----------------------------------------------------------------------
# memory gauge and nbytes
# ----------------------------------------------------------------------
def test_nbytes_sparse_far_below_dense(rng):
    A = _random_sparse(rng, 256, 256, density=0.02)
    dense, sparse = _pair(A)
    assert dense.nbytes >= 8 * 257 * 257
    assert sparse.nbytes < dense.nbytes / 10


def test_substrate_bytes_gauge_in_op_counts(rng):
    A = _random_sparse(rng)
    for pref in _pair(A):
        part = partition_2d(pref, 4, "JAG-M-HEUR")
        assert "op_counts" not in part.meta  # no open context: zero overhead
        with op_counters():
            part = partition_2d(pref, 4, "JAG-M-HEUR")
        assert part.meta["op_counts"]["substrate_bytes"] == pref.nbytes


def test_gauge_keeps_max_not_sum(rng):
    pref = PrefixSum2D(_random_sparse(rng))
    with op_counters() as ops:
        prefix_2d(pref)
        prefix_2d(pref)  # re-touching must not double the gauge
    assert ops["substrate_bytes"] == pref.nbytes


# ----------------------------------------------------------------------
# input validation (satellite: non-finite gets its own message)
# ----------------------------------------------------------------------
def test_as_load_matrix_rejects_nonfinite_with_dedicated_message():
    A = np.ones((3, 3))
    for bad in (np.nan, np.inf, -np.inf):
        B = A.copy()
        B[1, 1] = bad
        with pytest.raises(ParameterError, match="must be finite"):
            as_load_matrix(B)
    # non-integral floats keep the old message
    with pytest.raises(ParameterError, match="integer"):
        as_load_matrix(A * 1.5)
