"""Tests for the Probe subroutine (plain, sliced, counting variants)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oned.probe import as_boundary_list, min_parts, probe, probe_cuts, probe_sliced

from .conftest import load_arrays, prefix_of


def brute_feasible(vals, m, B):
    """Reference decision via exhaustive interval enumeration."""
    n = len(vals)
    if n == 0:
        return True
    best = None
    for k in range(min(m, n) - 1, min(m, n)):
        for cuts in itertools.combinations(range(1, n), k):
            cc = [0, *cuts, n]
            v = max(vals[a:b].sum() for a, b in zip(cc, cc[1:]))
            best = v if best is None else min(best, v)
    return best is not None and best <= B


class TestProbe:
    def test_simple(self):
        P = prefix_of([3, 1, 4, 1, 5])
        assert probe(P, 3, 5)
        assert not probe(P, 3, 4)
        assert probe(P, 5, 5)
        assert not probe(P, 1, 13)
        assert probe(P, 1, 14)

    def test_single_large_cell(self):
        P = prefix_of([10])
        assert not probe(P, 3, 9)
        assert probe(P, 1, 10)

    def test_negative_bottleneck(self):
        P = prefix_of([1])
        assert not probe(P, 2, -1)
        assert probe_cuts(P, 2, -1) is None
        assert not probe_sliced(P, 2, -1)

    def test_subrange(self):
        P = prefix_of([5, 1, 1, 5])
        assert probe(P, 2, 2, lo=1, hi=3)
        assert not probe(P, 1, 1, lo=1, hi=3)

    def test_accepts_lists(self):
        P = as_boundary_list(prefix_of([1, 2, 3]))
        assert isinstance(P, list)
        assert probe(P, 2, 3)

    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=10).map(
            lambda v: np.array(v, dtype=np.int64)
        ),
        st.integers(1, 5),
        st.integers(0, 40),
    )
    @settings(max_examples=60)
    def test_matches_bruteforce(self, vals, m, B):
        P = prefix_of(vals)
        assert probe(P, m, B) == brute_feasible(vals, m, B)

    @given(load_arrays, st.integers(1, 6), st.integers(0, 40))
    @settings(max_examples=60)
    def test_sliced_matches_plain(self, vals, m, B):
        P = prefix_of(vals)
        assert probe_sliced(P, m, B) == probe(P, m, B)


class TestProbeCuts:
    @given(load_arrays, st.integers(1, 6), st.integers(0, 60))
    @settings(max_examples=60)
    def test_cuts_realize_bottleneck(self, vals, m, B):
        P = prefix_of(vals)
        cuts = probe_cuts(P, m, B)
        if probe(P, m, B):
            assert cuts is not None
            assert cuts[0] == 0 and cuts[-1] == len(vals)
            assert (np.diff(cuts) >= 0).all()
            loads = P[cuts[1:]] - P[cuts[:-1]]
            assert loads.max(initial=0) <= B
        else:
            assert cuts is None


class TestMinParts:
    def test_counts(self):
        P = prefix_of([2, 2, 2, 2])
        assert min_parts(P, 8) == 1
        assert min_parts(P, 4) == 2
        assert min_parts(P, 2) == 4

    def test_cap_aborts(self):
        P = prefix_of([2] * 10)
        assert min_parts(P, 2, cap=3) == 4  # cap + 1

    def test_infeasible_with_cap(self):
        P = prefix_of([5])
        assert min_parts(P, 4, cap=7) == 8

    def test_infeasible_without_cap_raises(self):
        P = prefix_of([5])
        with pytest.raises(ValueError):
            min_parts(P, 4)

    def test_zero_bottleneck_on_zeros(self):
        P = prefix_of([0, 0, 0])
        assert min_parts(P, 0) == 1

    @given(load_arrays, st.integers(1, 50))
    @settings(max_examples=50)
    def test_consistent_with_probe(self, vals, B):
        P = prefix_of(vals)
        if vals.max(initial=0) > B:
            # infeasible at any count: cap form returns cap + 1
            assert min_parts(P, B, cap=len(vals)) == len(vals) + 1
            return
        k = min_parts(P, B)
        assert probe(P, k, B)
        if k > 1:
            assert not probe(P, k - 1, B)
