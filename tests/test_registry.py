"""Tests for the algorithm registry and the partition_2d entry point."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALGORITHMS, algorithm_names, lower_bound, partition_2d
from repro.core.errors import ParameterError

from .conftest import load_matrices

FAST_NAMES = [
    "RECT-UNIFORM",
    "RECT-NICOL",
    "JAG-PQ-HEUR",
    "JAG-M-HEUR",
    "HIER-RB",
    "HIER-RELAXED",
]


class TestRegistry:
    def test_paper_names_present(self):
        for name in FAST_NAMES + ["JAG-PQ-OPT", "JAG-M-OPT", "HIER-OPT"]:
            assert name in ALGORITHMS

    def test_variant_names_present(self):
        assert "JAG-M-HEUR-BEST" in ALGORITHMS
        assert "JAG-PQ-OPT-VER" in ALGORITHMS
        assert "HIER-RB-DIST" in ALGORITHMS
        assert "HIER-RELAXED-LOAD" in ALGORITHMS

    def test_algorithm_names_listing(self):
        names = algorithm_names()
        assert "JAG-M-OPT" in names and "HIER-OPT" in names
        fast = algorithm_names(heuristics_only=True)
        assert "JAG-M-OPT" not in fast and set(FAST_NAMES) == set(fast)

    def test_unknown_raises(self, rng):
        with pytest.raises(ParameterError):
            partition_2d(rng.integers(1, 5, (4, 4)), 2, "MAGIC")

    def test_case_insensitive(self, rng):
        A = rng.integers(1, 5, (6, 6))
        p = partition_2d(A, 4, "jag-m-heur")
        assert p.m == 4

    def test_kwargs_forwarded(self, rng):
        A = rng.integers(1, 5, (12, 12))
        p = partition_2d(A, 6, "JAG-M-HEUR-HOR", num_stripes=2)
        assert len(p.meta["stripe_cuts"]) == 3

    def test_hier_variant_dispatch(self, rng):
        A = rng.integers(1, 5, (8, 8))
        p = partition_2d(A, 4, "HIER-RB-HOR")
        assert p.method == "HIER-RB-HOR"


class TestAllAlgorithmsContract:
    @given(A=load_matrices, m=st.integers(1, 8), name=st.sampled_from(FAST_NAMES))
    @settings(max_examples=60, deadline=None)
    def test_valid_and_bounded(self, A, m, name):
        """Every algorithm returns a valid m-partition respecting the LB."""
        p = partition_2d(A, m, name)
        assert p.m == m
        p.validate()
        assert p.max_load(A) >= lower_bound(A, m) - (1 if A.sum() == 0 else 0)

    @given(A=load_matrices, m=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_exact_algorithms_dominate(self, A, m):
        """Class inclusions: LB <= M-OPT <= PQ-OPT <= PQ-HEUR (same best orientation)."""
        lb = lower_bound(A, m)
        mo = partition_2d(A, m, "JAG-M-OPT").max_load(A)
        po = partition_2d(A, m, "JAG-PQ-OPT").max_load(A)
        ph = partition_2d(A, m, "JAG-PQ-HEUR").max_load(A)
        assert lb <= mo + (1 if A.sum() == 0 else 0)
        assert mo <= po <= ph
