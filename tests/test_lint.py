"""Tests for the repro-lint static-analysis subsystem (RPL001–RPL007).

Each rule is exercised both ways: a fixture snippet that must trigger it and
the idiomatic equivalent that must stay silent, plus the suppression syntax.
A final smoke test asserts the linter exits 0 on the repo's own source tree
— the property CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.partition import Partition
from repro.lint import check_budgets, check_registry, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import LintResult, Violation
from repro.lint.reporters import json_report, text_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path: Path, package: str, source: str) -> LintResult:
    """Write ``source`` under a directory named ``package`` and lint it."""
    pkg = tmp_path / package
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "snippet.py").write_text(source, encoding="utf-8")
    return lint_paths([pkg])


def codes(result: LintResult) -> list[str]:
    return [v.rule for v in result.violations]


class TestRPL001PrefixSum:
    def test_slice_sum_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "total = A[r0:r1, c0:c1].sum()\n")
        assert codes(res) == ["RPL001"]

    def test_np_sum_over_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "import numpy as np\nt = np.sum(P[lo:hi])\n")
        assert codes(res) == ["RPL001"]

    def test_accumulation_loop_triggers(self, tmp_path):
        src = "total = 0\nfor i in range(r0, r1):\n    total += A[i]\n"
        res = lint_snippet(tmp_path, "spiral", src)
        assert codes(res) == ["RPL001"]

    def test_prefix_query_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "total = pref.load(r0, r1, c0, c1)\n")
        assert codes(res) == []

    def test_name_receiver_sum_is_silent(self, tmp_path):
        # summing a small derived vector (stripe loads) is not a slice re-scan
        res = lint_snippet(tmp_path, "jagged", "total = int(loads.sum())\n")
        assert codes(res) == []

    def test_outside_hot_packages_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "experiments", "total = A[r0:r1].sum()\n")
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "total = A[r0:r1].sum()  # repro-lint: disable=RPL001\n"
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL001"]


class TestRPL002HalfOpen:
    def test_plus_one_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "window = P[lo : hi + 1]\n")
        assert codes(res) == ["RPL002"]

    def test_minus_one_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "core", "window = P[lo - 1 : hi]\n")
        assert codes(res) == ["RPL002"]

    def test_inclusive_range_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "rectilinear", "xs = list(range(lo, hi + 1))\n")
        assert codes(res) == ["RPL002"]

    def test_inclusive_compare_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "hierarchical", "ok = x <= hi\n")
        assert codes(res) == ["RPL002"]

    def test_half_open_idioms_are_silent(self, tmp_path):
        src = "window = P[lo:hi]\nxs = list(range(lo, hi))\nok = lo <= x < hi\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "window = P[lo : hi + 1]  # prefix window # repro-lint: disable=RPL002\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL002"]


class TestRPL003IntegerLoad:
    def test_float_cast_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        assert codes(res) == ["RPL003"]

    def test_true_division_on_load_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "ratio = loads / q\n")
        assert codes(res) == ["RPL003"]

    def test_float_dtype_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "volume", "import numpy as np\nx = np.float64(3)\n")
        assert codes(res) == ["RPL003"]

    def test_exact_idioms_are_silent(self, tmp_path):
        src = (
            "from fractions import Fraction\n"
            "q = -((-loads) // total)\n"
            "r = Fraction(int(total), 3)\n"
            "inf = float('inf')\n"
            "mid = (lo + hi) // 2\n"
        )
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == []

    def test_file_level_suppression(self, tmp_path):
        src = (
            "# repro-lint: disable-file=RPL003 — speeds are fractional by design\n"
            "t = total / speeds\n"
            "b = float(total)\n"
        )
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert len(res.suppressed) == 2

    def test_line_suppression(self, tmp_path):
        src = "avg = total / m  # repro-lint: disable=RPL003\n"
        res = lint_snippet(tmp_path, "volume", src)
        assert codes(res) == []


class TestRPL005NoInputMutation:
    def test_subscript_write_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A[0, 0] = 5\n    return m\n"
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == ["RPL005"]

    def test_augassign_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A += 1\n    return m\n"
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == ["RPL005"]

    def test_mutator_method_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A.sort()\n    return m\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL005"]

    def test_out_keyword_triggers(self, tmp_path):
        src = "import numpy as np\ndef algo(A, m):\n    np.clip(A, 0, 9, out=A)\n    return m\n"
        res = lint_snippet(tmp_path, "volume", src)
        assert codes(res) == ["RPL005"]

    def test_copy_then_modify_is_silent(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def algo(A, m):\n"
            "    B = A.copy()\n"
            "    B[0, 0] = 5\n"
            "    A = np.asarray(A)\n"  # rebinding the local name is fine
            "    return B\n"
        )
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == []

    def test_functions_without_A_are_silent(self, tmp_path):
        src = "def helper(B, m):\n    B[0] = 1\n    return m\n"
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "def algo(A, m):\n    A[0] = 1  # repro-lint: disable=RPL005\n    return m\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []


class TestRPL004Registry:
    DOCS = "RECT-GOOD is documented here."

    @staticmethod
    def _good(A, m) -> Partition:
        """Implements §3.1 of the paper."""
        raise NotImplementedError

    def test_compliant_registry_is_silent(self):
        assert check_registry({"RECT-GOOD": self._good}, self.DOCS) == []

    def test_variant_suffix_resolves_to_base_doc_entry(self):
        assert check_registry({"RECT-GOOD-HOR": self._good}, self.DOCS) == []

    def test_non_callable_triggers(self):
        out = check_registry({"RECT-GOOD": 42}, self.DOCS)
        assert [v.rule for v in out] == ["RPL004"]

    def test_missing_citation_triggers(self):
        def algo(A, m) -> Partition:
            """No citation at all."""

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("cites no paper section" in v.message for v in out)

    def test_missing_docstring_triggers(self):
        def algo(A, m) -> Partition:
            pass

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("no docstring" in v.message for v in out)

    def test_wrong_return_annotation_triggers(self):
        def algo(A, m) -> int:
            """Implements §3.1."""
            return 0

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("Partition return" in v.message for v in out)

    def test_missing_docs_entry_triggers(self):
        out = check_registry({"RECT-UNLISTED": self._good}, self.DOCS)
        assert any("missing from docs" in v.message for v in out)

    def test_unwraps_registry_wrappers(self):
        def impl(A, m) -> Partition:
            """Implements §3.2."""
            raise NotImplementedError

        def wrapper(A, m, **kw):
            return impl(A, m, **kw)

        wrapper.__wrapped__ = impl
        assert check_registry({"RECT-GOOD": wrapper}, self.DOCS) == []


class TestRPL006Budgets:
    """RPL006: the paper's complexity budgets hold as measured op counts."""

    def test_own_tree_is_within_budget(self):
        # the CI property: re-measuring the paper bounds on seeded instances
        # finds no overshoot in the current implementation
        assert check_budgets() == []

    def test_violations_anchor_on_given_path(self, monkeypatch):
        # force an overshoot by shrinking a budget constant is not possible
        # from outside, so instead check the anchoring contract on the
        # factored function: every violation it emits carries the probe path
        out = check_budgets("some/rel/probe.py", line=7)
        for v in out:  # pragma: no cover - only on budget regressions
            assert v.path == "some/rel/probe.py" and v.line == 7
            assert v.rule == "RPL006"

    def test_rule_skips_without_probe_module(self, tmp_path):
        # linting an arbitrary tree (no repro/oned/probe.py) must not run
        # the measurement pass at all
        from repro.lint.rules import ComplexityBudgetRule

        res = lint_snippet(tmp_path, "oned", "x = 1\n")
        assert codes(res) == []
        assert list(ComplexityBudgetRule().check_project([])) == []

    def test_rule_fires_on_probe_module(self):
        from repro.lint.engine import FileContext
        from repro.lint.rules import ComplexityBudgetRule

        probe = REPO_ROOT / "src" / "repro" / "oned" / "probe.py"
        ctx = FileContext(
            probe,
            probe.relative_to(REPO_ROOT).as_posix(),
            probe.read_text(encoding="utf-8"),
        )
        assert list(ComplexityBudgetRule().check_project([ctx])) == []


class TestRPL007Coverage:
    """RPL007: every ALGORITHMS entry reached by some experiments module."""

    REGISTRY_STUB = '"""Stub registry."""\n\nALGORITHMS = {}\n'

    def _lint_tree(self, tmp_path: Path, experiments_src: str | None) -> list:
        """Lint a tmp tree shaped like the repo (registry + experiments)."""
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "registry.py").write_text(self.REGISTRY_STUB, encoding="utf-8")
        if experiments_src is not None:
            exp = tmp_path / "repro" / "experiments"
            exp.mkdir()
            (exp / "figs.py").write_text(experiments_src, encoding="utf-8")
        res = lint_paths([tmp_path / "repro"])
        return [v for v in res.violations if v.rule == "RPL007"]

    @staticmethod
    def _names_tuple(names) -> str:
        body = "\n".join(f"    {n!r}," for n in sorted(names))
        return f"COVERED = (\n{body}\n)\n"

    def test_full_string_coverage_is_silent(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        out = self._lint_tree(tmp_path, self._names_tuple(ALGORITHMS))
        assert out == []

    def test_uncovered_entry_is_flagged(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "HIER-OPT"]
        out = self._lint_tree(tmp_path, self._names_tuple(covered))
        assert len(out) == 1
        assert "'HIER-OPT'" in out[0].message
        assert out[0].line == 3  # anchored at the ALGORITHMS assignment

    def test_empty_experiments_flags_every_entry(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        out = self._lint_tree(tmp_path, "x = 1\n")
        assert len(out) == len(ALGORITHMS)

    def test_fstring_prefix_covers_variants(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if not n.startswith("HIER-RB-")]
        src = self._names_tuple(covered) + 'name = f"HIER-RB-{variant}"\n'
        assert self._lint_tree(tmp_path, src) == []

    def test_implementation_reference_covers_entry(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "JAG-PQ-HEUR"]
        src = self._names_tuple(covered) + "part = jag_pq_heur(pref, m)\n"
        assert self._lint_tree(tmp_path, src) == []

    def test_docstring_mention_does_not_count(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "HIER-OPT"]
        src = '"""Covers \'HIER-OPT\' only in prose."""\n' + self._names_tuple(covered)
        out = self._lint_tree(tmp_path, src)
        assert len(out) == 1
        assert "'HIER-OPT'" in out[0].message

    def test_without_experiments_package_is_silent(self, tmp_path):
        assert self._lint_tree(tmp_path, None) == []

    def test_repo_tree_is_clean(self):
        res = lint_paths([REPO_ROOT / "src" / "repro"])
        assert [v for v in res.violations if v.rule == "RPL007"] == []


class TestRPL008Claims:
    """RPL008: docstring complexity claims must appear in docs/algorithms.md."""

    DOCS = "RECT-GOOD runs in O(m log n) time; refinement costs O(n·m)."

    def test_matching_claim_is_silent(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(m log n)."""

        assert check_claims({"RECT-GOOD": algo}, self.DOCS) == []

    def test_undocumented_claim_is_flagged(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(m^3 log n)."""

        out = check_claims({"RECT-GOOD": algo}, self.DOCS)
        assert [v.rule for v in out] == ["RPL008"]
        assert "O(m^3 log n)" in out[0].message

    def test_normalization_bridges_typography(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Refinement step: `O(N * M)` per pass."""

        # docs say O(n·m): case, backticks, spacing and the multiplication
        # sign are cosmetic — the claims must unify
        assert check_claims({"RECT-GOOD": algo}, self.DOCS) == []

    def test_normalization_superscripts(self):
        from repro.lint.rules import _normalize_claim

        assert _normalize_claim("O(m²)") == _normalize_claim("O(m^2)")
        assert _normalize_claim("O(n³ m)") == _normalize_claim("O(n^3m)")
        assert _normalize_claim("O(n·m)") == _normalize_claim("O(nm)")
        assert _normalize_claim("O(n)") != _normalize_claim("O(m)")

    def test_claim_regex_handles_nested_parens(self):
        from repro.lint.rules import _CLAIM_RE

        text = "runs in O(m² log max(n1, n2)) overall"
        assert _CLAIM_RE.findall(text) == ["O(m² log max(n1, n2))"]

    def test_non_callable_entries_are_skipped(self):
        from repro.lint.rules import check_claims

        assert check_claims({"RECT-GOOD": 42}, self.DOCS) == []

    def test_violation_anchored_on_given_path(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(2^n)."""

        out = check_claims({"RECT-GOOD": algo}, self.DOCS, "a/b.py", 9)
        assert out[0].path == "a/b.py" and out[0].line == 9

    def test_module_docstring_claims_are_checked(self):
        import sys
        import types

        from repro.lint.rules import check_claims

        mod = types.ModuleType("_rpl008_fake_mod")
        mod.__doc__ = "Everything here is O(n!)."
        sys.modules["_rpl008_fake_mod"] = mod
        try:

            def algo(A, m) -> Partition:
                """Implements §3.1."""

            algo.__module__ = "_rpl008_fake_mod"
            out = check_claims({"RECT-GOOD": algo}, self.DOCS)
            assert len(out) == 1 and "O(n!)" in out[0].message
        finally:
            del sys.modules["_rpl008_fake_mod"]

    def test_repo_tree_is_clean(self):
        res = lint_paths([REPO_ROOT / "src" / "repro"])
        assert [v for v in res.violations if v.rule == "RPL008"] == []


class TestEngineAndCli:
    def test_disable_all(self, tmp_path):
        src = "b = float(total); w = P[lo : hi + 1]  # repro-lint: disable=all\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert len(res.suppressed) == 2

    def test_violations_sorted_and_rendered(self, tmp_path):
        src = "b = float(total)\nw = P[lo : hi + 1]\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL002", "RPL003"] or codes(res) == ["RPL003", "RPL002"]
        lines = [v.render() for v in res.violations]
        assert all("snippet.py" in line for line in lines)
        assert [v.line for v in res.violations] == sorted(v.line for v in res.violations)

    def test_syntax_error_reported_as_error(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "def broken(:\n")
        assert res.exit_code == 2
        assert res.errors

    def test_select_and_ignore(self, tmp_path):
        pkg = tmp_path / "oned"
        pkg.mkdir()
        (pkg / "s.py").write_text("b = float(total)\nw = P[lo : hi + 1]\n")
        only3 = lint_paths([pkg], select={"RPL003"})
        assert codes(only3) == ["RPL003"]
        not3 = lint_paths([pkg], ignore={"RPL003"})
        assert codes(not3) == ["RPL002"]

    def test_json_report_shape(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        payload = json.loads(json_report(res))
        assert payload["exit_code"] == 1
        assert payload["violations"][0]["rule"] == "RPL003"
        assert {"path", "line", "col", "message"} <= set(payload["violations"][0])

    def test_text_report_summary(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        out = text_report(res)
        assert "1 violation in 1 file (0 suppressed)" in out

    def test_cli_exit_codes(self, tmp_path, capsys):
        pkg = tmp_path / "jagged"
        pkg.mkdir()
        bad = pkg / "bad.py"
        bad.write_text("t = A[r0:r1].sum()\n")
        assert lint_main([str(bad)]) == 1
        bad.write_text("t = pref.load(r0, r1)\n")
        assert lint_main([str(bad)]) == 0
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_cli_unknown_code_rejected(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["--select", "RPL999", "."])
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006", "RPL007"):
            assert code in out


class TestRepoIsClean:
    def test_repro_lint_passes_on_own_tree(self, capsys):
        """The CI gate: repro-lint src/repro must exit 0 on the repo itself."""
        src = REPO_ROOT / "src" / "repro"
        assert src.is_dir()
        assert lint_main([str(src)]) == 0
        out = capsys.readouterr().out
        assert out.strip().endswith("suppressed)")

    def test_real_registry_is_consistent(self):
        from repro.core.registry import ALGORITHMS

        docs = (REPO_ROOT / "docs" / "algorithms.md").read_text(encoding="utf-8")
        assert check_registry(ALGORITHMS, docs) == []

    def test_violation_ordering(self):
        a = Violation("a.py", 1, 1, "RPL001", "x")
        b = Violation("a.py", 2, 1, "RPL001", "x")
        assert a < b
