"""Tests for the repro-lint static-analysis subsystem (RPL001–RPL012, RPL100).

Each rule is exercised both ways: a fixture snippet that must trigger it and
the idiomatic equivalent that must stay silent, plus the suppression syntax.
The dataflow rules (RPL009–RPL012) additionally run on synthetic project
trees, and a doctored-tree test pins the acceptance property that deleting
an equality test breaks the lint gate.  A final smoke test asserts the
linter exits 0 on the repo's own source tree — the property CI enforces.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.core.partition import Partition
from repro.lint import check_budgets, check_registry, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import FileContext, LintResult, Violation
from repro.lint.flowrules import (
    ConfigRegistryRule,
    check_dispatch_twins,
    check_env_reads,
)
from repro.lint.reporters import json_report, sarif_report, text_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_snippet(tmp_path: Path, package: str, source: str) -> LintResult:
    """Write ``source`` under a directory named ``package`` and lint it."""
    pkg = tmp_path / package
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "snippet.py").write_text(source, encoding="utf-8")
    return lint_paths([pkg])


def codes(result: LintResult) -> list[str]:
    return [v.rule for v in result.violations]


def make_ctx(rel: str, source: str) -> FileContext:
    """A parsed FileContext for a file that need not exist on disk."""
    return FileContext(Path(rel), rel, source)


class TestRPL001PrefixSum:
    def test_slice_sum_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "total = A[r0:r1, c0:c1].sum()\n")
        assert codes(res) == ["RPL001"]

    def test_np_sum_over_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "import numpy as np\nt = np.sum(P[lo:hi])\n")
        assert codes(res) == ["RPL001"]

    def test_accumulation_loop_triggers(self, tmp_path):
        src = "total = 0\nfor i in range(r0, r1):\n    total += A[i]\n"
        res = lint_snippet(tmp_path, "spiral", src)
        assert codes(res) == ["RPL001"]

    def test_prefix_query_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "total = pref.load(r0, r1, c0, c1)\n")
        assert codes(res) == []

    def test_name_receiver_sum_is_silent(self, tmp_path):
        # summing a small derived vector (stripe loads) is not a slice re-scan
        res = lint_snippet(tmp_path, "jagged", "total = int(loads.sum())\n")
        assert codes(res) == []

    def test_outside_hot_packages_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "experiments", "total = A[r0:r1].sum()\n")
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "total = A[r0:r1].sum()  # repro-lint: disable=RPL001\n"
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL001"]


class TestRPL002HalfOpen:
    def test_plus_one_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "window = P[lo : hi + 1]\n")
        assert codes(res) == ["RPL002"]

    def test_minus_one_slice_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "core", "window = P[lo - 1 : hi]\n")
        assert codes(res) == ["RPL002"]

    def test_inclusive_range_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "rectilinear", "xs = list(range(lo, hi + 1))\n")
        assert codes(res) == ["RPL002"]

    def test_inclusive_compare_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "hierarchical", "ok = x <= hi\n")
        assert codes(res) == ["RPL002"]

    def test_half_open_idioms_are_silent(self, tmp_path):
        src = "window = P[lo:hi]\nxs = list(range(lo, hi))\nok = lo <= x < hi\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "window = P[lo : hi + 1]  # prefix window # repro-lint: disable=RPL002\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL002"]


class TestRPL003IntegerLoad:
    def test_float_cast_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        assert codes(res) == ["RPL003"]

    def test_true_division_on_load_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "jagged", "ratio = loads / q\n")
        assert codes(res) == ["RPL003"]

    def test_float_dtype_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "volume", "import numpy as np\nx = np.float64(3)\n")
        assert codes(res) == ["RPL003"]

    def test_exact_idioms_are_silent(self, tmp_path):
        src = (
            "from fractions import Fraction\n"
            "q = -((-loads) // total)\n"
            "r = Fraction(int(total), 3)\n"
            "inf = float('inf')\n"
            "mid = (lo + hi) // 2\n"
        )
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == []

    def test_file_level_suppression(self, tmp_path):
        src = (
            "# repro-lint: disable-file=RPL003 — speeds are fractional by design\n"
            "t = total / speeds\n"
            "b = float(total)\n"
        )
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert len(res.suppressed) == 2

    def test_line_suppression(self, tmp_path):
        src = "avg = total / m  # repro-lint: disable=RPL003\n"
        res = lint_snippet(tmp_path, "volume", src)
        assert codes(res) == []


class TestRPL005NoInputMutation:
    def test_subscript_write_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A[0, 0] = 5\n    return m\n"
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == ["RPL005"]

    def test_augassign_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A += 1\n    return m\n"
        res = lint_snippet(tmp_path, "jagged", src)
        assert codes(res) == ["RPL005"]

    def test_mutator_method_triggers(self, tmp_path):
        src = "def algo(A, m):\n    A.sort()\n    return m\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL005"]

    def test_out_keyword_triggers(self, tmp_path):
        src = "import numpy as np\ndef algo(A, m):\n    np.clip(A, 0, 9, out=A)\n    return m\n"
        res = lint_snippet(tmp_path, "volume", src)
        assert codes(res) == ["RPL005"]

    def test_copy_then_modify_is_silent(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def algo(A, m):\n"
            "    B = A.copy()\n"
            "    B[0, 0] = 5\n"
            "    A = np.asarray(A)\n"  # rebinding the local name is fine
            "    return B\n"
        )
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == []

    def test_functions_without_A_are_silent(self, tmp_path):
        src = "def helper(B, m):\n    B[0] = 1\n    return m\n"
        res = lint_snippet(tmp_path, "core", src)
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "def algo(A, m):\n    A[0] = 1  # repro-lint: disable=RPL005\n    return m\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []


class TestRPL004Registry:
    DOCS = "RECT-GOOD is documented here."

    @staticmethod
    def _good(A, m) -> Partition:
        """Implements §3.1 of the paper."""
        raise NotImplementedError

    def test_compliant_registry_is_silent(self):
        assert check_registry({"RECT-GOOD": self._good}, self.DOCS) == []

    def test_variant_suffix_resolves_to_base_doc_entry(self):
        assert check_registry({"RECT-GOOD-HOR": self._good}, self.DOCS) == []

    def test_non_callable_triggers(self):
        out = check_registry({"RECT-GOOD": 42}, self.DOCS)
        assert [v.rule for v in out] == ["RPL004"]

    def test_missing_citation_triggers(self):
        def algo(A, m) -> Partition:
            """No citation at all."""

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("cites no paper section" in v.message for v in out)

    def test_missing_docstring_triggers(self):
        def algo(A, m) -> Partition:
            pass

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("no docstring" in v.message for v in out)

    def test_wrong_return_annotation_triggers(self):
        def algo(A, m) -> int:
            """Implements §3.1."""
            return 0

        out = check_registry({"RECT-GOOD": algo}, self.DOCS)
        assert any("Partition return" in v.message for v in out)

    def test_missing_docs_entry_triggers(self):
        out = check_registry({"RECT-UNLISTED": self._good}, self.DOCS)
        assert any("missing from docs" in v.message for v in out)

    def test_unwraps_registry_wrappers(self):
        def impl(A, m) -> Partition:
            """Implements §3.2."""
            raise NotImplementedError

        def wrapper(A, m, **kw):
            return impl(A, m, **kw)

        wrapper.__wrapped__ = impl
        assert check_registry({"RECT-GOOD": wrapper}, self.DOCS) == []


class TestRPL006Budgets:
    """RPL006: the paper's complexity budgets hold as measured op counts."""

    def test_own_tree_is_within_budget(self):
        # the CI property: re-measuring the paper bounds on seeded instances
        # finds no overshoot in the current implementation
        assert check_budgets() == []

    def test_violations_anchor_on_given_path(self, monkeypatch):
        # force an overshoot by shrinking a budget constant is not possible
        # from outside, so instead check the anchoring contract on the
        # factored function: every violation it emits carries the probe path
        out = check_budgets("some/rel/probe.py", line=7)
        for v in out:  # pragma: no cover - only on budget regressions
            assert v.path == "some/rel/probe.py" and v.line == 7
            assert v.rule == "RPL006"

    def test_rule_skips_without_probe_module(self, tmp_path):
        # linting an arbitrary tree (no repro/oned/probe.py) must not run
        # the measurement pass at all
        from repro.lint.rules import ComplexityBudgetRule

        res = lint_snippet(tmp_path, "oned", "x = 1\n")
        assert codes(res) == []
        assert list(ComplexityBudgetRule().check_project([])) == []

    def test_rule_fires_on_probe_module(self):
        from repro.lint.engine import FileContext
        from repro.lint.rules import ComplexityBudgetRule

        probe = REPO_ROOT / "src" / "repro" / "oned" / "probe.py"
        ctx = FileContext(
            probe,
            probe.relative_to(REPO_ROOT).as_posix(),
            probe.read_text(encoding="utf-8"),
        )
        assert list(ComplexityBudgetRule().check_project([ctx])) == []


class TestRPL007Coverage:
    """RPL007: every ALGORITHMS entry reached by some experiments module."""

    REGISTRY_STUB = '"""Stub registry."""\n\nALGORITHMS = {}\n'

    def _lint_tree(self, tmp_path: Path, experiments_src: str | None) -> list:
        """Lint a tmp tree shaped like the repo (registry + experiments)."""
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "registry.py").write_text(self.REGISTRY_STUB, encoding="utf-8")
        if experiments_src is not None:
            exp = tmp_path / "repro" / "experiments"
            exp.mkdir()
            (exp / "figs.py").write_text(experiments_src, encoding="utf-8")
        res = lint_paths([tmp_path / "repro"])
        return [v for v in res.violations if v.rule == "RPL007"]

    @staticmethod
    def _names_tuple(names) -> str:
        body = "\n".join(f"    {n!r}," for n in sorted(names))
        return f"COVERED = (\n{body}\n)\n"

    def test_full_string_coverage_is_silent(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        out = self._lint_tree(tmp_path, self._names_tuple(ALGORITHMS))
        assert out == []

    def test_uncovered_entry_is_flagged(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "HIER-OPT"]
        out = self._lint_tree(tmp_path, self._names_tuple(covered))
        assert len(out) == 1
        assert "'HIER-OPT'" in out[0].message
        assert out[0].line == 3  # anchored at the ALGORITHMS assignment

    def test_empty_experiments_flags_every_entry(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        out = self._lint_tree(tmp_path, "x = 1\n")
        assert len(out) == len(ALGORITHMS)

    def test_fstring_prefix_covers_variants(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if not n.startswith("HIER-RB-")]
        src = self._names_tuple(covered) + 'name = f"HIER-RB-{variant}"\n'
        assert self._lint_tree(tmp_path, src) == []

    def test_implementation_reference_covers_entry(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "JAG-PQ-HEUR"]
        src = self._names_tuple(covered) + "part = jag_pq_heur(pref, m)\n"
        assert self._lint_tree(tmp_path, src) == []

    def test_docstring_mention_does_not_count(self, tmp_path):
        from repro.core.registry import ALGORITHMS

        covered = [n for n in ALGORITHMS if n != "HIER-OPT"]
        src = '"""Covers \'HIER-OPT\' only in prose."""\n' + self._names_tuple(covered)
        out = self._lint_tree(tmp_path, src)
        assert len(out) == 1
        assert "'HIER-OPT'" in out[0].message

    def test_without_experiments_package_is_silent(self, tmp_path):
        assert self._lint_tree(tmp_path, None) == []

    def test_repo_tree_is_clean(self):
        res = lint_paths([REPO_ROOT / "src" / "repro"])
        assert [v for v in res.violations if v.rule == "RPL007"] == []


class TestRPL008Claims:
    """RPL008: docstring complexity claims must appear in docs/algorithms.md."""

    DOCS = "RECT-GOOD runs in O(m log n) time; refinement costs O(n·m)."

    def test_matching_claim_is_silent(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(m log n)."""

        assert check_claims({"RECT-GOOD": algo}, self.DOCS) == []

    def test_undocumented_claim_is_flagged(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(m^3 log n)."""

        out = check_claims({"RECT-GOOD": algo}, self.DOCS)
        assert [v.rule for v in out] == ["RPL008"]
        assert "O(m^3 log n)" in out[0].message

    def test_normalization_bridges_typography(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Refinement step: `O(N * M)` per pass."""

        # docs say O(n·m): case, backticks, spacing and the multiplication
        # sign are cosmetic — the claims must unify
        assert check_claims({"RECT-GOOD": algo}, self.DOCS) == []

    def test_normalization_superscripts(self):
        from repro.lint.rules import _normalize_claim

        assert _normalize_claim("O(m²)") == _normalize_claim("O(m^2)")
        assert _normalize_claim("O(n³ m)") == _normalize_claim("O(n^3m)")
        assert _normalize_claim("O(n·m)") == _normalize_claim("O(nm)")
        assert _normalize_claim("O(n)") != _normalize_claim("O(m)")

    def test_claim_regex_handles_nested_parens(self):
        from repro.lint.rules import _CLAIM_RE

        text = "runs in O(m² log max(n1, n2)) overall"
        assert _CLAIM_RE.findall(text) == ["O(m² log max(n1, n2))"]

    def test_non_callable_entries_are_skipped(self):
        from repro.lint.rules import check_claims

        assert check_claims({"RECT-GOOD": 42}, self.DOCS) == []

    def test_violation_anchored_on_given_path(self):
        from repro.lint.rules import check_claims

        def algo(A, m) -> Partition:
            """Implements §3.1 in O(2^n)."""

        out = check_claims({"RECT-GOOD": algo}, self.DOCS, "a/b.py", 9)
        assert out[0].path == "a/b.py" and out[0].line == 9

    def test_module_docstring_claims_are_checked(self):
        import sys
        import types

        from repro.lint.rules import check_claims

        mod = types.ModuleType("_rpl008_fake_mod")
        mod.__doc__ = "Everything here is O(n!)."
        sys.modules["_rpl008_fake_mod"] = mod
        try:

            def algo(A, m) -> Partition:
                """Implements §3.1."""

            algo.__module__ = "_rpl008_fake_mod"
            out = check_claims({"RECT-GOOD": algo}, self.DOCS)
            assert len(out) == 1 and "O(n!)" in out[0].message
        finally:
            del sys.modules["_rpl008_fake_mod"]

    def test_repo_tree_is_clean(self):
        res = lint_paths([REPO_ROOT / "src" / "repro"])
        assert [v for v in res.violations if v.rule == "RPL008"] == []


class TestEngineAndCli:
    def test_disable_all(self, tmp_path):
        src = "b = float(total); w = P[lo : hi + 1]  # repro-lint: disable=all\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert len(res.suppressed) == 2

    def test_violations_sorted_and_rendered(self, tmp_path):
        src = "b = float(total)\nw = P[lo : hi + 1]\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL002", "RPL003"] or codes(res) == ["RPL003", "RPL002"]
        lines = [v.render() for v in res.violations]
        assert all("snippet.py" in line for line in lines)
        assert [v.line for v in res.violations] == sorted(v.line for v in res.violations)

    def test_syntax_error_reported_as_error(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "def broken(:\n")
        assert res.exit_code == 2
        assert res.errors

    def test_select_and_ignore(self, tmp_path):
        pkg = tmp_path / "oned"
        pkg.mkdir()
        (pkg / "s.py").write_text("b = float(total)\nw = P[lo : hi + 1]\n")
        only3 = lint_paths([pkg], select={"RPL003"})
        assert codes(only3) == ["RPL003"]
        not3 = lint_paths([pkg], ignore={"RPL003"})
        assert codes(not3) == ["RPL002"]

    def test_json_report_shape(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        payload = json.loads(json_report(res))
        assert payload["exit_code"] == 1
        assert payload["violations"][0]["rule"] == "RPL003"
        assert {"path", "line", "col", "message"} <= set(payload["violations"][0])

    def test_text_report_summary(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        out = text_report(res)
        assert "1 violation in 1 file (0 suppressed)" in out

    def test_cli_exit_codes(self, tmp_path, capsys):
        pkg = tmp_path / "jagged"
        pkg.mkdir()
        bad = pkg / "bad.py"
        bad.write_text("t = A[r0:r1].sum()\n")
        assert lint_main([str(bad)]) == 1
        bad.write_text("t = pref.load(r0, r1)\n")
        assert lint_main([str(bad)]) == 0
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_cli_unknown_code_rejected(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["--select", "RPL999", "."])
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006", "RPL007"):
            assert code in out


class TestRepoIsClean:
    def test_repro_lint_passes_on_own_tree(self, capsys):
        """The CI gate: repro-lint src/repro must exit 0 on the repo itself."""
        src = REPO_ROOT / "src" / "repro"
        assert src.is_dir()
        assert lint_main([str(src)]) == 0
        out = capsys.readouterr().out
        assert out.strip().endswith("suppressed)")

    def test_real_registry_is_consistent(self):
        from repro.core.registry import ALGORITHMS

        docs = (REPO_ROOT / "docs" / "algorithms.md").read_text(encoding="utf-8")
        assert check_registry(ALGORITHMS, docs) == []

    def test_violation_ordering(self):
        a = Violation("a.py", 1, 1, "RPL001", "x")
        b = Violation("a.py", 2, 1, "RPL001", "x")
        assert a < b


class TestRPL009DispatchTwins:
    """RPL009: guarded fast paths have twins and equality-test coverage."""

    TEST_CTX = make_ctx(
        "tests/test_mod_equality.py",
        "from repro.oned.mod import solve\n\n"
        "def test_solve_equality():\n"
        "    assert solve(1) == solve(1)\n",
    )

    @staticmethod
    def _check(src: str, tests=None) -> list[Violation]:
        ctx = make_ctx("src/repro/oned/mod.py", src)
        return check_dispatch_twins(
            [ctx], [TestRPL009DispatchTwins.TEST_CTX] if tests is None else tests
        )

    def test_missing_twin_triggers(self):
        out = self._check(
            "def fast(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
        )
        assert [v.rule for v in out] == ["RPL009"]
        assert "no reference twin" in out[0].message

    def test_fall_through_reference_is_silent(self):
        out = self._check(
            "def fast(x):\n"
            "    return x\n\n"
            "def ref(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
            "    return ref(x)\n"
        )
        assert out == []

    def test_else_twin_is_silent(self):
        out = self._check(
            "def fast(x):\n"
            "    return x\n\n"
            "def ref(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
            "    else:\n"
            "        return ref(x)\n"
        )
        assert out == []

    def test_twin_arity_mismatch_triggers(self):
        out = self._check(
            "def fast(a, b):\n"
            "    return a\n\n"
            "def ref(a):\n"
            "    return a\n\n"
            "def solve(a, b):\n"
            "    if perf_enabled():\n"
            "        return fast(a, b)\n"
            "    else:\n"
            "        return ref(a)\n"
        )
        assert [v.rule for v in out] == ["RPL009"]
        assert "incompatible positional signatures" in out[0].message

    def test_unchecked_hook_triggers(self):
        out = self._check(
            "def solve(xs):\n"
            "    pool = get_pool()\n"
            "    pool.map(len, xs)\n"
            "    return xs\n"
        )
        assert [v.rule for v in out] == ["RPL009"]
        assert "never None-checks" in out[0].message

    def test_none_checked_hook_is_silent(self):
        out = self._check(
            "def ref(xs):\n"
            "    return list(xs)\n\n"
            "def solve(xs):\n"
            "    pool = get_pool()\n"
            "    if pool is None:\n"
            "        return ref(xs)\n"
            "    return list(pool.map(len, xs))\n"
        )
        assert out == []

    def test_unreachable_dispatch_triggers(self):
        out = self._check(
            "def fast(x):\n"
            "    return x\n\n"
            "def ref(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
            "    return ref(x)\n",
            tests=[],
        )
        assert [v.rule for v in out] == ["RPL009"]
        assert "not reachable" in out[0].message

    def test_registry_string_bridges_reachability(self):
        src = (
            "def fast(x):\n"
            "    return x\n\n"
            "def ref(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
            "    return ref(x)\n"
        )
        test = make_ctx(
            "tests/test_reg_equality.py",
            "def test_registry_equality():\n"
            "    run('FAST-ALG')\n",
        )
        ctx = make_ctx("src/repro/oned/mod.py", src)
        assert check_dispatch_twins(
            [ctx], [test], registry_names={"FAST-ALG": {"solve"}}
        ) == []
        # without the bridge the same tree is unreachable
        out = check_dispatch_twins([ctx], [test])
        assert [v.rule for v in out] == ["RPL009"]

    def test_module_level_dispatch_table_bridges_reachability(self):
        src = (
            "def fast(x):\n"
            "    return x\n\n"
            "def ref(x):\n"
            "    return x\n\n"
            "def solve(x):\n"
            "    if perf_enabled():\n"
            "        return fast(x)\n"
            "    return ref(x)\n"
        )
        test = make_ctx(
            "tests/test_table_equality.py",
            "from repro.oned.mod import solve\n\n"
            "CASES = {'solve': lambda x: solve(x)}\n\n"
            "def test_cases_equality():\n"
            "    for fn in CASES.values():\n"
            "        fn(1)\n",
        )
        assert check_dispatch_twins([make_ctx("src/repro/oned/mod.py", src)], [test]) == []


class TestRPL009DoctoredTree:
    """The acceptance pin: deleting an equality test breaks the lint gate."""

    def _doctored(self, tmp_path: Path, victim: str | None) -> LintResult:
        ignore = shutil.ignore_patterns("__pycache__")
        shutil.copytree(REPO_ROOT / "src" / "repro", tmp_path / "src" / "repro", ignore=ignore)
        shutil.copytree(REPO_ROOT / "tests", tmp_path / "tests", ignore=ignore)
        if victim is not None:
            (tmp_path / "tests" / victim).unlink()
        return lint_paths([tmp_path / "src" / "repro"], select={"RPL009"})

    def test_intact_tree_is_clean(self, tmp_path):
        res = self._doctored(tmp_path, None)
        assert codes(res) == []
        assert res.exit_code == 0

    @pytest.mark.parametrize(
        "victim", ["test_perf_equality.py", "test_parallel_equality.py"]
    )
    def test_deleting_equality_test_fails_lint(self, tmp_path, victim):
        res = self._doctored(tmp_path, victim)
        assert res.exit_code == 1
        assert {v.rule for v in res.violations} == {"RPL009"}
        assert any("not reachable" in v.message for v in res.violations)


class TestRPL010Determinism:
    def test_set_iteration_to_return_triggers(self, tmp_path):
        src = (
            "def f(xs):\n"
            "    out = []\n"
            "    for x in set(xs):\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        res = lint_snippet(tmp_path, "sweep", src)
        assert codes(res) == ["RPL010"]
        assert "iteration order of a set" in res.violations[0].message

    def test_sorted_iteration_is_silent(self, tmp_path):
        src = (
            "def f(xs):\n"
            "    out = []\n"
            "    for x in sorted(set(xs)):\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert codes(lint_snippet(tmp_path, "sweep", src)) == []

    def test_set_iteration_not_returned_is_silent(self, tmp_path):
        src = (
            "def f(xs):\n"
            "    n = 0\n"
            "    for x in set(xs):\n"
            "        n += 1\n"
            "    return n\n"
        )
        assert codes(lint_snippet(tmp_path, "sweep", src)) == []

    def test_id_escape_triggers(self, tmp_path):
        res = lint_snippet(tmp_path, "sweep", "def f(obj):\n    return id(obj)\n")
        assert codes(res) == ["RPL010"]
        assert "id()-derived" in res.violations[0].message

    def test_id_keyed_lookup_result_is_laundered(self, tmp_path):
        src = (
            "def f(obj, table):\n"
            "    entry = table.get(id(obj))\n"
            "    return entry\n"
        )
        assert codes(lint_snippet(tmp_path, "sweep", src)) == []

    def test_id_keyed_iteration_to_return_triggers(self, tmp_path):
        src = (
            "def f(obj, v):\n"
            "    table = {}\n"
            "    table[id(obj)] = v\n"
            "    out = []\n"
            "    for k, val in table.items():\n"
            "        out.append(val)\n"
            "    return out\n"
        )
        res = lint_snippet(tmp_path, "sweep", src)
        assert codes(res) == ["RPL010"]
        assert "identity-keyed" in res.violations[0].message

    def test_entropy_import_and_call_trigger(self, tmp_path):
        res = lint_snippet(tmp_path, "sweep", "from random import shuffle\n")
        assert codes(res) == ["RPL010"]
        res = lint_snippet(
            tmp_path, "sweep", "import random\n\ndef f():\n    return random.random()\n"
        )
        assert codes(res) == ["RPL010"]

    def test_wall_clock_triggers(self, tmp_path):
        src = "import time\n\ndef f():\n    t = time.perf_counter()\n    return t\n"
        res = lint_snippet(tmp_path, "sweep", src)
        assert codes(res) == ["RPL010"]
        assert "wall-clock" in res.violations[0].message

    def test_unordered_pool_consumption_triggers(self, tmp_path):
        src = (
            "def f(fs):\n"
            "    out = []\n"
            "    for r in as_completed(fs):\n"
            "        out.append(r)\n"
            "    return out\n"
        )
        res = lint_snippet(tmp_path, "sweep", src)
        assert codes(res) == ["RPL010"]
        assert "completion" in res.violations[0].message

    def test_default_rng_seeding(self, tmp_path):
        assert codes(lint_snippet(tmp_path, "sweep", "def f():\n    return default_rng()\n")) == [
            "RPL010"
        ]
        assert codes(lint_snippet(tmp_path, "sweep", "def f():\n    return default_rng(0)\n")) == []

    def test_outside_contract_packages_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "experiments", "def f(obj):\n    return id(obj)\n")
        assert codes(res) == []

    def test_suppression(self, tmp_path):
        src = "def f(obj):\n    return id(obj)  # repro-lint: disable=RPL010 — in-process handle only\n"
        res = lint_snippet(tmp_path, "sweep", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL010"]


class TestRPL011ConfigRegistry:
    @staticmethod
    def _check(files, declared=None, registry_rel=None, docs_text=None):
        return check_env_reads(
            files, declared=declared, registry_rel=registry_rel, docs_text=docs_text
        )

    def test_read_outside_config_module_triggers(self, tmp_path):
        src = "import os\nv = os.environ.get('REPRO_X', '')\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL011"]
        assert "outside a declared config module" in res.violations[0].message

    def test_read_in_config_module_is_allowed(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ.get('REPRO_X', '1')\n"
        )
        assert self._check([ctx]) == []

    def test_non_literal_name_triggers(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ.get(name)\n"
        )
        out = self._check([ctx])
        assert [v.rule for v in out] == ["RPL011"]
        assert "non-literal" in out[0].message

    def test_subscript_read_triggers_even_in_config(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ['REPRO_X']\n"
        )
        out = self._check([ctx])
        assert [v.rule for v in out] == ["RPL011"]
        assert "no default" in out[0].message

    def test_env_write_is_silent(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "import os\nos.environ['REPRO_X'] = '1'\n")
        assert codes(res) == []

    def test_undeclared_name_triggers(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ.get('REPRO_NEW', '')\n"
        )
        out = self._check(
            [ctx],
            declared={"REPRO_OLD": "'1'"},
            registry_rel="src/repro/config.py",
            docs_text="REPRO_OLD REPRO_NEW",
        )
        assert [v.rule for v in out] == ["RPL011"]
        assert "'REPRO_NEW'" in out[0].message and "not declared" in out[0].message
        assert out[0].path == "src/repro/config.py"

    def test_undocumented_declared_name_triggers(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ.get('REPRO_OLD', '')\n"
        )
        out = self._check(
            [ctx],
            declared={"REPRO_OLD": "'1'"},
            registry_rel="src/repro/config.py",
            docs_text="nothing relevant",
        )
        assert [v.rule for v in out] == ["RPL011"]
        assert "not documented" in out[0].message

    def test_declared_and_documented_is_silent(self):
        ctx = make_ctx(
            "src/repro/perf/config.py", "import os\nv = os.environ.get('REPRO_OLD', '')\n"
        )
        assert (
            self._check(
                [ctx],
                declared={"REPRO_OLD": "'1'"},
                registry_rel="src/repro/config.py",
                docs_text="`REPRO_OLD` does things",
            )
            == []
        )

    def test_static_parse_matches_runtime_registry(self):
        from repro.config import ENV_VARS

        source = (REPO_ROOT / "src" / "repro" / "config.py").read_text(encoding="utf-8")
        declared = ConfigRegistryRule._parse_declared(ast.parse(source))
        assert set(declared) == set(ENV_VARS)
        assert declared["REPRO_PERF"] and "1" in declared["REPRO_PERF"]


class TestRPL012ResourceLifecycle:
    def test_unprotected_create_triggers(self, tmp_path):
        src = (
            "def f(n):\n"
            "    seg = SharedMemory(name=n, create=True, size=8)\n"
            "    buf = seg.buf\n"
        )
        res = lint_snippet(tmp_path, "parallel", src)
        assert codes(res) == ["RPL012"]
        assert "no reachable" in res.violations[0].message

    def test_leaky_window_triggers(self, tmp_path):
        src = (
            "SEGS = {}\n\n"
            "def f(n, data):\n"
            "    seg = SharedMemory(name=n, create=True, size=8)\n"
            "    seg.buf[0] = data\n"
            "    SEGS[n] = seg\n"
        )
        res = lint_snippet(tmp_path, "parallel", src)
        assert codes(res) == ["RPL012"]
        assert "can leak" in res.violations[0].message

    def test_immediate_registry_store_is_silent(self, tmp_path):
        src = (
            "SEGS = {}\n\n"
            "def f(n):\n"
            "    seg = SharedMemory(name=n, create=True, size=8)\n"
            "    SEGS[n] = seg\n"
            "    return seg\n"
        )
        assert codes(lint_snippet(tmp_path, "parallel", src)) == []

    def test_finalizer_is_silent(self, tmp_path):
        src = (
            "import weakref\n\n"
            "def f(n, owner, cleanup):\n"
            "    seg = SharedMemory(name=n, create=True, size=8)\n"
            "    weakref.finalize(owner, cleanup, n)\n"
            "    return seg\n"
        )
        assert codes(lint_snippet(tmp_path, "parallel", src)) == []

    def test_try_finally_is_silent(self, tmp_path):
        src = (
            "def f(n, data):\n"
            "    seg = SharedMemory(name=n, create=True, size=8)\n"
            "    try:\n"
            "        seg.buf[0] = data\n"
            "    finally:\n"
            "        seg.close()\n"
            "        seg.unlink()\n"
        )
        assert codes(lint_snippet(tmp_path, "parallel", src)) == []

    def test_pool_outside_with_triggers(self, tmp_path):
        src = "def f():\n    return ProcessPoolExecutor(2)\n"
        res = lint_snippet(tmp_path, "parallel", src)
        assert codes(res) == ["RPL012"]
        assert "atexit" in res.violations[0].message

    def test_pool_with_atexit_shutdown_is_silent(self, tmp_path):
        src = (
            "import atexit\n\n"
            "def shutdown():\n"
            "    pass\n\n"
            "atexit.register(shutdown)\n\n"
            "def f():\n"
            "    return ProcessPoolExecutor(2)\n"
        )
        assert codes(lint_snippet(tmp_path, "parallel", src)) == []

    def test_pool_in_with_block_is_silent(self, tmp_path):
        src = (
            "def f(xs):\n"
            "    with ProcessPoolExecutor(2) as p:\n"
            "        return list(p.map(len, xs))\n"
        )
        assert codes(lint_snippet(tmp_path, "parallel", src)) == []


class TestRPL100StaleSuppressions:
    def test_stale_line_suppression_triggers(self, tmp_path):
        src = "x = 1  # repro-lint: disable=RPL003 — obsolete\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL100"]
        assert "disable=RPL003" in res.violations[0].message

    def test_stale_file_suppression_triggers(self, tmp_path):
        src = "# repro-lint: disable-file=RPL001 — legacy\nx = 1\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL100"]
        assert "disable-file=RPL001" in res.violations[0].message

    def test_live_suppression_is_not_stale(self, tmp_path):
        src = "b = float(total)  # repro-lint: disable=RPL003 — fixture\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert [v.rule for v in res.suppressed] == ["RPL003"]

    def test_unselected_rule_codes_are_not_checkable(self, tmp_path):
        pkg = tmp_path / "oned"
        pkg.mkdir()
        (pkg / "s.py").write_text("x = 1  # repro-lint: disable=RPL003 — obsolete\n")
        res = lint_paths([pkg], select={"RPL001", "RPL100"})
        assert codes(res) == []

    def test_unused_disable_all_flagged_only_on_full_run(self, tmp_path):
        pkg = tmp_path / "oned"
        pkg.mkdir()
        (pkg / "s.py").write_text("x = 1  # repro-lint: disable=all — temporary\n")
        full = lint_paths([pkg])
        assert codes(full) == ["RPL100"]
        assert "ALL" in full.violations[0].message
        partial = lint_paths([pkg], select={"RPL003", "RPL100"})
        assert codes(partial) == []

    def test_stale_check_can_be_disabled(self, tmp_path):
        pkg = tmp_path / "oned"
        pkg.mkdir()
        (pkg / "s.py").write_text("x = 1  # repro-lint: disable=RPL003 — obsolete\n")
        res = lint_paths([pkg], stale_check=False)
        assert codes(res) == []

    def test_stale_finding_is_itself_suppressible(self, tmp_path):
        src = "x = 1  # repro-lint: disable=RPL003,RPL100 — grandfathered\n"
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == []
        assert "RPL100" in {v.rule for v in res.suppressed}

    def test_mixed_live_and_stale_lines(self, tmp_path):
        src = (
            "b = float(total)  # repro-lint: disable=RPL003 — fixture\n"
            "x = 1  # repro-lint: disable=RPL002 — obsolete\n"
        )
        res = lint_snippet(tmp_path, "oned", src)
        assert codes(res) == ["RPL100"]
        assert res.violations[0].line == 2


class TestSarifReport:
    def test_sarif_shape(self, tmp_path):
        res = lint_snippet(tmp_path, "oned", "b = float(total)\n")
        payload = json.loads(sarif_report(res))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        for code in ("RPL001", "RPL009", "RPL010", "RPL011", "RPL012", "RPL100"):
            assert code in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RPL003"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("snippet.py")
        assert loc["region"]["startLine"] == 1
        assert "suppressions" not in result

    def test_sarif_carries_suppressions(self, tmp_path):
        src = "b = float(total)  # repro-lint: disable=RPL003 — fixture\n"
        res = lint_snippet(tmp_path, "oned", src)
        payload = json.loads(sarif_report(res))
        results = payload["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["suppressions"] == [{"kind": "inSource"}]

    def test_cli_sarif_output(self, tmp_path, capsys):
        pkg = tmp_path / "jagged"
        pkg.mkdir()
        bad = pkg / "bad.py"
        bad.write_text("t = A[r0:r1].sum()\n")
        assert lint_main(["--format", "sarif", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"][0]["ruleId"] == "RPL001"

    def test_cli_suppressed_only_exits_zero_with_counts(self, tmp_path, capsys):
        pkg = tmp_path / "jagged"
        pkg.mkdir()
        ok = pkg / "ok.py"
        ok.write_text("t = A[r0:r1].sum()  # repro-lint: disable=RPL001 — fixture\n")
        assert lint_main([str(ok)]) == 0
        out = capsys.readouterr().out
        assert "0 violations in 1 file (1 suppressed)" in out

    def test_cli_list_rules_covers_new_codes(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL009", "RPL010", "RPL011", "RPL012", "RPL100"):
            assert code in out


@pytest.mark.skipif(shutil.which("git") is None, reason="git not available")
class TestChangedMode:
    CLEAN = "t = pref.load(r0, r1)\n"
    BAD = "t = A[r0:r1].sum()\n"

    @staticmethod
    def _git(cwd: Path, *args: str) -> str:
        return subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
            text=True,
        ).stdout

    def _make_repo(self, tmp_path: Path) -> tuple[Path, str]:
        repo = tmp_path / "repo"
        (repo / "jagged").mkdir(parents=True)
        (repo / "jagged" / "good.py").write_text(self.CLEAN)
        self._git(repo, "init", "-q")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        branch = self._git(repo, "rev-parse", "--abbrev-ref", "HEAD").strip()
        return repo, branch

    def test_no_changes_exits_zero(self, tmp_path, monkeypatch, capsys):
        repo, branch = self._make_repo(tmp_path)
        monkeypatch.chdir(repo)
        assert lint_main(["--changed", "--base", branch, "jagged"]) == 0
        assert "0 violations in 0 files (0 suppressed)" in capsys.readouterr().out

    def test_worktree_modification_is_linted(self, tmp_path, monkeypatch, capsys):
        repo, branch = self._make_repo(tmp_path)
        (repo / "jagged" / "good.py").write_text(self.BAD)
        monkeypatch.chdir(repo)
        assert lint_main(["--changed", "--base", branch, "jagged"]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "in 1 file " in out

    def test_untracked_file_is_linted(self, tmp_path, monkeypatch, capsys):
        repo, branch = self._make_repo(tmp_path)
        (repo / "jagged" / "new.py").write_text(self.BAD)
        monkeypatch.chdir(repo)
        assert lint_main(["--changed", "--base", branch, "jagged"]) == 1
        assert "new.py" in capsys.readouterr().out

    def test_changed_skips_stale_check(self, tmp_path, monkeypatch, capsys):
        repo, branch = self._make_repo(tmp_path)
        (repo / "jagged" / "new.py").write_text(
            "x = 1  # repro-lint: disable=RPL003 — not stale under --changed\n"
        )
        monkeypatch.chdir(repo)
        assert lint_main(["--changed", "--base", branch, "jagged"]) == 0
        capsys.readouterr()

    def test_outside_git_falls_back_to_full_lint(self, tmp_path, monkeypatch, capsys):
        pkg = tmp_path / "plain" / "jagged"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(self.BAD)
        monkeypatch.chdir(tmp_path / "plain")
        assert lint_main(["--changed", "--base", "main", "jagged"]) == 1
        captured = capsys.readouterr()
        assert "linting everything" in captured.err
