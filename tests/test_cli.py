"""Tests for the repro-partition command-line tool."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.serialize import load_partition


@pytest.fixture()
def matrix_file(tmp_path, rng):
    A = rng.integers(1, 100, (24, 24)).astype(np.int64)
    path = tmp_path / "load.npy"
    np.save(path, A)
    return path, A


class TestCli:
    def test_report(self, matrix_file, capsys):
        path, A = matrix_file
        rc = main([str(path), "-m", "6", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "imbalance" in out and "JAG-M-HEUR" in out

    def test_writes_partition_and_image(self, matrix_file, tmp_path, capsys):
        path, A = matrix_file
        out = tmp_path / "part.json"
        img = tmp_path / "part.ppm"
        rc = main([str(path), "-m", "4", "--out", str(out), "--image", str(img)])
        assert rc == 0
        part = load_partition(out)
        part.validate()
        assert part.m == 4
        assert img.read_bytes().startswith(b"P6")

    def test_ascii(self, matrix_file, capsys):
        path, _ = matrix_file
        main([str(path), "-m", "4", "--ascii"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 24

    def test_npz_with_key(self, tmp_path, rng, capsys):
        A = rng.integers(1, 9, (8, 8))
        path = tmp_path / "data.npz"
        np.savez(path, other=np.zeros(3), load=A)
        rc = main([str(path), "-m", "2", "--key", "load", "--report"])
        assert rc == 0

    def test_npz_bad_key(self, tmp_path, rng):
        path = tmp_path / "data.npz"
        np.savez(path, load=rng.integers(1, 9, (4, 4)))
        with pytest.raises(SystemExit):
            main([str(path), "-m", "2", "--key", "missing"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "nope.npy"), "-m", "2"])

    def test_bad_method(self, matrix_file):
        path, _ = matrix_file
        with pytest.raises(SystemExit):
            main([str(path), "-m", "2", "--method", "MAGIC"])

    def test_bad_matrix(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.array([1, 2, 3]))  # 1D
        with pytest.raises(SystemExit):
            main([str(path), "-m", "2"])

    def test_bad_m(self, matrix_file):
        path, _ = matrix_file
        with pytest.raises(SystemExit):
            main([str(path), "-m", "0"])

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "load.txt"
        path.write_text("1 2 3")
        with pytest.raises(SystemExit):
            main([str(path), "-m", "2"])
