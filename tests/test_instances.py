"""Tests for the evaluation instances: synthetic, PIC-MAG, SLAC (§4.1)."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.instances import (
    PICConfig,
    PICMagDataset,
    PICMagSimulator,
    diagonal,
    make_instance,
    multi_peak,
    peak,
    slac_instance,
    uniform,
)
from repro.instances.mesh import CavityConfig, cavity_vertices, project_vertices
from repro.instances.pic.simulator import _box_smooth


class TestSynthetic:
    def test_uniform_range(self):
        A = uniform(32, 1.4, seed=0)
        assert A.shape == (32, 32)
        assert A.min() >= 1000 and A.max() <= 1400

    def test_uniform_rectangular(self):
        assert uniform(8, 1.2, seed=0, n2=16).shape == (8, 16)

    def test_uniform_delta_domain(self):
        with pytest.raises(ParameterError):
            uniform(8, 0.9)

    @pytest.mark.parametrize("gen", [diagonal, peak, multi_peak])
    def test_distance_classes_positive(self, gen):
        A = gen(24, seed=3)
        assert A.shape == (24, 24)
        assert A.min() >= 1  # strictly positive loads

    def test_deterministic(self):
        np.testing.assert_array_equal(peak(16, seed=5), peak(16, seed=5))
        assert not np.array_equal(peak(16, seed=5), peak(16, seed=6))

    def test_diagonal_concentrates_on_diagonal(self):
        A = diagonal(64, seed=0)
        on_diag = np.mean([A[i, i] for i in range(64)])
        off_diag = np.mean([A[i, (i + 32) % 64] for i in range(64)])
        assert on_diag > 5 * off_diag

    def test_multi_peak_count_validation(self):
        with pytest.raises(ParameterError):
            multi_peak(8, peaks=0)

    def test_make_instance_dispatch(self):
        assert make_instance("uniform", 8).shape == (8, 8)
        assert make_instance("multi-peak", 8).shape == (8, 8)
        with pytest.raises(ParameterError):
            make_instance("volcano", 8)


class TestSLAC:
    def test_sparse_with_zeros(self):
        A = slac_instance(128)
        assert A.shape == (128, 128)
        zero_frac = (A == 0).mean()
        assert zero_frac > 0.2  # genuinely sparse, like the mesh projection

    def test_total_equals_vertex_count(self):
        cfg = CavityConfig(rings=100, density=100.0)
        verts = cavity_vertices(cfg)
        A = project_vertices(verts, 64)
        assert A.sum() == len(verts)

    def test_projection_axes(self):
        verts = cavity_vertices(CavityConfig(rings=50, density=50.0))
        top = project_vertices(verts, 32, axes=(0, 2))
        side = project_vertices(verts, 32, axes=(0, 1))
        assert top.sum() == side.sum()

    def test_projection_validation(self):
        with pytest.raises(ParameterError):
            project_vertices(np.zeros((4, 2)), 8)

    def test_cavity_config_validation(self):
        with pytest.raises(ParameterError):
            cavity_vertices(CavityConfig(rings=1))

    def test_deterministic(self):
        np.testing.assert_array_equal(slac_instance(64), slac_instance(64))


class TestPICSimulator:
    CFG = PICConfig(grid=48, particles=4000, seed=7)

    def test_deterministic(self):
        a = PICMagSimulator(self.CFG)
        b = PICMagSimulator(self.CFG)
        a.step(20)
        b.step(20)
        np.testing.assert_array_equal(a.load_matrix(), b.load_matrix())

    def test_particles_stay_in_domain(self):
        sim = PICMagSimulator(self.CFG)
        sim.step(50)
        assert (sim.x >= 0).all() and (sim.x < 1).all()
        assert (sim.y >= 0).all() and (sim.y < 1).all()

    def test_load_matrix_positive(self):
        sim = PICMagSimulator(self.CFG)
        sim.step(10)
        A = sim.load_matrix()
        assert A.shape == (48, 48)
        assert A.min() >= self.CFG.base_load

    def test_delta_band(self):
        """Default config hits the paper's Δ window (Δ ∈ [1.21, 1.51])."""
        sim = PICMagSimulator(PICConfig(grid=128, particles=30_000))
        sim.step(500)
        assert 1.1 <= sim.delta() <= 1.7

    def test_density_conserves_particles(self):
        sim = PICMagSimulator(self.CFG)
        sim.step(5)
        assert sim.density().sum() == self.CFG.particles

    def test_box_smooth_preserves_mean(self, rng):
        H = rng.uniform(0, 10, (16, 16))
        S = _box_smooth(H, 2)
        assert S.shape == H.shape
        # clamped-window box average preserves constants exactly
        np.testing.assert_allclose(_box_smooth(np.full((8, 8), 3.0), 3), 3.0)

    def test_box_smooth_identity_at_zero(self, rng):
        H = rng.uniform(0, 10, (8, 8))
        assert _box_smooth(H, 0) is H


class TestPICDataset:
    CFG = PICConfig(grid=32, particles=2000, seed=11)

    def test_cadence(self):
        ds = PICMagDataset(self.CFG, period=100, max_iteration=500, cache=False)
        assert ds.iterations == [0, 100, 200, 300, 400, 500]

    def test_snapshot_validation(self):
        ds = PICMagDataset(self.CFG, period=100, max_iteration=500, cache=False)
        with pytest.raises(ParameterError):
            ds.snapshot(150)
        with pytest.raises(ParameterError):
            ds.snapshot(600)

    def test_snapshots_in_order_and_deterministic(self):
        ds1 = PICMagDataset(self.CFG, period=100, max_iteration=300, cache=False)
        ds2 = PICMagDataset(self.CFG, period=100, max_iteration=300, cache=False)
        for (i1, a1), (i2, a2) in zip(ds1.snapshots(), ds2.snapshots()):
            assert i1 == i2
            np.testing.assert_array_equal(a1, a2)

    def test_out_of_order_access(self):
        ds = PICMagDataset(self.CFG, period=100, max_iteration=300, cache=False)
        late = ds.snapshot(300)
        early = ds.snapshot(100)
        ref = PICMagDataset(self.CFG, period=100, max_iteration=300, cache=False)
        np.testing.assert_array_equal(early, ref.snapshot(100))
        np.testing.assert_array_equal(late, ref.snapshot(300))

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c"))
        ds1 = PICMagDataset(self.CFG, period=100, max_iteration=200)
        a = ds1.snapshot(200)
        ds2 = PICMagDataset(self.CFG, period=100, max_iteration=200)
        assert 200 in ds2._snapshots  # loaded from disk, no simulation
        np.testing.assert_array_equal(ds2.snapshot(200), a)

    def test_period_validation(self):
        with pytest.raises(ParameterError):
            PICMagDataset(self.CFG, period=0, cache=False)


class TestCavityGraph:
    def test_graph_structure(self):
        pytest.importorskip("networkx")
        pytest.importorskip("scipy")
        from repro.instances.mesh.graph import cavity_graph

        g = cavity_graph(CavityConfig(rings=40, density=40.0), k_neighbors=3)
        assert g.number_of_nodes() > 100
        # k-NN graph: average degree between k and 2k (symmetrized)
        avg_deg = 2 * g.number_of_edges() / g.number_of_nodes()
        assert 3 <= avg_deg <= 6
        # positions attached
        import numpy as np

        pos = g.nodes[0]["pos"]
        assert np.asarray(pos).shape == (3,)
